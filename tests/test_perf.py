"""Tests for the parallel sweep executor, the trial cache, and spec keys."""

import dataclasses
import pickle

import pytest

from repro.analysis import (
    EmptySweepError,
    extraction_grid,
    set_agreement_grid,
    sweep_extraction,
    sweep_set_agreement,
    to_csv,
)
from repro.perf import (
    ExtractionTrialSpec,
    SetAgreementTrialSpec,
    TrialCache,
    execute_trial,
    run_trials,
    spec_key,
)
from repro.perf.executor import _chunk_indices, resolve_jobs


class TestSpecs:
    def test_specs_are_picklable(self):
        spec = SetAgreementTrialSpec(3, 2, seed=0, stabilization_time=40)
        assert pickle.loads(pickle.dumps(spec)) == spec
        spec = ExtractionTrialSpec("omega", 3, seed=1)
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_key_is_stable(self):
        a = SetAgreementTrialSpec(4, 3, seed=7, stabilization_time=0)
        b = SetAgreementTrialSpec(4, 3, seed=7, stabilization_time=0)
        assert spec_key(a) == spec_key(b)
        assert len(spec_key(a)) == 64

    def test_key_covers_every_field(self):
        base = SetAgreementTrialSpec(4, 3, seed=7, stabilization_time=0)
        keys = {spec_key(base)}
        for change in (
            {"n_processes": 5}, {"f": 2}, {"seed": 8},
            {"stabilization_time": 10}, {"adversarial": True},
            {"max_steps": 99},
        ):
            keys.add(spec_key(dataclasses.replace(base, **change)))
        assert len(keys) == 7

    def test_kinds_do_not_collide(self):
        # same field values, different trial kind -> different key
        sa = SetAgreementTrialSpec(3, 2, seed=0, stabilization_time=60)
        ex = ExtractionTrialSpec("omega", 3, seed=0)
        assert spec_key(sa) != spec_key(ex)

    def test_key_salted_by_engine_version(self):
        spec = SetAgreementTrialSpec(3, 2, seed=0, stabilization_time=0)
        key = spec_key(spec)
        import repro.perf.spec as spec_mod
        original = spec_mod.ENGINE_VERSION
        try:
            spec_mod.ENGINE_VERSION = original + ".bumped"
            assert spec_key(spec) != key
        finally:
            spec_mod.ENGINE_VERSION = original

    def test_execute_trial_deterministic(self):
        spec = SetAgreementTrialSpec(3, 2, seed=5, stabilization_time=20)
        assert execute_trial(spec) == execute_trial(spec)

    def test_execute_extraction_by_registry_name(self):
        result = execute_trial(
            ExtractionTrialSpec("omega", 3, seed=0, stabilization_time=40,
                                max_steps=30_000)
        )
        assert result.stabilized and result.legal

    def test_execute_rejects_non_spec(self):
        with pytest.raises(TypeError):
            execute_trial({"n_processes": 3})


class TestGrids:
    def test_grid_order_is_deterministic(self):
        grid = set_agreement_grid([3, 4], [0, 1], [0, 40])
        assert grid == set_agreement_grid([3, 4], [0, 1], [0, 40])
        assert len(grid) == 8

    def test_empty_parameter_is_named(self):
        with pytest.raises(EmptySweepError, match="'seeds'"):
            set_agreement_grid([3], [], [0])
        with pytest.raises(EmptySweepError, match="'system_sizes'"):
            set_agreement_grid([], [0], [0])
        with pytest.raises(EmptySweepError, match="'stabilization_times'"):
            set_agreement_grid([3], [0], [])
        with pytest.raises(EmptySweepError, match="'detectors'"):
            extraction_grid([], [3], [0])

    def test_fs_filtered_to_nothing_is_named(self):
        # every f out of 1..n for every size -> the error blames fs
        with pytest.raises(EmptySweepError, match="'fs'") as excinfo:
            set_agreement_grid([3], [0], [0], fs=[7, 9])
        assert excinfo.value.parameter == "fs"
        assert "7" in str(excinfo.value)

    def test_empty_sweep_error_is_a_value_error(self):
        assert issubclass(EmptySweepError, ValueError)


class TestExecutor:
    def test_resolve_jobs(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) >= 1
        with pytest.raises(ValueError):
            resolve_jobs(-1)

    def test_chunking_covers_everything_once(self):
        chunks = _chunk_indices(10, jobs=3, chunk_size=None)
        flat = [i for chunk in chunks for i in chunk]
        assert flat == list(range(10))
        chunks = _chunk_indices(5, jobs=2, chunk_size=2)
        assert [list(c) for c in chunks] == [[0, 1], [2, 3], [4]]
        with pytest.raises(ValueError):
            _chunk_indices(5, jobs=2, chunk_size=0)

    def test_serial_results_in_grid_order(self):
        grid = set_agreement_grid([3], [0, 1, 2], [0])
        results = run_trials(grid, jobs=1)
        assert [r.seed for r in results] == [0, 1, 2]

    def test_parallel_matches_serial_byte_identical(self):
        """The determinism contract: a jobs=4 sweep exports byte-identical
        CSV to a serial sweep over the same grid."""
        kwargs = dict(
            system_sizes=[3, 4], seeds=[0, 1, 2, 3],
            stabilization_times=[0, 40],
        )
        serial = sweep_set_agreement(**kwargs, jobs=1)
        parallel = sweep_set_agreement(**kwargs, jobs=4)
        assert to_csv(serial) == to_csv(parallel)
        assert serial == parallel

    def test_parallel_extraction_matches_serial(self):
        kwargs = dict(
            detectors=["omega"], system_sizes=[3], seeds=[0, 1, 2],
            stabilization_time=40, max_steps=30_000,
        )
        serial = sweep_extraction(**kwargs, jobs=1)
        parallel = sweep_extraction(**kwargs, jobs=4)
        assert to_csv(serial) == to_csv(parallel)


class TestCache:
    def test_roundtrip_equal_result(self, tmp_path):
        cache = TrialCache(tmp_path)
        spec = SetAgreementTrialSpec(3, 2, seed=0, stabilization_time=0)
        assert cache.get(spec) is None
        result = execute_trial(spec)
        cache.put(spec, result)
        hit = cache.get(spec)
        assert hit == result
        assert cache.hits == 1 and cache.misses == 1 and cache.stores == 1

    def test_sweep_warm_cache_equal(self, tmp_path):
        cache = TrialCache(tmp_path)
        cold = sweep_set_agreement([3], [0, 1], [0, 20], cache=cache)
        assert cache.misses == 4 and cache.hits == 0
        warm = sweep_set_agreement([3], [0, 1], [0, 20], cache=cache)
        assert cache.hits == 4
        assert warm == cold
        assert to_csv(warm) == to_csv(cold)

    def test_parallel_sweep_populates_cache(self, tmp_path):
        cache = TrialCache(tmp_path)
        sweep_set_agreement([3], [0, 1, 2, 3], [0], jobs=2, cache=cache)
        assert len(cache) == 4
        # a later serial run is served entirely from disk
        sweep_set_agreement([3], [0, 1, 2, 3], [0], jobs=1, cache=cache)
        assert cache.hits == 4

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = TrialCache(tmp_path)
        spec = SetAgreementTrialSpec(3, 2, seed=0, stabilization_time=0)
        cache.put(spec, execute_trial(spec))
        path = cache._path(spec_key(spec))
        path.write_bytes(b"not a pickle")
        assert cache.get(spec) is None
        assert not path.exists()  # dropped for recompute

    def test_engine_salt_invalidates(self, tmp_path):
        import repro.perf.spec as spec_mod

        cache = TrialCache(tmp_path)
        spec = SetAgreementTrialSpec(3, 2, seed=0, stabilization_time=0)
        cache.put(spec, execute_trial(spec))
        original = spec_mod.ENGINE_VERSION
        try:
            spec_mod.ENGINE_VERSION = original + ".bumped"
            assert cache.get(spec) is None
        finally:
            spec_mod.ENGINE_VERSION = original
        assert cache.get(spec) is not None

    def test_clear(self, tmp_path):
        cache = TrialCache(tmp_path)
        spec = SetAgreementTrialSpec(3, 2, seed=0, stabilization_time=0)
        cache.put(spec, execute_trial(spec))
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0


class TestLegacyFactories:
    def test_factories_still_run_serially(self):
        from repro.detectors import OmegaSpec

        results = sweep_extraction(
            [OmegaSpec], system_sizes=[3], seeds=[0],
            stabilization_time=40, max_steps=30_000,
        )
        assert len(results) == 1 and results[0].legal

    def test_factories_reject_parallel_and_cache(self, tmp_path):
        from repro.detectors import OmegaSpec

        with pytest.raises(ValueError, match="registry names"):
            sweep_extraction([OmegaSpec], [3], [0], jobs=2)
        with pytest.raises(ValueError, match="registry names"):
            sweep_extraction([OmegaSpec], [3], [0],
                             cache=TrialCache(tmp_path))


class TestMemoryKeys:
    def test_keys_accessor(self):
        from repro.memory import Memory
        from repro.runtime import System

        memory = Memory(System(3))
        memory.create_register(("r", 1))
        memory.create_snapshot("S")
        assert set(memory.keys()) == {("r", 1), "S"}
        # read-only snapshot: mutating the return value changes nothing
        keys = memory.keys()
        assert isinstance(keys, tuple)

    def test_max_round_uses_public_api(self):
        from repro.analysis import run_set_agreement_trial
        from repro.runtime import System

        result = run_set_agreement_trial(
            System(3), 2, seed=0, stabilization_time=0
        )
        assert result.rounds >= 1


class TestSweepCli:
    def test_sweep_cli_parallel_with_cache(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir = str(tmp_path / "cache")
        csv_path = str(tmp_path / "out.csv")
        argv = ["sweep", "set-agreement", "--sizes", "3", "--seeds", "0,1",
                "--stabilizations", "0", "--jobs", "2",
                "--cache-dir", cache_dir, "--csv", csv_path]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "2 misses" in out
        # warm rerun: every trial served from the cache
        assert main(argv) == 0
        assert "2 hits" in capsys.readouterr().out
        with open(csv_path) as handle:
            assert handle.readline().startswith("n_processes,")

    def test_sweep_cli_extraction(self, capsys):
        from repro.cli import main

        assert main(["sweep", "extraction", "--detectors", "omega",
                     "--sizes", "3", "--seeds", "0", "--no-cache"]) == 0
        assert "properties: OK" in capsys.readouterr().out

    def test_sweep_cli_names_empty_parameter(self, capsys):
        from repro.cli import main

        code = main(["sweep", "set-agreement", "--sizes", "3",
                     "--seeds", "0", "--stabilizations", "0",
                     "--fs", "9", "--no-cache"])
        assert code == 2
        assert "'fs'" in capsys.readouterr().err

    def test_seed_ranges(self):
        from repro.cli import _parse_int_list

        assert _parse_int_list("0-3") == [0, 1, 2, 3]
        assert _parse_int_list("3,4,5") == [3, 4, 5]
        assert _parse_int_list("0,2-4") == [0, 2, 3, 4]
