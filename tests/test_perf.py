"""Tests for the parallel sweep executor, the trial cache, and spec keys."""

import dataclasses
import pickle

import pytest

from repro.analysis import (
    EmptySweepError,
    extraction_grid,
    set_agreement_grid,
    sweep_extraction,
    sweep_set_agreement,
    to_csv,
)
from repro.perf import (
    ExtractionTrialSpec,
    SetAgreementTrialSpec,
    TrialCache,
    execute_trial,
    run_trials,
    spec_key,
)
from repro.perf.executor import _chunk_indices, resolve_jobs


class TestSpecs:
    def test_specs_are_picklable(self):
        spec = SetAgreementTrialSpec(3, 2, seed=0, stabilization_time=40)
        assert pickle.loads(pickle.dumps(spec)) == spec
        spec = ExtractionTrialSpec("omega", 3, seed=1)
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_key_is_stable(self):
        a = SetAgreementTrialSpec(4, 3, seed=7, stabilization_time=0)
        b = SetAgreementTrialSpec(4, 3, seed=7, stabilization_time=0)
        assert spec_key(a) == spec_key(b)
        assert len(spec_key(a)) == 64

    def test_key_covers_every_field(self):
        base = SetAgreementTrialSpec(4, 3, seed=7, stabilization_time=0)
        keys = {spec_key(base)}
        for change in (
            {"n_processes": 5}, {"f": 2}, {"seed": 8},
            {"stabilization_time": 10}, {"adversarial": True},
            {"max_steps": 99},
        ):
            keys.add(spec_key(dataclasses.replace(base, **change)))
        assert len(keys) == 7

    def test_kinds_do_not_collide(self):
        # same field values, different trial kind -> different key
        sa = SetAgreementTrialSpec(3, 2, seed=0, stabilization_time=60)
        ex = ExtractionTrialSpec("omega", 3, seed=0)
        assert spec_key(sa) != spec_key(ex)

    def test_key_salted_by_engine_version(self):
        spec = SetAgreementTrialSpec(3, 2, seed=0, stabilization_time=0)
        key = spec_key(spec)
        import repro.perf.spec as spec_mod
        original = spec_mod.ENGINE_VERSION
        try:
            spec_mod.ENGINE_VERSION = original + ".bumped"
            assert spec_key(spec) != key
        finally:
            spec_mod.ENGINE_VERSION = original

    def test_execute_trial_deterministic(self):
        spec = SetAgreementTrialSpec(3, 2, seed=5, stabilization_time=20)
        assert execute_trial(spec) == execute_trial(spec)

    def test_execute_extraction_by_registry_name(self):
        result = execute_trial(
            ExtractionTrialSpec("omega", 3, seed=0, stabilization_time=40,
                                max_steps=30_000)
        )
        assert result.stabilized and result.legal

    def test_execute_rejects_non_spec(self):
        with pytest.raises(TypeError):
            execute_trial({"n_processes": 3})


class TestGrids:
    def test_grid_order_is_deterministic(self):
        grid = set_agreement_grid([3, 4], [0, 1], [0, 40])
        assert grid == set_agreement_grid([3, 4], [0, 1], [0, 40])
        assert len(grid) == 8

    def test_empty_parameter_is_named(self):
        with pytest.raises(EmptySweepError, match="'seeds'"):
            set_agreement_grid([3], [], [0])
        with pytest.raises(EmptySweepError, match="'system_sizes'"):
            set_agreement_grid([], [0], [0])
        with pytest.raises(EmptySweepError, match="'stabilization_times'"):
            set_agreement_grid([3], [0], [])
        with pytest.raises(EmptySweepError, match="'detectors'"):
            extraction_grid([], [3], [0])

    def test_fs_filtered_to_nothing_is_named(self):
        # every f out of 1..n for every size -> the error blames fs
        with pytest.raises(EmptySweepError, match="'fs'") as excinfo:
            set_agreement_grid([3], [0], [0], fs=[7, 9])
        assert excinfo.value.parameter == "fs"
        assert "7" in str(excinfo.value)

    def test_empty_sweep_error_is_a_value_error(self):
        assert issubclass(EmptySweepError, ValueError)


class TestExecutor:
    def test_resolve_jobs(self):
        assert resolve_jobs(3) == 3
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) >= 1
        with pytest.raises(ValueError):
            resolve_jobs(-1)

    def test_chunking_covers_everything_once(self):
        chunks = _chunk_indices(10, jobs=3, chunk_size=None)
        flat = [i for chunk in chunks for i in chunk]
        assert flat == list(range(10))
        chunks = _chunk_indices(5, jobs=2, chunk_size=2)
        assert [list(c) for c in chunks] == [[0, 1], [2, 3], [4]]
        with pytest.raises(ValueError):
            _chunk_indices(5, jobs=2, chunk_size=0)

    def test_serial_results_in_grid_order(self):
        grid = set_agreement_grid([3], [0, 1, 2], [0])
        results = run_trials(grid, jobs=1)
        assert [r.seed for r in results] == [0, 1, 2]

    def test_parallel_matches_serial_byte_identical(self):
        """The determinism contract: a jobs=4 sweep exports byte-identical
        CSV to a serial sweep over the same grid."""
        kwargs = dict(
            system_sizes=[3, 4], seeds=[0, 1, 2, 3],
            stabilization_times=[0, 40],
        )
        serial = sweep_set_agreement(**kwargs, jobs=1)
        parallel = sweep_set_agreement(**kwargs, jobs=4)
        assert to_csv(serial) == to_csv(parallel)
        assert serial == parallel

    def test_parallel_extraction_matches_serial(self):
        kwargs = dict(
            detectors=["omega"], system_sizes=[3], seeds=[0, 1, 2],
            stabilization_time=40, max_steps=30_000,
        )
        serial = sweep_extraction(**kwargs, jobs=1)
        parallel = sweep_extraction(**kwargs, jobs=4)
        assert to_csv(serial) == to_csv(parallel)


class TestCache:
    def test_roundtrip_equal_result(self, tmp_path):
        cache = TrialCache(tmp_path)
        spec = SetAgreementTrialSpec(3, 2, seed=0, stabilization_time=0)
        assert cache.get(spec) is None
        result = execute_trial(spec)
        cache.put(spec, result)
        hit = cache.get(spec)
        assert hit == result
        assert cache.hits == 1 and cache.misses == 1 and cache.stores == 1

    def test_sweep_warm_cache_equal(self, tmp_path):
        cache = TrialCache(tmp_path)
        cold = sweep_set_agreement([3], [0, 1], [0, 20], cache=cache)
        assert cache.misses == 4 and cache.hits == 0
        warm = sweep_set_agreement([3], [0, 1], [0, 20], cache=cache)
        assert cache.hits == 4
        assert warm == cold
        assert to_csv(warm) == to_csv(cold)

    def test_parallel_sweep_populates_cache(self, tmp_path):
        cache = TrialCache(tmp_path)
        sweep_set_agreement([3], [0, 1, 2, 3], [0], jobs=2, cache=cache)
        assert len(cache) == 4
        # a later serial run is served entirely from disk
        sweep_set_agreement([3], [0, 1, 2, 3], [0], jobs=1, cache=cache)
        assert cache.hits == 4

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = TrialCache(tmp_path)
        spec = SetAgreementTrialSpec(3, 2, seed=0, stabilization_time=0)
        cache.put(spec, execute_trial(spec))
        path = cache._path(spec_key(spec))
        path.write_bytes(b"not a pickle")
        assert cache.get(spec) is None
        assert not path.exists()  # dropped for recompute

    def test_engine_salt_invalidates(self, tmp_path):
        import repro.perf.spec as spec_mod

        cache = TrialCache(tmp_path)
        spec = SetAgreementTrialSpec(3, 2, seed=0, stabilization_time=0)
        cache.put(spec, execute_trial(spec))
        original = spec_mod.ENGINE_VERSION
        try:
            spec_mod.ENGINE_VERSION = original + ".bumped"
            assert cache.get(spec) is None
        finally:
            spec_mod.ENGINE_VERSION = original
        assert cache.get(spec) is not None

    def test_clear(self, tmp_path):
        cache = TrialCache(tmp_path)
        spec = SetAgreementTrialSpec(3, 2, seed=0, stabilization_time=0)
        cache.put(spec, execute_trial(spec))
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0


class TestLegacyFactories:
    def test_factories_still_run_serially(self):
        from repro.detectors import OmegaSpec

        results = sweep_extraction(
            [OmegaSpec], system_sizes=[3], seeds=[0],
            stabilization_time=40, max_steps=30_000,
        )
        assert len(results) == 1 and results[0].legal

    def test_factories_reject_parallel_and_cache(self, tmp_path):
        from repro.detectors import OmegaSpec

        with pytest.raises(ValueError, match="registry names"):
            sweep_extraction([OmegaSpec], [3], [0], jobs=2)
        with pytest.raises(ValueError, match="registry names"):
            sweep_extraction([OmegaSpec], [3], [0],
                             cache=TrialCache(tmp_path))


class TestMemoryKeys:
    def test_keys_accessor(self):
        from repro.memory import Memory
        from repro.runtime import System

        memory = Memory(System(3))
        memory.create_register(("r", 1))
        memory.create_snapshot("S")
        assert set(memory.keys()) == {("r", 1), "S"}
        # read-only snapshot: mutating the return value changes nothing
        keys = memory.keys()
        assert isinstance(keys, tuple)

    def test_max_round_uses_public_api(self):
        from repro.analysis import run_set_agreement_trial
        from repro.runtime import System

        result = run_set_agreement_trial(
            System(3), 2, seed=0, stabilization_time=0
        )
        assert result.rounds >= 1


class TestSweepCli:
    def test_sweep_cli_parallel_with_cache(self, tmp_path, capsys):
        from repro.cli import main

        cache_dir = str(tmp_path / "cache")
        csv_path = str(tmp_path / "out.csv")
        argv = ["sweep", "set-agreement", "--sizes", "3", "--seeds", "0,1",
                "--stabilizations", "0", "--jobs", "2",
                "--cache-dir", cache_dir, "--csv", csv_path]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "2 misses" in out
        # warm rerun: every trial served from the cache
        assert main(argv) == 0
        assert "2 hits" in capsys.readouterr().out
        with open(csv_path) as handle:
            assert handle.readline().startswith("n_processes,")

    def test_sweep_cli_extraction(self, capsys):
        from repro.cli import main

        assert main(["sweep", "extraction", "--detectors", "omega",
                     "--sizes", "3", "--seeds", "0", "--no-cache"]) == 0
        assert "properties: OK" in capsys.readouterr().out

    def test_sweep_cli_names_empty_parameter(self, capsys):
        from repro.cli import main

        code = main(["sweep", "set-agreement", "--sizes", "3",
                     "--seeds", "0", "--stabilizations", "0",
                     "--fs", "9", "--no-cache"])
        assert code == 2
        assert "'fs'" in capsys.readouterr().err

    def test_seed_ranges(self):
        from repro.cli import _parse_int_list

        assert _parse_int_list("0-3") == [0, 1, 2, 3]
        assert _parse_int_list("3,4,5") == [3, 4, 5]
        assert _parse_int_list("0,2-4") == [0, 2, 3, 4]


class TestSerialParallelEquivalence:
    """Audit satellite: jobs=1 and jobs=4 are output-equivalent.

    Property-based when hypothesis is available (it is in CI); the
    strategies draw small mixed spec grids so each example spins a real
    four-worker pool over the same grid the serial path ran.
    """

    hypothesis = pytest.importorskip("hypothesis")

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @staticmethod
    def _grid(seeds):
        specs = []
        for i, seed in enumerate(seeds):
            if i % 2 == 0:
                specs.append(SetAgreementTrialSpec(
                    3, 2, seed=seed, stabilization_time=0,
                    max_steps=100_000,
                ))
            else:
                specs.append(ExtractionTrialSpec(
                    "omega", 3, seed=seed, stabilization_time=20,
                    max_steps=40_000,
                ))
        return specs

    @settings(max_examples=5, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=10_000),
                    min_size=2, max_size=6))
    def test_jobs1_equals_jobs4(self, seeds):
        specs = self._grid(seeds)
        serial = run_trials(specs, jobs=1)
        parallel = run_trials(specs, jobs=4)
        assert serial == parallel  # ordered, elementwise dataclass equality

    def test_quarantined_slots_at_identical_indices(self):
        """With a deterministically crashing spec in the grid, resilient
        serial and parallel execution quarantine the *same* input slots
        (results[i] is None exactly there) and agree elsewhere."""
        from repro.chaos.trial import ChaosTrialSpec
        from repro.perf.resilience import QuarantineReport

        specs = [
            SetAgreementTrialSpec(3, 2, seed=1, stabilization_time=0),
            ChaosTrialSpec(protocol="fig1", n_processes=3, seed=2,
                           sabotage="raise"),
            SetAgreementTrialSpec(3, 2, seed=3, stabilization_time=0),
            ChaosTrialSpec(protocol="fig1", n_processes=3, seed=4,
                           sabotage="raise"),
        ]
        serial_q = QuarantineReport()
        serial = run_trials(specs, jobs=1, quarantine=serial_q, backoff=0)
        parallel_q = QuarantineReport()
        parallel = run_trials(specs, jobs=4, quarantine=parallel_q,
                              backoff=0)
        assert [r is None for r in serial] == [False, True, False, True]
        assert [r is None for r in parallel] == [False, True, False, True]
        assert serial == parallel
        assert (
            sorted(e.index for e in serial_q.entries)
            == sorted(e.index for e in parallel_q.entries)
            == [1, 3]
        )


class TestEnvironmentSalt:
    """Cache keys cover semantics a spec only names by reference
    (audit satellite: detector registry + chaos schema salting)."""

    def test_salt_is_stable_and_cached(self):
        from repro.perf.spec import environment_salt

        first = environment_salt()
        assert len(first) == 64
        assert environment_salt() == first

    def test_key_changes_with_environment_salt(self):
        import repro.perf.spec as spec_mod

        spec = SetAgreementTrialSpec(3, 2, seed=0, stabilization_time=0)
        key = spec_key(spec)
        original = spec_mod._ENV_SALT
        try:
            spec_mod._ENV_SALT = "0" * 64  # a rewired registry would differ
            assert spec_key(spec) != key
        finally:
            spec_mod._ENV_SALT = original

    def test_salt_covers_registry_and_chaos_schema(self):
        """The salt digest is a function of the detector registry's
        name→class wiring and the chaos config's field defaults."""
        import dataclasses as dc
        import hashlib
        import json as json_module

        from repro.chaos.config import ChaosConfig
        from repro.detectors.registry import detector_names, make_detector
        from repro.failures.environment import Environment
        from repro.perf.spec import environment_salt
        from repro.runtime.process import System

        env = Environment.wait_free(System(3))
        detectors = []
        for name in detector_names():
            kind = type(make_detector(name, env))
            detectors.append([name, kind.__module__, kind.__qualname__])
        chaos_schema = [[f.name, repr(f.default)]
                        for f in dc.fields(ChaosConfig)]
        blob = json_module.dumps(
            {"detectors": detectors, "chaos": chaos_schema},
            sort_keys=True, separators=(",", ":"),
        )
        expected = hashlib.sha256(blob.encode("utf-8")).hexdigest()
        assert environment_salt() == expected
