"""Counterexample bundles: round-trip, deterministic replay, shrinking."""

import io

import pytest

from repro.mc import (
    Counterexample,
    ExploreConfig,
    McInstance,
    build_simulation,
    explore_instance,
    resolve_instance,
)
from repro.mc.explorer import RawViolation
from repro.runtime.errors import ProtocolError


def _roundtrip(ce: Counterexample) -> Counterexample:
    buffer = io.StringIO()
    ce.save(buffer)
    buffer.seek(0)
    return Counterexample.load(buffer)


def _error_counterexample(instance: McInstance) -> Counterexample:
    """Manufacture an "error"-kind violation: step a crashed process.

    The explorer never schedules crashed pids (``eligible`` filters
    them), so engine-guard errors are produced by an explicit script.
    """
    instance = resolve_instance(instance)
    sim = build_simulation(instance)
    sim.step(1)
    sim.step(1)
    with pytest.raises(ProtocolError) as excinfo:
        sim.step(0)  # pid 0 crashed at t=2
    return Counterexample.from_violation(
        instance,
        RawViolation("error", None, str(excinfo.value), (1, 1, 0), 3),
    )


class TestErrorKindAcrossFamilies:
    """Same step, same ProtocolError reason, for all three paper protocols."""

    @pytest.mark.parametrize("instance", [
        McInstance("fig1", n_processes=2, f=1, crashes=((0, 2),)),
        McInstance("fig2", n_processes=3, f=1, crashes=((0, 2),)),
        McInstance("extraction", n_processes=2, f=1, crashes=((0, 2),)),
    ], ids=["fig1", "fig2", "extraction"])
    def test_roundtrip_replays_identical_violation(self, instance):
        ce = _error_counterexample(instance)
        assert ce.kind == "error"
        assert "crashed at t=2" in ce.reason
        assert ce.verify()
        loaded = _roundtrip(ce)
        assert loaded.to_dict() == ce.to_dict()
        outcome = loaded.replay()
        assert outcome.kind == "error"
        assert outcome.reason == ce.reason  # same ProtocolError message
        assert outcome.step == ce.step      # same failing step
        assert loaded.verify()


class TestPropertyKind:
    def test_explorer_counterexample_roundtrips_and_replays(self):
        result = explore_instance(McInstance("naive-converge", n_processes=2),
                                  ExploreConfig(max_depth=20))
        assert not result.ok
        ce = result.counterexamples[0]
        loaded = _roundtrip(ce)
        assert loaded.to_dict() == ce.to_dict()
        outcome = loaded.replay()
        assert (outcome.kind, outcome.prop, outcome.reason, outcome.step) \
            == (ce.kind, ce.prop, ce.reason, ce.step)
        assert loaded.verify()

    def test_trace_captured_and_roundtripped(self):
        result = explore_instance(McInstance("naive-converge", n_processes=2),
                                  ExploreConfig(max_depth=20))
        ce = result.counterexamples[0]
        assert ce.trace is not None
        loaded = _roundtrip(ce)
        # verify() compares the replayed trace byte-for-byte against the
        # deserialized one — ⊥ responses and frozensets included.
        assert loaded.verify()

    def test_file_roundtrip(self, tmp_path):
        result = explore_instance(McInstance("naive-converge", n_processes=2),
                                  ExploreConfig(max_depth=20))
        path = str(tmp_path / "ce.json")
        result.counterexamples[0].save(path)
        assert Counterexample.load(path).verify()


class TestShrinking:
    def test_padded_property_schedule_shrinks(self):
        instance = resolve_instance(McInstance("naive-converge",
                                               n_processes=2))
        # The minimal violation with padding: p1's first update is dead
        # weight — p0 solo-commits, then p1 re-runs from scratch.
        padded = (1, 0, 0, 0, 1, 1, 1)
        ce = Counterexample.from_schedule(instance, padded)
        shrunk = ce.shrink()
        assert len(shrunk.schedule) < len(padded)
        assert shrunk.prop == ce.prop
        assert shrunk.verify()

    def test_already_minimal_schedule_unchanged(self):
        result = explore_instance(McInstance("naive-converge", n_processes=2),
                                  ExploreConfig(max_depth=20))
        ce = result.counterexamples[0]  # explorer already shrinks
        assert ce.shrink().schedule == ce.schedule

    def test_error_kind_shrink_preserves_reason(self):
        ce = _error_counterexample(
            McInstance("fig1", n_processes=2, f=1, crashes=((0, 2),)))
        shrunk = ce.shrink()
        # The reason names t=2, so both filler steps are load-bearing:
        assert shrunk.schedule == ce.schedule
        assert shrunk.verify()

    def test_clean_schedule_is_not_a_counterexample(self):
        instance = McInstance("converge", n_processes=2)
        with pytest.raises(ValueError, match="replays cleanly"):
            Counterexample.from_schedule(instance, (0, 1, 0, 1))
