"""Smoke tests: every shipped example must run cleanly in-process.

Examples are documentation that executes; if an API change breaks one,
this suite fails rather than a user's first session.
"""

import contextlib
import io
import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = [
    "quickstart.py",
    "f_resilient_agreement.py",
    "extract_upsilon.py",
    "separation_adversary.py",
    "detector_hierarchy.py",
    "inspect_run.py",
    "message_passing.py",
    "topology_views.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, monkeypatch):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    monkeypatch.setattr(sys, "argv", [str(path)])
    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout):
        runpy.run_path(str(path), run_name="__main__")
    output = stdout.getvalue()
    assert output.strip(), f"{script} produced no output"


def test_all_examples_listed():
    """Every example on disk is covered here (and in the README)."""
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXAMPLES)


def test_quickstart_output_shape(monkeypatch):
    path = EXAMPLES_DIR / "quickstart.py"
    monkeypatch.setattr(sys, "argv", [str(path)])
    stdout = io.StringIO()
    with contextlib.redirect_stdout(stdout):
        runpy.run_path(str(path), run_name="__main__")
    output = stdout.getvalue()
    assert "Termination ✓" in output
    assert "distinct decisions:" in output
