"""Cross-module integration tests.

The centrepiece is the paper's full chain, executed end-to-end:

    stable non-trivial D  ──Fig. 3──▶  Υ  ──Fig. 1──▶  n-set agreement

An extraction run's emitted ``Υ-output`` timeline is replayed (via
:class:`~repro.analysis.EmittedHistory`) as the failure-detector history of
a second run executing the Fig. 1 protocol; set agreement must hold.
"""

import random

import pytest

from repro.analysis import ComplementHistory, EmittedHistory
from repro.core import (
    PhiMap,
    make_extraction_protocol,
    make_upsilon_f_set_agreement,
    make_upsilon_set_agreement,
)
from repro.detectors import (
    EventuallyPerfectSpec,
    OmegaKSpec,
    OmegaSpec,
    omega_n,
)
from repro.failures import Environment, FailurePattern
from repro.runtime import RandomScheduler, Simulation, System
from repro.tasks import SetAgreementSpec

from tests.helpers import run_to_decision


def extract_then_agree(system, source_spec, env, seed, f=None,
                       extraction_steps=30_000):
    """Run Fig. 3 over ``source_spec``, replay its output into Fig. 1/2."""
    f = env.f if f is None else f
    rng = random.Random(f"chain:{seed}")
    pattern = env.random_pattern(rng, max_crash_time=40)
    source_history = source_spec.sample_history(
        pattern, rng, stabilization_time=60
    )
    extraction = Simulation(
        system,
        make_extraction_protocol(PhiMap(source_spec, env)),
        inputs={},
        pattern=pattern,
        history=source_history,
    )
    extraction.run(max_steps=extraction_steps, scheduler=RandomScheduler(seed))

    upsilon_history = EmittedHistory(extraction, default=system.pid_set)
    if f == system.n:
        protocol = make_upsilon_set_agreement()
    else:
        protocol = make_upsilon_f_set_agreement(f)
    inputs = {p: f"v{p}" for p in system.pids}
    agreement = run_to_decision(
        system, protocol, inputs, pattern=pattern,
        history=upsilon_history, seed=seed + 1, max_steps=1_000_000,
    )
    SetAgreementSpec(f).check(agreement, inputs).raise_if_failed()
    return agreement


class TestFullChain:
    """Theorem 10 + Theorem 2/6 composed: D ⇒ Υf ⇒ f-set agreement."""

    @pytest.mark.parametrize("seed", range(4))
    def test_omega_to_set_agreement(self, system4, seed):
        env = Environment.wait_free(system4)
        extract_then_agree(system4, OmegaSpec(system4), env, seed)

    @pytest.mark.parametrize("seed", range(3))
    def test_omega_n_to_set_agreement(self, system4, seed):
        env = Environment.wait_free(system4)
        extract_then_agree(system4, omega_n(system4), env, seed + 50)

    def test_diamond_p_to_set_agreement(self, system4):
        env = Environment.wait_free(system4)
        extract_then_agree(system4, EventuallyPerfectSpec(system4), env, 7)

    def test_f_resilient_chain(self, system4):
        """Ωf ⇒ Υf ⇒ f-set agreement in E_f."""
        env = Environment(system4, 2)
        extract_then_agree(system4, OmegaKSpec(system4, 2), env, 3)


class TestCorollary3:
    """Ωn is not the weakest detector for set agreement: Fig. 1 solves it
    directly from Υ — and from Ωn via the complement, but Theorem 1
    (tests/test_adversary.py) rules out the converse direction."""

    def test_set_agreement_via_complemented_omega_n(self, system4):
        rng = random.Random(21)
        pattern = FailurePattern.random(system4, rng, max_crash_time=40)
        omega_history = omega_n(system4).sample_history(
            pattern, rng, stabilization_time=60
        )
        inputs = {p: f"v{p}" for p in system4.pids}
        sim = run_to_decision(
            system4, make_upsilon_set_agreement(), inputs,
            pattern=pattern,
            history=ComplementHistory(system4, omega_history),
            seed=21,
        )
        SetAgreementSpec(system4.n).check(sim, inputs).raise_if_failed()


class TestRegisterOnlyEndToEnd:
    """The paper's 'weakest memory model': the whole Fig. 1 stack on
    register-built snapshots, with crashes and noise, in one run."""

    def test_fig1_register_only(self):
        system = System(3)
        from repro.detectors import UpsilonSpec

        spec = UpsilonSpec(system)
        rng = random.Random(33)
        pattern = FailurePattern.crash_at(system, {0: 60})
        history = spec.sample_history(pattern, rng, stabilization_time=100)
        inputs = {p: f"v{p}" for p in system.pids}
        sim = run_to_decision(
            system, make_upsilon_set_agreement(register_based=True), inputs,
            pattern=pattern, history=history, seed=33, max_steps=2_000_000,
        )
        SetAgreementSpec(system.n).check(sim, inputs).raise_if_failed()
        # Register-only: memory must contain no primitive snapshots.
        from repro.memory import PrimitiveSnapshot

        for key in list(sim.memory._objects):
            assert not isinstance(sim.memory.get(key), PrimitiveSnapshot)


class TestDeterministicReplay:
    """Identical (seed, pattern, history) ⇒ identical runs, bit for bit."""

    def test_fig1_replay(self, system4):
        from repro.detectors import UpsilonSpec

        spec = UpsilonSpec(system4)
        pattern = FailurePattern.crash_at(system4, {1: 30})
        inputs = {p: f"v{p}" for p in system4.pids}

        def one_run():
            history = spec.sample_history(
                pattern, random.Random(5), stabilization_time=80
            )
            sim = run_to_decision(
                system4, make_upsilon_set_agreement(), inputs,
                pattern=pattern, history=history, seed=9,
            )
            return [(s.time, s.pid) for s in sim.trace.steps], sim.decisions()

        assert one_run() == one_run()
