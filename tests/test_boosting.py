"""Tests for the Corollary 4 consensus algorithms (Ω-based and boosted)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    boosted_consensus_memory,
    make_boosted_consensus,
    make_omega_consensus,
)
from repro.detectors import OmegaSpec, StableHistory, omega_n
from repro.failures import FailurePattern
from repro.memory import ConsensusObject
from repro.runtime import MemoryError_, System
from repro.tasks import ConsensusSpec

from tests.helpers import run_to_decision


def check_consensus(sim, inputs):
    ConsensusSpec().check(sim, inputs).raise_if_failed()
    assert len(sim.trace.decided_values()) == 1


class TestOmegaConsensus:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_runs(self, system4, seed):
        spec = OmegaSpec(system4)
        rng = random.Random(seed)
        pattern = FailurePattern.random(system4, rng, max_crash_time=40)
        history = spec.sample_history(pattern, rng, stabilization_time=70)
        inputs = {p: f"v{p}" for p in system4.pids}
        sim = run_to_decision(
            system4, make_omega_consensus(), inputs,
            pattern=pattern, history=history, seed=seed,
        )
        check_consensus(sim, inputs)

    def test_two_processes(self):
        system = System(2)
        pattern = FailurePattern.crash_at(system, {0: 15})
        history = StableHistory(1, stabilization_time=30)
        inputs = {0: "a", 1: "b"}
        sim = run_to_decision(
            system, make_omega_consensus(), inputs,
            pattern=pattern, history=history, seed=2,
        )
        check_consensus(sim, inputs)

    def test_leader_crash_before_stabilization(self, system3):
        """Noise may elect a process that crashes; leader changes free the
        waiting processes."""
        pattern = FailurePattern.crash_at(system3, {0: 10})
        noise = lambda p, t: 0  # everyone trusts the doomed leader first
        history = StableHistory(2, stabilization_time=60, noise=noise)
        inputs = {p: f"v{p}" for p in system3.pids}
        sim = run_to_decision(
            system3, make_omega_consensus(), inputs,
            pattern=pattern, history=history, seed=3,
        )
        check_consensus(sim, inputs)

    def test_register_based(self, system3):
        spec = OmegaSpec(system3)
        pattern = FailurePattern.failure_free(system3)
        history = spec.sample_history(pattern, random.Random(4),
                                      stabilization_time=30)
        inputs = {p: p for p in system3.pids}
        sim = run_to_decision(
            system3, make_omega_consensus(register_based=True), inputs,
            pattern=pattern, history=history, seed=4,
        )
        check_consensus(sim, inputs)


class TestBoostedConsensus:
    def _run(self, system, seed, stabilization=70):
        spec = omega_n(system)
        rng = random.Random(seed)
        pattern = FailurePattern.random(system, rng, max_crash_time=40)
        history = spec.sample_history(pattern, rng,
                                      stabilization_time=stabilization)
        inputs = {p: f"v{p}" for p in system.pids}
        sim = run_to_decision(
            system, make_boosted_consensus(), inputs,
            pattern=pattern, history=history, seed=seed,
            memory=boosted_consensus_memory(system),
        )
        check_consensus(sim, inputs)
        return sim

    @pytest.mark.parametrize("seed", range(6))
    def test_random_runs(self, system4, seed):
        self._run(system4, seed)

    def test_only_n_process_objects_used(self, system4):
        """The run itself certifies the type discipline: every consensus
        object was touched by at most n distinct processes."""
        sim = self._run(system4, seed=11)
        n = system4.n
        used_any = False
        for key in list(sim.memory._objects):
            obj = sim.memory.get(key)
            if isinstance(obj, ConsensusObject):
                used_any = True
                assert obj.m == n
                assert len(obj.accessors) <= n
        assert used_any, "the boosted protocol must use consensus objects"

    def test_type_restriction_is_real(self, system4):
        """Accessing an n-consensus object with n+1 processes raises."""
        memory = boosted_consensus_memory(system4)
        obj = memory.create_consensus("probe", system4.n)
        for pid in range(system4.n):
            obj.propose(pid, pid)
        with pytest.raises(MemoryError_):
            obj.propose(system4.n, "overflow")


@given(
    n_procs=st.integers(2, 5),
    seed=st.integers(0, 50_000),
    stabilization=st.integers(0, 120),
)
@settings(max_examples=25, deadline=None)
def test_boosted_consensus_hypothesis(n_procs, seed, stabilization):
    system = System(n_procs)
    spec = omega_n(system)
    rng = random.Random(seed)
    pattern = FailurePattern.random(system, rng, max_crash_time=40)
    history = spec.sample_history(pattern, rng, stabilization_time=stabilization)
    inputs = {p: f"v{p}" for p in system.pids}
    sim = run_to_decision(
        system, make_boosted_consensus(), inputs,
        pattern=pattern, history=history, seed=seed,
        memory=boosted_consensus_memory(system), max_steps=1_000_000,
    )
    ConsensusSpec().check(sim, inputs).raise_if_failed()
