"""Regression tests for bugs found by the differential audit fuzzer.

Each class pins one shrunken counterexample the audit surfaced, so the
underlying bug stays fixed.  Found with::

    python -m repro audit --budget 2000 --seed 7

Bug 1 (replay oracle): ``Simulation.run_script`` never applied due
crashes.  ``Simulation.run`` applies the failure pattern through
``eligible()`` on every iteration, so a crashed bystander's runtime is
marked ``CRASHED`` during a scheduled run — but a ``run_script`` replay
of the recorded schedule left the same runtime ``RUNNING`` forever.
Traces matched, yet ``repro.mc.fingerprint`` (which hashes runtime
status) disagreed, so live runs and replayed counterexamples of any
crashy instance had different state fingerprints.  The audit shrank the
failure to a single step: ``fig1`` with ``p2`` crashed at t=0 and the
one-step schedule ``[0]``.

Bug 2 (substrate oracle, auditor-side): the cross-substrate contract
comparison demanded equality of ``distinct_picked`` and
``all_committed`` — but those are *observations of one interleaving*,
not invariants.  A native-register run and the ABD emulation of the
same converge instance necessarily interleave differently, and with
k=2 both one and two distinct picks are legal (C-Agreement only bounds
distinct picks when some process commits).  Seed 7 case 58 (n=5, k=2,
failure-free) picked 2 distinct values over shared memory and 1 over
ABD — a false positive.  The oracle now compares only the
schedule-independent projection (``decided`` and ``clean``).
"""

import pytest

from repro.audit import run_case
from repro.audit.diff import replay_disagrees, shrink_replay_schedule
from repro.mc.fingerprint import canonical_state, fingerprint
from repro.mc.instances import McInstance, build_simulation, resolve_instance
from repro.runtime.scheduler import ScriptedScheduler
from repro.runtime.simulation import Simulation


def _buggy_run_script(self, script):
    # Pre-fix behaviour: bare steps, no crash application.
    for pid in script:
        self.step(pid)


class TestRunScriptAppliesCrashes:
    """The shrunken counterexample: one step, one crashed bystander."""

    INSTANCE = McInstance(
        "fig1", n_processes=3, crashes=((2, 0),),
        stable_value=frozenset({0}),
    )

    def test_replay_marks_crashed_bystander(self):
        sim = build_simulation(self.INSTANCE)
        sim.run_script([0])
        assert canonical_state(sim)["p"]["2"]["st"] == "CRASHED"

    def test_live_and_replay_fingerprints_agree(self):
        live = build_simulation(self.INSTANCE)
        live.run(max_steps=1, scheduler=ScriptedScheduler([0]))
        replayed = build_simulation(self.INSTANCE)
        replayed.run_script([0])
        assert fingerprint(live) == fingerprint(replayed)

    def test_trailing_due_crash_is_applied(self):
        # p2 crashes at t=2; a two-step script ends exactly at t=2 —
        # the crash is due but no further step observes it.
        instance = McInstance(
            "fig1", n_processes=3, crashes=((2, 2),),
            stable_value=frozenset({0}),
        )
        sim = build_simulation(instance)
        sim.run_script([0, 1])
        assert canonical_state(sim)["p"]["2"]["st"] == "CRASHED"

    def test_predicate_reproduces_on_buggy_engine(self, monkeypatch):
        monkeypatch.setattr(Simulation, "run_script", _buggy_run_script)
        sim = build_simulation(self.INSTANCE)
        sim.step(0)
        sim.audit_instance = self.INSTANCE
        assert replay_disagrees(sim)

    def test_shrinker_minimizes_on_buggy_engine(self, monkeypatch):
        monkeypatch.setattr(Simulation, "run_script", _buggy_run_script)
        shrunk = shrink_replay_schedule(self.INSTANCE.to_dict(), [0, 0, 1, 0])
        assert shrunk == [0]


class TestOriginalFuzzCases:
    """The two audit cases (seed 7) that first exposed the bug."""

    @pytest.mark.parametrize("case", [7, 11])
    def test_replay_oracle_clean(self, case):
        outcome = run_case("replay", case, 7)
        assert outcome.ok, [d.describe() for d in outcome.divergences]


class TestSubstrateContractProjection:
    """Bug 2: the substrate oracle must not compare schedule-dependent
    observations across substrates."""

    def test_seed7_case58_is_not_a_divergence(self):
        # The original false positive: distinct_picked 2 (shared) vs 1
        # (ABD) on a failure-free n=5 k=2 instance — both legal.
        outcome = run_case("substrate", 58, 7)
        assert outcome.ok, [d.describe() for d in outcome.divergences]

    def test_invariant_projection_is_what_gets_compared(self):
        from repro.audit.oracles import _CONTRACT_INVARIANTS

        assert "distinct_picked" not in _CONTRACT_INVARIANTS
        assert "all_committed" not in _CONTRACT_INVARIANTS
        assert set(_CONTRACT_INVARIANTS) == {"decided", "clean"}

    def test_real_contract_breaks_still_surface(self):
        # The abd-ack sabotage breaks C-Validity — a genuine invariant —
        # and must keep tripping the weakened comparison.
        outcome = run_case("substrate", 0, 7, sabotage="abd-ack")
        assert not outcome.ok
        assert any(d.kind == "contract" for d in outcome.divergences)

    @pytest.mark.parametrize(
        "crashes", [((2, 0),), ((2, 5),)]
    )
    def test_crashy_fig1_replays_faithfully(self, crashes):
        from repro.runtime.scheduler import RandomScheduler

        instance = resolve_instance(
            McInstance("fig1", n_processes=3, crashes=crashes)
        )
        live = build_simulation(instance)
        live.run(max_steps=200, scheduler=RandomScheduler(468686))
        schedule = [step.pid for step in live.trace.steps]
        replayed = build_simulation(instance)
        replayed.run_script(schedule)
        assert fingerprint(live) == fingerprint(replayed)
