"""Tests for the observability layer: event bus, metrics, profiler, exporters.

The load-bearing property throughout: everything the collector reports
from the event stream must agree with what the trace says after the fact —
the bus is a live view of the same run, not a second source of truth.
"""

import io
import json
import random

import pytest

from repro import cli
from repro.detectors import ConstantHistory, UpsilonSpec
from repro.failures import FailurePattern
from repro.obs import (
    EventBus,
    JsonlEventSink,
    MetricsCollector,
    MetricsRegistry,
    RunProfiler,
    RunReport,
    profile_engine,
)
from repro.obs.events import (
    Decided,
    EmitChanged,
    FDQueried,
    MemoryOp,
    MessageDelivered,
    MessageSent,
    ProcessCrashed,
    SchedulerDecision,
    StepTaken,
    combined,
)
from repro.obs.export import event_to_dict, load_events
from repro.core import make_upsilon_set_agreement
from repro.runtime import (
    Decide,
    Emit,
    Nop,
    ObservedScheduler,
    QueryFD,
    RandomScheduler,
    Read,
    RoundRobinScheduler,
    Simulation,
    System,
    Write,
)


def _fig1_sim(n=3, seed=5, crash=None, bus=None):
    system = System(n)
    spec = UpsilonSpec(system)
    rng = random.Random(seed)
    pattern = (
        FailurePattern.crash_at(system, crash)
        if crash else FailurePattern.failure_free(system)
    )
    history = spec.sample_history(pattern, rng, stabilization_time=40)
    return Simulation(
        system, make_upsilon_set_agreement(),
        inputs={p: f"v{p}" for p in system.pids},
        pattern=pattern, history=history, bus=bus,
    )


class TestEventBus:
    def test_idle_bus_is_inactive(self):
        bus = EventBus()
        assert not bus.active
        assert bus.subscriber_count() == 0

    def test_typed_subscription_filters(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, kinds=[Decided])
        bus.publish(Decided(3, 0, "v"))
        bus.publish(FDQueried(4, 1, "d"))
        assert seen == [Decided(3, 0, "v")]

    def test_catch_all_sees_everything(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        bus.publish(Decided(3, 0, "v"))
        bus.publish(FDQueried(4, 1, "d"))
        assert len(seen) == 2

    def test_typed_then_catch_all_order(self):
        bus = EventBus()
        order = []
        bus.subscribe(lambda e: order.append("typed"), kinds=[Decided])
        bus.subscribe(lambda e: order.append("all"))
        bus.publish(Decided(0, 0, "v"))
        assert order == ["typed", "all"]

    def test_unsubscribe_restores_fast_path(self):
        bus = EventBus()
        handler = bus.subscribe(lambda e: None, kinds=[Decided, FDQueried])
        assert bus.active
        bus.unsubscribe(handler)
        assert not bus.active
        assert bus.subscriber_count() == 0

    def test_combined_fans_out(self):
        a, b = [], []
        handler = combined(a.append, b.append)
        handler(Decided(0, 0, "v"))
        assert a == b == [Decided(0, 0, "v")]


class TestMetricsPrimitives:
    def test_counter_labels_and_total(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops")
        counter.inc("read")
        counter.inc("read", amount=2)
        counter.inc("write")
        assert counter.value("read") == 3
        assert counter.total() == 4
        assert counter.value("missing") == 0

    def test_gauge(self):
        gauge = MetricsRegistry().gauge("t")
        assert gauge.value() is None
        gauge.set(17.0)
        gauge.set(9.0, label=2)
        assert gauge.value() == 17.0
        assert gauge.value(2) == 9.0

    def test_histogram_summary(self):
        hist = MetricsRegistry().histogram("lat")
        for v in (1, 2, 3, 4):
            hist.observe(v)
        summary = hist.summary()
        assert summary.count == 4
        assert summary.mean == 2.5

    def test_registry_reuses_and_rejects_type_conflicts(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_snapshot_is_json(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(("tuple", 1))
        registry.gauge("g").set(2.5)
        registry.histogram("h").observe(4)
        registry.histogram("empty")
        body = json.loads(registry.to_json())
        assert body["counters"]["c"] == {"('tuple', 1)": 1}
        assert body["gauges"]["g"] == {"": 2.5}
        assert body["histograms"]["h"]["count"] == 1
        assert body["histograms"]["empty"] == {"count": 0}

    def test_render_has_totals_row(self):
        registry = MetricsRegistry()
        registry.counter("steps").inc(0, amount=5)
        text = registry.render()
        assert "steps" in text
        assert "(total)" in text
        assert MetricsRegistry().render() == "(no metrics recorded)"

    def test_collector_construction_paths_are_equivalent(self):
        """The fresh-registry fast path of ``MetricsCollector.__init__``
        must register exactly what the checked shared-registry path does
        (``_METRIC_SPECS`` is kept in sync with it by hand)."""
        fast = MetricsCollector()
        slow = MetricsCollector(registry=MetricsRegistry())
        assert fast.snapshot() == slow.snapshot()
        assert (fast.registry._metrics.keys()
                == slow.registry._metrics.keys())
        for name, metric in fast.registry._metrics.items():
            other = slow.registry.get(name)
            assert type(metric) is type(other)
            assert metric.help == other.help
        assert (fast.bus.subscriber_count()
                == slow.bus.subscriber_count())


class TestCollectorAgainstTrace:
    """The collector's live quantities must match the trace's post-hoc ones."""

    def _run(self, crash=None):
        collector = MetricsCollector()
        sim = _fig1_sim(crash=crash, bus=collector.bus)
        sim.run_until(Simulation.all_correct_decided, 200_000,
                      RandomScheduler(11))
        return collector, sim

    def test_step_and_fd_counts(self):
        collector, sim = self._run()
        steps = collector.registry.get("steps_total")
        assert steps.total() == len(sim.trace)
        for pid, count in sim.trace.step_counts().items():
            assert steps.value(pid) == count
        assert (collector.registry.get("fd_queries").total()
                == len(sim.trace.fd_queries()))

    def test_decisions_and_times(self):
        collector, sim = self._run()
        decision_time = collector.registry.get("decision_time")
        assert decision_time.items() == sim.trace.decision_times()
        assert (collector.registry.get("decisions").total()
                == len(sim.trace.decisions()))

    def test_emit_semantics_match_trace(self):
        collector, sim = self._run()
        for pid in sim.trace.participants():
            expected = sim.trace.emit_change_count(pid)
            assert collector.emit_churn().get(pid, 0) == expected
            stab = sim.trace.emit_stabilization_time(pid)
            if stab is not None:
                assert collector.stabilization_times()[pid] == stab

    def test_crashes_counted(self):
        collector, sim = self._run(crash={0: 15})
        assert collector.registry.get("crashes").value(0) == 1
        snapshot = collector.snapshot()
        assert snapshot["counters"]["crashes"] == {"0": 1}

    def test_render_smoke(self):
        collector, _ = self._run()
        text = collector.render()
        assert "steps_total" in text
        assert "fd_queries" in text


class TestMemoryAndNetworkEvents:
    def test_memory_op_kinds(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, kinds=[MemoryOp])
        system = System(2)

        def proto(ctx, _):
            yield Write(("R", ctx.pid), 1)
            yield Read(("R", ctx.pid))
            yield Nop()

        sim = Simulation(system, proto,
                         inputs={p: None for p in system.pids}, bus=bus)
        sim.run(max_steps=10, scheduler=RoundRobinScheduler())
        kinds = [e.kind for e in seen if e.pid == 0]
        assert kinds == ["Write", "Read"]
        assert seen[0].key == ("R", 0)

    def test_network_send_deliver_latency(self):
        from repro.messaging import Network

        bus = EventBus()
        sent, delivered = [], []
        bus.subscribe(sent.append, kinds=[MessageSent])
        bus.subscribe(delivered.append, kinds=[MessageDelivered])
        network = Network(System(2), max_delay=0)
        network.bus = bus
        network.send(0, 1, "hello", now=3)
        network.deliver(1, now=7)
        assert sent[0].sender == 0 and sent[0].dest == 1
        assert delivered[0].latency == 7 - 3

    def test_scheduler_decisions_published(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, kinds=[SchedulerDecision])
        sim = _fig1_sim(bus=bus)
        scheduler = ObservedScheduler(RoundRobinScheduler(), bus)
        sim.run(max_steps=6, scheduler=scheduler)
        assert len(seen) == 6
        assert all(e.eligible_count == 3 for e in seen)

    def test_crash_event_published_once(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, kinds=[ProcessCrashed])
        sim = _fig1_sim(crash={0: 4}, bus=bus)
        sim.run(max_steps=40, scheduler=RoundRobinScheduler())
        assert [e.pid for e in seen] == [0]


class TestExport:
    def test_event_to_dict_inlines_ops(self):
        body = event_to_dict(StepTaken(7, 1, Write("R", frozenset({2})), None))
        assert body["event"] == "StepTaken"
        assert body["op"]["op"] == "write"
        json.dumps(body)  # JSON-safe as-is

    def test_sink_streams_and_unsubscribes(self):
        bus = EventBus()
        buffer = io.StringIO()
        with JsonlEventSink(buffer, bus=bus, kinds=[Decided]) as sink:
            bus.publish(Decided(3, 0, "v"))
            bus.publish(FDQueried(3, 0, "d"))  # filtered out
            assert sink.lines == 1
        assert not bus.active  # close() detached the sink
        buffer.seek(0)
        events = load_events(buffer)
        assert events == [{"event": "Decided", "time": 3, "pid": 0,
                           "value": "v"}]

    def test_sink_on_full_run(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        bus = EventBus()
        sink = JsonlEventSink(path, bus=bus)
        sim = _fig1_sim(bus=bus)
        sim.run_until(Simulation.all_correct_decided, 200_000,
                      RandomScheduler(2))
        sink.close()
        events = load_events(path)
        assert sink.lines == len(events)
        steps = [e for e in events if e["event"] == "StepTaken"]
        assert len(steps) == len(sim.trace)
        decided = [e for e in events if e["event"] == "Decided"]
        assert {e["pid"]: e["value"] for e in decided} == sim.decisions()

    def test_run_report_roundtrip(self, tmp_path):
        collector = MetricsCollector()
        sim = _fig1_sim(bus=collector.bus)
        profiler = RunProfiler()
        with profiler.phase("whole run", sim):
            sim.run_until(Simulation.all_correct_decided, 200_000,
                          RandomScheduler(3))
        report = RunReport.of(sim, collector.registry, profiler, seed=3)
        path = str(tmp_path / "report.json")
        report.write(path)
        loaded = RunReport.load(path)
        assert loaded.meta["seed"] == 3
        assert loaded.meta["total_steps"] == sim.time
        assert loaded.metrics == collector.snapshot()
        assert loaded.profile[0]["steps"] == sim.time
        assert loaded.trace.decisions() == sim.trace.decisions()


class TestRunProfiler:
    def test_phases_aggregate_by_name(self):
        profiler = RunProfiler()
        with profiler.phase("a"):
            pass
        with profiler.phase("a"):
            pass
        with profiler.phase("b"):
            pass
        totals = profiler.totals()
        assert list(totals) == ["a", "b"]
        assert len(profiler.records) == 3

    def test_phase_counts_sim_steps(self):
        sim = _fig1_sim()
        profiler = RunProfiler()
        with profiler.phase("first steps", sim):
            sim.run(max_steps=5, scheduler=RoundRobinScheduler())
        assert profiler.records[0].steps == 5
        assert profiler.records[0].wall_seconds >= 0
        assert "first steps" in profiler.render()

    def test_render_empty(self):
        assert RunProfiler().render() == "(no phases recorded)"


class TestProfileEngine:
    def test_smoke(self):
        profile = profile_engine(n_processes=2, repeats=1, max_steps=600)
        assert profile.total_steps == 600
        assert profile.baseline_sps > 0
        assert profile.idle_bus_sps > 0
        assert profile.metrics_sps > 0
        body = profile.to_dict()
        json.dumps(body)
        assert "overhead" in profile.render()


class TestCli:
    def test_stats_fig1(self, capsys):
        assert cli.main(["stats", "fig1", "--processes", "4",
                         "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "steps_total" in out
        assert "OK" in out

    def test_stats_extract_with_events(self, tmp_path, capsys):
        path = str(tmp_path / "run.jsonl")
        assert cli.main(["stats", "extract", "--detector", "omega",
                         "--processes", "3", "--events", path]) == 0
        events = load_events(path)
        assert events, "event stream must not be empty"
        assert capsys.readouterr().out

    def test_stats_json(self, capsys):
        assert cli.main(["stats", "fig1", "--processes", "3",
                         "--json"]) == 0
        body = json.loads(capsys.readouterr().out)
        assert "counters" in body["metrics"]

    def test_profile_json(self, capsys):
        assert cli.main(["profile", "--processes", "2", "--repeats", "1",
                         "--max-steps", "600", "--json"]) == 0
        body = json.loads(capsys.readouterr().out)
        assert body["total_steps"] == 600
