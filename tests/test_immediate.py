"""Tests for one-shot immediate snapshots (Borowsky–Gafni [2]).

Verifies self-inclusion, containment and immediacy for both
implementations under random schedules, shows why plain
update-then-scan is NOT immediate, and checks the SWMR discipline.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import (
    ImmediateSnapshotObject,
    check_immediacy,
    make_immediate_api,
    make_snapshot_api,
)
from repro.runtime import (
    BOT,
    Decide,
    MemoryError_,
    RandomScheduler,
    Simulation,
    System,
)


def _is_protocol(register_based):
    def protocol(ctx, value):
        api = make_immediate_api("obj", ctx.system.n_processes,
                                 register_based)
        view = yield from api.write_and_scan(ctx.pid, value)
        yield Decide(view)

    return protocol


def run_immediate(n_procs, seed, register_based):
    system = System(n_procs)
    sim = Simulation(
        system, _is_protocol(register_based),
        inputs={p: f"v{p}" for p in system.pids},
    )
    sim.run_until(Simulation.all_correct_decided, 100_000,
                  RandomScheduler(seed))
    return sim.decisions()


class TestPrimitiveObject:
    def test_view_includes_self_and_earlier(self):
        obj = ImmediateSnapshotObject(3)
        assert obj.write_and_scan(1, "b") == (BOT, "b", BOT)
        assert obj.write_and_scan(0, "a") == ("a", "b", BOT)

    def test_one_shot_enforced(self):
        obj = ImmediateSnapshotObject(2)
        obj.write_and_scan(0, "a")
        with pytest.raises(MemoryError_, match="twice"):
            obj.write_and_scan(0, "b")

    def test_index_range(self):
        with pytest.raises(MemoryError_):
            ImmediateSnapshotObject(2).write_and_scan(2, "x")


@pytest.mark.parametrize("register_based", [False, True])
@pytest.mark.parametrize("seed", range(8))
def test_immediacy_properties_random_schedules(register_based, seed):
    views = run_immediate(4, seed, register_based)
    assert check_immediacy(views) == []


@given(
    n_procs=st.integers(2, 5),
    seed=st.integers(0, 100_000),
)
@settings(max_examples=40, deadline=None)
def test_immediacy_properties_hypothesis(n_procs, seed):
    views = run_immediate(n_procs, seed, register_based=True)
    assert check_immediacy(views) == []
    # Self-inclusion, explicitly:
    for pid, view in views.items():
        assert view[pid] == f"v{pid}"


class TestNaiveUpdateScanIsNotImmediate:
    """The counterexample from the module docstring: update-then-scan on a
    plain atomic snapshot violates immediacy under a specific schedule."""

    def test_counterexample_schedule(self):
        system = System(3)

        def protocol(ctx, value):
            api = make_snapshot_api("obj", system.n_processes, False)
            yield from api.update(ctx.pid, value)
            view = yield from api.scan()
            yield Decide(view)

        sim = Simulation(system, protocol,
                         inputs={p: f"v{p}" for p in system.pids})
        # p0 updates; p1 updates, scans ({p0,p1}) and decides; p2 updates;
        # p0 scans ({p0,p1,p2}) and decides; p2 finishes.
        # p0 ∈ view(p1) but view(p0) ⊋ view(p1): immediacy violated.
        sim.run_script([0, 1, 1, 1, 2, 0, 0, 2, 2])
        views = {pid: r.decision for pid, r in sim.runtimes.items()
                 if r.has_decided}
        problems = check_immediacy(views)
        assert any(p.startswith("immediacy") for p in problems)


class TestCheckImmediacy:
    def test_detects_missing_self(self):
        problems = check_immediacy({0: (BOT, "x", BOT)})
        assert problems == ["self-inclusion: p0 missing from own view"]

    def test_detects_incomparable_views(self):
        problems = check_immediacy({
            0: ("a", BOT),
            1: (BOT, "b"),
        })
        assert any(p.startswith("containment") for p in problems)

    def test_accepts_block_views(self):
        """Two processes in one linearization block: identical views."""
        problems = check_immediacy({
            0: ("a", "b", BOT),
            1: ("a", "b", BOT),
        })
        assert problems == []


class TestLevelAlgorithmShape:
    def test_solo_run_gets_singleton_view(self):
        system = System(4)
        sim = Simulation(system, {2: _is_protocol(True)}, inputs={2: "mine"})
        while not sim.runtimes[2].has_decided:
            sim.step(2)
        view = sim.runtimes[2].decision
        assert view == (BOT, BOT, "mine", BOT)

    def test_lockstep_run_gets_full_views(self):
        """Under lockstep all processes descend together and return at the
        bottom levels with large, nested views."""
        from repro.runtime import RoundRobinScheduler

        system = System(3)
        sim = Simulation(system, _is_protocol(True),
                         inputs={p: f"v{p}" for p in system.pids})
        sim.run_until(Simulation.all_correct_decided, 10_000,
                      RoundRobinScheduler())
        views = {pid: r.decision for pid, r in sim.runtimes.items()}
        assert check_immediacy(views) == []
        largest = max(
            sum(1 for v in view if v is not BOT) for view in views.values()
        )
        assert largest == 3
