"""Tests for trace recording and its analysis queries."""

from repro.runtime import Decide, Emit, Nop, QueryFD, Simulation, System
from repro.runtime.trace import OutputRecord, StepRecord, Trace
from repro.detectors import ConstantHistory


def _trace_with(records):
    trace = Trace()
    for r in records:
        trace.record(r)
    return trace


class TestTraceRecording:
    def test_decide_becomes_output(self):
        trace = _trace_with([StepRecord(0, 1, Decide("v"), None)])
        assert trace.outputs == [OutputRecord(0, 1, "v", "decide")]
        assert trace.decisions() == {1: "v"}

    def test_emit_becomes_output(self):
        trace = _trace_with([StepRecord(3, 0, Emit("u"), None)])
        assert trace.outputs == [OutputRecord(3, 0, "u", "emit")]
        assert trace.decisions() == {}

    def test_nop_not_output(self):
        trace = _trace_with([StepRecord(0, 0, Nop(), None)])
        assert trace.outputs == []
        assert len(trace) == 1


class TestEmitAnalysis:
    def _emits(self, values_times, pid=0):
        return _trace_with(
            [StepRecord(t, pid, Emit(v), None) for t, v in values_times]
        )

    def test_final_emit(self):
        trace = self._emits([(0, "a"), (5, "b")])
        assert trace.final_emit(0) == "b"
        assert trace.final_emit(1) is None

    def test_stabilization_time_is_last_change(self):
        trace = self._emits([(0, "a"), (5, "b"), (9, "b"), (12, "b")])
        assert trace.emit_stabilization_time(0) == 5

    def test_stabilization_time_constant(self):
        trace = self._emits([(0, "a"), (8, "a")])
        assert trace.emit_stabilization_time(0) == 0

    def test_stabilization_time_no_emits(self):
        assert Trace().emit_stabilization_time(0) is None

    def test_change_count(self):
        trace = self._emits([(0, "a"), (1, "b"), (2, "b"), (3, "a")])
        assert trace.emit_change_count(0) == 2
        assert Trace().emit_change_count(0) == 0

    def test_emits_filtered_by_pid(self):
        trace = _trace_with([
            StepRecord(0, 0, Emit("x"), None),
            StepRecord(1, 1, Emit("y"), None),
        ])
        assert [r.value for r in trace.emits(0)] == ["x"]


class TestStepQueries:
    def test_steps_of_and_counts(self):
        trace = _trace_with([
            StepRecord(0, 0, Nop(), None),
            StepRecord(1, 1, Nop(), None),
            StepRecord(2, 0, Nop(), None),
        ])
        assert len(trace.steps_of(0)) == 2
        assert trace.step_counts()[0] == 2
        assert trace.participants() == frozenset({0, 1})

    def test_fd_queries(self):
        trace = _trace_with([
            StepRecord(0, 0, QueryFD(), "d"),
            StepRecord(1, 1, Nop(), None),
            StepRecord(2, 1, QueryFD(), "e"),
        ])
        assert len(trace.fd_queries()) == 2
        assert len(trace.fd_queries(1)) == 1
        assert trace.fd_queries(1)[0].response == "e"

    def test_decision_times(self):
        trace = _trace_with([
            StepRecord(4, 0, Decide("v"), None),
            StepRecord(9, 2, Decide("w"), None),
        ])
        assert trace.decision_times() == {0: 4, 2: 9}
        assert trace.decided_values() == {"v", "w"}


class TestEndToEndTrace:
    def test_simulation_populates_trace(self):
        system = System(2)

        def proto(ctx, _):
            value = yield QueryFD()
            yield Emit(value)
            yield Decide(value)

        sim = Simulation(
            system, proto, inputs={p: None for p in system.pids},
            history=ConstantHistory("d"),
        )
        sim.run_until(Simulation.all_correct_decided, 100)
        assert len(sim.trace) == 6
        assert sim.trace.decided_values() == {"d"}
        assert sim.trace.final_emit(0) == "d"
        assert sim.trace.io_sequence() == sim.trace.outputs


class TestDoubleDecideTrace:
    """decisions() and decision_times() must agree on which decide wins.

    The simulation rejects a second Decide, but hand-built or deserialized
    traces may contain one — both queries keep the FIRST decide per pid.
    """

    def _double(self):
        return _trace_with([
            StepRecord(2, 0, Decide("first"), None),
            StepRecord(5, 1, Decide("other"), None),
            StepRecord(8, 0, Decide("second"), None),
        ])

    def test_first_decide_wins(self):
        trace = self._double()
        assert trace.decisions() == {0: "first", 1: "other"}
        assert trace.decision_times() == {0: 2, 1: 5}

    def test_decisions_and_times_share_keys(self):
        trace = self._double()
        assert trace.decisions().keys() == trace.decision_times().keys()

    def test_decided_values_ignore_second_decide(self):
        assert self._double().decided_values() == {"first", "other"}
