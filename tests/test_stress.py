"""Tests for the stress-campaign fuzzer and the schedule minimizer.

The acid test: the campaign must find the planted bugs in the ablated
protocols and stay silent on the real ones.
"""

import pytest

from repro.analysis.stress import (
    CampaignConfig,
    minimize_schedule,
    run_campaign,
)
from repro.core import make_upsilon_f_set_agreement, make_upsilon_set_agreement
from repro.core.ablations import (
    NaiveConvergeInstance,
    make_gladiators_only_set_agreement,
)
from repro.detectors import UpsilonFSpec, UpsilonSpec
from repro.runtime import Decide, Simulation, System
from repro.tasks import SetAgreementSpec


def _real_protocol(system, f):
    if f == system.n:
        return make_upsilon_set_agreement()
    return make_upsilon_f_set_agreement(f)


def _detector(system, env):
    return UpsilonFSpec(env) if env.f < system.n else UpsilonSpec(system)


def _task(system, f):
    return SetAgreementSpec(f)


class TestCampaignOnRealProtocols:
    def test_clean_campaign(self):
        report = run_campaign(
            _real_protocol, _task, _detector, trials=25, seed=1,
        )
        assert report.ok, "\n".join(str(f) for f in report.failures)
        assert report.trials == 25
        assert "clean" in report.summary()

    def test_wait_free_only_campaign(self):
        report = run_campaign(
            _real_protocol, _task, _detector, trials=15, seed=2,
            wait_free_only=True, system_sizes=(3, 4),
        )
        assert report.ok, "\n".join(str(f) for f in report.failures)


class TestCampaignFindsPlantedBugs:
    def test_liveness_bug_found(self):
        """The citizen-less Fig. 1 must be caught as non-terminating."""
        report = run_campaign(
            lambda system, f: make_gladiators_only_set_agreement(),
            _task, _detector, trials=20, seed=3,
            wait_free_only=True, system_sizes=(3,), max_steps=60_000,
        )
        assert not report.ok
        assert any(f.kind == "no-termination" for f in report.failures)
        # Every failure carries a replayable configuration.
        for failure in report.failures:
            assert "seed=" in failure.config.describe()

    def test_safety_bug_found(self):
        """A protocol deciding straight from the unsound single-phase
        converge must be caught violating Agreement."""

        def broken_protocol(system, f):
            def protocol(ctx, value):
                instance = NaiveConvergeInstance(
                    "c", 1, ctx.system.n_processes)
                picked, _committed = yield from instance.converge(ctx, value)
                yield Decide(picked)

            return protocol

        report = run_campaign(
            broken_protocol,
            lambda system, f: SetAgreementSpec(1),
            _detector, trials=40, seed=4,
            wait_free_only=True, system_sizes=(3, 4), max_steps=50_000,
        )
        assert not report.ok
        assert any(
            f.kind == "violation" and "Agreement" in f.detail
            for f in report.failures
        )


class TestCampaignConfig:
    def test_describe(self):
        config = CampaignConfig(3, 4, 2, 99, 100, "random", ((1, 5),))
        text = config.describe()
        assert "n+1=4" in text and "p1@5" in text and "seed=99" in text

    def test_unknown_scheduler_kind(self):
        from repro.analysis.stress import _make_scheduler

        with pytest.raises(ValueError):
            _make_scheduler("quantum", 0, 3)


class TestMinimizer:
    def _converge_setup(self):
        """The ablation counterexample: minimize the 9-step schedule that
        breaks NaiveConverge's C-Agreement."""
        system = System(3)

        def protocol(ctx, value):
            instance = NaiveConvergeInstance("m", 1, system.n_processes)
            result = yield from instance.converge(ctx, value)
            yield Decide(result)

        def make_sim():
            return Simulation(system, protocol,
                              inputs={p: f"v{p}" for p in system.pids})

        def failed(sim):
            decisions = sim.decisions()
            if len(decisions) < 3:
                return False
            picks = {p for (p, _) in decisions.values()}
            commits = [c for (_, c) in decisions.values()]
            return any(commits) and len(picks) > 1

        return make_sim, failed

    def test_minimizes_padded_schedule(self):
        make_sim, failed = self._converge_setup()
        # A deliberately padded version of the counterexample: the
        # trailing steps after each decide are dead weight the minimizer
        # must not need, but here we pad by interleaving extra suffix
        # steps of an equivalent longer run.
        base = [0, 0, 0, 1, 2, 1, 2, 1, 2]
        minimal = minimize_schedule(make_sim, base, failed)
        assert failed_schedule_ok(make_sim, minimal, failed)
        assert len(minimal) <= len(base)
        # 3 steps for p0 and 3 each for the others is already tight:
        assert len(minimal) == 9

    def test_rejects_non_failing_schedule(self):
        make_sim, failed = self._converge_setup()
        with pytest.raises(ValueError, match="does not reproduce"):
            minimize_schedule(make_sim, [0, 1, 2], failed)

    def test_minimizer_shrinks_redundancy(self):
        """A trivially-paddable failure: 'p0 ever takes a step'."""
        system = System(2)

        def protocol(ctx, value):
            while True:
                from repro.runtime import Nop

                yield Nop()

        def make_sim():
            return Simulation(system, protocol,
                              inputs={p: None for p in system.pids})

        def p0_stepped(sim):
            return sim.trace.step_counts().get(0, 0) >= 1

        minimal = minimize_schedule(
            make_sim, [1, 1, 0, 1, 0, 0, 1], p0_stepped
        )
        assert minimal == [0]


def failed_schedule_ok(make_sim, schedule, predicate) -> bool:
    sim = make_sim()
    for pid in schedule:
        sim.step(pid)
    return predicate(sim)


class TestMinimizerEdgeCases:
    """The documented invariants of :func:`minimize_schedule`."""

    def _nop_setup(self):
        system = System(2)

        def protocol(ctx, value):
            from repro.runtime import Nop

            while True:
                yield Nop()

        def make_sim():
            return Simulation(system, protocol,
                              inputs={p: None for p in system.pids})

        return make_sim

    def test_empty_schedule_reproducing(self):
        make_sim = self._nop_setup()
        assert minimize_schedule(make_sim, [], lambda sim: True) == []

    def test_empty_schedule_not_reproducing(self):
        make_sim = self._nop_setup()
        with pytest.raises(ValueError, match="does not reproduce"):
            minimize_schedule(make_sim, [], lambda sim: False)

    def test_single_step_schedule(self):
        make_sim = self._nop_setup()

        def p0_stepped(sim):
            return sim.trace.step_counts().get(0, 0) >= 1

        assert minimize_schedule(make_sim, [0], p0_stepped) == [0]

    def test_already_minimal_schedule_unchanged(self):
        make_sim = self._nop_setup()

        def both_stepped(sim):
            counts = sim.trace.step_counts()
            return counts.get(0, 0) >= 1 and counts.get(1, 0) >= 1

        assert minimize_schedule(make_sim, [1, 0], both_stepped) == [1, 0]

    def test_throwing_predicate_counts_as_not_reproducing(self):
        """A predicate raising on shorter candidates must not leak out."""
        make_sim = self._nop_setup()

        def third_step_by_p0(sim):
            return sim.trace.steps[2].pid == 0  # IndexError when < 3 steps

        minimal = minimize_schedule(
            make_sim, [1, 1, 0, 1, 0, 0, 1], third_step_by_p0
        )
        # 1-minimal: exactly three steps survive, the third by p0.
        assert len(minimal) == 3 and minimal[2] == 0
