"""Tests for f-resilient samples and the constructive ϕD maps (Sect. 6.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    PhiMap,
    ShiftedPhiMap,
    TrivialDetectorError,
    assert_valid_phi_entry,
    canonical_pattern,
    is_forever_sample,
)
from repro.detectors import (
    DummySpec,
    EventuallyPerfectSpec,
    OmegaKSpec,
    OmegaSpec,
    UpsilonFSpec,
    UpsilonSpec,
    omega_n,
)
from repro.failures import Environment
from repro.runtime import System


class TestIsForeverSample:
    def test_omega_sample_iff_leader_correct(self, system3):
        env = Environment.wait_free(system3)
        spec = OmegaSpec(system3)
        assert is_forever_sample(spec, env, 0, frozenset({0, 1}))
        assert not is_forever_sample(spec, env, 0, frozenset({1, 2}))

    def test_too_small_correct_set_never_a_sample(self, system4):
        env = Environment(system4, 1)  # min correct = 3
        spec = OmegaSpec(system4)
        assert not is_forever_sample(spec, env, 0, frozenset({0, 1}))

    def test_upsilon_sample_iff_not_correct_set(self, system3):
        env = Environment.wait_free(system3)
        spec = UpsilonSpec(system3)
        u = frozenset({0, 1})
        assert not is_forever_sample(spec, env, u, u)
        assert is_forever_sample(spec, env, u, frozenset({0, 2}))

    def test_canonical_pattern(self, system4):
        env = Environment(system4, 2)
        p = canonical_pattern(env, frozenset({1, 3}))
        assert p.correct == frozenset({1, 3})
        assert p.crashed_by(0) == frozenset({0, 2})


class TestPhiMapOmega:
    def test_entry_avoids_the_leader(self, system4):
        """Any certificate for a stable leader must avoid the leader; the
        deterministic map picks the smallest one — a singleton {q},
        q ≠ leader (Π − {leader} would be equally valid, just larger)."""
        env = Environment.wait_free(system4)
        phi = PhiMap(OmegaSpec(system4), env)
        for leader in system4.pids:
            correct, w = phi(leader)
            assert leader not in correct
            assert len(correct) == 1
            assert w == 0

    def test_entries_validate(self, system4):
        env = Environment.wait_free(system4)
        spec = OmegaSpec(system4)
        phi = PhiMap(spec, env)
        for leader in system4.pids:
            assert_valid_phi_entry(spec, env, leader, phi(leader))


class TestPhiMapOmegaK:
    def test_omega_f_complement(self, system5):
        """ϕ_{Ωf}(L) = (Π − L, 0) in E_f."""
        f = 2
        env = Environment(system5, f)
        spec = OmegaKSpec(system5, f)
        phi = PhiMap(spec, env)
        for value in spec.range_values():
            correct, w = phi(value)
            assert correct == system5.pid_set - value
            assert w == 0
            assert_valid_phi_entry(spec, env, value, (correct, w))

    def test_omega_n_wait_free(self, system4):
        env = Environment.wait_free(system4)
        spec = omega_n(system4)
        phi = PhiMap(spec, env)
        for value in spec.range_values():
            correct, _ = phi(value)
            assert correct == system4.pid_set - value


class TestPhiMapUpsilon:
    def test_identity_on_upsilon(self, system4):
        """The only correct set incompatible with stable U is U itself."""
        env = Environment.wait_free(system4)
        spec = UpsilonSpec(system4)
        phi = PhiMap(spec, env)
        for value in spec.range_values():
            correct, w = phi(value)
            assert correct == value
            assert w == 0

    def test_identity_on_upsilon_f(self, system5):
        env = Environment(system5, 2)
        spec = UpsilonFSpec(env)
        phi = PhiMap(spec, env)
        for value in spec.range_values():
            assert phi(value) == (value, 0)


class TestPhiMapEventuallyPerfect:
    def test_entries_avoid_the_one_compatible_set(self, system4):
        env = Environment.wait_free(system4)
        spec = EventuallyPerfectSpec(system4)
        phi = PhiMap(spec, env)
        for suspected in spec.range_values():
            correct, w = phi(suspected)
            assert correct != system4.pid_set - suspected
            assert_valid_phi_entry(spec, env, suspected, (correct, w))


class TestPhiMapDummy:
    def test_trivial_detector_rejected(self, system3):
        env = Environment.wait_free(system3)
        phi = PhiMap(DummySpec("d"), env)
        with pytest.raises(TrivialDetectorError):
            phi("d")


class TestDeterminismAndCaching:
    def test_same_value_same_entry(self, system4):
        env = Environment.wait_free(system4)
        phi1 = PhiMap(OmegaSpec(system4), env)
        phi2 = PhiMap(OmegaSpec(system4), env)
        assert phi1(2) == phi2(2)
        assert phi1(2) == phi1(2)

    def test_freeze_normalizes_sets_and_lists(self, system4):
        env = Environment.wait_free(system4)
        phi = PhiMap(omega_n(system4), env)
        assert phi(frozenset({0, 1, 2})) == phi({0, 1, 2})


class TestShiftedPhiMap:
    def test_shifts_w(self, system4):
        env = Environment.wait_free(system4)
        inner = PhiMap(OmegaSpec(system4), env)
        shifted = ShiftedPhiMap(inner, 3)
        correct, w = shifted(1)
        assert w == 3
        assert correct == inner(1)[0]

    def test_shift_must_be_positive(self, system4):
        env = Environment.wait_free(system4)
        inner = PhiMap(OmegaSpec(system4), env)
        with pytest.raises(ValueError):
            ShiftedPhiMap(inner, 0)

    def test_shifted_entries_still_valid(self, system4):
        env = Environment.wait_free(system4)
        spec = OmegaSpec(system4)
        shifted = ShiftedPhiMap(PhiMap(spec, env), 2)
        assert_valid_phi_entry(spec, env, 0, shifted(0))


class TestAssertValidPhiEntry:
    def test_rejects_sample_entries(self, system3):
        env = Environment.wait_free(system3)
        spec = OmegaSpec(system3)
        with pytest.raises(AssertionError, match="is a sample"):
            assert_valid_phi_entry(spec, env, 0, (frozenset({0, 1}), 0))

    def test_rejects_small_sets(self, system4):
        env = Environment(system4, 1)
        spec = OmegaSpec(system4)
        with pytest.raises(AssertionError, match="n\\+1−f"):
            assert_valid_phi_entry(spec, env, 0, (frozenset({1}), 0))

    def test_rejects_negative_w(self, system3):
        env = Environment.wait_free(system3)
        spec = OmegaSpec(system3)
        with pytest.raises(AssertionError, match="non-negative"):
            assert_valid_phi_entry(spec, env, 0, (frozenset({1}), -1))


@given(
    n_procs=st.integers(3, 5),
    f_choice=st.integers(1, 4),
    data=st.data(),
)
@settings(max_examples=50, deadline=None)
def test_phi_entries_always_valid_hypothesis(n_procs, f_choice, data):
    """For every detector family, every ϕ entry produced is a genuine
    non-sample certificate of adequate size."""
    system = System(n_procs)
    f = min(f_choice, system.n)
    env = Environment(system, f)
    spec = data.draw(
        st.sampled_from([
            OmegaSpec(system),
            OmegaKSpec(system, f),
            UpsilonFSpec(env),
            EventuallyPerfectSpec(system),
        ])
    )
    values = list(
        spec.range_values() if hasattr(spec, "range_values") else []
    )
    value = data.draw(st.sampled_from(values))
    phi = PhiMap(spec, env)
    try:
        entry = phi(value)
    except TrivialDetectorError:
        # Possible for ◇P values compatible with every candidate set in
        # low-f environments; the theorem then simply does not apply.
        return
    assert_valid_phi_entry(spec, env, value, entry)
