"""Tests for Fig. 1 — Υ-based n-set agreement (Theorem 2).

Every run is checked against the three set-agreement properties via the
task spec; sweeps cover crash patterns, adversarial stable Υ values, long
noise prefixes, register-only builds, and the non-participation Remark.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import make_upsilon_set_agreement
from repro.detectors import StableHistory, UpsilonSpec, seeded_noise
from repro.failures import FailurePattern
from repro.runtime import (
    NON_PARTICIPANT,
    RandomScheduler,
    Simulation,
    System,
)
from repro.tasks import SetAgreementSpec

from tests.helpers import run_to_decision


def run_fig1(system, pattern, history, seed=0, inputs=None, register_based=False):
    inputs = inputs or {p: f"v{p}" for p in system.pids}
    sim = run_to_decision(
        system,
        make_upsilon_set_agreement(register_based=register_based),
        inputs,
        pattern=pattern,
        history=history,
        seed=seed,
    )
    SetAgreementSpec(system.n).check(sim, inputs).raise_if_failed()
    return sim


class TestBasics:
    def test_failure_free_immediate_stability(self, system3):
        spec = UpsilonSpec(system3)
        pattern = FailurePattern.failure_free(system3)
        history = StableHistory(frozenset({0}), stabilization_time=0)
        sim = run_fig1(system3, pattern, history)
        assert len(sim.trace.decided_values()) <= system3.n

    def test_two_processes_is_consensus_strength_free_case(self):
        """n = 1: 1-set agreement = consensus, solvable since Υ ≡ Ω."""
        system = System(2)
        pattern = FailurePattern.failure_free(system)
        # Legal stable values exclude {0,1} = correct set.
        history = StableHistory(frozenset({1}), stabilization_time=0)
        sim = run_fig1(system, pattern, history)
        assert len(sim.trace.decided_values()) == 1

    def test_decisions_are_proposals(self, system4):
        spec = UpsilonSpec(system4)
        pattern = FailurePattern.crash_at(system4, {1: 20})
        history = spec.sample_history(pattern, random.Random(3),
                                      stabilization_time=50)
        sim = run_fig1(system4, pattern, history, seed=9)
        assert sim.trace.decided_values() <= {f"v{p}" for p in system4.pids}

    def test_decision_register_consistent(self, system3):
        """Every decided value was at some point in register D."""
        spec = UpsilonSpec(system3)
        pattern = FailurePattern.failure_free(system3)
        history = spec.sample_history(pattern, random.Random(5),
                                      stabilization_time=20)
        sim = run_fig1(system3, pattern, history, seed=4)
        assert sim.memory.peek_register("D") in sim.trace.decided_values()


class TestAdversarialStableValues:
    """Υ may stabilize on ANY set ≠ correct — including nasty ones."""

    def test_stable_set_of_only_faulty_processes(self, system4):
        pattern = FailurePattern.crash_at(system4, {0: 10, 1: 15})
        history = StableHistory(frozenset({0, 1}), stabilization_time=30)
        run_fig1(system4, pattern, history, seed=1)

    def test_stable_set_of_only_correct_processes_strict_subset(self, system4):
        pattern = FailurePattern.crash_at(system4, {0: 10})
        history = StableHistory(frozenset({1, 2}), stabilization_time=30)
        run_fig1(system4, pattern, history, seed=2)

    def test_stable_full_universe(self, system4):
        """U = Π is legal whenever someone is faulty."""
        pattern = FailurePattern.crash_at(system4, {3: 5})
        history = StableHistory(system4.pid_set, stabilization_time=0)
        run_fig1(system4, pattern, history, seed=3)

    def test_stable_superset_of_correct(self, system4):
        """Case (1) of the proof: correct ⊊ U, gladiator crash unblocks."""
        pattern = FailurePattern.crash_at(system4, {0: 40})
        history = StableHistory(frozenset({0, 1, 2, 3}), stabilization_time=0)
        run_fig1(system4, pattern, history, seed=4)

    def test_stable_disjoint_from_correct(self, system4):
        """Case (2): a correct citizen exists and publishes D[r]."""
        pattern = FailurePattern.crash_at(system4, {0: 30, 1: 35})
        history = StableHistory(frozenset({0, 1}), stabilization_time=10)
        run_fig1(system4, pattern, history, seed=5)

    def test_singleton_faulty_gladiator(self, system3):
        pattern = FailurePattern.crash_at(system3, {2: 8})
        history = StableHistory(frozenset({2}), stabilization_time=0)
        run_fig1(system3, pattern, history, seed=6)


class TestNoisePrefixes:
    @pytest.mark.parametrize("stabilization", [0, 10, 100, 400])
    def test_longer_noise_still_terminates(self, system4, stabilization):
        spec = UpsilonSpec(system4)
        pattern = FailurePattern.crash_at(system4, {2: 50})
        history = spec.sample_history(
            pattern, random.Random(stabilization), stabilization_time=stabilization
        )
        run_fig1(system4, pattern, history, seed=stabilization)

    def test_noise_showing_correct_set_is_survivable(self, system3):
        """Pre-stabilization Υ may (illegally-looking) show the correct
        set; the Stable[r] mechanism must cope."""
        pattern = FailurePattern.failure_free(system3)
        noise = seeded_noise(11, [pattern.correct, frozenset({0})])
        history = StableHistory(frozenset({1}), stabilization_time=150,
                                noise=noise)
        run_fig1(system3, pattern, history, seed=7)


class TestRemarkNonParticipation:
    """Remark after Theorem 2: with a non-participant, round 1 commits."""

    def test_terminates_without_full_participation(self, system4):
        spec = UpsilonSpec(system4)
        pattern = FailurePattern.failure_free(system4)
        history = spec.sample_history(pattern, random.Random(8),
                                      stabilization_time=1000)
        inputs = {0: "a", 1: "b", 2: "c", 3: NON_PARTICIPANT}
        sim = Simulation(
            system4, make_upsilon_set_agreement(), inputs=inputs,
            pattern=pattern, history=history,
        )
        sim.run_until(
            Simulation.all_correct_decided, 100_000, RandomScheduler(1)
        )
        decided = sim.trace.decided_values()
        assert decided <= {"a", "b", "c"}
        # n-converge sees at most n distinct values, so everyone commits
        # in round 1 — even though Υ never stabilizes within the run.
        from repro.analysis import max_round_reached
        assert max_round_reached(sim) == 1


class TestRegisterOnlyBuild:
    @pytest.mark.parametrize("seed", range(3))
    def test_register_based_snapshots(self, system3, seed):
        spec = UpsilonSpec(system3)
        rng = random.Random(seed)
        pattern = FailurePattern.random(system3, rng, max_crash_time=40)
        history = spec.sample_history(pattern, rng, stabilization_time=60)
        run_fig1(system3, pattern, history, seed=seed, register_based=True)


@given(
    n_procs=st.integers(2, 5),
    seed=st.integers(0, 100_000),
    stabilization=st.integers(0, 200),
)
@settings(max_examples=40, deadline=None)
def test_fig1_properties_hypothesis(n_procs, seed, stabilization):
    system = System(n_procs)
    spec = UpsilonSpec(system)
    rng = random.Random(seed)
    pattern = FailurePattern.random(system, rng, max_crash_time=stabilization or 50)
    history = spec.sample_history(pattern, rng, stabilization_time=stabilization)
    inputs = {p: f"v{p}" for p in system.pids}
    sim = run_to_decision(
        system, make_upsilon_set_agreement(), inputs,
        pattern=pattern, history=history, seed=seed,
    )
    SetAgreementSpec(system.n).check(sim, inputs).raise_if_failed()
