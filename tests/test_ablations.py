"""Ablation tests: each removed mechanism has a concrete failing run.

These certify that the pieces of the constructions are all load-bearing —
the positive tests show the full protocols work; these show the ablated
ones break, on explicit schedules.
"""

import pytest

from repro.core import make_upsilon_set_agreement
from repro.core.ablations import (
    NaiveConvergeInstance,
    NoBorrowScanAPI,
    make_gladiators_only_set_agreement,
    make_no_stability_flag_set_agreement,
)
from repro.detectors import ConstantHistory, StableHistory
from repro.failures import FailurePattern
from repro.runtime import (
    Decide,
    RandomScheduler,
    RoundRobinScheduler,
    Simulation,
    System,
)


class TestNaiveConvergeBreaksAgreement:
    def test_solo_committer_then_latecomers(self):
        """p0 runs alone and commits its own value (it saw only itself);
        p1 and p2 then see 3 values, fail to commit, and keep their own:
        3 distinct picks despite a commit with k = 1."""
        system = System(3)

        def protocol(ctx, value):
            instance = NaiveConvergeInstance("abl", 1, system.n_processes)
            result = yield from instance.converge(ctx, value)
            yield Decide(result)

        sim = Simulation(system, protocol,
                         inputs={p: f"v{p}" for p in system.pids})
        # p0 solo to completion (update, scan, decide), then the rest.
        sim.run_script([0, 0, 0, 1, 2, 1, 2, 1, 2])
        picks = {p for (p, _) in sim.decisions().values()}
        commits = [c for (_, c) in sim.decisions().values()]
        assert any(commits)        # p0 committed...
        assert len(picks) == 3     # ...yet 3 > k = 1 values were picked.

    def test_real_converge_survives_same_schedule(self):
        """Control: the two-phase construction on the same schedule keeps
        C-Agreement (the latecomers see p0's committed proposal)."""
        from repro.core import ConvergeInstance

        system = System(3)

        def protocol(ctx, value):
            instance = ConvergeInstance("ctl", 1, system.n_processes)
            result = yield from instance.converge(ctx, value)
            yield Decide(result)

        sim = Simulation(system, protocol,
                         inputs={p: f"v{p}" for p in system.pids})
        # p0 solo to completion (5 steps), then the others interleaved.
        sim.run_script([0] * 5 + [1, 2] * 5)
        picks = {p for (p, _) in sim.decisions().values()}
        commits = [c for (_, c) in sim.decisions().values()]
        if any(commits):
            assert len(picks) <= 1


class TestGladiatorsOnlyLivelocks:
    def test_stable_singleton_u_blocks_everyone(self):
        """U = {p0} stable from the start (legal: correct = Π ≠ {p0}).
        The real Fig. 1 decides via citizens; the ablated variant runs
        0-converge forever."""
        system = System(3)
        pattern = FailurePattern.failure_free(system)
        history = ConstantHistory(frozenset({0}))

        ablated = Simulation(
            system, make_gladiators_only_set_agreement(),
            inputs={p: f"v{p}" for p in system.pids},
            pattern=pattern, history=history,
        )
        ablated.run(max_steps=40_000, scheduler=RoundRobinScheduler(),
                    stop_when=Simulation.all_correct_decided)
        assert not ablated.all_correct_decided()

        control = Simulation(
            system, make_upsilon_set_agreement(),
            inputs={p: f"v{p}" for p in system.pids},
            pattern=pattern, history=history,
        )
        control.run(max_steps=40_000, scheduler=RoundRobinScheduler(),
                    stop_when=Simulation.all_correct_decided)
        assert control.all_correct_decided()


class TestNoStabilityFlagLivelocks:
    def _self_view_history(self, stabilization=10**9):
        """Every query during the (very long) noisy prefix returns {self}."""
        return StableHistory(
            frozenset({0}), stabilization,
            noise=lambda pid, t: frozenset({pid}),
        )

    def test_divergent_entry_views_block_forever(self):
        """Everyone enters round 1 believing U = {self}: all run
        0-converge, nobody is a citizen, nobody escapes — unless
        instability is reported (line 16), which the control shows."""
        system = System(3)
        pattern = FailurePattern.failure_free(system)

        ablated = Simulation(
            system, make_no_stability_flag_set_agreement(),
            inputs={p: f"v{p}" for p in system.pids},
            pattern=pattern, history=self._self_view_history(),
        )
        ablated.run(max_steps=40_000, scheduler=RoundRobinScheduler(),
                    stop_when=Simulation.all_correct_decided)
        assert not ablated.all_correct_decided()

    def test_control_escapes_via_stability_flag(self):
        system = System(3)
        pattern = FailurePattern.failure_free(system)
        control = Simulation(
            system, make_upsilon_set_agreement(),
            inputs={p: f"v{p}" for p in system.pids},
            pattern=pattern, history=self._self_view_history(),
        )
        control.run(max_steps=200_000, scheduler=RandomScheduler(3),
                    stop_when=Simulation.all_correct_decided)
        assert control.all_correct_decided()


class TestNoBorrowScanIsNotWaitFree:
    def test_scanner_starves_under_perpetual_updates(self):
        system = System(2)

        def scanner(ctx, _):
            api = NoBorrowScanAPI("obj", 2)
            view = yield from api.scan()
            yield Decide(view)

        def updater(ctx, _):
            api = NoBorrowScanAPI("obj", 2)
            i = 0
            while True:
                i += 1
                yield from api.update(1, i)

        sim = Simulation(system, {0: scanner, 1: updater},
                         inputs={0: None, 1: None})
        # Updater finishes a whole update between any two scanner steps:
        # every double collect observes movement, so the scan never ends.
        for _ in range(2_000):
            if sim.runtimes[0].has_decided:
                break
            sim.step(0)
            for _ in range(16):
                sim.step(1)
        assert not sim.runtimes[0].has_decided

    def test_real_scan_returns_under_same_pressure(self):
        from repro.memory import RegisterSnapshotAPI

        system = System(2)

        def scanner(ctx, _):
            api = RegisterSnapshotAPI("obj", 2)
            view = yield from api.scan()
            yield Decide(view)

        def updater(ctx, _):
            api = RegisterSnapshotAPI("obj", 2)
            i = 0
            while True:
                i += 1
                yield from api.update(1, i)

        sim = Simulation(system, {0: scanner, 1: updater},
                         inputs={0: None, 1: None})
        for _ in range(2_000):
            if sim.runtimes[0].has_decided:
                break
            sim.step(0)
            for _ in range(16):
                sim.step(1)
        assert sim.runtimes[0].has_decided  # borrowed a mover's view
