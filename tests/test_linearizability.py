"""Tests for the linearizability checker — and the register-snapshot's
atomicity certified through it."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    OperationRecord,
    RegisterSequentialSpec,
    SnapshotRecorder,
    SnapshotSequentialSpec,
    is_linearizable,
)
from repro.memory import RegisterSnapshotAPI
from repro.runtime import BOT, Decide, RandomScheduler, Simulation, System


def rec(op_id, pid, start, end, kind, args=(), response=None):
    return OperationRecord(op_id, pid, start, end, kind, tuple(args), response)


class TestRegisterSpec:
    def test_sequential_read_write(self):
        spec = RegisterSequentialSpec()
        history = [
            rec(0, 0, 0, 0, "write", ("a",)),
            rec(1, 1, 1, 1, "read", (), "a"),
        ]
        assert is_linearizable(history, spec)

    def test_stale_read_rejected(self):
        spec = RegisterSequentialSpec()
        history = [
            rec(0, 0, 0, 0, "write", ("a",)),
            rec(1, 0, 1, 1, "write", ("b",)),
            rec(2, 1, 2, 2, "read", (), "a"),  # strictly after both writes
        ]
        assert not is_linearizable(history, spec)

    def test_concurrent_read_may_see_either(self):
        spec = RegisterSequentialSpec()
        base = [rec(0, 0, 0, 5, "write", ("a",))]
        overlapping_old = base + [rec(1, 1, 2, 3, "read", (), BOT)]
        overlapping_new = base + [rec(2, 1, 2, 3, "read", (), "a")]
        assert is_linearizable(overlapping_old, spec)
        assert is_linearizable(overlapping_new, spec)

    def test_empty_history(self):
        assert is_linearizable([], RegisterSequentialSpec())


class TestSnapshotSpec:
    def test_scan_reflects_updates(self):
        spec = SnapshotSequentialSpec(2)
        history = [
            rec(0, 0, 0, 0, "update", (0, "x")),
            rec(1, 1, 1, 1, "scan", (), ("x", BOT)),
        ]
        assert is_linearizable(history, spec)

    def test_scan_missing_completed_update_rejected(self):
        spec = SnapshotSequentialSpec(2)
        history = [
            rec(0, 0, 0, 0, "update", (0, "x")),
            rec(1, 1, 1, 1, "scan", (), (BOT, BOT)),
        ]
        assert not is_linearizable(history, spec)

    def test_containment_violation_rejected(self):
        """Two sequential scans whose views are incomparable cannot be
        linearized: scan A sees cell0 but not cell1, B the reverse, and
        the updates finished before both scans."""
        spec = SnapshotSequentialSpec(2)
        history = [
            rec(0, 0, 0, 0, "update", (0, "x")),
            rec(1, 1, 1, 1, "update", (1, "y")),
            rec(2, 2, 2, 2, "scan", (), ("x", BOT)),
            rec(3, 2, 3, 3, "scan", (), (BOT, "y")),
        ]
        assert not is_linearizable(history, spec)

    def test_concurrent_scans_with_either_view(self):
        spec = SnapshotSequentialSpec(2)
        history = [
            rec(0, 0, 0, 9, "update", (0, "x")),
            rec(1, 1, 2, 3, "scan", (), (BOT, BOT)),
            rec(2, 2, 4, 5, "scan", (), ("x", BOT)),
        ]
        assert is_linearizable(history, spec)


class TestRealTimeOrder:
    def test_interval_validation(self):
        with pytest.raises(ValueError):
            rec(0, 0, 5, 4, "read")

    def test_non_overlapping_order_enforced(self):
        spec = RegisterSequentialSpec()
        # read(BOT) strictly after write("a") must fail even though some
        # total order exists ignoring time.
        history = [
            rec(0, 0, 0, 1, "write", ("a",)),
            rec(1, 1, 5, 6, "read", (), BOT),
        ]
        assert not is_linearizable(history, spec)


class TestRegisterSnapshotIsLinearizable:
    """Certify the Afek-et-al. construction on live concurrent runs."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_runs(self, seed):
        system = System(3)
        recorder_holder = {}

        def protocol(ctx, _):
            recorder = recorder_holder["rec"]
            api = RegisterSnapshotAPI("obj", system.n_processes)
            for i in range(2):
                yield from recorder.recorded_update(
                    api, ctx.pid, ctx.pid, (ctx.pid, i)
                )
                yield from recorder.recorded_scan(api, ctx.pid)
            yield Decide("done")

        sim_holder = {}
        recorder_holder["rec"] = SnapshotRecorder(
            lambda: sim_holder["sim"].time
        )
        sim = Simulation(system, protocol,
                         inputs={p: None for p in system.pids})
        sim_holder["sim"] = sim
        sim.run_until(Simulation.all_correct_decided, 200_000,
                      RandomScheduler(seed))
        records = recorder_holder["rec"].records
        assert len(records) == 12  # 3 processes × (2 updates + 2 scans)
        assert is_linearizable(records,
                               SnapshotSequentialSpec(system.n_processes))

    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=15, deadline=None)
    def test_linearizable_hypothesis(self, seed):
        system = System(2)
        holder = {}

        def protocol(ctx, _):
            recorder = holder["rec"]
            api = RegisterSnapshotAPI("obj", system.n_processes)
            yield from recorder.recorded_update(api, ctx.pid, ctx.pid,
                                                ("v", ctx.pid))
            yield from recorder.recorded_scan(api, ctx.pid)
            yield from recorder.recorded_scan(api, ctx.pid)
            yield Decide("done")

        sim_holder = {}
        holder["rec"] = SnapshotRecorder(lambda: sim_holder["sim"].time)
        sim = Simulation(system, protocol,
                         inputs={p: None for p in system.pids})
        sim_holder["sim"] = sim
        sim.run_until(Simulation.all_correct_decided, 200_000,
                      RandomScheduler(seed))
        assert is_linearizable(holder["rec"].records,
                               SnapshotSequentialSpec(system.n_processes))


class TestOverlappingWriteEdges:
    """Reads overlapping a not-yet-completed write (audit satellite).

    The dangerous ABD edge: under message duplication a stale read-ack
    could resurface an old value after a newer one was already returned.
    The checker must reject exactly that shape (a new-old inversion)
    while still allowing a read to see an overlapping in-flight write.
    """

    def test_new_old_inversion_rejected(self):
        # W[0,10]="a"; R1[1,3] returns "a"; R2[5,7] returns BOT.  R2
        # runs strictly after R1, so once R1 observed the new value the
        # write has linearized before R1 — R2 may not see the old value,
        # even though both reads overlap the still-incomplete write.
        spec = RegisterSequentialSpec()
        history = [
            rec(0, 0, 0, 10, "write", ("a",)),
            rec(1, 1, 1, 3, "read", (), "a"),
            rec(2, 1, 5, 7, "read", (), BOT),
        ]
        assert not is_linearizable(history, spec)

    def test_read_from_future_write_rejected(self):
        spec = RegisterSequentialSpec()
        history = [
            rec(0, 0, 5, 6, "write", ("a",)),
            rec(1, 1, 0, 1, "read", (), "a"),  # ends before the write starts
        ]
        assert not is_linearizable(history, spec)

    def test_in_flight_write_value_accepted(self):
        # The legal side of the edge: a read inside an incomplete
        # write's interval may return the new value (the write
        # linearizes before the read).
        spec = RegisterSequentialSpec()
        history = [
            rec(0, 0, 0, 20, "write", ("a",)),
            rec(1, 1, 2, 4, "read", (), "a"),
        ]
        assert is_linearizable(history, spec)


class TestAbdLinearizableUnderDuplication:
    """ABD registers stay atomic when messages are delivered twice.

    Duplication re-delivers stale read-acks and old writes — the exact
    traffic that would produce a new-old inversion if the write-back
    phase or the adopt-if-fresher rule were broken.
    :class:`~repro.chaos.network.FaultyNetwork` deliberately shields
    quorum-critical (``abd-*``) traffic from its duplicate knob, so the
    test duplicates every ABD message itself, with extra delay on the
    copy so duplicates arrive late and out of order.  Every operation
    interval is recorded on a live run and the history certified against
    the sequential register spec.
    """

    @pytest.mark.parametrize("seed", range(3))
    def test_recorded_history_linearizes(self, seed):
        from repro.messaging.abd import AbdRegisters
        from repro.messaging.network import Network
        from repro.runtime import Nop

        class DuplicatingNetwork(Network):
            duplicated = 0

            def send(self, sender, dest, payload, now, extra_delay=0):
                super().send(sender, dest, payload, now, extra_delay)
                if (
                    isinstance(payload, tuple)
                    and payload
                    and isinstance(payload[0], str)
                    and payload[0].startswith("abd-")
                ):
                    type(self).duplicated += 1
                    super().send(
                        sender, dest, payload, now,
                        extra_delay=extra_delay + 2 + (sender + dest) % 3,
                    )

        DuplicatingNetwork.duplicated = 0
        system = System(3)
        records = []
        holder = {}

        def protocol(ctx, _):
            abd = AbdRegisters(ctx)
            op_id = ctx.pid * 10

            def clock():
                return holder["sim"].time

            yield Nop()
            start = clock() - 1
            yield from abd.write("x", f"w{ctx.pid}")
            records.append(OperationRecord(
                op_id, ctx.pid, start, clock() - 1, "write",
                (f"w{ctx.pid}",), None))
            yield Nop()
            start = clock() - 1
            got = yield from abd.read("x")
            records.append(OperationRecord(
                op_id + 1, ctx.pid, start, clock() - 1, "read", (), got))
            yield Decide(got)
            yield from abd.serve()

        net = DuplicatingNetwork(system, seed=seed, max_delay=3)
        sim = Simulation(system, protocol,
                         inputs={p: p for p in system.pids}, network=net)
        holder["sim"] = sim
        sim.run(max_steps=300_000, scheduler=RandomScheduler(seed),
                stop_when=Simulation.all_correct_decided)
        assert sim.all_correct_decided()
        assert DuplicatingNetwork.duplicated > 0
        assert len(records) == 6
        assert is_linearizable(records, RegisterSequentialSpec())
