"""Tests for the linearizability checker — and the register-snapshot's
atomicity certified through it."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    OperationRecord,
    RegisterSequentialSpec,
    SnapshotRecorder,
    SnapshotSequentialSpec,
    is_linearizable,
)
from repro.memory import RegisterSnapshotAPI
from repro.runtime import BOT, Decide, RandomScheduler, Simulation, System


def rec(op_id, pid, start, end, kind, args=(), response=None):
    return OperationRecord(op_id, pid, start, end, kind, tuple(args), response)


class TestRegisterSpec:
    def test_sequential_read_write(self):
        spec = RegisterSequentialSpec()
        history = [
            rec(0, 0, 0, 0, "write", ("a",)),
            rec(1, 1, 1, 1, "read", (), "a"),
        ]
        assert is_linearizable(history, spec)

    def test_stale_read_rejected(self):
        spec = RegisterSequentialSpec()
        history = [
            rec(0, 0, 0, 0, "write", ("a",)),
            rec(1, 0, 1, 1, "write", ("b",)),
            rec(2, 1, 2, 2, "read", (), "a"),  # strictly after both writes
        ]
        assert not is_linearizable(history, spec)

    def test_concurrent_read_may_see_either(self):
        spec = RegisterSequentialSpec()
        base = [rec(0, 0, 0, 5, "write", ("a",))]
        overlapping_old = base + [rec(1, 1, 2, 3, "read", (), BOT)]
        overlapping_new = base + [rec(2, 1, 2, 3, "read", (), "a")]
        assert is_linearizable(overlapping_old, spec)
        assert is_linearizable(overlapping_new, spec)

    def test_empty_history(self):
        assert is_linearizable([], RegisterSequentialSpec())


class TestSnapshotSpec:
    def test_scan_reflects_updates(self):
        spec = SnapshotSequentialSpec(2)
        history = [
            rec(0, 0, 0, 0, "update", (0, "x")),
            rec(1, 1, 1, 1, "scan", (), ("x", BOT)),
        ]
        assert is_linearizable(history, spec)

    def test_scan_missing_completed_update_rejected(self):
        spec = SnapshotSequentialSpec(2)
        history = [
            rec(0, 0, 0, 0, "update", (0, "x")),
            rec(1, 1, 1, 1, "scan", (), (BOT, BOT)),
        ]
        assert not is_linearizable(history, spec)

    def test_containment_violation_rejected(self):
        """Two sequential scans whose views are incomparable cannot be
        linearized: scan A sees cell0 but not cell1, B the reverse, and
        the updates finished before both scans."""
        spec = SnapshotSequentialSpec(2)
        history = [
            rec(0, 0, 0, 0, "update", (0, "x")),
            rec(1, 1, 1, 1, "update", (1, "y")),
            rec(2, 2, 2, 2, "scan", (), ("x", BOT)),
            rec(3, 2, 3, 3, "scan", (), (BOT, "y")),
        ]
        assert not is_linearizable(history, spec)

    def test_concurrent_scans_with_either_view(self):
        spec = SnapshotSequentialSpec(2)
        history = [
            rec(0, 0, 0, 9, "update", (0, "x")),
            rec(1, 1, 2, 3, "scan", (), (BOT, BOT)),
            rec(2, 2, 4, 5, "scan", (), ("x", BOT)),
        ]
        assert is_linearizable(history, spec)


class TestRealTimeOrder:
    def test_interval_validation(self):
        with pytest.raises(ValueError):
            rec(0, 0, 5, 4, "read")

    def test_non_overlapping_order_enforced(self):
        spec = RegisterSequentialSpec()
        # read(BOT) strictly after write("a") must fail even though some
        # total order exists ignoring time.
        history = [
            rec(0, 0, 0, 1, "write", ("a",)),
            rec(1, 1, 5, 6, "read", (), BOT),
        ]
        assert not is_linearizable(history, spec)


class TestRegisterSnapshotIsLinearizable:
    """Certify the Afek-et-al. construction on live concurrent runs."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_runs(self, seed):
        system = System(3)
        recorder_holder = {}

        def protocol(ctx, _):
            recorder = recorder_holder["rec"]
            api = RegisterSnapshotAPI("obj", system.n_processes)
            for i in range(2):
                yield from recorder.recorded_update(
                    api, ctx.pid, ctx.pid, (ctx.pid, i)
                )
                yield from recorder.recorded_scan(api, ctx.pid)
            yield Decide("done")

        sim_holder = {}
        recorder_holder["rec"] = SnapshotRecorder(
            lambda: sim_holder["sim"].time
        )
        sim = Simulation(system, protocol,
                         inputs={p: None for p in system.pids})
        sim_holder["sim"] = sim
        sim.run_until(Simulation.all_correct_decided, 200_000,
                      RandomScheduler(seed))
        records = recorder_holder["rec"].records
        assert len(records) == 12  # 3 processes × (2 updates + 2 scans)
        assert is_linearizable(records,
                               SnapshotSequentialSpec(system.n_processes))

    @given(seed=st.integers(0, 50_000))
    @settings(max_examples=15, deadline=None)
    def test_linearizable_hypothesis(self, seed):
        system = System(2)
        holder = {}

        def protocol(ctx, _):
            recorder = holder["rec"]
            api = RegisterSnapshotAPI("obj", system.n_processes)
            yield from recorder.recorded_update(api, ctx.pid, ctx.pid,
                                                ("v", ctx.pid))
            yield from recorder.recorded_scan(api, ctx.pid)
            yield from recorder.recorded_scan(api, ctx.pid)
            yield Decide("done")

        sim_holder = {}
        holder["rec"] = SnapshotRecorder(lambda: sim_holder["sim"].time)
        sim = Simulation(system, protocol,
                         inputs={p: None for p in system.pids})
        sim_holder["sim"] = sim
        sim.run_until(Simulation.all_correct_decided, 200_000,
                      RandomScheduler(seed))
        assert is_linearizable(holder["rec"].records,
                               SnapshotSequentialSpec(system.n_processes))
