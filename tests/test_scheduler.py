"""Unit tests for schedulers and script builders."""

from collections import Counter

import pytest

from repro.runtime import (
    FunctionScheduler,
    PriorityScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    SchedulerError,
    ScriptedScheduler,
    WeightedRandomScheduler,
    one_step_each,
    repeat_block,
    round_robin_forever,
    solo,
)


class TestRoundRobin:
    def test_cycles_in_order(self):
        s = RoundRobinScheduler()
        picks = [s.choose(t, [0, 1, 2]) for t in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_skips_ineligible(self):
        s = RoundRobinScheduler()
        picks = [s.choose(t, [0, 2]) for t in range(4)]
        assert picks == [0, 2, 0, 2]

    def test_start_offset(self):
        s = RoundRobinScheduler(start=2)
        assert s.choose(0, [0, 1, 2]) == 2

    def test_empty_eligible(self):
        with pytest.raises(SchedulerError):
            RoundRobinScheduler().choose(0, [])


class TestRandom:
    def test_deterministic_given_seed(self):
        a = [RandomScheduler(4).choose(t, [0, 1, 2]) for t in range(20)]
        b = [RandomScheduler(4).choose(t, [0, 1, 2]) for t in range(20)]
        assert a == b

    def test_fair_in_aggregate(self):
        s = RandomScheduler(1)
        counts = Counter(s.choose(t, [0, 1, 2]) for t in range(3000))
        assert all(counts[p] > 700 for p in (0, 1, 2))

    def test_empty_eligible(self):
        with pytest.raises(SchedulerError):
            RandomScheduler().choose(0, [])


class TestWeighted:
    def test_bias(self):
        s = WeightedRandomScheduler([10.0, 1.0], seed=2)
        counts = Counter(s.choose(t, [0, 1]) for t in range(2000))
        assert counts[0] > counts[1] * 3

    def test_positive_weights_required(self):
        with pytest.raises(SchedulerError):
            WeightedRandomScheduler([1.0, 0.0])

    def test_weights_indexed_by_pid(self):
        s = WeightedRandomScheduler([1.0, 1.0, 100.0], seed=0)
        counts = Counter(s.choose(t, [1, 2]) for t in range(500))
        assert counts[2] > counts[1]


class TestScripted:
    def test_follows_script(self):
        s = ScriptedScheduler([2, 0, 1])
        assert [s.choose(t, [0, 1, 2]) for t in range(3)] == [2, 0, 1]

    def test_exhausted_without_fallback(self):
        s = ScriptedScheduler([0])
        s.choose(0, [0])
        with pytest.raises(SchedulerError, match="exhausted"):
            s.choose(1, [0])

    def test_fallback(self):
        s = ScriptedScheduler([1], fallback=RoundRobinScheduler())
        assert s.choose(0, [0, 1]) == 1
        assert s.choose(1, [0, 1]) == 0

    def test_ineligible_scripted_pid_raises(self):
        s = ScriptedScheduler([2])
        with pytest.raises(SchedulerError, match="not eligible"):
            s.choose(0, [0, 1])

    def test_skip_ineligible(self):
        s = ScriptedScheduler([2, 0], skip_ineligible=True)
        assert s.choose(0, [0, 1]) == 0

    def test_infinite_script(self):
        s = ScriptedScheduler(round_robin_forever([0, 1]))
        assert [s.choose(t, [0, 1]) for t in range(4)] == [0, 1, 0, 1]


class TestFunctionScheduler:
    def test_delegates(self):
        s = FunctionScheduler(lambda t, eligible: eligible[-1])
        assert s.choose(0, [0, 1, 2]) == 2

    def test_ineligible_choice_raises(self):
        s = FunctionScheduler(lambda t, eligible: 99)
        with pytest.raises(SchedulerError):
            s.choose(0, [0, 1])


class TestPriorityScheduler:
    def test_prefers_high_priority(self):
        s = PriorityScheduler([2, 0, 1])
        assert s.choose(0, [0, 1, 2]) == 2
        assert s.choose(1, [0, 1]) == 0

    def test_unranked_pids_last(self):
        s = PriorityScheduler([1])
        assert s.choose(0, [0, 1]) == 1

    def test_empty(self):
        with pytest.raises(SchedulerError):
            PriorityScheduler([0]).choose(0, [])


class TestScriptBuilders:
    def test_solo(self):
        assert solo(3, 4) == [3, 3, 3, 3]

    def test_one_step_each(self):
        assert one_step_each([2, 0, 1]) == [2, 0, 1]

    def test_repeat_block(self):
        assert repeat_block([0, 1], 3) == [0, 1, 0, 1, 0, 1]
