"""Impossibility-side demonstrations (the backdrop of [2, 11, 14, 20]).

These tests exhibit the *other* half of the paper's story: without the
failure information Υ provides, the algorithms run forever.  Each test
constructs a schedule/history pair outside the detector's specification and
shows the protocol makes no progress within a large step budget —
deterministically, not merely probabilistically.
"""

import pytest

from repro.core import ConvergeInstance, make_omega_consensus, make_upsilon_set_agreement
from repro.detectors import ConstantHistory
from repro.failures import FailurePattern
from repro.runtime import (
    Decide,
    RoundRobinScheduler,
    Simulation,
    System,
)


class TestConvergeNeedsFewValues:
    """1-converge under lockstep with distinct inputs never commits — the
    FLP-flavoured core of why registers alone cannot decide."""

    @pytest.mark.parametrize("n_procs", [2, 3, 4])
    def test_lockstep_defeats_commit(self, n_procs):
        system = System(n_procs)

        def protocol(ctx, value):
            instance = ConvergeInstance("c", 1, system.n_processes)
            result = yield from instance.converge(ctx, value)
            yield Decide(result)

        sim = Simulation(system, protocol,
                         inputs={p: f"v{p}" for p in system.pids})
        sim.run_until(Simulation.all_correct_decided, 10_000,
                      RoundRobinScheduler())
        # Under lockstep every phase-1 scan sees every value, so nobody
        # commits and everybody keeps its own value.
        for pid, (picked, committed) in sim.decisions().items():
            assert committed is False
            assert picked == f"v{pid}"

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_lockstep_defeats_k_converge(self, k):
        """Generalizes to any k < #distinct inputs."""
        system = System(4)

        def protocol(ctx, value):
            instance = ConvergeInstance("c", k, system.n_processes)
            result = yield from instance.converge(ctx, value)
            yield Decide(result)

        sim = Simulation(system, protocol,
                         inputs={p: f"v{p}" for p in system.pids})
        sim.run_until(Simulation.all_correct_decided, 10_000,
                      RoundRobinScheduler())
        assert not any(c for (_, c) in sim.decisions().values())


class TestFig1NeedsUpsilon:
    """Feed Fig. 1 the one history Υ forbids — the correct set, forever —
    and lockstep it: no process ever decides.  This is the wait-free
    set-agreement impossibility surfacing through the algorithm."""

    @pytest.mark.parametrize("n_procs", [3, 4])
    def test_livelock_under_forbidden_history(self, n_procs):
        system = System(n_procs)
        pattern = FailurePattern.failure_free(system)
        forbidden = ConstantHistory(pattern.correct)  # U = correct(F) = Π
        sim = Simulation(
            system, make_upsilon_set_agreement(),
            inputs={p: f"v{p}" for p in system.pids},
            pattern=pattern, history=forbidden,
        )
        sim.run(max_steps=60_000, scheduler=RoundRobinScheduler(),
                stop_when=Simulation.all_correct_decided)
        assert not sim.decisions(), (
            "the algorithm decided without Υ's guarantee — the run should "
            "livelock"
        )
        assert sim.time == 60_000  # exhausted the budget, still running

    def test_budget_scaling(self):
        """The livelock is not slow progress: doubling the budget leaves
        the run equally undecided."""
        system = System(3)
        pattern = FailurePattern.failure_free(system)
        for budget in (20_000, 40_000, 80_000):
            sim = Simulation(
                system, make_upsilon_set_agreement(),
                inputs={p: f"v{p}" for p in system.pids},
                pattern=pattern, history=ConstantHistory(pattern.correct),
            )
            sim.run(max_steps=budget, scheduler=RoundRobinScheduler(),
                    stop_when=Simulation.all_correct_decided)
            assert not sim.decisions()

    def test_legal_history_same_schedule_decides(self):
        """Control experiment: identical lockstep schedule, but a *legal*
        Υ history — now the run terminates.  The detector, not the
        scheduler, is what beats the impossibility."""
        system = System(3)
        pattern = FailurePattern.failure_free(system)
        legal = ConstantHistory(frozenset({0}))  # ≠ correct set
        sim = Simulation(
            system, make_upsilon_set_agreement(),
            inputs={p: f"v{p}" for p in system.pids},
            pattern=pattern, history=legal,
        )
        sim.run(max_steps=60_000, scheduler=RoundRobinScheduler(),
                stop_when=Simulation.all_correct_decided)
        assert sim.all_correct_decided()


class TestConsensusNeedsOmega:
    """The Ω-based consensus blocks forever when fed an illegal history
    that keeps electing a crashed leader."""

    def test_dead_leader_blocks_run(self):
        system = System(3)
        # Crash the leader before it can publish its round-1 value (its
        # first step is the Ω query, the write would be its second).
        pattern = FailurePattern.crash_at(system, {0: 1})
        illegal = ConstantHistory(0)  # leader 0 is faulty — not an Ω history
        sim = Simulation(
            system, make_omega_consensus(),
            inputs={p: f"v{p}" for p in system.pids},
            pattern=pattern, history=illegal,
        )
        sim.run(max_steps=50_000, scheduler=RoundRobinScheduler(),
                stop_when=Simulation.all_correct_decided)
        assert not sim.all_correct_decided()
