"""The bounded explorer: reduction soundness, ablation bugs, sweeps."""

import pytest

from repro.mc import (
    CrashSweep,
    ExploreConfig,
    McInstance,
    check,
    explore_instance,
)


class TestPartialOrderReduction:
    def test_por_explores_strictly_fewer_states_same_verdict(self):
        """The acceptance metric: POR on < POR off on Fig. 1, n+1 = 2."""
        instance = McInstance("fig1", n_processes=2)
        on = explore_instance(instance, ExploreConfig(max_depth=14, por=True))
        off = explore_instance(instance, ExploreConfig(max_depth=14, por=False))
        assert on.ok and off.ok
        assert on.stats.states_visited < off.stats.states_visited
        assert on.reduction.ratio < 1.0
        assert on.reduction.slept > 0
        assert off.reduction.ratio == 1.0

    @pytest.mark.parametrize("por", [True, False])
    def test_planted_bug_found_regardless_of_por(self, por):
        """POR must not prune the ablation's C-Agreement violation."""
        instance = McInstance("naive-converge", n_processes=2)
        result = explore_instance(instance, ExploreConfig(max_depth=20,
                                                          por=por))
        assert not result.ok
        ce = result.counterexamples[0]
        assert ce.prop == "c-agreement(k=1)"
        assert ce.verify()

    @pytest.mark.parametrize("por", [True, False])
    def test_sound_converge_passes_regardless_of_por(self, por):
        instance = McInstance("converge", n_processes=2)
        result = explore_instance(instance, ExploreConfig(max_depth=20,
                                                          por=por))
        assert result.ok
        assert result.stats.complete_schedules > 0

    @pytest.mark.parametrize("family", ["gladiators-only",
                                        "no-stability-flag"])
    @pytest.mark.parametrize("por", [True, False])
    def test_livelock_ablations_caught(self, family, por):
        """Depth exhaustion + require_progress flags the livelocks."""
        result = explore_instance(
            McInstance(family, n_processes=2),
            ExploreConfig(max_depth=16, require_progress=True, por=por),
        )
        assert not result.ok
        assert any(ce.kind == "no-termination"
                   for ce in result.counterexamples)

    def test_wait_free_protocol_survives_require_progress(self):
        """converge terminates on every branch — no spurious violations."""
        result = explore_instance(
            McInstance("converge", n_processes=2),
            ExploreConfig(max_depth=24, require_progress=True),
        )
        assert result.ok
        assert result.stats.depth_exhausted == 0


class TestDeduplication:
    def test_dedup_prunes_converging_branches(self):
        instance = McInstance("fig1", n_processes=2)
        merged = explore_instance(
            instance, ExploreConfig(max_depth=14, por=False, dedup=True))
        full = explore_instance(
            instance, ExploreConfig(max_depth=14, por=False, dedup=False))
        assert merged.ok and full.ok
        assert merged.stats.pruned_visited > 0
        assert merged.stats.states_visited < full.stats.states_visited


class TestStrategies:
    def test_bfs_finds_the_planted_bug(self):
        result = explore_instance(
            McInstance("naive-converge", n_processes=2),
            ExploreConfig(max_depth=20, strategy="bfs"),
        )
        assert not result.ok
        ce = result.counterexamples[0]
        assert ce.prop == "c-agreement(k=1)"
        assert ce.verify()

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="strategy"):
            explore_instance(McInstance("converge", n_processes=2),
                             ExploreConfig(strategy="ids"))

    def test_max_states_truncates(self):
        result = explore_instance(
            McInstance("fig1", n_processes=2),
            ExploreConfig(max_depth=14, max_states=50),
        )
        assert result.stats.truncated
        assert result.stats.states_visited <= 51


class TestCrashSweep:
    def test_one_check_covers_schedules_and_crash_patterns(self):
        report = check(
            McInstance("fig1", n_processes=2, f=1),
            ExploreConfig(max_depth=12),
            sweep=CrashSweep(max_crashes=1, crash_times=(0, 2)),
        )
        # base + 2 victims x 2 crash times
        assert report.instances_checked == 5
        assert report.ok
        crashes = {result.instance.crashes for result in report.results}
        assert () in crashes and len(crashes) == 5

    def test_report_metrics_registry(self):
        from repro.obs import MetricsRegistry

        report = check(McInstance("converge", n_processes=2),
                       ExploreConfig(max_depth=20))
        registry = MetricsRegistry()
        report.record_metrics(registry)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["mc_states"]["visited"] > 0
        assert "mc_reduction_ratio" in snapshot["gauges"]


class TestExtraction:
    def test_bounded_horizon_extraction_holds_range_condition(self):
        result = explore_instance(
            McInstance("extraction", n_processes=2, f=1),
            ExploreConfig(max_depth=8),
        )
        assert result.ok
        assert result.stats.depth_exhausted > 0  # never terminates
        assert result.stats.complete_schedules == 0
