"""Tests for the campaign layer: event round-trips, ledger, report, dash.

The contract under test: the JSONL event stream is a *lossless* wire
format (every registered event type survives ``event_to_dict`` →
``event_from_dict``), the campaign ledger is an append-only record that
tolerates torn writes, and the dashboard rebuilds collector state purely
by replaying the stream — so its JSON endpoints must agree with a
collector that watched the run live.
"""

import dataclasses
import json
import threading
import typing
import urllib.error
import urllib.request

import pytest

from repro import cli
from repro.obs import (
    CampaignDash,
    CampaignLedger,
    CampaignRecord,
    JsonlEventSink,
    MetricsCollector,
    event_from_dict,
    event_to_dict,
    event_types,
)
from repro.obs.campaign import SCHEMA_VERSION
from repro.obs.dash import make_server
from repro.obs.events import StepTaken, TrialCompleted, TrialSpanRecorded
from repro.obs.prom import render_prometheus
from repro.obs.report import render_report_html
from repro.runtime.ops import Write


def _sample_value(name: str, annotation) -> object:
    """A deterministic sample for one event field, by annotation."""
    if name == "op":
        return Write(("r", 1), 42)
    origin = typing.get_origin(annotation)
    if origin is typing.Union:  # Optional[...]
        args = [a for a in typing.get_args(annotation) if a is not type(None)]
        annotation = args[0]
        origin = typing.get_origin(annotation)
    if annotation in (int, "int"):
        return 7
    if annotation in (float, "float"):
        return 1.5
    if annotation in (bool, "bool"):
        return True
    if annotation in (str, "str"):
        return "x"
    if origin in (frozenset, set) or annotation in ("FrozenSet[int]",):
        return frozenset({1, 2})
    if origin in (tuple, list):
        return ()
    # string annotations from `from __future__ import annotations`
    text = str(annotation)
    if "int" in text and "frozenset" not in text.lower():
        return 7
    if "float" in text:
        return 1.5
    if "bool" in text:
        return True
    if "str" in text:
        return "x"
    if "frozenset" in text.lower() or "set" in text.lower():
        return frozenset({1, 2})
    return "x"


def _sample_event(cls):
    kwargs = {}
    for field in dataclasses.fields(cls):
        kwargs[field.name] = _sample_value(field.name, field.type)
    return cls(**kwargs)


class TestEventRoundTrip:
    def test_every_registered_event_survives_the_wire(self):
        """event_to_dict → JSON → event_from_dict is the identity for
        every concrete Event subclass the registry knows."""
        names = event_types()
        assert "StepTaken" in names and "TrialCompleted" in names
        for name, cls in sorted(names.items()):
            event = _sample_event(cls)
            body = json.loads(json.dumps(event_to_dict(event)))
            assert body["event"] == name
            rebuilt = event_from_dict(body)
            assert rebuilt == event, name

    def test_unknown_event_name_raises_key_error(self):
        with pytest.raises(KeyError):
            event_from_dict({"event": "NoSuchEventEver", "time": 1})

    def test_round_trip_through_a_jsonl_file(self, tmp_path):
        """A sink-written stream decodes back to the original events."""
        bus_events = [
            StepTaken(3, 1, Write(("r", 0), "v"), None),
            TrialSpanRecorded(-1, "execute", 0.25, "abc123"),
            TrialCompleted(-1, key="abc123", kind="set_agreement",
                           seconds=0.25, ok=True, cached=False,
                           stabilization=100, latency=240),
        ]
        path = tmp_path / "events.jsonl"
        collector = MetricsCollector()
        with JsonlEventSink(str(path), bus=collector.bus, flush=True):
            for event in bus_events:
                collector.bus.publish(event)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == len(bus_events)
        rebuilt = [event_from_dict(json.loads(line)) for line in lines]
        assert rebuilt == bus_events


class TestCampaignLedger:
    def test_append_and_read_back(self, tmp_path):
        ledger = CampaignLedger(tmp_path / "runs.jsonl")
        ledger.append_run("sweep:chaos", "ok", duration=1.5, trials=12)
        ledger.append_run("audit", "divergence", divergences=2)
        records = ledger.records()
        assert [r.kind for r in records] == ["sweep:chaos", "audit"]
        assert records[0].schema_version == SCHEMA_VERSION
        assert records[0].engine_version  # stamped from perf.spec
        assert records[1].verdict == "divergence"
        assert len(ledger) == 2

    def test_tolerates_a_torn_tail_line(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        ledger = CampaignLedger(path)
        ledger.append_run("check:fig1", "ok")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "trunc')  # killed mid-write
        assert [r.kind for r in ledger.records()] == ["check:fig1"]

    def test_append_artifact_stamps_digest_and_scalars(self, tmp_path):
        artifact = tmp_path / "BENCH_demo.json"
        artifact.write_text(json.dumps({
            "experiment": "demo", "engine_version": "2026.08.1",
            "schema_version": 1, "elapsed_seconds": 2.5,
            "states_per_second": 1234.5, "nested": {"ignored": True},
        }))
        ledger = CampaignLedger(tmp_path / "runs.jsonl")
        record = ledger.append_artifact(artifact)
        assert record.kind == "bench:demo"
        assert record.engine_version == "2026.08.1"
        assert record.extra["artifact"] == "BENCH_demo.json"
        assert len(record.extra["sha256"]) == 64
        assert record.extra["states_per_second"] == 1234.5
        assert "nested" not in record.extra
        # and it reads back as a plain record
        assert ledger.records()[0].kind == "bench:demo"

    def test_record_round_trip(self):
        record = CampaignRecord(kind="sweep:x", verdict="ok",
                                started=123.0, extra={"jobs": 4})
        assert CampaignRecord.from_dict(record.to_dict()) == record


class TestReportHtml:
    def test_renders_runs_and_charts(self):
        records = [
            CampaignRecord(kind="sweep:chaos", verdict="ok", started=1000.0,
                           duration=2.0, trials=10),
            CampaignRecord(kind="sweep:chaos", verdict="violation",
                           started=2000.0, duration=3.0, trials=10),
        ]
        page = render_report_html(records)
        assert page.startswith("<!DOCTYPE html>")
        assert "sweep:chaos" in page
        assert "<svg" in page          # trajectory chart (2+ points)
        assert "violation" in page
        assert "<script" not in page   # static: no JS


class TestPrometheus:
    def test_counter_gauge_histogram_exposition(self):
        collector = MetricsCollector()
        registry = collector.registry
        registry.counter("steps_total").inc(0, 3)
        registry.gauge("decision_time").set(11.0, 2)
        for v in (1.0, 2.0, 3.0):
            registry.histogram("message_latency").observe(v)
        text = render_prometheus(registry)
        assert "# TYPE repro_steps_total counter" in text
        assert 'repro_steps_total{label="0"} 3' in text
        assert 'repro_decision_time{label="2"} 11.0' in text
        assert "# TYPE repro_message_latency summary" in text
        assert 'repro_message_latency{quantile="0.5"} 2.0' in text
        assert "repro_message_latency_count 3" in text
        assert "repro_message_latency_sum 6.0" in text

    def test_label_escaping(self):
        collector = MetricsCollector()
        collector.registry.counter("memory_ops").inc('we"ird\\', 1)
        text = render_prometheus(collector.registry)
        assert 'label="we\\"ird\\\\"' in text


class TestDash:
    def _write_stream(self, path, events):
        collector = MetricsCollector()
        with JsonlEventSink(str(path), bus=collector.bus, flush=True):
            for event in events:
                collector.bus.publish(event)
        return collector

    def test_replay_matches_a_live_collector(self, tmp_path):
        """The dash's registry (rebuilt from the stream) equals one that
        subscribed to the bus during the run."""
        events = [
            StepTaken(1, 0, Write(("r", 0), 1), None),
            StepTaken(2, 1, Write(("r", 1), 2), None),
            TrialSpanRecorded(-1, "execute", 0.5, "k1"),
            TrialCompleted(-1, key="k1", kind="chaos", seconds=0.5,
                           ok=False, cached=False,
                           stabilization=50, latency=90),
        ]
        path = tmp_path / "events.jsonl"
        live = self._write_stream(path, events)
        dash = CampaignDash(path)
        assert dash.summary()["events"]["total"] == len(events)
        assert dash.metrics() == live.snapshot()

    def test_summary_is_json_serializable_and_counts(self, tmp_path):
        path = tmp_path / "events.jsonl"
        self._write_stream(path, [
            TrialCompleted(-1, key="a", kind="set_agreement", seconds=0.1,
                           ok=True, cached=True, stabilization=0,
                           latency=10),
            TrialCompleted(-1, key="b", kind="set_agreement", seconds=0.2,
                           ok=True, cached=False, stabilization=100,
                           latency=200),
        ])
        ledger = CampaignLedger(tmp_path / "runs.jsonl")
        ledger.append_run("sweep:set-agreement", "ok", trials=2)
        dash = CampaignDash(path, ledger)
        summary = json.loads(json.dumps(dash.summary()))
        assert summary["trials"]["completed"] == 1
        assert summary["trials"]["cached"] == 1
        assert len(summary["curve"]) == 2
        assert summary["curve"][1] == {
            "stabilization": 100, "latency": 200,
            "kind": "set_agreement", "cached": False,
        }
        assert summary["ledger"][0]["kind"] == "sweep:set-agreement"

    def test_unknown_events_counted_not_fatal(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"event": "FutureEvent", "time": 1}\n')
            handle.write("not json at all\n")
            handle.write(json.dumps(
                event_to_dict(TrialSpanRecorded(-1, "execute", 0.1, "k"))
            ) + "\n")
        dash = CampaignDash(path)
        summary = dash.summary()
        assert summary["events"]["unknown"] == 1
        assert summary["events"]["by_type"]["TrialSpanRecorded"] == 1
        assert summary["events"]["total"] == 2  # malformed line dropped

    def test_incremental_tail_picks_up_appends(self, tmp_path):
        path = tmp_path / "events.jsonl"
        self._write_stream(path, [StepTaken(1, 0, Write(("r", 0), 1), None)])
        dash = CampaignDash(path)
        assert dash.summary()["events"]["total"] == 1
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(event_to_dict(
                StepTaken(2, 1, Write(("r", 1), 2), None))) + "\n")
        assert dash.summary()["events"]["total"] == 2

    def test_http_endpoints(self, tmp_path):
        path = tmp_path / "events.jsonl"
        self._write_stream(path, [
            TrialCompleted(-1, key="a", kind="extraction", seconds=0.1,
                           ok=True, cached=False, stabilization=60,
                           latency=120),
        ])
        server = make_server(CampaignDash(path), port=0)
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            def get(route):
                with urllib.request.urlopen(
                        f"http://127.0.0.1:{port}{route}") as response:
                    return response.status, response.read()

            status, body = get("/api/summary")
            assert status == 200
            assert json.loads(body)["trials"]["completed"] == 1
            status, body = get("/api/metrics")
            assert status == 200
            assert "counters" in json.loads(body)
            status, body = get("/metrics")
            assert status == 200
            assert b"repro_trials_completed_total" in body
            status, body = get("/api/events?n=1")
            assert status == 200
            assert len(json.loads(body)) == 1
            status, body = get("/")
            assert status == 200 and b"repro dash" in body
            with pytest.raises(urllib.error.HTTPError):
                get("/nope")
        finally:
            server.shutdown()
            server.server_close()


class TestCliIntegration:
    def test_sweep_events_ledger_report_pipeline(self, tmp_path, capsys):
        """sweep --events/--ledger → dash replay → report renders."""
        events = tmp_path / "events.jsonl"
        ledger_path = tmp_path / "runs.jsonl"
        rc = cli.main([
            "sweep", "set-agreement", "--sizes", "3",
            "--stabilizations", "0", "--seeds", "0-2", "--no-cache",
            "--events", str(events), "--ledger", str(ledger_path),
        ])
        assert rc == 0
        dash = CampaignDash(events, ledger_path)
        summary = dash.summary()
        assert summary["trials"]["completed"] == 3
        assert summary["ledger"][0]["kind"] == "sweep:set-agreement"
        assert summary["ledger"][0]["verdict"] == "ok"
        out = tmp_path / "report.html"
        rc = cli.main(["report", "--ledger", str(ledger_path),
                       "--out", str(out)])
        assert rc == 0
        assert "sweep:set-agreement" in out.read_text()
        capsys.readouterr()

    def test_sweep_json_carries_metrics_snapshot(self, tmp_path, capsys):
        rc = cli.main([
            "sweep", "set-agreement", "--sizes", "3",
            "--stabilizations", "0", "--seeds", "0-1", "--no-cache",
            "--json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics"]["counters"]["trials_completed"] == {
            "set_agreement": 2
        }
        assert payload["metrics"]["counters"]["steps_total"]

    def test_stats_format_prom(self, capsys):
        rc = cli.main(["stats", "fig1", "--processes", "3", "--seed", "0",
                       "--format", "prom"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_steps_total counter" in out

    def test_report_without_ledger_is_usage_error(self, tmp_path, capsys,
                                                  monkeypatch):
        monkeypatch.delenv("REPRO_LEDGER", raising=False)
        assert cli.main(["report", "--out",
                         str(tmp_path / "r.html")]) == 2
        capsys.readouterr()
