"""Tests for the message-passing substrate: network model + ABD registers.

The headline claims certified here:

* the ABD emulation is a *linearizable* MWMR register (checked with the
  Wing–Gong checker on recorded operation intervals);
* it is live iff fewer than a majority of processes stop serving;
* k-converge — and with it the paper's construction stack — runs over
  pure message passing via the ABD-backed snapshot.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    OperationRecord,
    RegisterSequentialSpec,
    is_linearizable,
)
from repro.core import ConvergeInstance
from repro.messaging import AbdRegisters, Network, abd_snapshot_api
from repro.runtime import (
    BOT,
    Decide,
    Nop,
    ProtocolError,
    RandomScheduler,
    Receive,
    Simulation,
    System,
)
from repro.failures import FailurePattern


class TestNetwork:
    def test_delivery_after_send(self, system3):
        net = Network(system3, seed=0)
        net.send(0, 1, "hello", now=5)
        assert net.deliver(1, 5) == ()          # not before t+1
        assert net.deliver(1, 6) == ((0, "hello"),)
        assert net.deliver(1, 7) == ()          # drained

    def test_fifo_per_channel(self, system3):
        net = Network(system3, seed=3, max_delay=10)
        for i in range(20):
            net.send(0, 1, i, now=i)
        got = [payload for (_, payload) in net.deliver(1, 10_000)]
        assert got == list(range(20))

    def test_broadcast_includes_self(self, system3):
        net = Network(system3, seed=0)
        net.broadcast(2, "x", now=0)
        assert net.deliver(2, 100) == ((2, "x"),)
        assert net.deliver(0, 100) == ((2, "x"),)

    def test_seeded_determinism(self, system3):
        def schedule(seed):
            net = Network(system3, seed=seed, max_delay=7)
            for i in range(10):
                net.send(0, 1, i, now=i)
            return [net.deliver(1, t) for t in range(40)]

        assert schedule(4) == schedule(4)
        assert schedule(4) != schedule(5)

    def test_pending_and_counters(self, system3):
        net = Network(system3, seed=0)
        net.send(0, 1, "a", now=0)
        assert net.pending(1) == 1
        net.deliver(1, 10)
        assert net.sent_count == 1 and net.delivered_count == 1

    def test_bad_destination(self, system3):
        net = Network(system3, seed=0)
        with pytest.raises(ValueError):
            net.send(0, 9, "x", now=0)

    def test_messaging_without_network_raises(self, system3):
        def proto(ctx, _):
            yield Receive()

        sim = Simulation(system3, {0: proto}, inputs={0: None})
        with pytest.raises(ProtocolError, match="no network"):
            sim.step(0)


def _run_abd(system, protocol, seed=0, max_delay=2, pattern=None,
             max_steps=300_000, require_decided=True):
    net = Network(system, seed=seed + 77, max_delay=max_delay)
    sim = Simulation(system, protocol,
                     inputs={p: p for p in system.pids},
                     pattern=pattern, network=net)
    sim.run(max_steps=max_steps, scheduler=RandomScheduler(seed),
            stop_when=Simulation.all_correct_decided)
    if require_decided:
        assert sim.all_correct_decided(), "ABD operation did not complete"
    return sim


class TestAbdBasics:
    def test_write_then_read(self, system3):
        def protocol(ctx, _):
            abd = AbdRegisters(ctx)
            if ctx.pid == 0:
                yield from abd.write("x", "payload")
                got = yield from abd.read("x")
                yield Decide(got)
            else:
                yield Decide("server")
            yield from abd.serve()

        sim = _run_abd(system3, protocol, seed=1)
        assert sim.decisions()[0] == "payload"

    def test_unwritten_register_reads_bot(self, system3):
        def protocol(ctx, _):
            abd = AbdRegisters(ctx)
            if ctx.pid == 0:
                got = yield from abd.read("ghost")
                yield Decide(got)
            else:
                yield Decide("server")
            yield from abd.serve()

        sim = _run_abd(system3, protocol, seed=2)
        assert sim.decisions()[0] is BOT

    def test_quorum_validation(self, system3):
        ctx = type("C", (), {"pid": 0, "system": system3})()
        with pytest.raises(ValueError):
            AbdRegisters(ctx, quorum=4)

    @pytest.mark.parametrize("seed", range(4))
    def test_multi_writer_last_tag_wins(self, system3, seed):
        """All processes write then read; every read returns some write,
        and after all writes completed a solo reader sees a single value."""
        def protocol(ctx, _):
            abd = AbdRegisters(ctx)
            yield from abd.write("x", f"w{ctx.pid}")
            got = yield from abd.read("x")
            yield Decide(got)
            yield from abd.serve()

        sim = _run_abd(system3, protocol, seed=seed)
        values = set(sim.decisions().values())
        assert values <= {"w0", "w1", "w2"}


class TestAbdLiveness:
    def test_survives_minority_crash(self):
        """5 processes, quorum 3, two initially dead: still live."""
        system = System(5)
        pattern = FailurePattern.only_correct(system, [0, 1, 2])

        def protocol(ctx, _):
            abd = AbdRegisters(ctx)
            yield from abd.write("x", ctx.pid)
            got = yield from abd.read("x")
            yield Decide(got)
            yield from abd.serve()

        sim = _run_abd(System(5), protocol, seed=3, pattern=pattern)
        assert set(sim.decisions()) == {0, 1, 2}

    def test_majority_crash_blocks(self):
        """3 processes, two initially dead: no quorum, the survivor's
        operation can never complete — registers are NOT wait-free
        implementable from messages (the reason the paper assumes them)."""
        system = System(3)
        pattern = FailurePattern.only_correct(system, [0])

        def protocol(ctx, _):
            abd = AbdRegisters(ctx)
            yield from abd.write("x", ctx.pid)
            yield Decide("never")
            yield from abd.serve()

        sim = _run_abd(system, protocol, seed=4, pattern=pattern,
                       max_steps=20_000, require_decided=False)
        assert not sim.decisions()


class TestAbdLinearizability:
    @pytest.mark.parametrize("seed", range(4))
    def test_concurrent_ops_linearize(self, system3, seed):
        """Record every ABD op's interval and response; check against the
        sequential register spec."""
        records = []
        holder = {}

        def protocol(ctx, _):
            abd = AbdRegisters(ctx)
            op_id = ctx.pid * 10

            def clock():
                return holder["sim"].time

            yield Nop()
            start = clock() - 1
            yield from abd.write("x", f"w{ctx.pid}")
            records.append(OperationRecord(
                op_id, ctx.pid, start, clock() - 1, "write",
                (f"w{ctx.pid}",), None))
            yield Nop()
            start = clock() - 1
            got = yield from abd.read("x")
            records.append(OperationRecord(
                op_id + 1, ctx.pid, start, clock() - 1, "read", (), got))
            yield Decide(got)
            yield from abd.serve()

        net = Network(system3, seed=seed, max_delay=3)
        sim = Simulation(system3, protocol,
                         inputs={p: p for p in system3.pids}, network=net)
        holder["sim"] = sim
        sim.run(max_steps=300_000, scheduler=RandomScheduler(seed),
                stop_when=Simulation.all_correct_decided)
        assert sim.all_correct_decided()
        assert len(records) == 6
        assert is_linearizable(records, RegisterSequentialSpec())


class TestConvergeOverMessagePassing:
    @pytest.mark.parametrize("k,seed", [(1, 0), (1, 1), (2, 0), (2, 1)])
    def test_properties_hold(self, system3, k, seed):
        """The paper's central subroutine, running over pure messages."""
        def protocol(ctx, value):
            abd = AbdRegisters(ctx)
            instance = ConvergeInstance(
                "mp", k, ctx.system.n_processes,
                snapshot_factory=lambda name, cells: abd_snapshot_api(
                    abd, name, cells),
            )
            picked, committed = yield from instance.converge(
                ctx, f"v{value}")
            yield Decide((picked, committed))
            yield from abd.serve()

        sim = _run_abd(system3, protocol, seed=seed)
        picks = {p for (p, _) in sim.decisions().values()}
        commits = [c for (_, c) in sim.decisions().values()]
        assert picks <= {"v0", "v1", "v2"}
        if any(commits):
            assert len(picks) <= k

    def test_unanimous_inputs_commit_over_messages(self, system3):
        def protocol(ctx, value):
            abd = AbdRegisters(ctx)
            instance = ConvergeInstance(
                "mp1", 1, ctx.system.n_processes,
                snapshot_factory=lambda name, cells: abd_snapshot_api(
                    abd, name, cells),
            )
            result = yield from instance.converge(ctx, "same")
            yield Decide(result)
            yield from abd.serve()

        sim = _run_abd(system3, protocol, seed=5)
        assert all(d == ("same", True) for d in sim.decisions().values())


@given(seed=st.integers(0, 20_000))
@settings(max_examples=10, deadline=None)
def test_abd_roundtrip_hypothesis(seed):
    system = System(3)

    def protocol(ctx, _):
        abd = AbdRegisters(ctx)
        yield from abd.write(("r", ctx.pid), ctx.pid * 100)
        got = yield from abd.read(("r", ctx.pid))
        yield Decide(got)
        yield from abd.serve()

    sim = _run_abd(system, protocol, seed=seed, max_delay=seed % 5)
    # Own single-writer register: must read back own write.
    for pid, value in sim.decisions().items():
        assert value == pid * 100
