"""Tests for the sweep/CSV helpers and the command-line interface."""

import csv
import io

import pytest

from repro.analysis import sweep_extraction, sweep_set_agreement, to_csv
from repro.cli import main
from repro.detectors import OmegaSpec


class TestSweeps:
    def test_wait_free_grid(self):
        results = sweep_set_agreement(
            system_sizes=[3, 4], seeds=[0, 1], stabilization_times=[0, 40],
        )
        assert len(results) == 2 * 2 * 2
        assert all(r.ok for r in results)
        assert {r.n_processes for r in results} == {3, 4}

    def test_f_grid_clamps_to_n(self):
        results = sweep_set_agreement(
            system_sizes=[3], seeds=[0], stabilization_times=[0],
            fs=[1, 2, 7],  # 7 > n = 2 is dropped
        )
        assert {r.f for r in results} == {1, 2}

    def test_extraction_sweep(self):
        results = sweep_extraction(
            [OmegaSpec], system_sizes=[3], seeds=[0, 1],
            stabilization_time=40, max_steps=30_000,
        )
        assert len(results) == 2
        assert all(r.stabilized and r.legal for r in results)


class TestCsvExport:
    def test_roundtrip(self):
        results = sweep_set_agreement(
            system_sizes=[3], seeds=[0, 1], stabilization_times=[0],
        )
        text = to_csv(results)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == 2
        assert rows[0]["n_processes"] == "3"
        assert rows[0]["ok"] == "True"

    def test_frozenset_stringified(self):
        results = sweep_extraction(
            [OmegaSpec], system_sizes=[3], seeds=[0],
            stabilization_time=30, max_steps=30_000,
        )
        text = to_csv(results)
        row = next(csv.DictReader(io.StringIO(text)))
        assert row["output"].startswith("{")

    def test_file_destination(self, tmp_path):
        results = sweep_set_agreement(
            system_sizes=[3], seeds=[0], stabilization_times=[0],
        )
        path = tmp_path / "out.csv"
        to_csv(results, str(path))
        assert path.read_text().startswith("n_processes,")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            to_csv([])

    def test_non_dataclass_rejected(self):
        with pytest.raises(TypeError):
            to_csv([{"a": 1}])

    def test_mixed_types_rejected(self):
        sa = sweep_set_agreement([3], [0], [0])
        ex = sweep_extraction([OmegaSpec], [3], [0], max_steps=30_000)
        with pytest.raises(TypeError):
            to_csv(sa + ex)


class TestCli:
    def test_fig1(self, capsys):
        assert main(["fig1", "--processes", "3", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "properties: OK" in out

    def test_fig1_adversarial(self, capsys):
        assert main(["fig1", "--processes", "3", "--adversarial",
                     "--stabilization", "50"]) == 0

    def test_fig2(self, capsys):
        assert main(["fig2", "--processes", "4", "--resilience", "2"]) == 0
        assert "bound 2" in capsys.readouterr().out

    def test_extract(self, capsys):
        assert main(["extract", "--detector", "omega_n",
                     "--processes", "3"]) == 0
        assert "extraction: OK" in capsys.readouterr().out

    def test_extract_f_resilient(self, capsys):
        assert main(["extract", "--detector", "omega", "--processes", "4",
                     "--resilience", "3"]) == 0

    def test_theorem1(self, capsys):
        assert main(["theorem1", "--candidate", "heartbeat",
                     "--phases", "4"]) == 0
        assert "refuted: YES" in capsys.readouterr().out

    def test_run_with_trace(self, capsys):
        assert main(["run", "--show-trace"]) == 0
        out = capsys.readouterr().out
        assert "decisions:" in out
        assert "p0 |" in out  # the timeline lanes

    def test_hierarchy(self, capsys):
        assert main(["hierarchy", "--processes", "4"]) == 0
        out = capsys.readouterr().out
        assert "Υ ≺ Ωn" in out

    def test_hierarchy_f_resilient(self, capsys):
        assert main(["hierarchy", "--processes", "5",
                     "--resilience", "2"]) == 0
        assert "Υf" in capsys.readouterr().out

    def test_campaign(self, capsys):
        assert main(["campaign", "--trials", "4", "--seed", "9"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["nonsense"])


class TestDetectorRegistry:
    def test_names(self):
        from repro.detectors import detector_names

        assert "upsilon" in detector_names()
        assert "omega_f" in detector_names()

    def test_make_system_detector(self, system4):
        from repro.detectors import make_detector
        from repro.failures import Environment

        env = Environment.wait_free(system4)
        assert make_detector("omega", env).name == "Ω"
        assert make_detector("upsilon", env).name == "Υ"

    def test_make_env_detector(self, system4):
        from repro.detectors import make_detector
        from repro.failures import Environment

        env = Environment(system4, 2)
        assert make_detector("upsilon_f", env).name == "Υ^2"
        assert make_detector("omega_f", env).k == 2

    def test_unknown_name(self, system4):
        from repro.detectors import make_detector
        from repro.failures import Environment

        with pytest.raises(KeyError):
            make_detector("sigma", Environment.wait_free(system4))
