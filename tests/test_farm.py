"""Tests for the distributed trial farm (``repro.farm``).

The contracts under test: ``BEGIN IMMEDIATE`` claims never hand the
same trial to two workers (even under thread hammering), an expired
lease is reclaimed by exactly one successor, completion is by token so
a zombie's late result is a no-op, a worker dying mid-batch loses no trial
and duplicates no result, and a campaign drained through the store is
byte-identical — results *and* logical telemetry — to a serial
``run_trials`` of the same grid.
"""

import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.chaos import ChaosTrialSpec
from repro.farm import (
    CRASH_EXIT_CODE,
    CampaignIncompleteError,
    FarmStoreError,
    FarmWorker,
    SQLiteFarmStore,
    collect_results,
    open_store,
    render_status,
    submit_campaign,
)
from repro.obs import MetricsCollector
from repro.obs.events import FarmLeaseExpired, FarmTrialClaimed
from repro.obs.metrics import SPAN_METRIC_PREFIX
from repro.perf import (
    QuarantineReport,
    ResiliencePolicy,
    SetAgreementTrialSpec,
    StoreJournalConflictError,
    TrialCache,
    run_trials,
    spec_key,
)

SPECS = [
    SetAgreementTrialSpec(3, 1, seed=seed, stabilization_time=0)
    for seed in range(8)
]

#: Deterministically raises inside the trial — the "always fails" spec.
BROKEN = ChaosTrialSpec("fig1", 3, seed=0, lying_prefix=5,
                        max_steps=50_000, sabotage="raise")


def _store(tmp_path, name="farm.db"):
    return SQLiteFarmStore(tmp_path / name)


def _enqueue(store, specs, campaign="c1", kind="test"):
    store.create_campaign(campaign, kind, len(specs), {})
    store.enqueue(campaign, [
        (position, spec_key(spec), spec, False, None, None)
        for position, spec in enumerate(specs)
    ])


def _logical(collector):
    """Snapshot minus harness wall-clock histograms (they time us)."""
    snap = collector.snapshot()
    snap["histograms"] = {
        name: value for name, value in snap["histograms"].items()
        if not name.startswith(SPAN_METRIC_PREFIX)
    }
    return snap


class TestOpenStore:
    def test_bare_path_and_sqlite_url_hit_the_same_file(self, tmp_path):
        path = tmp_path / "t.db"
        a = open_store(path)
        b = open_store(f"sqlite:////{str(path).lstrip('/')}")
        _enqueue(a, SPECS[:2])
        assert b.counts()["pending"] == 2
        a.close(), b.close()

    def test_store_instance_passes_through(self, tmp_path):
        store = _store(tmp_path)
        assert open_store(store) is store

    def test_memory_url_refused(self):
        with pytest.raises(FarmStoreError):
            SQLiteFarmStore(":memory:")

    def test_unknown_scheme_refused(self):
        with pytest.raises(FarmStoreError):
            open_store("postgres://nope/farm")


class TestStoreLifecycle:
    def test_claim_execute_complete_roundtrip(self, tmp_path):
        store = _store(tmp_path)
        _enqueue(store, SPECS[:3])
        policy = ResiliencePolicy()
        leases, reaped = store.claim_batch("w1", 2, 30.0, policy)
        assert reaped == []
        assert [lease.position for lease in leases] == [0, 1]
        assert all(lease.attempts == 1 for lease in leases)
        assert store.counts() == {
            "pending": 1, "leased": 2, "done": 0, "failed": 0,
            "quarantined": 0,
        }
        for lease in leases:
            assert store.complete(lease.token, {"pos": lease.position}, None)
        rows = store.campaign_rows("c1")
        assert [row["state"] for row in rows] == ["done", "done", "pending"]
        assert rows[0]["result"] == {"pos": 0}

    def test_duplicate_campaign_refused(self, tmp_path):
        store = _store(tmp_path)
        _enqueue(store, SPECS[:1])
        with pytest.raises(FarmStoreError):
            store.create_campaign("c1", "test", 1, {})

    def test_stale_token_completion_is_a_noop(self, tmp_path):
        """A zombie finishing after its lease was reaped changes nothing."""
        store = _store(tmp_path)
        _enqueue(store, SPECS[:1])
        policy = ResiliencePolicy(retries=3)
        (zombie,), _ = store.claim_batch("zombie", 1, 0.01, policy)
        time.sleep(0.05)
        (fresh,), reaped = store.claim_batch("fresh", 1, 30.0, policy)
        assert len(reaped) == 1 and not reaped[0].quarantined
        assert fresh.position == zombie.position
        assert fresh.attempts == 2
        assert not store.complete(zombie.token, "zombie result", None)
        assert store.fail(zombie.token, "zombie failure", policy) == "stale"
        assert store.complete(fresh.token, "fresh result", None)
        assert store.campaign_rows("c1")[0]["result"] == "fresh result"

    def test_fail_requeues_until_the_budget_quarantines(self, tmp_path):
        store = _store(tmp_path)
        _enqueue(store, SPECS[:1])
        policy = ResiliencePolicy(retries=1)  # two attempts total
        (lease,), _ = store.claim_batch("w1", 1, 30.0, policy)
        assert store.fail(lease.token, "boom", policy) == "retry"
        assert store.counts()["failed"] == 1
        (lease,), _ = store.claim_batch("w1", 1, 30.0, policy)
        assert lease.attempts == 2
        assert store.fail(lease.token, "boom again", policy) == "quarantined"
        row = store.campaign_rows("c1")[0]
        assert row["state"] == "quarantined"
        assert "boom again" in row["failure"]

    def test_expired_reap_quarantines_an_exhausted_trial(self, tmp_path):
        store = _store(tmp_path)
        _enqueue(store, SPECS[:1])
        policy = ResiliencePolicy()  # one attempt: a lost lease exhausts it
        store.claim_batch("doomed", 1, 0.01, policy)
        time.sleep(0.05)
        leases, reaped = store.claim_batch("next", 1, 30.0, policy)
        assert leases == []
        assert len(reaped) == 1 and reaped[0].quarantined
        assert store.counts()["quarantined"] == 1

    def test_claims_are_scoped_by_campaign(self, tmp_path):
        store = _store(tmp_path)
        _enqueue(store, SPECS[:2], campaign="a")
        _enqueue(store, SPECS[2:4], campaign="b")
        policy = ResiliencePolicy()
        leases, _ = store.claim_batch("w1", 10, 30.0, policy, campaign="b")
        assert {lease.campaign for lease in leases} == {"b"}
        assert store.counts("a")["pending"] == 2

    def test_status_renders(self, tmp_path):
        store = _store(tmp_path)
        _enqueue(store, SPECS[:4])
        store.claim_batch("w1", 1, 30.0, ResiliencePolicy())
        status = store.status()
        assert status["remaining"] == 4
        assert status["workers"] == {"w1": 1}
        text = render_status(status)
        assert "pending=3" in text and "w1" in text and "c1" in text


class TestClaimConcurrency:
    def test_four_threads_never_double_lease(self, tmp_path):
        """Satellite: hammer ``claim_batch`` from 4 threads — every trial
        is leased exactly once."""
        store = _store(tmp_path)
        _enqueue(store, [
            SetAgreementTrialSpec(3, 1, seed=s, stabilization_time=0)
            for s in range(40)
        ])
        policy = ResiliencePolicy()
        claimed, errors = [], []
        lock = threading.Lock()

        def hammer(worker):
            try:
                while True:
                    leases, _ = store.claim_batch(worker, 3, 30.0, policy)
                    if not leases:
                        return
                    with lock:
                        claimed.extend(
                            (lease.campaign, lease.position)
                            for lease in leases
                        )
                    for lease in leases:
                        store.complete(lease.token, None, None)
            except Exception as exc:  # pragma: no cover - fails the test
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(f"w{i}",))
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert len(claimed) == 40
        assert len(set(claimed)) == 40  # no double-lease, ever
        assert store.counts()["done"] == 40

    def test_expired_lease_reclaimed_exactly_once(self, tmp_path):
        """Satellite: four concurrent claimers race for one expired
        lease — exactly one wins it."""
        store = _store(tmp_path)
        _enqueue(store, SPECS[:1])
        policy = ResiliencePolicy(retries=3)
        store.claim_batch("dead", 1, 0.01, policy)
        time.sleep(0.05)
        wins, barrier = [], threading.Barrier(4)
        lock = threading.Lock()

        def race(worker):
            barrier.wait()
            leases, reaped = store.claim_batch(worker, 5, 30.0, policy)
            with lock:
                wins.append((worker, leases, reaped))

        threads = [
            threading.Thread(target=race, args=(f"w{i}",)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        winners = [w for w, leases, _ in wins if leases]
        reapers = [w for w, _, reaped in wins if reaped]
        assert len(winners) == 1
        assert len(reapers) == 1
        (_, (lease,), _), = [w for w in wins if w[1]]
        assert lease.attempts == 2


class TestWorkerDrain:
    def test_serial_worker_matches_run_trials(self, tmp_path):
        baseline = run_trials(SPECS, jobs=1)
        store = _store(tmp_path)
        submitted = submit_campaign(store, SPECS, campaign="par")
        assert submitted["pending"] == len(SPECS)
        stats = FarmWorker(store, lease_ttl=5.0).drain()
        assert stats["completed"] == len(SPECS)
        assert stats["stale"] == 0
        results, info = collect_results(store, "par")
        assert results == baseline
        assert info["completed"] == len(SPECS)

    def test_store_backend_telemetry_parity(self, tmp_path):
        serial = MetricsCollector()
        baseline = run_trials(SPECS, jobs=1, collector=serial)
        farm = MetricsCollector()
        results = run_trials(
            SPECS, jobs=1, collector=farm,
            store=str(tmp_path / "farm.db"),
        )
        assert results == baseline
        assert _logical(farm) == _logical(serial)

    def test_store_and_journal_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(StoreJournalConflictError):
            run_trials(
                SPECS[:1], store=str(tmp_path / "s.db"),
                journal=str(tmp_path / "j.jsonl"),
            )

    def test_pooled_worker_matches_serial(self, tmp_path):
        store = _store(tmp_path)
        submit_campaign(store, SPECS, campaign="pooled")
        stats = FarmWorker(store, jobs=2, lease_ttl=10.0).drain()
        assert stats["completed"] == len(SPECS)
        results, _ = collect_results(store, "pooled")
        assert results == run_trials(SPECS, jobs=1)

    def test_failing_trials_quarantine_and_collect_partial(self, tmp_path):
        store = _store(tmp_path)
        specs = SPECS[:2] + [BROKEN]
        submit_campaign(store, specs, campaign="broken")
        policy = ResiliencePolicy(retries=1, backoff=0.0)
        stats = FarmWorker(store, policy=policy, lease_ttl=5.0).drain()
        assert stats["completed"] == 2
        assert stats["failed"] == 1  # the retry round
        assert stats["quarantined"] == 1
        quarantine = QuarantineReport()
        results, info = collect_results(store, "broken",
                                        quarantine=quarantine)
        assert results[:2] == run_trials(SPECS[:2], jobs=1)
        assert results[2] is None
        assert info["quarantined"] == 1
        assert len(quarantine) == 1
        assert quarantine.entries[0].attempts == 2

    def test_collect_while_in_flight_raises(self, tmp_path):
        store = _store(tmp_path)
        submit_campaign(store, SPECS[:2], campaign="open")
        with pytest.raises(CampaignIncompleteError):
            collect_results(store, "open")
        results, info = collect_results(store, "open", strict=False)
        assert results == [None, None]
        assert info["unfinished"] == 2

    def test_max_idle_exits_while_another_worker_holds_leases(
            self, tmp_path):
        store = _store(tmp_path)
        submit_campaign(store, SPECS[:1], campaign="held")
        store.claim_batch("other", 1, 30.0, ResiliencePolicy())
        worker = FarmWorker(store, poll=0.01, max_idle=0.05)
        stats = worker.drain()
        assert stats["claimed"] == 0


class TestCacheAsSharedTier:
    def test_second_submit_is_all_cache_hits(self, tmp_path):
        cache = TrialCache(tmp_path / "cache")
        first = _store(tmp_path, "first.db")
        submit_campaign(first, SPECS, campaign="cold", cache=cache)
        FarmWorker(first, cache=cache, lease_ttl=5.0).drain()
        cold, _ = collect_results(first, "cold")

        second = _store(tmp_path, "second.db")
        submitted = submit_campaign(second, SPECS, campaign="warm",
                                    cache=cache)
        assert submitted["cache_hits"] == len(SPECS)
        assert submitted["pending"] == 0
        # nothing to drain: the campaign is complete on arrival
        warm, info = collect_results(second, "warm")
        assert warm == cold
        assert info["cached"] == len(SPECS)

    def test_cached_rows_report_cached_telemetry(self, tmp_path):
        cache = TrialCache(tmp_path / "cache")
        first = _store(tmp_path, "first.db")
        submit_campaign(first, SPECS, campaign="cold", cache=cache)
        FarmWorker(first, cache=cache, lease_ttl=5.0).drain()

        second = _store(tmp_path, "second.db")
        submit_campaign(second, SPECS, campaign="warm", cache=cache)
        collector = MetricsCollector()
        collect_results(second, "warm", collector=collector)
        counters = collector.snapshot()["counters"]
        assert counters["trials_cached"] == {"set_agreement": len(SPECS)}
        assert counters["trials_completed"] == {}


class TestFarmEvents:
    def test_claims_and_reaps_reach_the_metrics_registry(self, tmp_path):
        store = _store(tmp_path)
        submit_campaign(store, SPECS[:3], campaign="seen")
        # a dead worker's lease, ready to reap
        policy = ResiliencePolicy(retries=2)
        store.claim_batch("dead", 1, 0.01, policy)
        time.sleep(0.05)
        collector = MetricsCollector()
        claims, reaps = [], []
        collector.bus.subscribe(claims.append, (FarmTrialClaimed,))
        collector.bus.subscribe(reaps.append, (FarmLeaseExpired,))
        stats = FarmWorker(store, policy=policy, bus=collector.bus,
                           lease_ttl=5.0).drain()
        assert stats["completed"] == 3
        assert stats["reaped"] == 1
        assert len(reaps) == 1 and reaps[0].worker == "dead"
        assert len(claims) == stats["claimed"]
        counters = collector.snapshot()["counters"]
        assert sum(counters["farm_trials_claimed"].values()) == \
            stats["claimed"]
        assert counters["farm_leases_expired"] == {"dead": 1}


def _worker_cmd(store_path, *extra):
    return [
        sys.executable, "-m", "repro", "worker",
        "--store", f"sqlite:////{str(store_path).lstrip('/')}",
        "--no-cache", *extra,
    ]


def _worker_env():
    src = str(Path(__file__).resolve().parents[1] / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


class TestWorkerDeathRecovery:
    def test_killed_worker_loses_no_trial_and_duplicates_none(
            self, tmp_path):
        """Satellite: a worker dies mid-batch holding leases; after
        expiry a second worker reclaims and the campaign finishes
        byte-identical to the serial baseline."""
        baseline = run_trials(SPECS, jobs=1)
        store_path = tmp_path / "crash.db"
        store = SQLiteFarmStore(store_path)
        submit_campaign(store, SPECS, campaign="crashy")

        proc = subprocess.run(
            _worker_cmd(store_path, "--lease-ttl", "0.5",
                        "--batch-size", "4",
                        "--self-test-crash-after", "2"),
            env=_worker_env(), capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == CRASH_EXIT_CODE, proc.stderr
        counts = store.counts()
        assert counts["done"] == 2
        assert counts["leased"] == 2  # the rest of the dead batch

        policy = ResiliencePolicy(retries=2, backoff=0.0)
        recovery = FarmWorker(store, policy=policy, lease_ttl=0.5,
                              poll=0.05)
        stats = recovery.drain()
        assert stats["reaped"] == 2  # both abandoned leases, once each
        assert stats["stale"] == 0
        counts = store.counts()
        assert counts["done"] == len(SPECS)
        assert counts["pending"] == counts["leased"] == 0
        assert counts["failed"] == counts["quarantined"] == 0

        results, info = collect_results(store, "crashy")
        assert results == baseline  # no loss, no duplicates, same bytes
        assert info["completed"] == len(SPECS)


class TestCli:
    def test_sweep_store_refuses_resume_journal(self, tmp_path, capsys):
        from repro.cli import main

        code = main([
            "sweep", "set-agreement", "--sizes", "3", "--seeds", "0",
            "--stabilizations", "0", "--no-cache",
            "--store", f"sqlite:////{str(tmp_path / 's.db').lstrip('/')}",
            "--resume", str(tmp_path / "j.jsonl"),
        ])
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_submit_status_worker_results_flow(self, tmp_path, capsys):
        from repro.cli import main

        url = f"sqlite:////{str(tmp_path / 'cli.db').lstrip('/')}"
        code = main([
            "submit", "set-agreement", "--sizes", "3", "--seeds", "0,1",
            "--stabilizations", "0", "--no-cache",
            "--store", url, "--campaign", "cli", "--json",
        ])
        assert code == 0
        import json
        submitted = json.loads(capsys.readouterr().out)
        assert submitted["trials"] == 2 and submitted["pending"] == 2

        assert main(["farm", "status", "--store", url, "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["states"]["pending"] == 2

        code = main([
            "worker", "--store", url, "--no-cache", "--json",
        ])
        assert code == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["completed"] == 2

        csv_path = tmp_path / "cli.csv"
        code = main([
            "farm", "results", "--store", url, "--campaign", "cli",
            "--csv", str(csv_path),
        ])
        assert code == 0
        assert "properties: OK" in capsys.readouterr().out
        assert csv_path.exists()

    def test_submit_duplicate_campaign_is_a_usage_error(
            self, tmp_path, capsys):
        from repro.cli import main

        url = f"sqlite:////{str(tmp_path / 'dup.db').lstrip('/')}"
        base = [
            "submit", "set-agreement", "--sizes", "3", "--seeds", "0",
            "--stabilizations", "0", "--no-cache",
            "--store", url, "--campaign", "dup",
        ]
        assert main(base) == 0
        capsys.readouterr()
        assert main(base) == 2
        assert "dup" in capsys.readouterr().err
