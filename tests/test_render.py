"""Tests for the trace renderer."""

from repro.analysis import describe_step, render_summary, render_timeline
from repro.runtime import (
    BOT,
    ConsensusPropose,
    Decide,
    Emit,
    Nop,
    QueryFD,
    Read,
    SnapshotScan,
    SnapshotUpdate,
    Write,
)
from repro.runtime.trace import StepRecord, Trace


def _trace(*records):
    trace = Trace()
    for r in records:
        trace.record(r)
    return trace


class TestDescribeStep:
    def test_read(self):
        line = describe_step(StepRecord(3, 0, Read("x"), 7))
        assert line == "t=3 p0 R('x') -> 7"

    def test_write(self):
        assert "W('x') = 'v'" in describe_step(
            StepRecord(0, 1, Write("x", "v"), None))

    def test_snapshot_ops(self):
        assert "U('s'[2])" in describe_step(
            StepRecord(0, 0, SnapshotUpdate("s", 2, 1), None))
        assert "S('s') ->" in describe_step(
            StepRecord(0, 0, SnapshotScan("s"), (BOT,)))

    def test_fd_query_with_set(self):
        line = describe_step(StepRecord(5, 2, QueryFD(), frozenset({0, 2})))
        assert "FD? -> {0,2}" in line

    def test_decide_and_emit(self):
        assert "DECIDE" in describe_step(StepRecord(0, 0, Decide("v"), None))
        assert "EMIT" in describe_step(StepRecord(0, 0, Emit("v"), None))

    def test_consensus_and_nop(self):
        assert "C(" in describe_step(
            StepRecord(0, 0, ConsensusPropose("c", 1), 1))
        assert describe_step(StepRecord(2, 1, Nop(), None)).endswith("nop")

    def test_long_values_truncated(self):
        line = describe_step(StepRecord(0, 0, Write("x", "y" * 100), None))
        assert "…" in line and len(line) < 80


class TestTimeline:
    def test_empty(self):
        assert render_timeline(Trace(), 2) == "(empty trace)"

    def test_one_lane_per_process(self):
        trace = _trace(
            StepRecord(0, 0, Write("x", 1), None),
            StepRecord(1, 1, Read("x"), 1),
            StepRecord(2, 2, Decide(1), None),
        )
        out = render_timeline(trace, 3)
        lines = out.splitlines()
        assert len(lines) == 4  # header + 3 lanes
        assert lines[1].startswith("p0 |w")
        assert "r" in lines[2]
        assert "D" in lines[3]

    def test_compression_buckets(self):
        trace = _trace(*[
            StepRecord(t, 0, Nop(), None) for t in range(500)
        ])
        out = render_timeline(trace, 1, width=50)
        lane = out.splitlines()[1]
        assert len(lane) <= 5 + 50 + 1  # "p0 |" + columns + "|"

    def test_decision_glyph_wins_bucket(self):
        trace = _trace(
            StepRecord(0, 0, Decide("v"), None),
            StepRecord(1, 0, Nop(), None),
        )
        out = render_timeline(trace, 1, width=1)
        assert "D" in out


class TestSummary:
    def test_counts(self):
        trace = _trace(
            StepRecord(0, 0, Write("x", 1), None),
            StepRecord(1, 0, Read("x"), 1),
            StepRecord(2, 1, QueryFD(), "d"),
            StepRecord(3, 1, Decide("d"), None),
        )
        out = render_summary(trace, 2)
        lines = out.splitlines()
        assert len(lines) == 3
        # p0: 1 read, 1 write; p1: 1 query, 1 decide.
        assert lines[1].split()[1:3] == ["1", "1"]
        assert lines[2].split()[-1] == "2"  # total for p1
