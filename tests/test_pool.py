"""Tests for the persistent worker pool and batched dispatch.

The contracts under test: one pool per process (``pool_spawns == 1``
across consecutive sweeps), batched messages and cache round trips
(``≤ ceil(trials / batch)``), input-order reassembly no matter the
completion order, queue-wait spans that measure *queueing* (not the
batch's own execution), and worker recycling — a dead slot is reforked
in place instead of tearing down the pool.
"""

import dataclasses
import pickle
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import ChaosTrialSpec
from repro.obs import MetricsCollector, TrialCompleted
from repro.perf import (
    DispatchStats,
    QuarantineReport,
    SetAgreementTrialSpec,
    TrialCache,
    WorkerCrashError,
    reset_shared_pool,
    run_trials,
    shared_pool,
    spec_key,
)
from repro.perf.executor import _chunk_indices
from repro.perf.pool import PoolTask, _execute_batch

SPECS = [
    SetAgreementTrialSpec(3, 1, seed=seed, stabilization_time=0)
    for seed in range(6)
]


def _crasher(seed: int) -> ChaosTrialSpec:
    return ChaosTrialSpec("fig1", 3, seed=seed, lying_prefix=5,
                          max_steps=50_000, sabotage="crash")


def _quick(seed: int) -> ChaosTrialSpec:
    return ChaosTrialSpec("fig1", 3, seed=seed, lying_prefix=5,
                          max_steps=50_000)


class TestChunkIndices:
    def test_empty_grid_means_no_chunks(self):
        assert _chunk_indices(0, jobs=4, chunk_size=None) == []
        assert _chunk_indices(0, jobs=1, chunk_size=3) == []

    def test_chunk_size_larger_than_n_is_one_chunk(self):
        chunks = _chunk_indices(5, jobs=2, chunk_size=100)
        assert chunks == [range(0, 5)]

    def test_chunk_size_one_is_all_singletons(self):
        chunks = _chunk_indices(4, jobs=2, chunk_size=1)
        assert chunks == [range(0, 1), range(1, 2), range(2, 3), range(3, 4)]

    def test_default_targets_two_chunks_per_worker(self):
        chunks = _chunk_indices(60, jobs=4, chunk_size=None)
        assert len(chunks) == 8
        assert [i for chunk in chunks for i in chunk] == list(range(60))

    def test_empty_pending_set_never_touches_the_pool(self):
        reset_shared_pool()
        dispatch = DispatchStats()
        assert run_trials([], jobs=4, dispatch=dispatch) == []
        assert dispatch.pool_spawns == 0
        assert dispatch.batches == 0


class TestPoolReuse:
    def test_one_pool_spawn_across_consecutive_sweeps(self):
        reset_shared_pool()
        first, second = DispatchStats(), DispatchStats()
        run_trials(SPECS, jobs=2, dispatch=first)
        run_trials(SPECS, jobs=2, dispatch=second)
        assert first.pool_spawns == 1
        assert first.worker_spawns == 2
        assert second.pool_spawns == 0
        assert second.pool_reuses >= 1
        assert second.worker_spawns == 0

    def test_reset_forces_a_cold_spawn(self):
        reset_shared_pool()
        run_trials(SPECS[:2], jobs=2)
        reset_shared_pool()
        again = DispatchStats()
        run_trials(SPECS[:2], jobs=2, dispatch=again)
        assert again.pool_spawns == 1

    def test_pool_grows_but_never_respawns(self):
        reset_shared_pool()
        grow = DispatchStats()
        run_trials(SPECS, jobs=2, dispatch=grow)
        assert grow.worker_spawns == 2
        more = DispatchStats()
        run_trials(SPECS, jobs=4, dispatch=more)
        assert more.pool_spawns == 0
        assert more.worker_spawns == 2  # only the two new slots
        assert shared_pool().size() == 4

    def test_batch_accounting_matches_chunking(self):
        reset_shared_pool()
        dispatch = DispatchStats()
        run_trials(SPECS, jobs=2, chunk_size=2, dispatch=dispatch)
        assert dispatch.batches == 3  # 6 trials / 2 per batch
        assert dispatch.trials == len(SPECS)
        assert dispatch.pickle_bytes_out > 0
        assert dispatch.pickle_bytes_in > 0
        per = dispatch.per_trial()
        assert per["messages"] == 1.0  # 2 msgs × 3 batches / 6 trials
        assert dispatch.dispatch_events() == 1 + 2 * 3


class TestCacheBatching:
    def test_cold_then_warm_uses_batched_round_trips(self, tmp_path):
        reset_shared_pool()
        cache = TrialCache(tmp_path / "cache")
        cold = DispatchStats()
        cold_results = run_trials(SPECS, jobs=2, chunk_size=3, cache=cache,
                                  dispatch=cold)
        # one get_many for the grid; one put_many per batch (2 batches)
        assert cold.cache_get_round_trips == 1
        assert cold.cache_put_round_trips == 2
        assert cold.cache_stores == len(SPECS)
        assert cache.misses == len(SPECS)
        warm = DispatchStats()
        warm_results = run_trials(SPECS, jobs=2, chunk_size=3, cache=cache,
                                  dispatch=warm)
        assert warm_results == cold_results
        assert warm.cache_get_round_trips == 1
        assert warm.cache_put_round_trips == 0
        assert warm.batches == 0  # fully warm grid never touches the pool
        assert cache.hits == len(SPECS)

    def test_get_many_matches_individual_gets(self, tmp_path):
        alpha = TrialCache(tmp_path / "a")
        beta = TrialCache(tmp_path / "b")
        for cache in (alpha, beta):
            cache.put(SPECS[0], "r0")
            cache.put(SPECS[2], "r2")
        many = alpha.get_many(SPECS[:4])
        singles = [beta.get(spec) for spec in SPECS[:4]]
        assert many == singles == ["r0", None, "r2", None]
        assert (alpha.hits, alpha.misses) == (beta.hits, beta.misses)
        assert alpha.get_round_trips == 1
        assert beta.get_round_trips == 4

    def test_get_many_drops_corrupt_entries_like_get(self, tmp_path, caplog):
        cache = TrialCache(tmp_path / "cache")
        cache.put(SPECS[0], "good")
        victim = cache._path(spec_key(SPECS[1]))
        victim.parent.mkdir(parents=True, exist_ok=True)
        victim.write_bytes(b"not a pickle")
        with caplog.at_level("WARNING", logger="repro.perf.cache"):
            results = cache.get_many(SPECS[:2])
        assert results == ["good", None]
        assert cache.corrupt == 1
        assert not victim.exists()

    def test_put_many_equals_individual_puts(self, tmp_path):
        grouped = TrialCache(tmp_path / "grouped")
        grouped.put_many((spec, f"r{i}") for i, spec in enumerate(SPECS))
        assert grouped.stores == len(SPECS)
        assert grouped.put_round_trips == 1
        assert [grouped.get(spec) for spec in SPECS] == \
            [f"r{i}" for i in range(len(SPECS))]
        assert grouped.put_many([]) is None
        assert grouped.put_round_trips == 1  # empty batch: no disk visit


class TestOrderIndependence:
    @settings(max_examples=8, deadline=None)
    @given(
        seeds=st.lists(st.integers(0, 50), min_size=2, max_size=8),
        chunk=st.integers(1, 4),
    )
    def test_shuffled_completion_reassembles_input_order(self, seeds, chunk):
        """chunk_size=1 w/ jobs=3 maximizes completion-order jitter; the
        results and per-trial events must still land in input order."""
        specs = [
            SetAgreementTrialSpec(3, 1, seed=s, stabilization_time=0)
            for s in seeds
        ]
        serial = run_trials(specs, jobs=1)
        collector = MetricsCollector()
        completed = []
        collector.bus.subscribe(completed.append, (TrialCompleted,))
        parallel = run_trials(specs, jobs=3, chunk_size=chunk,
                              collector=collector)
        assert parallel == serial
        # events fire in completion order — one per trial, no dupes
        assert len(completed) == len(specs)
        assert sorted(e.key for e in completed) == \
            sorted(spec_key(s)[:12] for s in specs)

    @settings(max_examples=4, deadline=None)
    @given(seeds=st.lists(st.integers(0, 50), min_size=2, max_size=6))
    def test_resilient_path_reassembles_input_order_too(self, seeds):
        specs = [
            SetAgreementTrialSpec(3, 1, seed=s, stabilization_time=0)
            for s in seeds
        ]
        serial = run_trials(specs, jobs=1, retries=1, backoff=0.0)
        collector = MetricsCollector()
        completed = []
        collector.bus.subscribe(completed.append, (TrialCompleted,))
        parallel = run_trials(specs, jobs=3, chunk_size=1, retries=1,
                              backoff=0.0, collector=collector)
        assert parallel == serial
        assert len(completed) == len(specs)
        assert sorted(e.key for e in completed) == \
            sorted(spec_key(s)[:12] for s in specs)


class TestQueueWaitSemantics:
    def test_batch_trials_share_one_dequeue_stamp(self):
        """The satellite fix: trial k's queue_wait must not absorb trials
        1..k-1's execution.  Every trial in a batch reports the same
        submitted→dequeued wait (here ≈5s), not a cumulative one."""
        task = PoolTask(
            task_id=0, indices=(0, 1, 2), specs=tuple(SPECS[:3]),
            observed=True, submitted_at=time.time() - 5.0,
        )
        reply = _execute_batch(task, caches={})
        waits = [dict(telemetry.spans)["queue_wait"]
                 for _, telemetry in reply.items]
        assert all(5.0 <= w < 6.0 for w in waits)
        # identical stamp for the whole batch — the old per-chunk
        # submitted_at gave trial k an extra sum(exec of 0..k-1)
        assert max(waits) - min(waits) < 1e-9

    def test_reply_is_picklable_and_ordered(self):
        task = PoolTask(task_id=7, indices=(4, 5), specs=tuple(SPECS[4:6]),
                        observed=False, submitted_at=time.time())
        reply = pickle.loads(pickle.dumps(_execute_batch(task, caches={})))
        assert reply.task_id == 7
        assert len(reply.items) == 2
        assert reply.error is None
        serial = run_trials(SPECS[4:6], jobs=1)
        assert [outcome for outcome, _ in reply.items] == serial


class TestWorkerRecycling:
    def test_crash_recycles_the_slot_not_the_pool(self):
        reset_shared_pool()
        quarantine = QuarantineReport()
        dispatch = DispatchStats()
        specs = [_quick(0), _crasher(1), _quick(2)]
        results = run_trials(specs, jobs=2, retries=0, backoff=0.0,
                             quarantine=quarantine, dispatch=dispatch)
        assert results[1] is None
        assert results[0] is not None and results[2] is not None
        assert [e.index for e in quarantine.entries] == [1]
        assert "worker death" in quarantine.entries[0].reason
        assert dispatch.worker_recycles >= 1
        assert dispatch.pool_spawns == 1  # never a second pool
        # the recycled pool keeps serving the next sweep
        after = DispatchStats()
        again = run_trials(SPECS, jobs=2, dispatch=after)
        assert all(r is not None for r in again)
        assert after.pool_spawns == 0

    def test_plain_path_surfaces_worker_death_as_crash_error(self):
        reset_shared_pool()
        with pytest.raises(WorkerCrashError):
            run_trials([_quick(0), _crasher(1)], jobs=2, chunk_size=1)
        # the pool survives the crash for the next caller
        assert run_trials(SPECS[:2], jobs=2) == run_trials(SPECS[:2], jobs=1)

    def test_crashed_multispec_batch_does_not_charge_innocents(self):
        reset_shared_pool()
        quarantine = QuarantineReport()
        specs = [_quick(0), _crasher(1), _quick(2), _quick(3)]
        results = run_trials(specs, jobs=2, chunk_size=4, retries=0,
                             backoff=0.0, quarantine=quarantine)
        # one batch of 4 died; innocents re-ran uncharged and survived
        assert [e.index for e in quarantine.entries] == [1]
        assert [r is None for r in results] == [False, True, False, False]


class TestDispatchStats:
    def test_per_trial_and_event_math(self):
        stats = DispatchStats(pool_spawns=1, batches=4, trials=8,
                              cache_get_round_trips=1,
                              cache_put_round_trips=4)
        assert stats.dispatch_events() == 1 + 8 + 5
        per = stats.per_trial()
        assert per["events_per_trial"] == pytest.approx(14 / 8)
        assert per["messages"] == 1.0
        assert per["pool_spawns"] == pytest.approx(1 / 8)

    def test_to_dict_round_trips_every_field(self):
        stats = DispatchStats(batches=2, trials=3)
        data = stats.to_dict()
        assert data["batches"] == 2 and data["trials"] == 3
        assert set(data) == {
            f.name for f in dataclasses.fields(DispatchStats)
        }
