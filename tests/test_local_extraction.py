"""Tests for the locally-stable extraction (Sect. 6.2, footnote 2).

The paper's lower bounds also hold for detectors that are only *locally*
stable — each correct process eventually sticks to its own value.  The
local reduction emits ϕD(own value) directly; the extracted object is the
locally-stable Υf: every correct process eventually permanently outputs a
(possibly different) set that is not the correct set.
"""

import random

import pytest

from repro.core import (
    PhiMap,
    ShiftedPhiMap,
    locally_stable_outputs,
    make_local_extraction_protocol,
)
from repro.detectors import (
    EventuallyPerfectSpec,
    LocallyStableHistory,
    OmegaSpec,
    UpsilonFSpec,
    UpsilonSpec,
    omega_n,
)
from repro.failures import Environment, FailurePattern
from repro.runtime import RandomScheduler, Simulation, System


def run_local_extraction(spec, env, pattern, history, seed=0, steps=8_000):
    sim = Simulation(
        env.system, make_local_extraction_protocol(PhiMap(spec, env)),
        inputs={}, pattern=pattern, history=history,
    )
    sim.run(max_steps=steps, scheduler=RandomScheduler(seed))
    return sim


def assert_locally_legal(sim, env, pattern):
    """Each correct process's final output must individually satisfy Υf's
    value constraints (size, ≠ correct set); agreement is NOT required."""
    outputs = locally_stable_outputs(sim, pattern)
    assert outputs is not None, "per-process outputs did not stabilize"
    upsilon = UpsilonFSpec(env)
    for pid, value in outputs.items():
        assert upsilon.is_legal_stable_value(pattern, frozenset(value)), (
            f"p{pid} emits {sorted(value)}, correct={sorted(pattern.correct)}"
        )
    return outputs


class TestLocallyStableSources:
    def test_omega_with_divergent_leaders(self, system4):
        """Each correct process trusts a *different* correct leader."""
        env = Environment.wait_free(system4)
        spec = OmegaSpec(system4)
        pattern = FailurePattern.crash_at(system4, {3: 20})
        # Correct leaders only ({0,1,2}); ϕΩ(0) = {1} while ϕΩ(1) =
        # ϕΩ(2) = {0}, so the emitted sets genuinely diverge.
        history = LocallyStableHistory(
            {0: 0, 1: 1, 2: 2, 3: 0}, stabilization_time=40,
        )
        sim = run_local_extraction(spec, env, pattern, history, seed=1)
        outputs = assert_locally_legal(sim, env, pattern)
        # Outputs genuinely differ across processes — the globally-stable
        # Fig. 3 reduction could never produce this.
        assert len({frozenset(v) for v in outputs.values()}) > 1

    def test_upsilon_with_divergent_sets(self, system4):
        env = Environment.wait_free(system4)
        spec = UpsilonSpec(system4)
        pattern = FailurePattern.crash_at(system4, {3: 10})
        history = LocallyStableHistory(
            {
                0: frozenset({0}),
                1: frozenset({0, 3}),
                2: frozenset({1, 3}),
                3: frozenset({2}),
            },
            stabilization_time=0,
        )
        sim = run_local_extraction(spec, env, pattern, history, seed=2)
        outputs = assert_locally_legal(sim, env, pattern)
        # ϕΥ is the identity, so each process republishes its own view.
        assert frozenset(outputs[0]) == frozenset({0})
        assert frozenset(outputs[1]) == frozenset({0, 3})

    @pytest.mark.parametrize("seed", range(4))
    def test_sampled_locally_stable_histories(self, system4, seed):
        env = Environment.wait_free(system4)
        spec = OmegaSpec(system4)
        rng = random.Random(seed)
        pattern = FailurePattern.random(system4, rng, max_crash_time=30)
        history = spec.sample_locally_stable_history(
            pattern, rng, stabilization_time=50
        )
        sim = run_local_extraction(spec, env, pattern, history, seed=seed)
        assert_locally_legal(sim, env, pattern)

    def test_globally_stable_source_still_works(self, system4):
        """Globally stable histories are a special case: outputs agree."""
        env = Environment.wait_free(system4)
        spec = omega_n(system4)
        rng = random.Random(9)
        pattern = FailurePattern.crash_at(system4, {1: 15})
        history = spec.sample_history(pattern, rng, stabilization_time=30)
        sim = run_local_extraction(spec, env, pattern, history, seed=9)
        outputs = assert_locally_legal(sim, env, pattern)
        assert len({frozenset(v) for v in outputs.values()}) == 1


class TestFResilient:
    def test_diamond_p_in_e2(self):
        system = System(5)
        env = Environment(system, 2)
        spec = EventuallyPerfectSpec(system)
        pattern = FailurePattern.crash_at(system, {0: 10, 4: 20})
        # ◇P's stable value is forced, so local stability = global here.
        history = LocallyStableHistory(
            {p: frozenset({0, 4}) for p in system.pids},
            stabilization_time=40,
        )
        sim = run_local_extraction(spec, env, pattern, history, seed=3)
        outputs = assert_locally_legal(sim, env, pattern)
        for value in outputs.values():
            assert len(value) >= env.min_correct


class TestWidthRestriction:
    def test_w_positive_rejected_at_runtime(self, system3):
        env = Environment.wait_free(system3)
        spec = OmegaSpec(system3)
        phi = ShiftedPhiMap(PhiMap(spec, env), 1)
        sim = Simulation(
            system3, make_local_extraction_protocol(phi), inputs={},
            history=spec.sample_history(
                FailurePattern.failure_free(system3), random.Random(0)
            ),
        )
        with pytest.raises(ValueError, match="w\\(σ\\) = 0"):
            sim.step(0)
