"""Tests for infrastructure chaos (``repro.chaos.infra``) and friends.

The contracts under test: a fault plan is seeded/picklable/validated
and stays inside the retry safety envelope; injected ``database is
locked`` storms are retried with jittered backoff instead of crashing
the worker; injected cache ENOSPC degrades the cache to read-only
(``cache_degraded == 1``) while the trial still succeeds; a worker that
cannot heartbeat abandons its leases cleanly; the campaign ledger
survives a torn-tail append losing nothing; the crash-consistency
checker passes seeded kill-point runs byte-identical to a pristine
serial baseline and flags a sabotaged (duplicate ``done`` row) store
with a structured violation report — locally, through the
``faulty-infra`` audit oracle, and through the ``repro chaos infra``
exit-code contract.
"""

import pickle
import random
import sqlite3

import pytest

from repro.chaos.infra import (
    KILL_BARRIERS,
    CrashConsistencyChecker,
    FaultyCache,
    FaultyStore,
    InfraFaultPlan,
    SimulatedPowerCut,
    check_ledger_survives_tear,
    check_store_invariants,
    default_infra_specs,
    result_bytes,
    sabotage_duplicate_done,
    tear_ledger_tail,
)
from repro.farm import FarmWorker, RetryingStore, SQLiteFarmStore, submit_campaign
from repro.farm.worker import _Heartbeat
from repro.obs.campaign import CampaignLedger, CampaignRecord
from repro.obs.metrics import MetricsCollector
from repro.perf import ResiliencePolicy, spec_key
from repro.perf.resilience import guarded_execute

SPECS = default_infra_specs(3)

POLICY = ResiliencePolicy(retries=2, backoff=0.0)

FAST_RETRY = ResiliencePolicy(backoff=0.001, max_backoff=0.01, jitter=1.0)


def _enqueue(store, specs, campaign="c1"):
    store.create_campaign(campaign, "test", len(specs), {})
    store.enqueue(campaign, [
        (position, spec_key(spec), spec, False, None, None)
        for position, spec in enumerate(specs)
    ])


class TestInfraFaultPlan:
    def test_severity_constructors_round_trip(self):
        for plan in (InfraFaultPlan.light(7), InfraFaultPlan.max_severity(7)):
            assert plan.any_active
            assert plan == InfraFaultPlan.from_dict(plan.to_dict())
            assert plan == pickle.loads(pickle.dumps(plan))

    def test_default_plan_is_inert(self):
        assert not InfraFaultPlan().any_active

    def test_max_severity_is_seed_deterministic(self):
        assert InfraFaultPlan.max_severity(3) == InfraFaultPlan.max_severity(3)
        assert InfraFaultPlan.max_severity(3) != InfraFaultPlan.max_severity(4)
        assert InfraFaultPlan.max_severity(0).kill_barrier in KILL_BARRIERS

    def test_validation_rejects_out_of_envelope_knobs(self):
        with pytest.raises(ValueError):
            InfraFaultPlan(store_lock_rate=1.5)
        with pytest.raises(ValueError):
            InfraFaultPlan(store_lock_burst=9)  # beyond the retry budget
        with pytest.raises(ValueError):
            InfraFaultPlan(kill_barrier="between-everything")
        with pytest.raises(ValueError):
            InfraFaultPlan(kill_at=-1)

    def test_lock_bursts_stay_below_the_retry_budget(self):
        injector = InfraFaultPlan(
            seed=0, store_lock_rate=1.0, store_lock_burst=3
        ).build()
        outcomes = []
        for _ in range(8):
            try:
                injector.maybe_lock("claim")
                outcomes.append("ok")
            except sqlite3.OperationalError:
                outcomes.append("locked")
        # rate 1.0: exactly burst-many locks, then a forced success.
        assert outcomes == ["locked"] * 3 + ["ok"] + ["locked"] * 3 + ["ok"]


class TestJitteredBackoff:
    def test_default_schedule_is_bit_identical_without_jitter(self):
        policy = ResiliencePolicy(backoff=0.5, max_backoff=30.0)
        assert [policy.backoff_seconds(r) for r in range(4)] \
            == [0.5, 1.0, 2.0, 4.0]
        # An rng without jitter configured changes nothing.
        assert policy.backoff_seconds(1, random.Random(0)) == 1.0

    def test_full_jitter_stays_within_the_exponential_envelope(self):
        policy = ResiliencePolicy(backoff=0.5, max_backoff=30.0, jitter=1.0)
        rng = random.Random(42)
        delays = [policy.backoff_seconds(2, rng) for _ in range(50)]
        assert all(0.0 <= d <= 2.0 for d in delays)
        assert len(set(delays)) > 1  # actually spread out

    def test_jitter_without_rng_is_deterministic(self):
        policy = ResiliencePolicy(backoff=0.5, jitter=1.0)
        assert policy.backoff_seconds(1) == 1.0


class TestRetryingStore:
    def test_injected_lock_on_claim_is_retried_with_jittered_backoff(
        self, tmp_path
    ):
        inner = SQLiteFarmStore(tmp_path / "farm.db")
        _enqueue(inner, SPECS)
        injector = InfraFaultPlan(
            seed=1, store_lock_rate=1.0, store_lock_burst=2
        ).build()
        sleeps = []
        store = RetryingStore(
            FaultyStore(inner, injector), policy=FAST_RETRY,
            rng=random.Random(0), sleep=sleeps.append,
        )
        leases, _ = store.claim_batch("w", 2, 30.0, POLICY)
        assert len(leases) == 2
        assert store.retried == 2  # two injected locks, then success
        assert len(sleeps) == 2
        assert all(0.0 <= s <= FAST_RETRY.max_backoff for s in sleeps)
        inner.close()

    def test_non_transient_errors_pass_straight_through(self, tmp_path):
        inner = SQLiteFarmStore(tmp_path / "farm.db")

        class Schema:
            def counts(self, campaign=None):
                raise sqlite3.OperationalError("no such table: trials")

        store = RetryingStore(Schema(), policy=FAST_RETRY)
        with pytest.raises(sqlite3.OperationalError):
            store.counts()
        assert store.retried == 0
        inner.close()

    def test_exhausted_attempts_reraise_the_lock(self):
        class AlwaysLocked:
            def counts(self, campaign=None):
                raise sqlite3.OperationalError("database is locked")

        sleeps = []
        store = RetryingStore(AlwaysLocked(), policy=FAST_RETRY,
                              attempts=3, rng=random.Random(0),
                              sleep=sleeps.append)
        with pytest.raises(sqlite3.OperationalError):
            store.counts()
        assert store.retried == 2  # attempts - 1 sleeps, then re-raise
        assert len(sleeps) == 2

    def test_farm_worker_auto_wraps_its_store(self, tmp_path):
        inner = SQLiteFarmStore(tmp_path / "farm.db")
        worker = FarmWorker(inner, worker_id="w")
        assert isinstance(worker.store, RetryingStore)
        # ... but never double-wraps.
        again = FarmWorker(worker.store, worker_id="w")
        assert again.store is worker.store
        inner.close()


class TestCacheDegradation:
    def test_enospc_degrades_to_read_only_and_trial_still_succeeds(
        self, tmp_path
    ):
        store = SQLiteFarmStore(tmp_path / "farm.db")
        _enqueue(store, SPECS)
        injector = InfraFaultPlan(seed=0, cache_enospc_after=0).build()
        cache = FaultyCache(tmp_path / "cache", injector)
        worker = FarmWorker(store, worker_id="w", cache=cache,
                            policy=POLICY, poll=0.01)
        stats = worker.drain()
        # Every trial settled despite the cache losing its disk.
        assert stats["completed"] == len(SPECS)
        assert store.counts("c1")["done"] == len(SPECS)
        assert cache.cache_degraded == 1
        assert cache.degraded
        store.close()

    def test_degraded_cache_keeps_serving_reads(self, tmp_path):
        from repro.perf import TrialCache

        spec = SPECS[0]
        result = guarded_execute(spec)
        warm = TrialCache(tmp_path / "cache")
        warm.put(spec, result)
        injector = InfraFaultPlan(seed=0, cache_enospc_after=0).build()
        cache = FaultyCache(tmp_path / "cache", injector)
        cache.put(SPECS[1], guarded_execute(SPECS[1]))  # degrades
        assert cache.degraded
        assert cache.get(spec) == result  # reads still hit
        assert cache.get(SPECS[1]) is None  # the failed write stored nothing

    def test_truncated_entry_is_dropped_and_recomputed(self, tmp_path):
        from repro.perf import TrialCache

        spec = SPECS[0]
        warm = TrialCache(tmp_path / "cache")
        warm.put(spec, guarded_execute(spec))
        injector = InfraFaultPlan(seed=0, cache_truncate_rate=1.0).build()
        cache = FaultyCache(tmp_path / "cache", injector)
        assert cache.get(spec) is None  # torn on disk -> corrupt -> miss
        assert cache.corrupt == 1
        assert not cache._path(spec_key(spec)).exists()  # dropped


class TestKillBarriers:
    def test_power_cut_fires_at_the_seeded_crossing(self, tmp_path):
        store = SQLiteFarmStore(tmp_path / "farm.db")
        _enqueue(store, SPECS)
        plan = InfraFaultPlan(seed=0, kill_barrier="after-claim", kill_at=0)
        faulty = FaultyStore(store, plan.build())
        with pytest.raises(SimulatedPowerCut) as exc_info:
            faulty.claim_batch("w", 2, 30.0, POLICY)
        assert exc_info.value.barrier == "after-claim"
        # The claim itself committed before the cut: leases are durable,
        # exactly what a real torn process leaves behind.
        assert store.counts("c1")["leased"] == 2
        store.close()

    def test_power_cut_passes_through_the_retry_wrapper(self, tmp_path):
        store = SQLiteFarmStore(tmp_path / "farm.db")
        _enqueue(store, SPECS)
        plan = InfraFaultPlan(seed=0, kill_barrier="after-claim", kill_at=0)
        wrapped = RetryingStore(FaultyStore(store, plan.build()),
                                policy=FAST_RETRY)
        with pytest.raises(SimulatedPowerCut):
            wrapped.claim_batch("w", 2, 30.0, POLICY)
        store.close()


class TestHeartbeatLoss:
    def test_consecutive_misses_set_lost(self, tmp_path):
        class Unreachable:
            def heartbeat(self, tokens, ttl):
                raise sqlite3.OperationalError("database is locked")

        heartbeat = _Heartbeat(Unreachable(), lease_ttl=0.12, max_misses=3)
        heartbeat.track(["tok"])
        heartbeat.start()
        try:
            assert heartbeat.lost.wait(timeout=5.0)
        finally:
            heartbeat.stop()

    def test_lost_heartbeat_abandons_remaining_leases(self, tmp_path):
        store = SQLiteFarmStore(tmp_path / "farm.db")
        _enqueue(store, SPECS)
        worker = FarmWorker(store, worker_id="w", policy=POLICY, poll=0.01)
        leases, _ = worker.store.claim_batch("w", len(SPECS), 30.0, POLICY)
        heartbeat = _Heartbeat(worker.store, lease_ttl=30.0)
        heartbeat.track([lease.token for lease in leases])
        heartbeat.lost.set()  # the store went unreachable
        worker._run_serial(leases, heartbeat)
        assert worker.stats["abandoned"] == len(leases)
        assert worker.stats["completed"] == 0
        assert heartbeat.tracked() == []
        # Nothing settled: the rows are still leased and will expire.
        assert store.counts("c1")["leased"] == len(SPECS)
        store.close()


class TestLedgerTornTail:
    def test_append_survives_a_torn_tail_losing_nothing(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = CampaignLedger(path)
        ledger.append(CampaignRecord("sweep", "ok", started=1.0))
        ledger.append(CampaignRecord("sweep", "ok", started=2.0))
        tear_ledger_tail(path)
        # The next append must not glue onto the torn fragment.
        ledger.append(CampaignRecord("sweep", "ok", started=3.0))
        records = ledger.records()
        assert [record.started for record in records] == [1.0, 2.0, 3.0]
        # The torn tail is skipped as exactly one malformed line.
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 4
        assert sum(1 for line in lines if "torn-by-power-cut" in line) == 1

    def test_helper_asserts_the_same_contract(self, tmp_path):
        assert check_ledger_survives_tear(tmp_path / "ledger.jsonl") == []

    def test_kill_mid_append_loses_at_most_the_torn_record(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = CampaignLedger(path)
        ledger.append(CampaignRecord("sweep", "ok", started=1.0))
        # Simulate the writer dying partway through its own write() by
        # truncating the file mid-line, then reopening.
        raw = path.read_bytes()
        path.write_bytes(raw + raw[: len(raw) // 2])
        reopened = CampaignLedger(path)
        assert [r.started for r in reopened.records()] == [1.0]
        reopened.append(CampaignRecord("sweep", "ok", started=2.0))
        assert [r.started for r in reopened.records()] == [1.0, 2.0]


class TestStoreCloseErrors:
    def test_close_failure_is_logged_and_counted_not_swallowed(
        self, tmp_path, caplog
    ):
        store = SQLiteFarmStore(tmp_path / "farm.db")
        store._conn()

        class Broken:
            def close(self):
                raise sqlite3.ProgrammingError("already closed")

        store._all_conns.append(Broken())
        with caplog.at_level("WARNING", logger="repro.farm.store"):
            store.close()
        assert store.farm_store_errors == 1
        assert any("close failed" in record.message
                   for record in caplog.records)


class TestRequeue:
    def _quarantine_all(self, store, campaign="c1"):
        policy = ResiliencePolicy(retries=0)
        leases, _ = store.claim_batch("w", 99, 30.0, policy,
                                      campaign=campaign)
        for lease in leases:
            store.fail(lease.token, "boom", policy)
        return len(leases)

    def test_requeue_rearms_selected_positions(self, tmp_path):
        store = SQLiteFarmStore(tmp_path / "farm.db")
        _enqueue(store, SPECS)
        assert self._quarantine_all(store) == len(SPECS)
        assert store.requeue(campaign="c1", positions=[0]) == 1
        counts = store.counts("c1")
        assert counts["pending"] == 1
        assert counts["quarantined"] == len(SPECS) - 1
        rows = store.campaign_rows("c1")
        assert rows[0]["attempts"] == 0
        assert rows[0]["failure"] is None
        # The re-armed trial is claimable and completable again.
        leases, _ = store.claim_batch("w2", 5, 30.0, POLICY, campaign="c1")
        assert [lease.position for lease in leases] == [0]
        assert store.complete(leases[0].token, "result")
        store.close()

    def test_requeue_all_scopes_by_campaign(self, tmp_path):
        store = SQLiteFarmStore(tmp_path / "farm.db")
        _enqueue(store, SPECS, campaign="c1")
        _enqueue(store, SPECS[:2], campaign="c2")
        self._quarantine_all(store, "c1")
        self._quarantine_all(store, "c2")
        assert store.requeue(campaign="c2") == 2
        assert store.counts("c1")["quarantined"] == len(SPECS)
        assert store.counts("c2")["pending"] == 2
        assert store.requeue() == len(SPECS)  # the rest, store-wide
        store.close()

    def test_requeue_cli_verb(self, tmp_path, capsys):
        from repro.cli import main

        store = SQLiteFarmStore(tmp_path / "farm.db")
        _enqueue(store, SPECS)
        self._quarantine_all(store)
        store.close()
        code = main(["farm", "requeue", "--store",
                     f"sqlite:///{tmp_path}/farm.db", "--trial-id", "0",
                     "--trial-id", "1"])
        assert code == 0
        assert "re-armed 2" in capsys.readouterr().out
        reopened = SQLiteFarmStore(tmp_path / "farm.db")
        assert reopened.counts("c1")["pending"] == 2
        reopened.close()


class TestCrashConsistencyChecker:
    def test_seeded_kill_runs_match_the_pristine_baseline(self):
        collector = MetricsCollector()
        checker = CrashConsistencyChecker(
            SPECS, runs=3, seed=0, severity="max", bus=collector.bus
        )
        report = checker.run()
        assert report.ok, report.summary()
        assert report.kills == 3  # max severity always stages a cut
        assert report.injected.get("store:locked", 0) > 0
        counters = collector.snapshot()["counters"]
        assert counters["infra_faults_injected"]["store:kill"] == 3

    def test_light_severity_runs_clean_without_kills(self):
        report = CrashConsistencyChecker(
            SPECS, runs=2, seed=5, severity="light"
        ).run()
        assert report.ok, report.summary()
        assert report.kills == 0

    def test_sabotaged_store_is_detected_with_a_structured_report(self):
        report = CrashConsistencyChecker(
            SPECS, runs=1, seed=0, severity="max",
            sabotage="duplicate-done",
        ).run()
        assert not report.ok
        kinds = {violation.kind for violation in report.violations}
        assert "duplicate-result" in kinds
        assert "row-count" in kinds
        body = report.to_dict()
        assert body["ok"] is False
        assert all({"kind", "detail", "position", "run"}
                   <= set(v) for v in body["violations"])

    def test_unknown_sabotage_and_empty_grid_refused(self):
        with pytest.raises(ValueError):
            CrashConsistencyChecker(SPECS, sabotage="set-fire")
        with pytest.raises(ValueError):
            CrashConsistencyChecker([])


class TestStoreInvariants:
    def _drained_store(self, tmp_path):
        store = SQLiteFarmStore(tmp_path / "farm.db")
        submit_campaign(store, SPECS, campaign="c1", kind="test")
        FarmWorker(store, worker_id="w", policy=POLICY, poll=0.01).drain()
        return store

    def test_clean_drain_has_no_violations(self, tmp_path):
        store = self._drained_store(tmp_path)
        baseline = [result_bytes(guarded_execute(spec)) for spec in SPECS]
        assert check_store_invariants(store, "c1", POLICY, baseline) == []
        store.close()

    def test_duplicate_done_row_is_flagged(self, tmp_path):
        store = self._drained_store(tmp_path)
        sabotage_duplicate_done(store, "c1")
        violations = check_store_invariants(store, "c1", POLICY)
        assert {"row-count", "duplicate-result"} \
            <= {violation.kind for violation in violations}
        store.close()

    def test_doctored_result_breaks_byte_identity(self, tmp_path):
        store = self._drained_store(tmp_path)
        conn = store._conn()
        conn.execute("BEGIN IMMEDIATE")
        conn.execute(
            "UPDATE trials SET result = ? WHERE campaign = 'c1'"
            " AND position = 1",
            (pickle.dumps("wrong", protocol=pickle.HIGHEST_PROTOCOL),),
        )
        conn.execute("COMMIT")
        baseline = [result_bytes(guarded_execute(spec)) for spec in SPECS]
        violations = check_store_invariants(store, "c1", POLICY, baseline)
        assert [violation.kind for violation in violations] \
            == ["result-mismatch"]
        assert violations[0].position == 1
        store.close()

    def test_lingering_lease_on_a_done_row_is_flagged(self, tmp_path):
        store = self._drained_store(tmp_path)
        conn = store._conn()
        conn.execute("BEGIN IMMEDIATE")
        conn.execute(
            "UPDATE trials SET lease_token = 'zombie', lease_worker = 'z'"
            " WHERE campaign = 'c1' AND position = 0",
        )
        conn.execute("COMMIT")
        violations = check_store_invariants(store, "c1", POLICY)
        assert [violation.kind for violation in violations] \
            == ["done-but-leased"]
        store.close()


class TestFaultyInfraOracle:
    def test_clean_case_and_sabotaged_case(self):
        from repro.audit.oracles import PAIRS_PER_CASE, run_case

        outcome = run_case("faulty-infra", 0, 13)
        assert outcome.ok
        assert outcome.trials == PAIRS_PER_CASE["faulty-infra"]
        sabotaged = run_case("faulty-infra", 0, 13, sabotage="infra-dup")
        assert not sabotaged.ok
        assert all(d.kind == "contract" for d in sabotaged.divergences)


class TestChaosInfraCli:
    def test_exit_code_contract(self, tmp_path, capsys):
        from repro.cli import main

        ledger = tmp_path / "ledger.jsonl"
        code = main(["chaos", "infra", "--seed", "0", "--runs", "2",
                     "--trials", "2", "--severity", "max",
                     "--ledger", str(ledger)])
        assert code == 0
        assert "OK" in capsys.readouterr().out
        records = CampaignLedger(ledger).records()
        assert len(records) == 1 and records[0].verdict == "ok"

        code = main(["chaos", "infra", "--seed", "0", "--runs", "1",
                     "--trials", "2", "--severity", "max",
                     "--sabotage", "duplicate-done", "--json"])
        assert code == 1
        import json

        body = json.loads(capsys.readouterr().out)
        assert body["ok"] is False
        assert body["violations"]
