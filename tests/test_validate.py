"""Tests for the independent run-axiom validator (Sect. 3.3 R1–R5)."""

import random

import pytest

from repro.analysis import RunValidator, validate_simulation
from repro.core import make_upsilon_set_agreement
from repro.detectors import ConstantHistory, ScriptedHistory, UpsilonSpec
from repro.failures import FailurePattern
from repro.runtime import (
    BOT,
    ConsensusPropose,
    Decide,
    Nop,
    QueryFD,
    RandomScheduler,
    Read,
    Simulation,
    SnapshotScan,
    SnapshotUpdate,
    System,
    Write,
)
from repro.runtime.trace import StepRecord, Trace


def _trace(*records):
    trace = Trace()
    for r in records:
        trace.record(r)
    return trace


@pytest.fixture
def validator(system3):
    pattern = FailurePattern.crash_at(system3, {2: 50})
    return RunValidator(pattern, ConstantHistory("d"), 3)


class TestReplayAxioms:
    def test_clean_register_history_passes(self, validator):
        trace = _trace(
            StepRecord(0, 0, Write("x", 1), None),
            StepRecord(1, 1, Read("x"), 1),
            StepRecord(2, 1, Read("ghost"), BOT),
        )
        assert validator.validate(trace) == []

    def test_r1_crashed_step_flagged(self, validator):
        trace = _trace(StepRecord(50, 2, Nop(), None))
        violations = validator.validate(trace)
        assert [v.axiom for v in violations] == ["R1-crash"]

    def test_r2_history_mismatch_flagged(self, validator):
        trace = _trace(StepRecord(0, 0, QueryFD(), "wrong"))
        violations = validator.validate(trace)
        assert [v.axiom for v in violations] == ["R2-history"]

    def test_r2_history_match_passes(self, validator):
        trace = _trace(StepRecord(3, 0, QueryFD(), "d"))
        assert validator.validate(trace) == []

    def test_r3_time_order_flagged(self, validator):
        trace = _trace(
            StepRecord(5, 0, Nop(), None),
            StepRecord(5, 1, Nop(), None),
        )
        violations = validator.validate(trace)
        assert [v.axiom for v in violations] == ["R3-order"]

    def test_r4_register_divergence_flagged(self, validator):
        trace = _trace(
            StepRecord(0, 0, Write("x", 1), None),
            StepRecord(1, 1, Read("x"), 99),
        )
        violations = validator.validate(trace)
        assert [v.axiom for v in violations] == ["R4-register"]

    def test_r4_snapshot_replay(self, validator):
        good = _trace(
            StepRecord(0, 0, SnapshotUpdate("s", 0, "a"), None),
            StepRecord(1, 1, SnapshotScan("s"), ("a", BOT, BOT)),
        )
        assert validator.validate(good) == []
        bad = _trace(
            StepRecord(0, 0, SnapshotUpdate("s", 0, "a"), None),
            StepRecord(1, 1, SnapshotScan("s"), (BOT, BOT, BOT)),
        )
        assert [v.axiom for v in validator.validate(bad)] == ["R4-snapshot"]

    def test_r4_consensus_replay(self, validator):
        good = _trace(
            StepRecord(0, 0, ConsensusPropose("c", "a"), "a"),
            StepRecord(1, 1, ConsensusPropose("c", "b"), "a"),
        )
        assert validator.validate(good) == []
        bad = _trace(
            StepRecord(0, 0, ConsensusPropose("c", "a"), "a"),
            StepRecord(1, 1, ConsensusPropose("c", "b"), "b"),
        )
        assert [v.axiom for v in validator.validate(bad)] == ["R4-consensus"]

    def test_violation_str(self, validator):
        trace = _trace(StepRecord(50, 2, Nop(), None))
        (violation,) = validator.validate(trace)
        assert "R1-crash" in str(violation) and "p2" in str(violation)


class TestFairness:
    def test_starvation_flagged(self, system3):
        """p1 steps once early, then starves for the rest of the run."""
        pattern = FailurePattern.failure_free(system3)
        validator = RunValidator(pattern, None, 3, fairness_window=5)
        records = [StepRecord(0, 1, Nop(), None)] + [
            StepRecord(1 + t, 0, Nop(), None) for t in range(15)
        ]
        violations = validator.validate(_trace(*records))
        assert any(
            v.axiom == "R5-fairness" and v.pid == 1 for v in violations
        )

    def test_interleaved_run_is_fair(self, system3):
        pattern = FailurePattern.failure_free(system3)
        validator = RunValidator(pattern, None, 3, fairness_window=6)
        records = [
            StepRecord(t, t % 3, Nop(), None) for t in range(30)
        ]
        assert validator.validate(_trace(*records)) == []

    def test_mid_run_gap_flagged(self, system3):
        pattern = FailurePattern.failure_free(system3)
        validator = RunValidator(pattern, None, 3, fairness_window=4)
        records = (
            [StepRecord(t, t % 3, Nop(), None) for t in range(6)]
            + [StepRecord(t, 0, Nop(), None) for t in range(6, 20)]
            + [StepRecord(20, 1, Nop(), None), StepRecord(21, 2, Nop(), None)]
            + [StepRecord(22 + t, t % 3, Nop(), None) for t in range(3)]
        )
        violations = validator.validate(_trace(*records))
        assert any(v.axiom == "R5-fairness" for v in violations)


class TestEndToEndValidation:
    """The engine's own runs must pass the independent validator."""

    @pytest.mark.parametrize("seed", range(5))
    def test_fig1_runs_satisfy_all_axioms(self, system4, seed):
        spec = UpsilonSpec(system4)
        rng = random.Random(seed)
        pattern = FailurePattern.random(system4, rng, max_crash_time=40)
        history = spec.sample_history(pattern, rng, stabilization_time=60)
        sim = Simulation(
            system4, make_upsilon_set_agreement(),
            inputs={p: f"v{p}" for p in system4.pids},
            pattern=pattern, history=history,
        )
        sim.run_until(Simulation.all_correct_decided, 500_000,
                      RandomScheduler(seed))
        assert validate_simulation(sim) == []

    def test_scripted_history_validates(self, system3):
        history = ScriptedHistory({(0, 0): "a"}, default="b")

        def proto(ctx, _):
            first = yield QueryFD()
            yield Decide(first)

        sim = Simulation(system3, proto,
                         inputs={p: None for p in system3.pids},
                         history=history)
        sim.run_until(Simulation.all_correct_decided, 100)
        assert validate_simulation(sim) == []

    def test_validator_catches_forged_trace(self, system3):
        """Tamper with a recorded response: the replay must notice."""
        def proto(ctx, _):
            yield Write("x", ctx.pid)
            got = yield Read("x")
            yield Decide(got)

        sim = Simulation(system3, proto,
                         inputs={p: None for p in system3.pids})
        sim.run_until(Simulation.all_correct_decided, 100)
        assert validate_simulation(sim) == []
        # Forge one read response.
        forged = Trace()
        for step in sim.trace.steps:
            if isinstance(step.op, Read) and forged.steps:
                forged.record(StepRecord(step.time, step.pid, step.op,
                                         "forged"))
            else:
                forged.record(step)
        validator = RunValidator(sim.pattern, sim.history, 3)
        assert any(
            v.axiom == "R4-register" for v in validator.validate(forged)
        )
