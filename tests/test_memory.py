"""Unit tests for the shared-memory substrate (Memory and object types)."""

import pytest

from repro.memory import (
    AtomicRegister,
    ConsensusObject,
    Memory,
    PrimitiveSnapshot,
    SWMRRegister,
)
from repro.runtime import (
    BOT,
    ConsensusPropose,
    MemoryError_,
    Nop,
    Read,
    SnapshotScan,
    SnapshotUpdate,
    System,
    Write,
)


@pytest.fixture
def memory(system3):
    return Memory(system3)


class TestAtomicRegister:
    def test_initial_value_is_bot(self):
        assert AtomicRegister().read() is BOT

    def test_write_read(self):
        r = AtomicRegister()
        r.write(7)
        assert r.read() == 7
        assert r.write_count == 1

    def test_custom_initial(self):
        assert AtomicRegister(initial=0).read() == 0


class TestSWMRRegister:
    def test_owner_may_write(self, memory):
        memory.create_swmr("r", writer=1)
        memory.execute(Write("r", "x"), pid=1)
        assert memory.execute(Read("r"), pid=0) == "x"

    def test_foreign_write_rejected(self, memory):
        memory.create_swmr("r", writer=1)
        with pytest.raises(MemoryError_, match="single-writer"):
            memory.execute(Write("r", "x"), pid=2)

    def test_anyone_may_read(self, memory):
        memory.create_swmr("r", writer=0, initial=7)
        for pid in range(3):
            assert memory.execute(Read("r"), pid=pid) == 7

    def test_direct_check(self):
        reg = SWMRRegister(writer=2)
        reg.check_writer(2)
        with pytest.raises(MemoryError_):
            reg.check_writer(0)


class TestPrimitiveSnapshot:
    def test_initial_scan_all_bot(self):
        s = PrimitiveSnapshot(3)
        assert s.scan() == (BOT, BOT, BOT)

    def test_update_then_scan(self):
        s = PrimitiveSnapshot(3)
        s.update(1, "x")
        assert s.scan() == (BOT, "x", BOT)

    def test_out_of_range_update(self):
        with pytest.raises(MemoryError_):
            PrimitiveSnapshot(2).update(2, "x")

    def test_scan_returns_copy(self):
        s = PrimitiveSnapshot(2)
        view = s.scan()
        s.update(0, 1)
        assert view == (BOT, BOT)


class TestConsensusObject:
    def test_first_proposal_wins(self):
        c = ConsensusObject(3)
        assert c.propose(0, "a") == "a"
        assert c.propose(1, "b") == "a"
        assert c.propose(2, "c") == "a"

    def test_same_process_may_repropose(self):
        c = ConsensusObject(1)
        assert c.propose(0, "a") == "a"
        assert c.propose(0, "b") == "a"

    def test_access_restriction(self):
        c = ConsensusObject(2)
        c.propose(0, "a")
        c.propose(1, "b")
        with pytest.raises(MemoryError_, match="distinct processes"):
            c.propose(2, "c")

    def test_m_must_be_positive(self):
        with pytest.raises(MemoryError_):
            ConsensusObject(0)


class TestMemoryDispatch:
    def test_lazy_register(self, memory):
        assert memory.execute(Read("r"), pid=0) is BOT
        memory.execute(Write("r", 5), pid=0)
        assert memory.execute(Read("r"), pid=1) == 5

    def test_lazy_snapshot(self, memory, system3):
        memory.execute(SnapshotUpdate("s", 2, "z"), pid=2)
        view = memory.execute(SnapshotScan("s"), pid=0)
        assert view == (BOT, BOT, "z")
        assert len(view) == system3.n_processes

    def test_lazy_consensus_default_m(self, memory):
        assert memory.execute(ConsensusPropose("c", "v"), pid=0) == "v"
        assert memory.execute(ConsensusPropose("c", "w"), pid=1) == "v"

    def test_type_mismatch(self, memory):
        memory.execute(Write("r", 1), pid=0)
        with pytest.raises(MemoryError_, match="expects PrimitiveSnapshot"):
            memory.execute(SnapshotScan("r"), pid=0)
        with pytest.raises(MemoryError_, match="expects AtomicRegister"):
            memory.create_snapshot("s2")
            memory.execute(Read("s2"), pid=0)

    def test_non_shared_op_rejected(self, memory):
        with pytest.raises(MemoryError_):
            memory.execute(Nop(), pid=0)

    def test_op_count(self, memory):
        memory.execute(Write("a", 1), pid=0)
        memory.execute(Read("a"), pid=0)
        assert memory.op_count == 2

    def test_explicit_create_conflict(self, memory):
        memory.create_register("x")
        with pytest.raises(MemoryError_, match="already exists"):
            memory.create_register("x")

    def test_typed_consensus_enforced(self, system3):
        memory = Memory(system3, default_consensus_m=2)
        memory.execute(ConsensusPropose("c", "v"), pid=0)
        memory.execute(ConsensusPropose("c", "w"), pid=1)
        with pytest.raises(MemoryError_):
            memory.execute(ConsensusPropose("c", "u"), pid=2)

    def test_peek_register(self, memory):
        assert memory.peek_register("nothing") is BOT
        memory.execute(Write("a", 9), pid=0)
        assert memory.peek_register("a") == 9
        memory.create_snapshot("snap")
        with pytest.raises(MemoryError_):
            memory.peek_register("snap")

    def test_len_counts_objects(self, memory):
        assert len(memory) == 0
        memory.execute(Write("a", 1), pid=0)
        memory.execute(Read("b"), pid=0)
        assert len(memory) == 2

    def test_get_does_not_create(self, memory):
        assert memory.get("ghost") is None
        assert len(memory) == 0
