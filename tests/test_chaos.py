"""Tests for the chaos layer: lying histories, faulty network, scheduler.

The central claim under test: every injector stays *inside* the paper's
model (finite lying prefix, ABD-safe message faults, bounded unfairness),
so the protocols must keep their properties even at maximum severity.
"""

import dataclasses
import pickle
import random

import pytest

from repro.chaos import (
    ChaosConfig,
    ChaosScheduler,
    ChaosTrialSpec,
    FaultyNetwork,
    LyingHistory,
    PROTOCOLS,
    chaotic_history,
    quorum_critical,
    run_chaos_trial,
    spec_from_chaos,
    worst_lie,
)
from repro.detectors import UpsilonSpec, detector_names, make_detector
from repro.failures import Environment
from repro.messaging.network import Network
from repro.runtime import RandomScheduler, System


def _pattern(system, rng, f=None):
    env = (
        Environment.wait_free(system) if f is None
        else Environment(system, f)
    )
    return env, env.random_pattern(rng, max_crash_time=40)


class TestChaosConfig:
    def test_rejects_out_of_range_rates(self):
        with pytest.raises(ValueError):
            ChaosConfig(drop_rate=1.5)
        with pytest.raises(ValueError):
            ChaosConfig(duplicate_rate=-0.1)
        with pytest.raises(ValueError):
            ChaosConfig(lying_prefix=-1)

    def test_scheduler_knobs_must_respect_fairness_bound(self):
        with pytest.raises(ValueError):
            ChaosConfig(burst_length=64, fairness_bound=64)
        with pytest.raises(ValueError):
            ChaosConfig(starvation_window=10, fairness_bound=10)

    def test_any_active_and_round_trip(self):
        assert not ChaosConfig().any_active
        chaos = ChaosConfig.max_severity(seed=5)
        assert chaos.any_active
        assert ChaosConfig.from_dict(chaos.to_dict()) == chaos


class TestLyingHistory:
    def test_lies_then_delegates(self):
        system = System(4)
        rng = random.Random(0)
        _, pattern = _pattern(system, rng)
        spec = UpsilonSpec(system)
        chaos = ChaosConfig(seed=3, lying_prefix=25)
        history = chaotic_history(spec, pattern, chaos, rng)
        assert isinstance(history, LyingHistory)
        pool = set(spec.noise_pool(pattern))
        for pid in system.pids:
            for t in range(25):
                assert history.value(pid, t) in pool
            for t in range(25, 60):
                assert history.value(pid, t) == history.inner.value(pid, t)
        assert history.stable_value == history.inner.stable_value
        assert "lying" in history.describe()

    def test_zero_prefix_is_exactly_sample_history(self):
        system = System(3)
        rng = random.Random(1)
        _, pattern = _pattern(system, rng)
        spec = UpsilonSpec(system)
        history = chaotic_history(spec, pattern, ChaosConfig(), rng)
        assert not isinstance(history, LyingHistory)

    def test_worst_lie_for_upsilon_is_the_correct_set(self):
        system = System(4)
        rng = random.Random(2)
        _, pattern = _pattern(system, rng)
        spec = UpsilonSpec(system)
        assert worst_lie(spec, pattern) == frozenset(pattern.correct)

    @pytest.mark.parametrize(
        "name", [n for n in detector_names() if n != "dummy"]
    )
    def test_composes_over_registry_detectors(self, name):
        # The lie only ever draws from the detector's own noise pool and
        # the post-prefix part is a legal stable history, so the composed
        # history is in D(F) for every registry detector.
        system = System(4)
        rng = random.Random(7)
        env = Environment(system, 2)
        spec = make_detector(name, env)
        pattern = env.random_pattern(rng, max_crash_time=40)
        chaos = ChaosConfig(seed=1, lying_prefix=30)
        history = spec.sample_chaotic_history(pattern, rng, chaos)
        pool = set(spec.noise_pool(pattern))
        worst = worst_lie(spec, pattern)
        allowed = pool | ({worst} if worst is not None else set())
        for pid in system.pids:
            for t in range(30):
                assert history.value(pid, t) in allowed
        # Replays identically (same contract as StableHistory noise).
        assert [history.value(0, t) for t in range(30)] == [
            history.value(0, t) for t in range(30)
        ]


class TestFaultyNetworkEnvelope:
    def test_quorum_critical_classification(self):
        assert quorum_critical(("abd-read", 1, 2))
        assert quorum_critical(("abd-write-ack", 0))
        assert not quorum_critical(("gossip", 1))
        assert not quorum_critical("abd-read")
        assert not quorum_critical(())

    def test_acks_are_never_dropped_or_duplicated(self):
        system = System(5)
        chaos = ChaosConfig(seed=0, drop_rate=1.0, duplicate_rate=1.0)
        net = FaultyNetwork(system, chaos=chaos)
        for i in range(50):
            net.send(0, 1, ("abd-read-ack", i), now=i)
        assert net.sent_count == 50          # every ack went through
        assert net.pending(1) == 50          # exactly one copy each
        assert net.dropped_count == 0
        assert net.duplicated_count == 0

    def test_noncritical_unicasts_fault_freely(self):
        system = System(5)
        chaos = ChaosConfig(seed=0, drop_rate=1.0)
        net = FaultyNetwork(system, chaos=chaos)
        for i in range(50):
            net.send(0, 1, ("gossip", i), now=i)
        assert net.pending(1) == 0
        assert net.dropped_count == 50

    def test_critical_broadcast_keeps_a_quorum(self):
        system = System(5)
        n = system.n_processes
        quorum = 3
        chaos = ChaosConfig(seed=0, drop_rate=1.0)
        net = FaultyNetwork(system, chaos=chaos, quorum=quorum)
        for i in range(20):
            net.broadcast(0, ("abd-write", i, "v"), now=i)
            delivered = sum(net.pending(dest) for dest in system.pids)
            # At drop_rate=1.0 the budget is spent exactly: per broadcast,
            # `quorum` copies survive out of n.
            assert delivered == (i + 1) * quorum
        assert net.dropped_count == 20 * (n - quorum)

    def test_crashed_destinations_do_not_eat_the_budget(self):
        system = System(5)
        quorum = 3
        protected = frozenset({0, 1, 2})    # the correct set
        chaos = ChaosConfig(seed=0, drop_rate=1.0)
        net = FaultyNetwork(
            system, chaos=chaos, quorum=quorum, protected=protected
        )
        net.broadcast(0, ("abd-read", 0), now=0)
        # All 3 protected copies must survive (budget = 3 - 3 = 0); the
        # 2 unprotected copies are always droppable.
        assert sum(net.pending(dest) for dest in protected) == 3
        assert net.dropped_count == 2

    def test_zero_severity_matches_pristine_network(self):
        system = System(4)
        plain = Network(system, seed=9, max_delay=3)
        chaotic = FaultyNetwork(
            system, seed=9, max_delay=3, chaos=ChaosConfig()
        )
        rng = random.Random(4)
        for i in range(60):
            sender = rng.randrange(4)
            dest = rng.randrange(4)
            plain.send(sender, dest, ("m", i), now=i)
            chaotic.send(sender, dest, ("m", i), now=i)
        for dest in system.pids:
            assert plain.deliver(dest, 100) == chaotic.deliver(dest, 100)

    def test_duplicates_add_extra_copies(self):
        system = System(3)
        chaos = ChaosConfig(seed=0, duplicate_rate=1.0)
        net = FaultyNetwork(system, chaos=chaos)
        for i in range(20):
            net.send(0, 1, ("gossip", i), now=i)
        assert net.duplicated_count == 20
        assert net.pending(1) == 40          # original + one copy each


class TestChaosScheduler:
    def test_fairness_bound_holds_under_max_mischief(self):
        chaos = ChaosConfig(
            seed=1, burst_length=12, starvation_window=12, fairness_bound=24
        )
        scheduler = ChaosScheduler(RandomScheduler(0), chaos)
        eligible = [0, 1, 2, 3]
        waits = {p: 0 for p in eligible}
        for t in range(5_000):
            pid = scheduler.choose(t, eligible)
            assert pid in eligible
            for p in eligible:
                waits[p] = 0 if p == pid else waits[p] + 1
                assert waits[p] <= chaos.fairness_bound
        assert scheduler.bursts_started > 0
        assert scheduler.starvations_started > 0

    def test_zero_knobs_delegate_to_inner(self):
        chaos = ChaosConfig(seed=1)
        inner = RandomScheduler(5)
        reference = RandomScheduler(5)
        scheduler = ChaosScheduler(inner, chaos)
        eligible = [0, 1, 2]
        for t in range(500):
            assert scheduler.choose(t, eligible) == reference.choose(
                t, eligible
            )
        assert scheduler.bursts_started == 0
        assert scheduler.starvations_started == 0


class TestChaosTrials:
    def test_spec_is_picklable_and_validates(self):
        spec = ChaosTrialSpec("fig1", 3, seed=0, lying_prefix=10)
        assert pickle.loads(pickle.dumps(spec)) == spec
        with pytest.raises(ValueError):
            run_chaos_trial(ChaosTrialSpec("nope", 3, seed=0))

    def test_spec_from_chaos_round_trips_the_knobs(self):
        chaos = ChaosConfig.max_severity(seed=4)
        spec = spec_from_chaos("fig2", 4, 4, chaos)
        assert spec.chaos_config() == chaos

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_properties_survive_max_severity(self, protocol):
        # The acceptance bar: with every injector at its harshest, the
        # paper's protocols still satisfy k-agreement, validity, and
        # termination — chaos stays inside the model by construction.
        spec = spec_from_chaos(
            protocol, 4, seed=3, chaos=ChaosConfig.max_severity(seed=3),
            max_steps=400_000,
        )
        result = run_chaos_trial(spec)
        assert result.decided, result.violations
        assert result.ok, result.violations

    def test_abd_converge_reports_network_faults(self):
        spec = ChaosTrialSpec(
            "abd-converge", 5, seed=1, lying_prefix=20,
            drop_rate=0.4, reorder_rate=0.4,
        )
        result = run_chaos_trial(spec)
        assert result.ok, result.violations
        assert result.messages_dropped > 0
        assert result.messages_delayed > 0

    def test_trials_are_deterministic(self):
        spec = ChaosTrialSpec(
            "fig2", 4, seed=6, f=2, lying_prefix=40,
            burst_length=8, starvation_window=8, fairness_bound=32,
        )
        assert run_chaos_trial(spec) == run_chaos_trial(spec)

    def test_chaos_events_reach_the_collector(self):
        from repro.obs import MetricsCollector

        collector = MetricsCollector()
        spec = ChaosTrialSpec(
            "abd-converge", 4, seed=2, drop_rate=0.5, reorder_rate=0.5,
            burst_length=8,
        )
        result = run_chaos_trial(spec, collector=collector)
        assert result.ok, result.violations
        counters = collector.snapshot()["counters"]
        assert sum(counters["chaos_injections"].values()) > 0
        assert (
            sum(counters["messages_dropped"].values())
            == result.messages_dropped
        )
        assert (
            sum(counters["messages_delayed"].values())
            == result.messages_delayed
        )

    def test_sabotage_modes(self, tmp_path):
        with pytest.raises(RuntimeError):
            run_chaos_trial(ChaosTrialSpec("fig1", 3, seed=0,
                                           sabotage="raise"))
        with pytest.raises(ValueError):
            run_chaos_trial(ChaosTrialSpec("fig1", 3, seed=0,
                                           sabotage="explode"))
        marker = tmp_path / "flake.marker"
        spec = ChaosTrialSpec(
            "fig1", 3, seed=0, sabotage=f"raise-once:{marker}"
        )
        with pytest.raises(RuntimeError):
            run_chaos_trial(spec)          # first attempt flakes…
        assert run_chaos_trial(spec).ok    # …second succeeds


class TestChaosGrid:
    def test_grid_shape_and_validation(self):
        from repro.analysis import EmptySweepError, chaos_grid

        specs = chaos_grid(
            ["fig1", "fig2"], [3, 4], [0, 1],
            lying_prefixes=[0, 30], drop_rates=[0.0],
        )
        assert len(specs) == 2 * 2 * 2 * 2
        with pytest.raises(EmptySweepError):
            chaos_grid(["not-a-protocol"], [3], [0])
        with pytest.raises(EmptySweepError):
            chaos_grid(["fig1"], [3], [])
        with pytest.raises(ValueError):
            chaos_grid(["fig1"], [3], [0], drop_rates=[2.0])

    def test_sweep_chaos_runs_the_grid(self):
        from repro.analysis import sweep_chaos, to_csv

        results = sweep_chaos(
            ["fig1"], [3], [0, 1], lying_prefixes=[15],
            drop_rates=[0.0], max_steps=50_000,
        )
        assert len(results) == 2
        assert all(r.ok for r in results)
        text = to_csv(results)
        assert "lying_prefix" in text.splitlines()[0]

    def test_chaos_specs_flow_through_executor_and_cache(self, tmp_path):
        from repro.perf import TrialCache, run_trials

        cache = TrialCache(tmp_path / "cache")
        specs = [
            ChaosTrialSpec("fig1", 3, seed=s, lying_prefix=10)
            for s in range(3)
        ]
        first = run_trials(specs, cache=cache)
        again = run_trials(specs, cache=cache)
        assert first == again
        assert cache.hits == 3


def test_chaos_spec_replace_keeps_spec_frozen():
    spec = ChaosTrialSpec("fig1", 3, seed=0)
    sabotaged = dataclasses.replace(spec, sabotage="crash")
    assert sabotaged.sabotage == "crash"
    with pytest.raises(dataclasses.FrozenInstanceError):
        spec.seed = 1
