"""Parallel exploration: sharding, perf-pool dispatch, caching."""

from repro.mc import (
    CrashSweep,
    ExploreConfig,
    McInstance,
    ParallelExplorer,
    check,
    execute_mc_shard,
    explore_instance,
    make_shard_spec,
    shard_prefixes,
)
from repro.perf import TrialCache, execute_trial, spec_key


class TestShardSpecs:
    def test_prefixes_cover_root_branching(self):
        prefixes = shard_prefixes(McInstance("fig1", n_processes=2),
                                  ExploreConfig(max_depth=14), depth=1)
        assert prefixes == [(0,), (1,)]

    def test_depth_two_prefixes(self):
        prefixes = shard_prefixes(McInstance("fig1", n_processes=2),
                                  ExploreConfig(max_depth=14), depth=2)
        assert sorted(prefixes) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_spec_key_is_stable_and_distinct(self):
        config = ExploreConfig(max_depth=14)
        a = make_shard_spec(McInstance("fig1", n_processes=2), config, (0,))
        b = make_shard_spec(McInstance("fig1", n_processes=2), config, (0,))
        c = make_shard_spec(McInstance("fig1", n_processes=2), config, (1,))
        assert spec_key(a) == spec_key(b)
        assert spec_key(a) != spec_key(c)

    def test_execute_trial_dispatches_mc_shards(self):
        spec = make_shard_spec(McInstance("converge", n_processes=2),
                               ExploreConfig(max_depth=20), ())
        result = execute_trial(spec)
        assert result.ok
        assert result.stats.complete_schedules > 0


class TestParallelParity:
    def test_same_verdict_and_violation_as_serial(self):
        instance = McInstance("naive-converge", n_processes=2)
        config = ExploreConfig(max_depth=20)
        serial = explore_instance(instance, config)
        parallel = ParallelExplorer(jobs=2).explore(instance, config)
        assert serial.ok == parallel.ok is False
        # Each shard reports its own first violation; the serial one must
        # be among them (shard (0,) finds exactly the serial witness).
        serial_keys = {(ce.schedule, ce.prop) for ce in
                       serial.counterexamples}
        parallel_keys = {(ce.schedule, ce.prop) for ce in
                         parallel.counterexamples}
        assert serial_keys <= parallel_keys
        assert all(ce.verify() for ce in parallel.counterexamples)

    def test_clean_instance_parity(self):
        instance = McInstance("converge", n_processes=2)
        config = ExploreConfig(max_depth=24)
        serial = explore_instance(instance, config)
        parallel = ParallelExplorer(jobs=2).explore(instance, config)
        assert serial.ok and parallel.ok
        # Shards cover the same tree; without cross-shard sleep sets the
        # parallel state count is an upper bound on the serial one.
        assert parallel.stats.states_visited >= serial.stats.states_visited
        assert parallel.stats.complete_schedules >= \
            serial.stats.complete_schedules

    def test_swept_check_with_jobs(self):
        report = check(
            McInstance("fig1", n_processes=2, f=1),
            ExploreConfig(max_depth=12),
            sweep=CrashSweep(max_crashes=1, crash_times=(0,)),
            jobs=2,
        )
        assert report.instances_checked == 3
        assert report.ok


class TestConcurrentStats:
    """Shard stats fold with wall = max, not wall = sum — summing the
    overlapping walls of N workers reported throughput ≈ N× too low."""

    def test_merge_concurrent_takes_max_wall_and_sums_cpu(self):
        from repro.mc.explorer import ExploreStats

        a = ExploreStats(states_visited=100, wall_seconds=2.0,
                         cpu_seconds=2.0)
        b = ExploreStats(states_visited=300, wall_seconds=3.0,
                         cpu_seconds=3.0)
        a.merge_concurrent(b)
        assert a.states_visited == 400
        assert a.wall_seconds == 3.0  # max: the shards overlapped
        assert a.cpu_seconds == 5.0  # sum: compute cost is additive

    def test_serial_merge_still_sums_walls(self):
        from repro.mc.explorer import ExploreStats

        a = ExploreStats(wall_seconds=2.0, cpu_seconds=2.0)
        a.merge(ExploreStats(wall_seconds=3.0, cpu_seconds=3.0))
        assert a.wall_seconds == 5.0

    def test_merged_shard_throughput_not_divided_by_worker_count(self):
        """Regression pin: N equal shards that ran side by side must merge
        to the per-shard throughput, not 1/N of it."""
        import dataclasses as dc

        from repro.mc.explorer import ExploreStats
        from repro.mc.parallel import merge_shard_results

        instance = McInstance("fig1", n_processes=2)
        config = ExploreConfig(max_depth=14)
        shard = execute_trial(make_shard_spec(instance, config, (0,)))
        shards = [
            dc.replace(
                shard,
                stats=ExploreStats(states_visited=1000, wall_seconds=2.0,
                                   cpu_seconds=2.0),
            )
            for _ in range(4)
        ]
        merged = merge_shard_results(instance, config, shards)
        assert merged.stats.states_visited == 4000
        assert merged.stats.wall_seconds == 2.0
        assert merged.stats.states_per_second == 2000.0  # not 500
        assert merged.stats.cpu_seconds == 8.0

    def test_check_report_elapsed_overrides_wall(self):
        report = check(
            McInstance("fig1", n_processes=2),
            ExploreConfig(max_depth=12),
            jobs=2,
        )
        assert report.elapsed_seconds is not None
        assert report.total_stats().wall_seconds == report.elapsed_seconds


class TestCaching:
    def test_second_run_is_all_cache_hits(self, tmp_path):
        instance = McInstance("converge", n_processes=2)
        config = ExploreConfig(max_depth=20)
        cache = TrialCache(tmp_path)
        first = ParallelExplorer(jobs=1, cache=cache).explore(instance,
                                                              config)
        assert cache.misses > 0 and cache.hits == 0
        cache_again = TrialCache(tmp_path)
        second = ParallelExplorer(jobs=1, cache=cache_again).explore(
            instance, config)
        assert cache_again.hits > 0 and cache_again.misses == 0
        assert first.stats.states_visited == second.stats.states_visited

    def test_cached_shard_result_replays(self, tmp_path):
        instance = McInstance("naive-converge", n_processes=2)
        config = ExploreConfig(max_depth=20)
        cache = TrialCache(tmp_path)
        ParallelExplorer(jobs=1, cache=cache).explore(instance, config)
        reloaded = ParallelExplorer(jobs=1,
                                    cache=TrialCache(tmp_path)).explore(
            instance, config)
        assert not reloaded.ok
        # Counterexamples that crossed the pickle boundary still replay.
        assert all(ce.verify() for ce in reloaded.counterexamples)
