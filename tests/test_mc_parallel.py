"""Parallel exploration: sharding, perf-pool dispatch, caching."""

from repro.mc import (
    CrashSweep,
    ExploreConfig,
    McInstance,
    ParallelExplorer,
    check,
    execute_mc_shard,
    explore_instance,
    make_shard_spec,
    shard_prefixes,
)
from repro.perf import TrialCache, execute_trial, spec_key


class TestShardSpecs:
    def test_prefixes_cover_root_branching(self):
        prefixes = shard_prefixes(McInstance("fig1", n_processes=2),
                                  ExploreConfig(max_depth=14), depth=1)
        assert prefixes == [(0,), (1,)]

    def test_depth_two_prefixes(self):
        prefixes = shard_prefixes(McInstance("fig1", n_processes=2),
                                  ExploreConfig(max_depth=14), depth=2)
        assert sorted(prefixes) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_spec_key_is_stable_and_distinct(self):
        config = ExploreConfig(max_depth=14)
        a = make_shard_spec(McInstance("fig1", n_processes=2), config, (0,))
        b = make_shard_spec(McInstance("fig1", n_processes=2), config, (0,))
        c = make_shard_spec(McInstance("fig1", n_processes=2), config, (1,))
        assert spec_key(a) == spec_key(b)
        assert spec_key(a) != spec_key(c)

    def test_execute_trial_dispatches_mc_shards(self):
        spec = make_shard_spec(McInstance("converge", n_processes=2),
                               ExploreConfig(max_depth=20), ())
        result = execute_trial(spec)
        assert result.ok
        assert result.stats.complete_schedules > 0


class TestParallelParity:
    def test_same_verdict_and_violation_as_serial(self):
        instance = McInstance("naive-converge", n_processes=2)
        config = ExploreConfig(max_depth=20)
        serial = explore_instance(instance, config)
        parallel = ParallelExplorer(jobs=2).explore(instance, config)
        assert serial.ok == parallel.ok is False
        # Each shard reports its own first violation; the serial one must
        # be among them (shard (0,) finds exactly the serial witness).
        serial_keys = {(ce.schedule, ce.prop) for ce in
                       serial.counterexamples}
        parallel_keys = {(ce.schedule, ce.prop) for ce in
                         parallel.counterexamples}
        assert serial_keys <= parallel_keys
        assert all(ce.verify() for ce in parallel.counterexamples)

    def test_clean_instance_parity(self):
        instance = McInstance("converge", n_processes=2)
        config = ExploreConfig(max_depth=24)
        serial = explore_instance(instance, config)
        parallel = ParallelExplorer(jobs=2).explore(instance, config)
        assert serial.ok and parallel.ok
        # Shards cover the same tree; without cross-shard sleep sets the
        # parallel state count is an upper bound on the serial one.
        assert parallel.stats.states_visited >= serial.stats.states_visited
        assert parallel.stats.complete_schedules >= \
            serial.stats.complete_schedules

    def test_swept_check_with_jobs(self):
        report = check(
            McInstance("fig1", n_processes=2, f=1),
            ExploreConfig(max_depth=12),
            sweep=CrashSweep(max_crashes=1, crash_times=(0,)),
            jobs=2,
        )
        assert report.instances_checked == 3
        assert report.ok


class TestCaching:
    def test_second_run_is_all_cache_hits(self, tmp_path):
        instance = McInstance("converge", n_processes=2)
        config = ExploreConfig(max_depth=20)
        cache = TrialCache(tmp_path)
        first = ParallelExplorer(jobs=1, cache=cache).explore(instance,
                                                              config)
        assert cache.misses > 0 and cache.hits == 0
        cache_again = TrialCache(tmp_path)
        second = ParallelExplorer(jobs=1, cache=cache_again).explore(
            instance, config)
        assert cache_again.hits > 0 and cache_again.misses == 0
        assert first.stats.states_visited == second.stats.states_visited

    def test_cached_shard_result_replays(self, tmp_path):
        instance = McInstance("naive-converge", n_processes=2)
        config = ExploreConfig(max_depth=20)
        cache = TrialCache(tmp_path)
        ParallelExplorer(jobs=1, cache=cache).explore(instance, config)
        reloaded = ParallelExplorer(jobs=1,
                                    cache=TrialCache(tmp_path)).explore(
            instance, config)
        assert not reloaded.ok
        # Counterexamples that crossed the pickle boundary still replay.
        assert all(ce.verify() for ce in reloaded.counterexamples)
