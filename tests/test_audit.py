"""Tests for the differential audit layer (repro.audit)."""

import dataclasses
import json
import pickle

import pytest

from repro.audit import (
    AuditTrialSpec,
    Divergence,
    ORACLE_PAIRS,
    PAIRS_PER_CASE,
    diff_result_fields,
    first_trace_divergence,
    plan_audit,
    run_audit,
    run_audit_trial,
    run_case,
)
from repro.cli import main
from repro.obs.metrics import MetricsCollector
from repro.perf.spec import execute_trial, spec_key


class TestDivergence:
    def test_round_trips_through_json(self, tmp_path):
        divergence = Divergence(
            pair="replay", case=3, seed=7, kind="fingerprint",
            detail="live and replay disagree",
            fingerprint_a="aa", fingerprint_b="bb",
            schedule=[0, 1, 0], shrunk_schedule=[0],
        )
        path = tmp_path / "div.json"
        divergence.save(path)
        loaded = Divergence.load(path)
        assert loaded == divergence
        assert "replay" in loaded.describe()

    def test_diff_result_fields_skips_nocompare(self):
        @dataclasses.dataclass
        class Result:
            steps: int
            metrics: dict = dataclasses.field(
                default_factory=dict, compare=False
            )

        rows = diff_result_fields(
            Result(3, {"a": 1}), Result(4, {"b": 2})
        )
        assert rows == [["steps", "3", "4"]]

    def test_diff_result_fields_type_mismatch(self):
        rows = diff_result_fields(1, "1")
        assert rows[0][0] == "type"

    def test_first_trace_divergence_length_mismatch(self):
        from repro.mc.instances import McInstance, build_simulation

        a = build_simulation(McInstance("fig1", 2))
        b = build_simulation(McInstance("fig1", 2))
        a.run_script([0, 1, 0])
        b.run_script([0, 1])
        index, step_a, step_b = first_trace_divergence(a.trace, b.trace)
        assert index == 2
        assert step_a is not None and step_b is None
        assert first_trace_divergence(a.trace, a.trace) is None


class TestAuditSpec:
    def test_picklable_and_hashable(self):
        spec = AuditTrialSpec(pair="replay", case=2, seed=9)
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert hash(spec) == hash(AuditTrialSpec("replay", 2, 9))

    def test_spec_key_covers_every_field(self):
        base = AuditTrialSpec(pair="replay", case=0, seed=0)
        keys = {spec_key(base)}
        for change in (
            {"pair": "cache"}, {"case": 1}, {"seed": 1},
            {"sabotage": "cache"},
        ):
            keys.add(spec_key(dataclasses.replace(base, **change)))
        assert len(keys) == 5

    def test_execute_trial_dispatches_audit_specs(self):
        outcome = execute_trial(AuditTrialSpec(pair="replay", case=0, seed=7))
        assert outcome.pair == "replay"
        assert outcome.ok
        assert outcome.trials == PAIRS_PER_CASE["replay"]

    def test_run_audit_trial_deterministic(self):
        spec = AuditTrialSpec(pair="substrate", case=1, seed=3)
        assert run_audit_trial(spec) == run_audit_trial(spec)


class TestOracles:
    @pytest.mark.parametrize("pair", ORACLE_PAIRS)
    def test_each_pair_clean_at_head(self, pair):
        outcome = run_case(pair, 0, 13)
        assert outcome.ok, [d.describe() for d in outcome.divergences]
        assert outcome.trials == PAIRS_PER_CASE[pair]

    def test_unknown_pair_rejected(self):
        with pytest.raises(ValueError, match="unknown oracle pair"):
            run_case("nope", 0, 0)

    def test_cache_sabotage_is_detected(self):
        outcome = run_case("cache", 0, 7, sabotage="cache")
        assert not outcome.ok
        assert any(d.kind == "result" for d in outcome.divergences)
        assert any("warm" in d.detail for d in outcome.divergences)

    def test_abd_ack_sabotage_is_detected(self):
        outcome = run_case("substrate", 0, 7, sabotage="abd-ack")
        assert not outcome.ok
        assert any(d.kind == "contract" for d in outcome.divergences)
        assert any("!corrupted" in d.detail for d in outcome.divergences)


class TestPlanAndRun:
    def test_plan_covers_every_selected_pair(self):
        specs = plan_audit(budget=50, seed=1)
        assert {s.pair for s in specs} == set(ORACLE_PAIRS)
        assert all(s.seed == 1 for s in specs)

    def test_plan_minimum_one_case_per_pair(self):
        specs = plan_audit(budget=1, seed=0)
        assert {s.pair for s in specs} == set(ORACLE_PAIRS)

    def test_plan_rejects_bad_input(self):
        with pytest.raises(ValueError, match="unknown oracle pair"):
            plan_audit(budget=10, seed=0, pairs=["nope"])
        with pytest.raises(ValueError, match="budget"):
            plan_audit(budget=0, seed=0)

    def test_run_audit_clean_and_counted(self):
        collector = MetricsCollector()
        report = run_audit(
            budget=2, seed=13, pairs=["replay", "substrate"],
            bus=collector.bus,
        )
        assert report.ok
        assert report.trial_pairs >= 2
        assert report.cases == 2
        counters = collector.snapshot()["counters"]
        assert not counters.get("audit_divergences")

    def test_run_audit_publishes_divergence_events(self):
        collector = MetricsCollector()
        report = run_audit(
            budget=2, seed=7, pairs=["substrate"], sabotage="abd-ack",
            bus=collector.bus,
        )
        assert not report.ok
        counts = collector.snapshot()["counters"]["audit_divergences"]
        assert counts.get("substrate", 0) >= 1

    def test_run_audit_shards_through_executor(self):
        serial = run_audit(budget=4, seed=5, pairs=["replay", "substrate"])
        sharded = run_audit(
            budget=4, seed=5, pairs=["replay", "substrate"], jobs=2
        )
        assert serial.ok and sharded.ok
        assert serial.trial_pairs == sharded.trial_pairs
        assert serial.cases == sharded.cases

    def test_report_round_trips(self, tmp_path):
        report = run_audit(budget=1, seed=3, pairs=["replay"])
        path = report.save(tmp_path / "report.json")
        body = json.loads(path.read_text())
        assert body["seed"] == 3
        assert body["divergences"] == []


class TestCli:
    def test_audit_exits_zero_when_clean(self, tmp_path, capsys):
        code = main([
            "audit", "--budget", "2", "--seed", "13",
            "--pairs", "replay,substrate",
            "--report", str(tmp_path / "report.json"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "clean" in out
        assert str(tmp_path / "report.json") in out
        assert (tmp_path / "report.json").exists()

    def test_audit_exits_four_on_divergence(self, tmp_path, capsys):
        code = main([
            "audit", "--budget", "2", "--seed", "7",
            "--pairs", "substrate", "--sabotage", "abd-ack",
            "--report", str(tmp_path / "report.json"),
        ])
        assert code == 4
        out = capsys.readouterr().out
        assert "DIVERGENCE" in out
        body = json.loads((tmp_path / "report.json").read_text())
        assert body["divergences"]

    def test_audit_json_output(self, tmp_path, capsys):
        code = main([
            "audit", "--budget", "1", "--seed", "3", "--pairs", "replay",
            "--json", "--report", str(tmp_path / "report.json"),
        ])
        assert code == 0
        stdout = capsys.readouterr().out
        payload = json.loads(stdout[: stdout.rindex("}") + 1])
        assert payload["pairs"] == ["replay"]
