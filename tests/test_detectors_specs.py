"""Specification tests for Υ, Υf, Ω, Ωk, ◇P, anti-Ω and dummies.

Includes the paper's own 3-process example (Sect. 4): with p1 faulty and
p2, p3 correct, Υ may stabilize on any non-empty set except {p2, p3}.
"""

import pytest

from repro.detectors import (
    AntiOmegaSpec,
    DummySpec,
    EventuallyPerfectSpec,
    OmegaKSpec,
    OmegaSpec,
    UpsilonFSpec,
    UpsilonSpec,
    omega_n,
)
from repro.failures import Environment, FailurePattern
from repro.runtime import System


class TestUpsilonPaperExample:
    """Sect. 4's illustration, translated to pids (p1→0, p2→1, p3→2)."""

    def setup_method(self):
        self.system = System(3)
        self.spec = UpsilonSpec(self.system)
        # p1 (pid 0) fails; p2, p3 (pids 1, 2) correct.
        self.pattern = FailurePattern.crash_at(self.system, {0: 5})

    def test_all_sets_but_correct_are_legal(self):
        legal = set(self.spec.legal_stable_values(self.pattern))
        expected = {
            frozenset({0}), frozenset({1}), frozenset({2}),
            frozenset({0, 2}), frozenset({0, 1}), frozenset({0, 1, 2}),
        }
        assert legal == expected

    def test_correct_set_is_the_only_forbidden_one(self):
        assert not self.spec.is_legal_stable_value(
            self.pattern, frozenset({1, 2})
        )

    def test_sets_without_any_correct_process_are_legal(self):
        # "the set it outputs might never contain any correct process"
        assert self.spec.is_legal_stable_value(self.pattern, frozenset({0}))

    def test_sets_without_any_faulty_process_are_legal(self):
        assert self.spec.is_legal_stable_value(self.pattern, frozenset({1}))


class TestUpsilonSpec:
    def test_range_excludes_empty_set(self, system3):
        spec = UpsilonSpec(system3)
        values = list(spec.range_values())
        assert frozenset() not in values
        assert len(values) == 7

    def test_noise_pool_includes_correct_set(self, system3):
        """Pre-stabilization output is unconstrained — even the correct set."""
        spec = UpsilonSpec(system3)
        pattern = FailurePattern.failure_free(system3)
        assert pattern.correct in set(spec.noise_pool(pattern))

    def test_legality_accepts_plain_sets(self, system3):
        spec = UpsilonSpec(system3)
        pattern = FailurePattern.failure_free(system3)
        assert spec.is_legal_stable_value(pattern, {0})
        assert not spec.is_legal_stable_value(pattern, {0, 1, 2})

    def test_out_of_universe_rejected(self, system3):
        spec = UpsilonSpec(system3)
        pattern = FailurePattern.failure_free(system3)
        assert not spec.is_legal_stable_value(pattern, frozenset({7}))
        assert not spec.is_legal_stable_value(pattern, frozenset())


class TestUpsilonFSpec:
    def test_minimum_size(self, system5):
        env = Environment(system5, 2)
        spec = UpsilonFSpec(env)
        assert spec.min_size == 3
        assert all(len(s) >= 3 for s in spec.range_values())

    def test_small_sets_illegal(self, system5):
        env = Environment(system5, 2)
        spec = UpsilonFSpec(env)
        pattern = FailurePattern.crash_at(system5, {0: 1})
        assert not spec.is_legal_stable_value(pattern, frozenset({1, 2}))

    def test_correct_set_illegal(self, system5):
        env = Environment(system5, 2)
        spec = UpsilonFSpec(env)
        pattern = FailurePattern.crash_at(system5, {0: 1, 1: 2})
        assert not spec.is_legal_stable_value(pattern, pattern.correct)
        assert spec.is_legal_stable_value(pattern, system5.pid_set)

    def test_upsilon_n_is_upsilon(self, system4):
        """Υ^n is Υ (Sect. 5.3)."""
        wait_free = UpsilonFSpec(Environment.wait_free(system4))
        plain = UpsilonSpec(system4)
        pattern = FailurePattern.crash_at(system4, {2: 3})
        assert set(wait_free.legal_stable_values(pattern)) == set(
            plain.legal_stable_values(pattern)
        )


class TestOmegaSpec:
    def test_stable_values_are_correct_pids(self, system3):
        spec = OmegaSpec(system3)
        pattern = FailurePattern.crash_at(system3, {1: 4})
        assert list(spec.legal_stable_values(pattern)) == [0, 2]

    def test_noise_may_be_faulty(self, system3):
        spec = OmegaSpec(system3)
        pattern = FailurePattern.crash_at(system3, {1: 4})
        assert 1 in spec.noise_pool(pattern)

    def test_legality(self, system3):
        spec = OmegaSpec(system3)
        pattern = FailurePattern.crash_at(system3, {1: 4})
        assert spec.is_legal_stable_value(pattern, 0)
        assert not spec.is_legal_stable_value(pattern, 1)


class TestOmegaKSpec:
    def test_size_constraint(self, system4):
        spec = OmegaKSpec(system4, 2)
        assert all(len(s) == 2 for s in spec.range_values())
        assert len(list(spec.range_values())) == 6

    def test_must_contain_correct(self, system4):
        spec = OmegaKSpec(system4, 2)
        pattern = FailurePattern.crash_at(system4, {0: 1, 1: 2})
        assert spec.is_legal_stable_value(pattern, frozenset({0, 2}))
        assert not spec.is_legal_stable_value(pattern, frozenset({0, 1}))

    def test_wrong_size_illegal(self, system4):
        spec = OmegaKSpec(system4, 2)
        pattern = FailurePattern.failure_free(system4)
        assert not spec.is_legal_stable_value(pattern, frozenset({0}))
        assert not spec.is_legal_stable_value(pattern, frozenset({0, 1, 2}))

    def test_omega_n_helper(self, system4):
        assert omega_n(system4).k == 3

    def test_omega_1_matches_omega(self, system3):
        o1 = OmegaKSpec(system3, 1)
        omega = OmegaSpec(system3)
        pattern = FailurePattern.crash_at(system3, {2: 0})
        singles = {frozenset({p}) for p in omega.legal_stable_values(pattern)}
        assert set(o1.legal_stable_values(pattern)) == singles

    def test_k_bounds(self, system3):
        with pytest.raises(ValueError):
            OmegaKSpec(system3, 0)
        with pytest.raises(ValueError):
            OmegaKSpec(system3, 4)


class TestEventuallyPerfect:
    def test_unique_stable_value(self, system3):
        spec = EventuallyPerfectSpec(system3)
        pattern = FailurePattern.crash_at(system3, {0: 1})
        assert list(spec.legal_stable_values(pattern)) == [frozenset({0})]

    def test_failure_free_suspects_nobody(self, system3):
        spec = EventuallyPerfectSpec(system3)
        pattern = FailurePattern.failure_free(system3)
        assert spec.is_legal_stable_value(pattern, frozenset())
        assert not spec.is_legal_stable_value(pattern, frozenset({0}))

    def test_range_includes_empty(self, system3):
        assert frozenset() in set(EventuallyPerfectSpec(system3).range_values())


class TestAntiOmega:
    def test_legal_when_other_correct_exists(self, system3):
        spec = AntiOmegaSpec(system3)
        pattern = FailurePattern.crash_at(system3, {0: 1})  # correct {1,2}
        assert set(spec.legal_stable_values(pattern)) == {0, 1, 2}

    def test_illegal_when_single_correct_is_value(self, system3):
        spec = AntiOmegaSpec(system3)
        pattern = FailurePattern.crash_at(system3, {0: 1, 1: 1})  # correct {2}
        assert not spec.is_legal_stable_value(pattern, 2)
        assert spec.is_legal_stable_value(pattern, 0)


class TestDummy:
    def test_single_legal_value(self, system3):
        spec = DummySpec("d")
        pattern = FailurePattern.failure_free(system3)
        assert list(spec.legal_stable_values(pattern)) == ["d"]
        assert spec.is_legal_stable_value(pattern, "d")
        assert not spec.is_legal_stable_value(pattern, "e")

    def test_history_is_constant(self):
        spec = DummySpec(42)
        h = spec.history()
        assert h.value(0, 0) == 42
        assert h.value(3, 10**6) == 42
