"""Exhaustive model checking on small instances.

Random and property-based schedules sample the interleaving space; these
tests *enumerate* it through :class:`repro.mc.Explorer`.  For two-process
protocols the full schedule tree is small enough to check every
interleaving (``dedup=False, por=False`` keeps the historical complete-
schedule counts as anchors); crash times are additionally swept
exhaustively for three processes.
"""

import pytest

from repro.core import ConvergeInstance, make_upsilon_set_agreement
from repro.detectors import ConstantHistory
from repro.failures import FailurePattern
from repro.mc import CallbackProperty, ExploreConfig, Explorer
from repro.memory import check_immediacy, make_immediate_api
from repro.runtime import Decide, RoundRobinScheduler, Simulation, System
from repro.tasks import SetAgreementSpec

#: Full-tree enumeration: no pruning of any kind, so the complete-schedule
#: count is exactly the number of interleavings.
_FULL_TREE = dict(dedup=False, por=False, first_violation=False)


def explore_all_schedules(make_sim, check, max_depth=64):
    """Enumerate every maximal schedule, calling ``check`` on each run.

    Returns the number of complete schedules.  Depth exhaustion fails the
    test — these instances are wait-free, so every branch must terminate
    within the bound.
    """
    explorer = Explorer(
        make_sim,
        [CallbackProperty(check)],
        ExploreConfig(max_depth=max_depth, **_FULL_TREE),
    )
    result = explorer.explore()
    assert result.stats.depth_exhausted == 0, (
        f"schedule exceeded depth {max_depth}: protocol not wait-free "
        "on this instance?"
    )
    assert result.ok, result.violations[0]
    return result.stats.complete_schedules


class TestConvergeExhaustive:
    @pytest.mark.parametrize("k", [1, 2])
    @pytest.mark.parametrize("inputs", [
        {0: "a", 1: "b"},
        {0: "same", 1: "same"},
    ])
    def test_all_two_process_interleavings(self, k, inputs):
        system = System(2)

        def protocol(ctx, value):
            instance = ConvergeInstance("x", k, system.n_processes)
            result = yield from instance.converge(ctx, value)
            yield Decide(result)

        def check(sim):
            decisions = sim.decisions()
            picks = {p for (p, _) in decisions.values()}
            commits = [c for (_, c) in decisions.values()]
            assert picks <= set(inputs.values())           # C-Validity
            if any(commits):
                assert len(picks) <= k                     # C-Agreement
            if len(set(inputs.values())) <= k:
                assert all(commits)                        # Convergence

        def make_sim():
            return Simulation(system, protocol, inputs=inputs)

        # 2 processes × 5 steps each → C(10, 5) = 252 interleavings.
        count = explore_all_schedules(make_sim, check)
        assert count == 252

    def test_dedup_explores_fewer_states_same_verdict(self):
        """Fingerprint sharing covers the same tree with far fewer runs."""
        system = System(2)
        inputs = {0: "a", 1: "b"}

        def protocol(ctx, value):
            instance = ConvergeInstance("x", 1, system.n_processes)
            result = yield from instance.converge(ctx, value)
            yield Decide(result)

        def check(sim):
            decisions = sim.decisions()
            picks = {p for (p, _) in decisions.values()}
            if any(c for (_, c) in decisions.values()):
                assert len(picks) <= 1

        def make_sim():
            return Simulation(system, protocol, inputs=inputs)

        full = Explorer(make_sim, [CallbackProperty(check)],
                        ExploreConfig(max_depth=64, **_FULL_TREE)).explore()
        merged = Explorer(make_sim, [CallbackProperty(check)],
                          ExploreConfig(max_depth=64)).explore()
        assert full.ok and merged.ok
        assert merged.stats.states_visited < full.stats.states_visited


class TestImmediateSnapshotExhaustive:
    def test_all_two_process_interleavings(self):
        system = System(2)

        def protocol(ctx, value):
            api = make_immediate_api("obj", system.n_processes, True)
            view = yield from api.write_and_scan(ctx.pid, value)
            yield Decide(view)

        def check(sim):
            views = {p: r.decision for p, r in sim.runtimes.items()}
            assert check_immediacy(views) == []

        def make_sim():
            return Simulation(system, protocol,
                              inputs={0: "a", 1: "b"})

        count = explore_all_schedules(make_sim, check, max_depth=40)
        assert count > 100  # the level algorithm has data-dependent length


class TestCrashTimeSweep:
    """Every crash time for every victim, under lockstep (Fig. 1)."""

    def test_fig1_single_crash_sweep(self):
        system = System(3)
        inputs = {p: f"v{p}" for p in system.pids}
        checked = 0
        for victim in system.pids:
            for crash_time in range(0, 42, 1):
                pattern = FailurePattern.crash_at(system, {victim: crash_time})
                # A constant legal Υ value for *this* pattern.
                stable = frozenset({victim})  # contains a faulty process,
                # so it can never equal the correct set.
                sim = Simulation(
                    system, make_upsilon_set_agreement(), inputs=inputs,
                    pattern=pattern, history=ConstantHistory(stable),
                )
                sim.run(max_steps=50_000, scheduler=RoundRobinScheduler(),
                        stop_when=Simulation.all_correct_decided)
                assert sim.all_correct_decided(), (
                    f"victim {victim} at t={crash_time} blocked the run"
                )
                SetAgreementSpec(system.n).check(sim, inputs).raise_if_failed()
                checked += 1
        assert checked == 3 * 42

    def test_fig1_two_crash_grid(self):
        """Two victims, a coarse grid of crash-time pairs."""
        system = System(3)
        inputs = {p: f"v{p}" for p in system.pids}
        for t0 in range(0, 30, 6):
            for t1 in range(0, 30, 6):
                pattern = FailurePattern.crash_at(system, {0: t0, 1: t1})
                sim = Simulation(
                    system, make_upsilon_set_agreement(), inputs=inputs,
                    pattern=pattern,
                    history=ConstantHistory(frozenset({0, 1})),
                )
                sim.run(max_steps=50_000, scheduler=RoundRobinScheduler(),
                        stop_when=Simulation.all_correct_decided)
                assert sim.all_correct_decided()
                SetAgreementSpec(system.n).check(sim, inputs).raise_if_failed()
