"""Exhaustive model checking on small instances.

Random and property-based schedules sample the interleaving space; these
tests *enumerate* it.  For two-process protocols the full schedule tree is
small enough to check every interleaving; crash times are additionally
swept exhaustively for three processes.
"""

from typing import Callable, List

import pytest

from repro.core import ConvergeInstance, make_upsilon_set_agreement
from repro.detectors import ConstantHistory
from repro.failures import FailurePattern
from repro.memory import check_immediacy, make_immediate_api
from repro.runtime import Decide, RoundRobinScheduler, Simulation, System
from repro.tasks import SetAgreementSpec


def explore_all_schedules(
    make_sim: Callable[[], Simulation],
    check: Callable[[Simulation], None],
    max_depth: int = 64,
) -> int:
    """DFS over every scheduling choice; re-executes runs from scratch.

    For each maximal schedule (no process left to run) the ``check``
    callback is invoked with the finished simulation.  Returns the number
    of complete schedules explored.
    """
    complete = 0
    stack: List[List[int]] = [[]]
    while stack:
        prefix = stack.pop()
        sim = make_sim()
        for pid in prefix:
            sim.step(pid)
        eligible = sim.eligible()
        if not eligible:
            complete += 1
            check(sim)
            continue
        if len(prefix) >= max_depth:
            raise AssertionError(
                f"schedule exceeded depth {max_depth}: protocol not "
                "wait-free on this instance?"
            )
        for pid in eligible:
            stack.append(prefix + [pid])
    return complete


class TestConvergeExhaustive:
    @pytest.mark.parametrize("k", [1, 2])
    @pytest.mark.parametrize("inputs", [
        {0: "a", 1: "b"},
        {0: "same", 1: "same"},
    ])
    def test_all_two_process_interleavings(self, k, inputs):
        system = System(2)

        def protocol(ctx, value):
            instance = ConvergeInstance("x", k, system.n_processes)
            result = yield from instance.converge(ctx, value)
            yield Decide(result)

        def check(sim):
            decisions = sim.decisions()
            picks = {p for (p, _) in decisions.values()}
            commits = [c for (_, c) in decisions.values()]
            assert picks <= set(inputs.values())           # C-Validity
            if any(commits):
                assert len(picks) <= k                     # C-Agreement
            if len(set(inputs.values())) <= k:
                assert all(commits)                        # Convergence

        def make_sim():
            return Simulation(system, protocol, inputs=inputs)

        # 2 processes × 5 steps each → C(10, 5) = 252 interleavings.
        count = explore_all_schedules(make_sim, check)
        assert count == 252


class TestImmediateSnapshotExhaustive:
    def test_all_two_process_interleavings(self):
        system = System(2)

        def protocol(ctx, value):
            api = make_immediate_api("obj", system.n_processes, True)
            view = yield from api.write_and_scan(ctx.pid, value)
            yield Decide(view)

        def check(sim):
            views = {p: r.decision for p, r in sim.runtimes.items()}
            assert check_immediacy(views) == []

        def make_sim():
            return Simulation(system, protocol,
                              inputs={0: "a", 1: "b"})

        count = explore_all_schedules(make_sim, check, max_depth=40)
        assert count > 100  # the level algorithm has data-dependent length


class TestCrashTimeSweep:
    """Every crash time for every victim, under lockstep (Fig. 1)."""

    def test_fig1_single_crash_sweep(self):
        system = System(3)
        task = SetAgreementSpec(system.n)
        inputs = {p: f"v{p}" for p in system.pids}
        checked = 0
        for victim in system.pids:
            for crash_time in range(0, 42, 1):
                pattern = FailurePattern.crash_at(system, {victim: crash_time})
                # A constant legal Υ value for *this* pattern.
                stable = frozenset({victim})  # contains a faulty process,
                # so it can never equal the correct set.
                sim = Simulation(
                    system, make_upsilon_set_agreement(), inputs=inputs,
                    pattern=pattern, history=ConstantHistory(stable),
                )
                sim.run(max_steps=50_000, scheduler=RoundRobinScheduler(),
                        stop_when=Simulation.all_correct_decided)
                assert sim.all_correct_decided(), (
                    f"victim {victim} at t={crash_time} blocked the run"
                )
                SetAgreementSpec(system.n).check(sim, inputs).raise_if_failed()
                checked += 1
        assert checked == 3 * 42

    def test_fig1_two_crash_grid(self):
        """Two victims, a coarse grid of crash-time pairs."""
        system = System(3)
        inputs = {p: f"v{p}" for p in system.pids}
        for t0 in range(0, 30, 6):
            for t1 in range(0, 30, 6):
                pattern = FailurePattern.crash_at(system, {0: t0, 1: t1})
                sim = Simulation(
                    system, make_upsilon_set_agreement(), inputs=inputs,
                    pattern=pattern,
                    history=ConstantHistory(frozenset({0, 1})),
                )
                sim.run(max_steps=50_000, scheduler=RoundRobinScheduler(),
                        stop_when=Simulation.all_correct_decided)
                assert sim.all_correct_decided()
                SetAgreementSpec(system.n).check(sim, inputs).raise_if_failed()
