"""Tests for atomic snapshots — primitive API and the register construction.

The key correctness property (used by Fig. 2's termination proof) is
*containment*: any two scans are position-wise comparable.  We verify it by
tagging every update with a per-position monotone counter and checking all
pairs of views returned in randomized concurrent runs.
"""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import (
    PrimitiveSnapshotAPI,
    RegisterSnapshotAPI,
    make_snapshot_api,
    nonbot_count,
    nonbot_values,
)
from repro.runtime import BOT, Decide, RandomScheduler, Simulation, System


def _version(cell):
    """Order of a tagged cell value (BOT sorts first)."""
    return -1 if cell is BOT else cell[1]


def _comparable(u, v):
    """Position-wise ≤ in at least one direction."""
    u_le_v = all(_version(a) <= _version(b) for a, b in zip(u, v))
    v_le_u = all(_version(b) <= _version(a) for a, b in zip(u, v))
    return u_le_v or v_le_u


def _snapshot_workload(register_based, n_ops=6):
    """Protocol: interleave updates (tagged with own counters) and scans."""

    def protocol(ctx, seed):
        api = make_snapshot_api("obj", ctx.system.n_processes, register_based)
        local_rng = random.Random(seed)
        views = []
        counter = 0
        for _ in range(n_ops):
            if local_rng.random() < 0.5:
                counter += 1
                yield from api.update(ctx.pid, (ctx.pid, counter))
            else:
                view = yield from api.scan()
                views.append(view)
        final = yield from api.scan()
        views.append(final)
        yield Decide(tuple(views))

    return protocol


@pytest.mark.parametrize("register_based", [False, True])
@pytest.mark.parametrize("seed", range(6))
def test_containment_under_random_schedules(register_based, seed):
    system = System(4)
    sim = Simulation(
        system,
        _snapshot_workload(register_based),
        inputs={p: seed * 31 + p for p in system.pids},
    )
    sim.run_until(
        Simulation.all_correct_decided,
        max_steps=100_000,
        scheduler=RandomScheduler(seed),
    )
    all_views = [v for views in sim.decisions().values() for v in views]
    for u, v in itertools.combinations(all_views, 2):
        assert _comparable(u, v), f"incomparable scans {u} / {v}"


@pytest.mark.parametrize("register_based", [False, True])
def test_scan_sees_own_preceding_update(register_based):
    system = System(3)

    def protocol(ctx, _):
        api = make_snapshot_api("obj", ctx.system.n_processes, register_based)
        yield from api.update(ctx.pid, (ctx.pid, 1))
        view = yield from api.scan()
        yield Decide(view)

    sim = Simulation(system, protocol, inputs={p: None for p in system.pids})
    sim.run_until(
        Simulation.all_correct_decided, 50_000, RandomScheduler(5)
    )
    for pid, view in sim.decisions().items():
        assert view[pid] == (pid, 1), "own update must be visible"


@pytest.mark.parametrize("register_based", [False, True])
def test_sequential_semantics(register_based):
    """With a single process the snapshot is just an array."""
    system = System(3)

    def protocol(ctx, _):
        api = make_snapshot_api("obj", ctx.system.n_processes, register_based)
        view0 = yield from api.scan()
        yield from api.update(0, "a")
        view1 = yield from api.scan()
        yield from api.update(0, "b")
        yield from api.update(2, "c")
        view2 = yield from api.scan()
        yield Decide((view0, view1, view2))

    sim = Simulation(system, {0: protocol}, inputs={0: None})
    # only process 0 participates — run it solo
    while not sim.runtimes[0].has_decided:
        sim.step(0)
    view0, view1, view2 = sim.runtimes[0].decision
    assert view0 == (BOT, BOT, BOT)
    assert view1 == ("a", BOT, BOT)
    assert view2 == ("b", BOT, "c")


def test_register_snapshot_borrow_path():
    """Force the Afek-et-al. 'borrow an embedded view' branch: a scanner is
    starved while another process updates repeatedly."""
    system = System(2)

    def scanner(ctx, _):
        api = RegisterSnapshotAPI("obj", 2)
        view = yield from api.scan()
        yield Decide(view)

    def updater(ctx, _):
        api = RegisterSnapshotAPI("obj", 2)
        for i in range(1, 40):
            yield from api.update(1, (1, i))
        yield Decide("done")

    sim = Simulation(system, {0: scanner, 1: updater}, inputs={0: None, 1: None})
    # Interleave: scanner gets one step per three updater steps, so cells
    # keep moving under its double collects.
    while not sim.runtimes[0].has_decided:
        if sim.runtimes[1].schedulable:
            sim.step(1)
            if sim.runtimes[1].schedulable:
                sim.step(1)
        sim.step(0)
    view = sim.runtimes[0].decision
    assert view[1] is BOT or view[1][0] == 1


def test_nonbot_helpers():
    assert nonbot_count((BOT, 1, BOT, 2)) == 2
    assert nonbot_values((BOT, "x", BOT)) == ["x"]
    assert nonbot_count((BOT, BOT)) == 0
    # Falsy application values still count as present.
    assert nonbot_count((0, "", BOT)) == 2


@given(
    seed=st.integers(0, 10_000),
    n_procs=st.integers(2, 5),
)
@settings(max_examples=25, deadline=None)
def test_containment_property_register_based(seed, n_procs):
    system = System(n_procs)
    sim = Simulation(
        system,
        _snapshot_workload(register_based=True, n_ops=4),
        inputs={p: seed + p for p in system.pids},
    )
    sim.run_until(
        Simulation.all_correct_decided,
        max_steps=200_000,
        scheduler=RandomScheduler(seed ^ 0xABC),
    )
    all_views = [v for views in sim.decisions().values() for v in views]
    for u, v in itertools.combinations(all_views, 2):
        assert _comparable(u, v)


def test_primitive_api_single_steps():
    """Primitive snapshot ops cost exactly one step each."""
    system = System(3)

    def protocol(ctx, _):
        api = PrimitiveSnapshotAPI("obj", 3)
        yield from api.update(ctx.pid, 1)
        view = yield from api.scan()
        yield Decide(view)

    sim = Simulation(system, {0: protocol}, inputs={0: None})
    sim.step(0)
    sim.step(0)
    sim.step(0)
    assert sim.runtimes[0].has_decided
    assert sim.runtimes[0].steps_taken == 3
