"""Tests for the store/collect helpers and a stateful model test of Memory.

The stateful test drives `Memory` with random operation sequences and
compares every response against an independent dictionary model — the
lightweight sibling of the trace-replay validator.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, precondition, rule

from repro.memory import Memory, cell, collect, read_cell, store
from repro.runtime import (
    BOT,
    ConsensusPropose,
    Decide,
    Read,
    RoundRobinScheduler,
    Simulation,
    SnapshotScan,
    SnapshotUpdate,
    System,
    Write,
)


class TestCollectHelpers:
    def test_cell_key_shape(self):
        assert cell("arr", 2) == ("arr", 2)

    def test_store_then_collect(self, system3):
        def protocol(ctx, value):
            yield from store("arr", ctx.pid, value)
            values = yield from collect("arr", ctx.system.n_processes)
            yield Decide(tuple(values))

        sim = Simulation(system3, protocol,
                         inputs={p: f"v{p}" for p in system3.pids})
        sim.run_until(Simulation.all_correct_decided, 1_000,
                      RoundRobinScheduler())
        # Under lockstep, the last process to collect sees every store.
        final = sim.decisions()[2]
        assert final == ("v0", "v1", "v2")

    def test_collect_sees_bot_for_unwritten(self, system3):
        def protocol(ctx, _):
            values = yield from collect("ghost", 3)
            yield Decide(tuple(values))

        sim = Simulation(system3, {0: protocol}, inputs={0: None})
        while not sim.runtimes[0].has_decided:
            sim.step(0)
        assert sim.runtimes[0].decision == (BOT, BOT, BOT)

    def test_read_cell(self, system3):
        def protocol(ctx, _):
            yield from store("arr", 1, "x")
            value = yield from read_cell("arr", 1)
            yield Decide(value)

        sim = Simulation(system3, {0: protocol}, inputs={0: None})
        while not sim.runtimes[0].has_decided:
            sim.step(0)
        assert sim.runtimes[0].decision == "x"

    def test_collect_costs_one_step_per_cell(self, system3):
        def protocol(ctx, _):
            yield from collect("arr", 3)
            yield Decide("done")

        sim = Simulation(system3, {0: protocol}, inputs={0: None})
        while not sim.runtimes[0].has_decided:
            sim.step(0)
        assert sim.runtimes[0].steps_taken == 4  # 3 reads + decide


class MemoryModel(RuleBasedStateMachine):
    """Random Memory workloads checked against a dict model."""

    def __init__(self):
        super().__init__()
        self.system = System(4)
        self.memory = Memory(self.system)
        self.registers = {}
        self.snapshots = {}
        self.consensus = {}
        self.consensus_accessors = {}

    keys = st.sampled_from(["a", ("b", 1), ("c", 2, "x")])
    snap_keys = st.sampled_from(["s1", ("s", 2)])
    cons_keys = st.sampled_from(["c1", "c2"])
    pids = st.integers(0, 3)
    values = st.one_of(st.integers(), st.text(max_size=4))

    @rule(key=keys, value=values, pid=pids)
    def write(self, key, value, pid):
        self.memory.execute(Write(key, value), pid)
        self.registers[key] = value

    @rule(key=keys, pid=pids)
    def read(self, key, pid):
        got = self.memory.execute(Read(key), pid)
        expected = self.registers.get(key, BOT)
        assert got == expected or (got is BOT and expected is BOT)

    @rule(key=snap_keys, index=pids, value=values, pid=pids)
    def snap_update(self, key, index, value, pid):
        self.memory.execute(SnapshotUpdate(key, index, value), pid)
        self.snapshots.setdefault(key, {})[index] = value

    @rule(key=snap_keys, pid=pids)
    def snap_scan(self, key, pid):
        got = self.memory.execute(SnapshotScan(key), pid)
        model = self.snapshots.setdefault(key, {})
        expected = tuple(model.get(i, BOT) for i in range(4))
        assert got == expected

    @rule(key=cons_keys, value=values, pid=pids)
    def propose(self, key, value, pid):
        accessors = self.consensus_accessors.setdefault(key, set())
        if len(accessors | {pid}) > 4:
            return  # would violate the type restriction (m = 4 here)
        got = self.memory.execute(ConsensusPropose(key, value), pid)
        accessors.add(pid)
        if key not in self.consensus:
            self.consensus[key] = value
        assert got == self.consensus[key]

    @precondition(lambda self: self.registers)
    @rule()
    def peek_matches(self):
        for key, expected in self.registers.items():
            assert self.memory.peek_register(key) == expected


MemoryModel.TestCase.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
TestMemoryModel = MemoryModel.TestCase
