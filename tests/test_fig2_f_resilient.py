"""Tests for Fig. 2 — Υf-based f-resilient f-set agreement (Theorem 6)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import make_upsilon_f_set_agreement
from repro.detectors import StableHistory, UpsilonFSpec
from repro.failures import Environment, FailurePattern
from repro.runtime import System
from repro.tasks import SetAgreementSpec

from tests.helpers import run_to_decision


def run_fig2(system, f, pattern, history, seed=0, register_based=False):
    inputs = {p: f"v{p}" for p in system.pids}
    sim = run_to_decision(
        system,
        make_upsilon_f_set_agreement(f, register_based=register_based),
        inputs,
        pattern=pattern,
        history=history,
        seed=seed,
        max_steps=1_000_000,
    )
    SetAgreementSpec(f).check(sim, inputs).raise_if_failed()
    return sim


class TestParameterValidation:
    def test_f_must_be_positive(self):
        with pytest.raises(ValueError):
            make_upsilon_f_set_agreement(0)


class TestGridSweep:
    @pytest.mark.parametrize("n_procs,f", [
        (3, 1), (3, 2), (4, 1), (4, 2), (4, 3), (5, 2), (5, 4),
    ])
    def test_agreement_bound_is_f(self, n_procs, f):
        system = System(n_procs)
        env = Environment(system, f)
        spec = UpsilonFSpec(env)
        for seed in range(4):
            rng = random.Random(f"{n_procs}/{f}/{seed}")
            pattern = env.random_pattern(rng, max_crash_time=60)
            history = spec.sample_history(pattern, rng, stabilization_time=80)
            sim = run_fig2(system, f, pattern, history, seed=seed)
            assert len(sim.trace.decided_values()) <= f


class TestMinimumSizeOutput:
    def test_u_of_exactly_min_size_relies_on_citizens(self):
        """|U| = n+1−f makes the gladiator convergence 0-converge (never
        commits); a correct citizen must free the round."""
        system = System(5)  # n = 4
        f = 2
        pattern = FailurePattern.crash_at(system, {0: 10, 1: 20})
        # |U| = n+1−f = 3, U ≠ correct = {2,3,4}: pick {0,1,2}.
        history = StableHistory(frozenset({0, 1, 2}), stabilization_time=0)
        run_fig2(system, f, pattern, history, seed=1)

    def test_u_superset_of_correct_uses_snapshot_elimination(self):
        """correct ⊊ U: the snapshot chain bounds distinct adopted values."""
        system = System(5)
        f = 2
        pattern = FailurePattern.crash_at(system, {0: 15, 4: 25})
        history = StableHistory(system.pid_set, stabilization_time=0)
        sim = run_fig2(system, f, pattern, history, seed=2)
        assert len(sim.trace.decided_values()) <= f


class TestBlockingLoopEscapes:
    def test_escape_via_round_register(self):
        """Gladiators blocked at < n+1−f entries escape once a citizen
        writes D[r]."""
        system = System(4)
        f = 2
        # correct = {2, 3}; stable U = {0, 1}? size must be >= n+1-f = 2. OK.
        # But U must not equal correct; {0,1} != {2,3}. Gladiators 0,1 are
        # both faulty; citizens 2,3 are correct and publish.
        pattern = FailurePattern.crash_at(system, {0: 25, 1: 30})
        history = StableHistory(frozenset({0, 1}), stabilization_time=0)
        run_fig2(system, f, pattern, history, seed=3)

    def test_escape_via_instability_flag(self):
        """A long noisy prefix exercises Stable[r]-based escapes."""
        system = System(4)
        f = 2
        env = Environment(system, f)
        spec = UpsilonFSpec(env)
        rng = random.Random(77)
        pattern = FailurePattern.crash_at(system, {1: 50})
        history = spec.sample_history(pattern, rng, stabilization_time=300)
        run_fig2(system, f, pattern, history, seed=4)


class TestWaitFreeInstanceMatchesFig1Guarantee:
    def test_f_equals_n(self, system4):
        """Υ^n-based Fig. 2 still solves n-set agreement."""
        env = Environment.wait_free(system4)
        spec = UpsilonFSpec(env)
        rng = random.Random(5)
        pattern = env.random_pattern(rng, max_crash_time=40)
        history = spec.sample_history(pattern, rng, stabilization_time=60)
        sim = run_fig2(system4, system4.n, pattern, history, seed=5)
        assert len(sim.trace.decided_values()) <= system4.n


class TestRegisterOnlyBuild:
    def test_register_based(self):
        system = System(4)
        f = 2
        env = Environment(system, f)
        spec = UpsilonFSpec(env)
        rng = random.Random(6)
        pattern = env.random_pattern(rng, max_crash_time=30)
        history = spec.sample_history(pattern, rng, stabilization_time=40)
        run_fig2(system, f, pattern, history, seed=6, register_based=True)


@given(
    n_procs=st.integers(3, 5),
    seed=st.integers(0, 100_000),
    stabilization=st.integers(0, 150),
    f_choice=st.integers(1, 4),
)
@settings(max_examples=30, deadline=None)
def test_fig2_properties_hypothesis(n_procs, seed, stabilization, f_choice):
    system = System(n_procs)
    f = min(f_choice, system.n)
    env = Environment(system, f)
    spec = UpsilonFSpec(env)
    rng = random.Random(seed)
    pattern = env.random_pattern(rng, max_crash_time=stabilization or 40)
    history = spec.sample_history(pattern, rng, stabilization_time=stabilization)
    inputs = {p: f"v{p}" for p in system.pids}
    sim = run_to_decision(
        system, make_upsilon_f_set_agreement(f), inputs,
        pattern=pattern, history=history, seed=seed, max_steps=1_000_000,
    )
    SetAgreementSpec(f).check(sim, inputs).raise_if_failed()
