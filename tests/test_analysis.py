"""Tests for the analysis layer: stats, trial drivers, history adapters."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    ComplementHistory,
    EmittedHistory,
    max_round_reached,
    percentile,
    run_extraction_trial,
    run_latency_comparison,
    run_set_agreement_trial,
    summarize,
)
from repro.detectors import ConstantHistory, OmegaSpec, StableHistory
from repro.failures import Environment
from repro.runtime import Emit, Nop, Simulation, System


class TestStats:
    def test_summarize_basic(self):
        s = summarize([1, 2, 3, 4, 5])
        assert s.count == 5
        assert s.mean == 3
        assert s.median == 3
        assert s.minimum == 1 and s.maximum == 5

    def test_percentile_interpolates(self):
        assert percentile([0, 10], 0.5) == 5
        assert percentile([0, 10, 20], 0.95) == pytest.approx(19.0)

    def test_percentile_single(self):
        assert percentile([7], 0.5) == 7

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_row_format(self):
        row = summarize([1.0, 2.0]).row("label")
        assert "label" in row and "n=2" in row

    @given(st.lists(
        st.floats(0, 1e6, allow_subnormal=False), min_size=1, max_size=40,
    ))
    @settings(max_examples=50, deadline=None)
    def test_summary_bounds(self, values):
        s = summarize(values)
        eps = 1e-6 * max(1.0, s.maximum)  # float-arithmetic slack
        assert s.minimum - eps <= s.median <= s.maximum + eps
        assert s.minimum - eps <= s.mean <= s.maximum + eps
        assert s.minimum - eps <= s.p95 <= s.maximum + eps


class TestSetAgreementTrials:
    def test_fig1_default_for_wait_free(self, system4):
        result = run_set_agreement_trial(system4, system4.n, seed=1,
                                         stabilization_time=50)
        assert result.ok
        assert result.distinct_decisions <= system4.n
        assert result.rounds >= 1
        assert result.last_decision_time <= result.total_steps

    def test_fig2_default_for_f_lt_n(self, system4):
        result = run_set_agreement_trial(system4, 2, seed=1,
                                         stabilization_time=50)
        assert result.ok and result.f == 2
        assert result.distinct_decisions <= 2

    def test_explicit_protocol_choice(self, system4):
        result = run_set_agreement_trial(
            system4, system4.n, seed=2, stabilization_time=30, use_fig2=True
        )
        assert result.ok

    def test_adversarial_mode_latency_tracks_stabilization(self, system4):
        fast = run_set_agreement_trial(
            system4, system4.n, seed=1, stabilization_time=0,
            adversarial=True,
        )
        slow = run_set_agreement_trial(
            system4, system4.n, seed=1, stabilization_time=1000,
            adversarial=True,
        )
        assert fast.ok and slow.ok
        assert slow.last_decision_time >= 1000
        assert fast.last_decision_time < 1000

    def test_adversarial_mode_is_deterministic(self, system4):
        a = run_set_agreement_trial(system4, system4.n, seed=1,
                                    stabilization_time=100, adversarial=True)
        b = run_set_agreement_trial(system4, system4.n, seed=2,
                                    stabilization_time=100, adversarial=True)
        # Lockstep schedule + fixed noise: the seed is irrelevant.
        assert a.last_decision_time == b.last_decision_time


class TestExtractionTrials:
    def test_fields(self, system4):
        env = Environment.wait_free(system4)
        result = run_extraction_trial(OmegaSpec(system4), env, seed=4)
        assert result.stabilized and result.legal
        assert result.f == env.f


class TestLatencyComparison:
    def test_both_sides_decide(self, system4):
        result = run_latency_comparison(system4, seed=3, stabilization_time=60)
        assert result.upsilon_steps > 0
        assert result.omega_n_steps > 0


class TestComplementHistory:
    def test_set_values(self, system4):
        inner = ConstantHistory(frozenset({0, 1, 2}))
        h = ComplementHistory(system4, inner)
        assert h.value(0, 0) == frozenset({3})

    def test_scalar_values(self, system4):
        inner = StableHistory(2, stabilization_time=0)
        h = ComplementHistory(system4, inner)
        assert h.value(1, 5) == frozenset({0, 1, 3})


class TestEmittedHistory:
    def test_replays_timeline(self, system3):
        def proto(ctx, _):
            yield Emit("a")
            yield Nop()
            yield Emit("b")
            yield Nop()

        sim = Simulation(system3, {0: proto}, inputs={0: None})
        for _ in range(4):
            sim.step(0)
        h = EmittedHistory(sim, default="dflt")
        assert h.value(0, 0) == "a"
        assert h.value(0, 1) == "a"
        assert h.value(0, 2) == "b"
        assert h.value(0, 10**6) == "b"
        assert h.value(1, 50) == "dflt"  # process 1 never emitted


class TestMaxRoundReached:
    def test_counts_protocol_rounds(self, system4):
        result = run_set_agreement_trial(system4, system4.n, seed=5,
                                         stabilization_time=200)
        assert result.rounds >= 1

    def test_zero_for_empty_memory(self, system3):
        sim = Simulation(system3, lambda ctx, v: iter(()), inputs={})
        assert max_round_reached(sim) == 0
