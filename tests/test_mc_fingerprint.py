"""State fingerprinting: determinism, merging, and time sensitivity."""

import random

import pytest

from repro.mc import McInstance, build_simulation, resolve_instance
from repro.mc.fingerprint import (
    FingerprintError,
    _encode_object,
    _op_fragment,
    canonical_fingerprint,
    canonical_state,
    fingerprint,
    pending_crashes,
    time_sensitive,
)


def _sim(instance):
    return build_simulation(resolve_instance(instance))


class TestDeterminism:
    def test_same_schedule_same_fingerprint(self):
        instance = McInstance("converge", n_processes=2)
        a, b = _sim(instance), _sim(instance)
        for sim in (a, b):
            sim.run_script([0, 1, 0, 1])
        assert fingerprint(a) == fingerprint(b)

    def test_fingerprint_survives_process_boundary(self):
        """The digest must be stable across interpreter hash seeds; at
        minimum it cannot depend on object identity within one process."""
        instance = McInstance("fig1", n_processes=2)
        digests = set()
        for _ in range(3):
            sim = _sim(instance)
            sim.run_script([0, 1])
            digests.add(fingerprint(sim))
        assert len(digests) == 1

    def test_different_states_differ(self):
        instance = McInstance("converge", n_processes=2)
        a, b = _sim(instance), _sim(instance)
        a.run_script([0, 1])
        b.run_script([0, 0])
        assert fingerprint(a) != fingerprint(b)


class TestMerging:
    def test_commuting_steps_merge(self):
        """Two orders of independent first steps reach the same state."""
        instance = McInstance("converge", n_processes=2)
        a, b = _sim(instance), _sim(instance)
        a.run_script([0, 1])  # p0's update, then p1's update
        b.run_script([1, 0])  # the opposite order
        assert canonical_state(a) == canonical_state(b)
        assert fingerprint(a) == fingerprint(b)


class TestTimeSensitivity:
    def test_insensitive_without_crashes_or_noise(self):
        sim = _sim(McInstance("fig1", n_processes=2))
        assert not time_sensitive(sim)
        assert "t" not in canonical_state(sim)

    def test_pending_crash_is_sensitive_until_it_fires(self):
        instance = McInstance("fig1", n_processes=2, f=1, crashes=((0, 2),))
        sim = _sim(instance)
        assert pending_crashes(sim) == [(0, 2)]
        assert time_sensitive(sim)
        assert canonical_state(sim)["t"] == 0
        sim.run_script([1, 1])  # t reaches 2: the crash is due, not pending
        assert pending_crashes(sim) == []
        assert not time_sensitive(sim)

    def test_unstabilized_history_is_sensitive(self):
        instance = McInstance("fig1", n_processes=2, stabilization_time=6,
                              noise_seed=1)
        sim = _sim(instance)
        assert time_sensitive(sim)
        for _ in range(3):
            sim.run_script([0, 1])
        assert sim.time >= 6
        assert not time_sensitive(sim)


class TestEncoding:
    def test_unknown_object_type_raises(self):
        class Exotic:
            def describe(self):
                return "exotic"

        with pytest.raises(FingerprintError, match="exotic"):
            _encode_object("key", Exotic())


class TestFragmentCacheSoundness:
    """The op-fragment cache keys must be *type-faithful*: Python deems
    ``True == 1`` and ``hash(True) == hash(1)``, but the canonical JSON
    encodings differ, so an equality-keyed cache would merge states the
    exhaustive checker must keep apart."""

    def test_bool_and_int_payloads_stay_distinct(self):
        from repro.runtime.ops import Write

        frags = {
            _op_fragment(Write("k", payload), response)
            for payload, response in [
                (True, None), (1, None), (False, None), (0, None),
            ]
        }
        assert len(frags) == 4

    def test_bool_and_int_responses_stay_distinct(self):
        from repro.runtime.ops import Read

        assert _op_fragment(Read("k"), True) != _op_fragment(Read("k"), 1)


class TestIncrementalDifferential:
    """Fuzzed oracle: the incrementally maintained digest must be
    byte-identical to the from-scratch walk at every reachable state, and
    partition-equivalent to the legacy whole-state JSON fingerprint."""

    INSTANCES = [
        McInstance("fig1", n_processes=2),
        McInstance("fig2", n_processes=3, f=1),
        McInstance("extraction", n_processes=2),
        McInstance("fig1", n_processes=3, f=1, crashes=((1, 4),)),
        McInstance("extraction", n_processes=2, crashes=((0, 5),)),
    ]

    @pytest.mark.parametrize("instance", INSTANCES,
                             ids=lambda i: i.describe())
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_incremental_equals_full_walk(self, instance, seed):
        from repro.mc.checkpoint import SimulationJournal

        rng = random.Random(seed)
        live = _sim(instance)
        twin = _sim(instance)
        journal = SimulationJournal(live)
        for _ in range(50):
            eligible = live.eligible()
            if not eligible:
                break
            pid = eligible[rng.randrange(len(eligible))]
            # run_script on both sims so due bystander crashes are applied
            # at the same point — bare step() defers them to the next
            # eligible() call, which would skew the comparison below.
            live.run_script([pid])
            twin.run_script([pid])
            assert journal.digest() == fingerprint(live) == fingerprint(twin)

    @pytest.mark.parametrize("instance", INSTANCES[:3],
                             ids=lambda i: i.describe())
    def test_partition_equivalence_with_canonical_oracle(self, instance):
        """Chained and whole-JSON fingerprints induce the same partition
        over a sample of reached states: equal one way iff the other."""
        rng = random.Random(7)
        by_chain = {}
        for trial in range(6):
            sim = _sim(instance)
            for _ in range(rng.randrange(4, 16)):
                eligible = sim.eligible()
                if not eligible:
                    break
                sim.step(eligible[rng.randrange(len(eligible))])
            chained = fingerprint(sim)
            canonical = canonical_fingerprint(sim)
            assert by_chain.setdefault(chained, canonical) == canonical
