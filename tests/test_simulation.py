"""Tests for the simulation engine: step semantics, crashes, run loops."""

import pytest

from repro.detectors import ConstantHistory, ScriptedHistory
from repro.failures import FailurePattern
from repro.runtime import (
    BOT,
    Decide,
    Emit,
    NON_PARTICIPANT,
    Nop,
    ProtocolError,
    QueryFD,
    RandomScheduler,
    Read,
    RoundRobinScheduler,
    Simulation,
    SimulationLimitError,
    System,
    Write,
    run_protocol,
)


def looping(ctx, _):
    while True:
        yield Nop()


def write_then_decide(ctx, v):
    yield Write(("R", ctx.pid), v)
    got = yield Read(("R", ctx.pid))
    yield Decide(got)


class TestStepSemantics:
    def test_time_advances_per_step(self, system3):
        sim = Simulation(system3, looping, inputs={})
        assert sim.time == 0
        sim.step(0)
        sim.step(1)
        assert sim.time == 2
        assert len(sim.trace) == 2

    def test_query_fd_gets_time_indexed_value(self, system3):
        history = ScriptedHistory({(0, 0): "early", (0, 5): "late"}, default="mid")

        def proto(ctx, _):
            first = yield QueryFD()
            for _ in range(4):
                yield Nop()
            second = yield QueryFD()
            yield Decide((first, second))

        sim = Simulation(system3, {0: proto}, inputs={0: None}, history=history)
        for _ in range(7):
            sim.step(0)
        assert sim.runtimes[0].decision == ("early", "late")

    def test_query_without_history_raises(self, system3):
        def proto(ctx, _):
            yield QueryFD()

        sim = Simulation(system3, {0: proto}, inputs={0: None})
        with pytest.raises(ProtocolError, match="no history"):
            sim.step(0)

    def test_decide_recorded(self, system3):
        sim = Simulation(system3, write_then_decide, inputs={0: "a", 1: "b", 2: "c"})
        sim.run_until(Simulation.all_correct_decided, 1000, RoundRobinScheduler())
        assert sim.decisions() == {0: "a", 1: "b", 2: "c"}

    def test_emit_updates_current_output(self, system3):
        def proto(ctx, _):
            yield Emit(1)
            yield Emit(2)
            while True:
                yield Nop()

        sim = Simulation(system3, {0: proto}, inputs={0: None})
        sim.step(0)
        assert sim.emulated_outputs() == {0: 1}
        sim.step(0)
        assert sim.emulated_outputs() == {0: 2}

    def test_stepping_unknown_pid(self, system3):
        sim = Simulation(system3, {0: looping}, inputs={0: None})
        with pytest.raises(ProtocolError, match="not participating"):
            sim.step(2)

    def test_stepping_returned_process(self, system3):
        def proto(ctx, _):
            yield Nop()

        sim = Simulation(system3, {0: proto}, inputs={0: None})
        sim.step(0)
        with pytest.raises(ProtocolError, match="returned"):
            sim.step(0)


class TestCrashes:
    def test_crashed_process_not_eligible(self, system3):
        pattern = FailurePattern.crash_at(system3, {1: 2})
        sim = Simulation(system3, looping, inputs={}, pattern=pattern)
        assert sim.eligible() == [0, 1, 2]
        sim.step(0)
        sim.step(1)
        assert sim.eligible() == [0, 2]

    def test_stepping_crashed_process_raises(self, system3):
        pattern = FailurePattern.crash_at(system3, {1: 0})
        sim = Simulation(system3, looping, inputs={}, pattern=pattern)
        with pytest.raises(ProtocolError, match="crashed"):
            sim.step(1)

    def test_crash_mid_protocol_preserves_memory(self, system3):
        """A process that crashed after writing leaves its write visible."""
        pattern = FailurePattern.crash_at(system3, {0: 1})

        def writer(ctx, _):
            yield Write("shared", "legacy")
            yield Nop()  # never reached: crash at t=1

        def reader(ctx, _):
            while True:
                value = yield Read("shared")
                if value is not BOT:
                    yield Decide(value)
                    return

        sim = Simulation(
            system3, {0: writer, 1: reader}, inputs={0: None, 1: None},
            pattern=pattern,
        )
        sim.step(0)  # the write, at t=0
        sim.run_until(
            Simulation.all_correct_decided, 100, RoundRobinScheduler(start=1)
        )
        assert sim.runtimes[1].decision == "legacy"

    def test_all_correct_decided_ignores_faulty(self, system3):
        pattern = FailurePattern.crash_at(system3, {2: 0})
        sim = Simulation(system3, write_then_decide, inputs={0: 1, 1: 2, 2: 3},
                         pattern=pattern)
        sim.run_until(Simulation.all_correct_decided, 1000, RoundRobinScheduler())
        assert set(sim.decisions()) == {0, 1}


class TestRunLoops:
    def test_run_stops_at_quiescence(self, system3):
        sim = Simulation(system3, write_then_decide, inputs={p: p for p in range(3)})
        trace = sim.run(max_steps=10_000)
        assert len(trace) == 9  # 3 steps each, all returned

    def test_run_until_budget_error(self, system3):
        sim = Simulation(system3, looping, inputs={})
        with pytest.raises(SimulationLimitError):
            sim.run_until(lambda s: False, max_steps=50)

    def test_run_until_returns_trace(self, system3):
        sim = Simulation(system3, write_then_decide, inputs={p: p for p in range(3)})
        trace = sim.run_until(Simulation.all_correct_decided, 1000)
        assert trace is sim.trace

    def test_run_script(self, system3):
        sim = Simulation(system3, looping, inputs={})
        sim.run_script([0, 0, 1, 2, 0])
        counts = sim.trace.step_counts()
        assert counts[0] == 3 and counts[1] == 1 and counts[2] == 1

    def test_stop_when_predicate(self, system3):
        sim = Simulation(system3, looping, inputs={})
        sim.run(max_steps=1000, stop_when=lambda s: s.time >= 7)
        assert sim.time == 7


class TestParticipation:
    def test_non_participant_sentinel(self, system3):
        sim = Simulation(
            system3, write_then_decide, inputs={0: "a", 1: NON_PARTICIPANT, 2: "c"}
        )
        assert set(sim.runtimes) == {0, 2}
        assert sim.eligible() == [0, 2]

    def test_protocol_map_partial(self, system3):
        sim = Simulation(system3, {1: looping}, inputs={})
        assert set(sim.runtimes) == {1}

    def test_run_protocol_helper(self, system3):
        sim = run_protocol(
            system3, write_then_decide, {p: p * 2 for p in system3.pids}
        )
        assert sim.decisions() == {0: 0, 1: 2, 2: 4}

    def test_run_protocol_requires_termination(self, system3):
        with pytest.raises(SimulationLimitError):
            run_protocol(system3, looping, {p: None for p in system3.pids},
                         max_steps=100)

    def test_run_protocol_no_termination_flag(self, system3):
        sim = run_protocol(
            system3, looping, {p: None for p in system3.pids},
            max_steps=100, require_termination=False,
        )
        assert sim.time == 100


class TestOperationDispatch:
    """Operation dispatch must never mutate class-level state from inside
    a run: the farm's threaded heartbeat executes simulations concurrently,
    and the old hot-path memoization of subclass handlers into
    ``Simulation._OP_HANDLERS`` was a data race (and leaked one run's
    resolution into every other simulation in the process)."""

    class _SubNop(Nop):
        pass

    def test_subclass_dispatch_does_not_mutate_class_table(self, system3):
        sub_nop = self._SubNop

        def proto(ctx, _):
            yield sub_nop()
            yield Decide("ok")

        before = dict(Simulation._OP_HANDLERS)
        handled_before = sub_nop in Simulation._OP_HANDLERS
        sim = Simulation(system3, {0: proto}, inputs={0: None})
        sim.step(0)  # resolved through the read-only MRO fallback
        sim.step(0)
        assert sim.decisions() == {0: "ok"}
        assert Simulation._OP_HANDLERS == before
        assert (sub_nop in Simulation._OP_HANDLERS) == handled_before

    def test_register_operation_extends_the_table(self, system3):
        class Chirp(Nop):
            pass

        assert Chirp not in Simulation._OP_HANDLERS
        Simulation.register_operation(Chirp)  # resolves handler from bases
        try:
            assert Chirp in Simulation._OP_HANDLERS

            def proto(ctx, _):
                yield Chirp()
                yield Decide("chirped")

            sim = Simulation(system3, {0: proto}, inputs={0: None})
            sim.step(0)
            sim.step(0)
            assert sim.decisions() == {0: "chirped"}
        finally:
            table = dict(Simulation._OP_HANDLERS)
            del table[Chirp]
            Simulation._OP_HANDLERS = table

    def test_concurrent_subclass_dispatch_is_stable(self, system3):
        """Two sims dispatching an unregistered subclass in interleaved
        steps both resolve correctly with zero shared-state writes."""
        sub_nop = self._SubNop

        def proto(ctx, _):
            for _ in range(5):
                yield sub_nop()
            yield Decide(ctx.pid)

        sims = [Simulation(system3, {0: proto}, inputs={0: None})
                for _ in range(2)]
        before = dict(Simulation._OP_HANDLERS)
        for _ in range(6):
            for sim in sims:
                sim.step(0)
        assert all(sim.decisions() == {0: 0} for sim in sims)
        assert Simulation._OP_HANDLERS == before


class TestHistoryIntegration:
    def test_constant_history(self, system3):
        def proto(ctx, _):
            value = yield QueryFD()
            yield Decide(value)

        sim = Simulation(
            system3, proto, inputs={p: None for p in system3.pids},
            history=ConstantHistory("d"),
        )
        sim.run_until(Simulation.all_correct_decided, 100)
        assert set(sim.decisions().values()) == {"d"}


class TestDoubleDecide:
    """A second Decide from the same process is a protocol contract breach
    the simulation itself must reject (not just the per-process runtime)."""

    def _double_decider(self, ctx, v):
        yield Decide(v)
        yield Decide(v)

    def test_second_decide_raises(self, system3):
        sim = Simulation(
            system3, self._double_decider,
            inputs={p: p for p in system3.pids},
        )
        sim.step(0)  # first decide is fine
        with pytest.raises(ProtocolError, match="second Decide"):
            sim.step(0)

    def test_first_decision_survives(self, system3):
        sim = Simulation(
            system3, self._double_decider,
            inputs={p: "v" for p in system3.pids},
        )
        sim.step(0)
        with pytest.raises(ProtocolError):
            sim.step(0)
        assert sim.decisions()[0] == "v"
        assert sim.trace.decisions() == {0: "v"}

    def test_violation_event_published(self, system3):
        from repro.obs import EventBus
        from repro.obs.events import ProtocolViolated

        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, kinds=[ProtocolViolated])
        sim = Simulation(
            system3, self._double_decider,
            inputs={p: "v" for p in system3.pids}, bus=bus,
        )
        sim.step(0)
        with pytest.raises(ProtocolError):
            sim.step(0)
        assert len(seen) == 1
        assert seen[0].pid == 0
        assert "second Decide" in seen[0].reason
