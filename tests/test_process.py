"""Unit tests for System and the process runtime."""

import pytest

from repro.runtime import (
    Decide,
    Nop,
    ProcessContext,
    ProcessRuntime,
    ProcessStatus,
    ProtocolError,
    System,
)


class TestSystem:
    def test_n_relationship(self):
        assert System(4).n == 3
        assert System(2).n == 1

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            System(1)

    def test_pids(self):
        assert list(System(3).pids) == [0, 1, 2]

    def test_pid_set_and_complement(self):
        s = System(4)
        assert s.pid_set == frozenset({0, 1, 2, 3})
        assert s.complement([1, 2]) == frozenset({0, 3})
        assert s.complement([]) == s.pid_set

    def test_validate_pid(self):
        s = System(3)
        s.validate_pid(2)
        with pytest.raises(ValueError):
            s.validate_pid(3)
        with pytest.raises(ValueError):
            s.validate_pid(-1)


class TestProcessContext:
    def test_others(self):
        ctx = ProcessContext(pid=1, system=System(3))
        assert ctx.others == frozenset({0, 2})


def _runtime(protocol, pid=0, system=None, value=None):
    ctx = ProcessContext(pid=pid, system=system or System(3))
    return ProcessRuntime(ctx, protocol, value)


class TestProcessRuntime:
    def test_priming_exposes_first_op(self):
        def proto(ctx, v):
            yield Nop()

        rt = _runtime(proto)
        assert rt.pending_op == Nop()
        assert rt.steps_taken == 0
        assert rt.status is ProcessStatus.RUNNING

    def test_resume_advances(self):
        def proto(ctx, v):
            got = yield Nop()
            assert got == "resp"
            yield Decide(1)

        rt = _runtime(proto)
        rt.resume("resp")
        assert rt.pending_op == Decide(1)
        assert rt.steps_taken == 1

    def test_return_sets_status_and_value(self):
        def proto(ctx, v):
            yield Nop()
            return "done"

        rt = _runtime(proto)
        rt.resume(None)
        assert rt.status is ProcessStatus.RETURNED
        assert rt.return_value == "done"
        assert not rt.schedulable

    def test_immediate_return(self):
        def proto(ctx, v):
            return "instant"
            yield  # pragma: no cover — makes it a generator

        rt = _runtime(proto)
        assert rt.status is ProcessStatus.RETURNED
        assert rt.return_value == "instant"

    def test_non_operation_yield_rejected(self):
        def proto(ctx, v):
            yield "not an op"

        with pytest.raises(ProtocolError, match="not an Operation"):
            _runtime(proto)

    def test_non_operation_later_yield_rejected(self):
        def proto(ctx, v):
            yield Nop()
            yield 42

        rt = _runtime(proto)
        with pytest.raises(ProtocolError):
            rt.resume(None)

    def test_double_decide_rejected(self):
        def proto(ctx, v):
            yield Decide(1)
            yield Decide(2)

        rt = _runtime(proto)
        rt.record_decision(1)
        with pytest.raises(ProtocolError, match="decided twice"):
            rt.record_decision(2)

    def test_crash_stops_scheduling(self):
        def proto(ctx, v):
            while True:
                yield Nop()

        rt = _runtime(proto)
        rt.crash()
        assert rt.status is ProcessStatus.CRASHED
        assert not rt.schedulable
        with pytest.raises(ProtocolError):
            rt.resume(None)

    def test_crash_closes_generator(self):
        cleaned = []

        def proto(ctx, v):
            try:
                while True:
                    yield Nop()
            finally:
                cleaned.append(True)

        rt = _runtime(proto)
        rt.crash()
        assert cleaned == [True]

    def test_input_value_delivered(self):
        def proto(ctx, v):
            yield Decide(v * 2)

        rt = _runtime(proto, value=21)
        assert rt.input_value == 21
        assert rt.pending_op == Decide(42)

    def test_emit_recorded(self):
        def proto(ctx, v):
            yield Nop()

        rt = _runtime(proto)
        assert not rt.has_emitted
        rt.record_emit("x")
        assert rt.has_emitted and rt.emitted == "x"
        rt.record_emit("y")
        assert rt.emitted == "y"
