"""Unit and property tests for failure patterns and environments E_f."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.failures import Environment, FailurePattern
from repro.runtime import PatternError, System


class TestFailurePattern:
    def test_failure_free(self, system3):
        p = FailurePattern.failure_free(system3)
        assert p.faulty == frozenset()
        assert p.correct == system3.pid_set
        assert p.crashed_by(10**6) == frozenset()
        assert p.describe() == "failure-free"

    def test_crash_at(self, system3):
        p = FailurePattern.crash_at(system3, {0: 5, 2: 10})
        assert p.faulty == frozenset({0, 2})
        assert p.correct == frozenset({1})
        assert p.crashed_by(4) == frozenset()
        assert p.crashed_by(5) == frozenset({0})
        assert p.crashed_by(10) == frozenset({0, 2})
        assert p.last_crash_time == 10

    def test_is_alive_boundary(self, system3):
        p = FailurePattern.crash_at(system3, {1: 7})
        assert p.is_alive(1, 6)
        assert not p.is_alive(1, 7)
        assert p.is_alive(0, 10**9)

    def test_crash_time(self, system3):
        p = FailurePattern.crash_at(system3, {1: 7})
        assert p.crash_time(1) == 7
        assert p.crash_time(0) is None

    def test_at_least_one_correct(self, system3):
        with pytest.raises(PatternError):
            FailurePattern.crash_at(system3, {0: 1, 1: 1, 2: 1})

    def test_negative_crash_time_rejected(self, system3):
        with pytest.raises(PatternError):
            FailurePattern.crash_at(system3, {0: -1})

    def test_bad_pid_rejected(self, system3):
        with pytest.raises(ValueError):
            FailurePattern.crash_at(system3, {5: 1})

    def test_only_correct(self, system4):
        p = FailurePattern.only_correct(system4, [1, 3])
        assert p.correct == frozenset({1, 3})
        assert p.crashed_by(0) == frozenset({0, 2})

    def test_describe_lists_crashes(self, system3):
        p = FailurePattern.crash_at(system3, {2: 3})
        assert "p2@3" in p.describe()

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=50, deadline=None)
    def test_random_pattern_invariants(self, seed):
        system = System(5)
        p = FailurePattern.random(system, random.Random(seed))
        # partition
        assert p.correct | p.faulty == system.pid_set
        assert not (p.correct & p.faulty)
        assert p.correct  # at least one correct
        # monotonicity of F(t)
        previous = frozenset()
        for t in range(0, 250, 10):
            now = p.crashed_by(t)
            assert previous <= now
            previous = now
        assert p.crashed_by(10**9) == p.faulty

    def test_random_respects_max_faulty(self, system5, rng):
        for _ in range(20):
            p = FailurePattern.random(system5, rng, max_faulty=2)
            assert len(p.faulty) <= 2

    def test_random_max_faulty_validated(self, system3, rng):
        with pytest.raises(PatternError):
            FailurePattern.random(system3, rng, max_faulty=3)


class TestEnvironment:
    def test_wait_free(self, system4):
        env = Environment.wait_free(system4)
        assert env.f == 3
        assert env.is_wait_free
        assert env.min_correct == 1

    def test_min_correct(self, system5):
        assert Environment(system5, 2).min_correct == 3

    def test_f_bounds(self, system3):
        with pytest.raises(PatternError):
            Environment(system3, 3)  # f must be <= n = 2
        with pytest.raises(PatternError):
            Environment(system3, -1)

    def test_admits(self, system4):
        env = Environment(system4, 1)
        assert env.admits(FailurePattern.crash_at(system4, {0: 3}))
        assert not env.admits(FailurePattern.crash_at(system4, {0: 3, 1: 4}))

    def test_require_raises(self, system4):
        env = Environment(system4, 1)
        bad = FailurePattern.crash_at(system4, {0: 0, 1: 0})
        with pytest.raises(PatternError):
            env.require(bad)
        good = FailurePattern.failure_free(system4)
        assert env.require(good) is good

    def test_correct_set_candidates_sizes(self, system4):
        env = Environment(system4, 2)
        candidates = list(env.correct_set_candidates())
        assert all(len(c) >= 2 for c in candidates)
        # C(4,2) + C(4,3) + C(4,4) = 6 + 4 + 1
        assert len(candidates) == 11
        assert len(set(candidates)) == len(candidates)

    def test_wait_free_candidates_are_all_nonempty_subsets(self, system3):
        env = Environment.wait_free(system3)
        assert len(list(env.correct_set_candidates())) == 7  # 2^3 − 1

    def test_initially_dead(self, system4):
        env = Environment(system4, 2)
        p = env.initially_dead(frozenset({0, 1}))
        assert p.correct == frozenset({2, 3})
        assert p.crashed_by(0) == frozenset({0, 1})
        with pytest.raises(PatternError):
            env.initially_dead(frozenset({0, 1, 2}))

    def test_random_pattern_in_env(self, system5, rng):
        env = Environment(system5, 2)
        for _ in range(20):
            assert env.admits(env.random_pattern(rng))
