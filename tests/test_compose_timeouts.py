"""Tests for online reduction composition and the timeout-based Υ."""

import random

import pytest

from repro.core import (
    make_omega_consensus,
    make_upsilon_set_agreement,
)
from repro.core.compose import (
    omega_k_complement_transform,
    upsilon_to_omega_two_process_transform,
    with_fd_transform,
)
from repro.core.timeouts import (
    EventuallySynchronousScheduler,
    GrowingDelayScheduler,
    make_timeout_upsilon,
)
from repro.core.extraction import stable_emulated_output
from repro.detectors import StableHistory, UpsilonSpec, omega_n
from repro.failures import FailurePattern
from repro.runtime import (
    Decide,
    Nop,
    QueryFD,
    RandomScheduler,
    Simulation,
    System,
)
from repro.tasks import ConsensusSpec, SetAgreementSpec

from tests.helpers import run_to_decision


class TestWithFdTransform:
    def test_transform_applies_only_to_queries(self):
        system = System(2)

        def protocol(ctx, _):
            a = yield QueryFD()
            b = yield Nop()
            yield Decide((a, b))

        wrapped = with_fd_transform(protocol, lambda ctx, v: v * 10)
        sim = Simulation(system, {0: wrapped}, inputs={0: None},
                         history=StableHistory(7, 0))
        sim.step(0)
        sim.step(0)
        sim.step(0)
        assert sim.runtimes[0].decision == (70, None)

    def test_step_count_preserved(self):
        """The combinator adds no steps: same trace length either way."""
        system = System(3)
        spec = UpsilonSpec(system)
        rng = random.Random(2)
        pattern = FailurePattern.failure_free(system)
        history = spec.sample_history(pattern, rng, stabilization_time=30)
        inputs = {p: f"v{p}" for p in system.pids}

        plain = run_to_decision(system, make_upsilon_set_agreement(),
                                inputs, pattern=pattern, history=history,
                                seed=3)
        wrapped = run_to_decision(
            system,
            with_fd_transform(make_upsilon_set_agreement(),
                              lambda ctx, v: frozenset(v)),
            inputs, pattern=pattern, history=history, seed=3,
        )
        assert plain.time == wrapped.time

    def test_return_value_propagates(self):
        system = System(2)

        def protocol(ctx, _):
            yield Nop()
            return "inner-result"

        wrapped = with_fd_transform(protocol, lambda ctx, v: v)
        sim = Simulation(system, {0: wrapped}, inputs={0: None})
        sim.step(0)
        assert sim.runtimes[0].return_value == "inner-result"


class TestConsensusFromUpsilonTwoProcesses:
    """Sect. 4 made executable end to end: Υ ≡ Ω for n = 1, so the
    Ω-consensus algorithm with the online Υ → Ω map solves consensus
    from Υ alone."""

    @pytest.mark.parametrize("seed", range(6))
    def test_random_runs(self, seed):
        system = System(2)
        spec = UpsilonSpec(system)
        rng = random.Random(f"u2o:{seed}")
        pattern = FailurePattern.random(system, rng, max_crash_time=30)
        history = spec.sample_history(pattern, rng, stabilization_time=60)
        protocol = with_fd_transform(
            make_omega_consensus(), upsilon_to_omega_two_process_transform
        )
        inputs = {0: "a", 1: "b"}
        sim = run_to_decision(system, protocol, inputs, pattern=pattern,
                              history=history, seed=seed)
        ConsensusSpec().check(sim, inputs).raise_if_failed()

    def test_full_universe_output_case(self):
        """Stable U = Π (legal only when someone is faulty): the survivor
        elects itself and decides."""
        system = System(2)
        pattern = FailurePattern.crash_at(system, {1: 5})
        history = StableHistory(frozenset({0, 1}), 0)
        protocol = with_fd_transform(
            make_omega_consensus(), upsilon_to_omega_two_process_transform
        )
        inputs = {0: "a", 1: "b"}
        sim = run_to_decision(system, protocol, inputs, pattern=pattern,
                              history=history, seed=1)
        ConsensusSpec().check(sim, inputs).raise_if_failed()


class TestSetAgreementFromOmegaNOnline:
    """Corollary 3's easy direction, composed online: Fig. 1 + the
    complement map, reading a genuine Ωn history."""

    @pytest.mark.parametrize("seed", range(4))
    def test_random_runs(self, system4, seed):
        spec = omega_n(system4)
        rng = random.Random(f"c3o:{seed}")
        pattern = FailurePattern.random(system4, rng, max_crash_time=40)
        history = spec.sample_history(pattern, rng, stabilization_time=60)
        protocol = with_fd_transform(
            make_upsilon_set_agreement(), omega_k_complement_transform
        )
        inputs = {p: f"v{p}" for p in system4.pids}
        sim = run_to_decision(system4, protocol, inputs, pattern=pattern,
                              history=history, seed=seed)
        SetAgreementSpec(system4.n).check(sim, inputs).raise_if_failed()


class TestTimeoutUpsilon:
    def test_stabilizes_under_eventual_synchrony(self):
        """After GST the heartbeat protocol's emitted Υ-output settles on
        a legal value — timing assumptions really do yield failure
        information (Sect. 1)."""
        system = System(3)
        spec = UpsilonSpec(system)
        pattern = FailurePattern.crash_at(system, {2: 100})
        sim = Simulation(system, make_timeout_upsilon(), inputs={},
                         pattern=pattern)
        sim.run(max_steps=12_000,
                scheduler=EventuallySynchronousScheduler(gst=400, seed=3))
        outputs = stable_emulated_output(sim, pattern)
        assert outputs is not None, "did not stabilize under GST"
        values = {frozenset(v) for v in outputs.values()}
        assert len(values) == 1
        (value,) = values
        assert spec.is_legal_stable_value(pattern, value)

    def test_failure_free_also_legal(self):
        """With nobody faulty the emitted Π − {min pid} is still ≠ Π."""
        system = System(3)
        spec = UpsilonSpec(system)
        pattern = FailurePattern.failure_free(system)
        sim = Simulation(system, make_timeout_upsilon(), inputs={},
                         pattern=pattern)
        sim.run(max_steps=12_000,
                scheduler=EventuallySynchronousScheduler(gst=200, seed=5))
        outputs = stable_emulated_output(sim, pattern)
        assert outputs is not None
        (value,) = {frozenset(v) for v in outputs.values()}
        assert spec.is_legal_stable_value(pattern, value)

    def test_growing_delays_defeat_timeouts(self):
        """Under the never-synchronous adversary the starved process keeps
        getting falsely suspected and un-suspected: the emitted output of
        the fast process flips without bound — Υ is not implementable in
        a fully asynchronous system."""
        system = System(2)
        sim = Simulation(system, make_timeout_upsilon(initial_timeout=2),
                         inputs={})
        sim.run(max_steps=60_000, scheduler=GrowingDelayScheduler())
        flips = sim.trace.emit_change_count(0)
        assert flips >= 6, f"only {flips} flips — adversary too weak?"
        # The flip times grow geometrically (the doubling bursts): each
        # run extension brings another pair of flips, so there is no
        # suffix after which the output is stable.
        emits = sim.trace.emits(0)
        change_times = [
            b.time for a, b in zip(emits, emits[1:]) if a.value != b.value
        ]
        assert change_times[-1] > 10_000  # flips deep into the run

    def test_longer_runs_more_flips(self):
        """Non-stabilization, quantitatively: the flip count grows with
        the budget (the counterpart of Theorem 1's flip linearity)."""
        def flips(budget):
            system = System(2)
            sim = Simulation(system,
                             make_timeout_upsilon(initial_timeout=2),
                             inputs={})
            sim.run(max_steps=budget, scheduler=GrowingDelayScheduler())
            return sim.trace.emit_change_count(0)

        assert flips(120_000) > flips(15_000)
