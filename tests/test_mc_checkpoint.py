"""Checkpointed backtracking: restore-vs-replay equivalence.

The journal's claim is strong — restoring a checkpoint leaves the
simulation in *exactly* the state a fresh replay of the same schedule
prefix would build, and the incremental digest after any further steps
matches the from-scratch :func:`~repro.mc.fingerprint.fingerprint`.
These tests pin that claim property-style over the shipped protocol
families, with and without crashes, plus the explorer-level parity
(checkpointing is a cost knob, never a verdict knob).
"""

import random

import pytest

from repro.mc import ExploreConfig, McInstance, build_simulation, \
    explore_instance, resolve_instance
from repro.mc.checkpoint import SimulationJournal
from repro.mc.fingerprint import canonical_fingerprint, fingerprint
from repro.runtime.process import ProcessStatus


def _fresh(instance):
    return build_simulation(resolve_instance(instance))


def _replay_oracle(instance, schedule):
    """A from-scratch simulation run over ``schedule`` — the ground truth
    a checkpoint restore must be indistinguishable from."""
    sim = _fresh(instance)
    sim.run_script(schedule)
    return sim


def _assert_states_equal(sim, oracle):
    assert {p: r.status for p, r in sim.runtimes.items()} == \
        {p: r.status for p, r in oracle.runtimes.items()}
    assert sim.time == oracle.time
    assert sim.eligible() == oracle.eligible()
    assert fingerprint(sim) == fingerprint(oracle)
    assert canonical_fingerprint(sim) == canonical_fingerprint(oracle)


FAMILIES = [
    McInstance("fig1", n_processes=2),
    McInstance("fig2", n_processes=3, f=1),
    McInstance("extraction", n_processes=2),
    McInstance("fig1", n_processes=3, f=1, crashes=((1, 4),)),
    McInstance("converge", n_processes=2, crashes=((0, 3),)),
]


class TestRestoreEqualsReplay:
    """LIFO checkpoint/restore walks land on replay-identical states."""

    @pytest.mark.parametrize("instance", FAMILIES,
                             ids=lambda i: i.describe())
    @pytest.mark.parametrize("seed", [0, 1])
    def test_random_walk_with_backtracking(self, instance, seed):
        rng = random.Random(seed)
        sim = _fresh(instance)
        journal = SimulationJournal(sim)
        schedule = []
        stack = []  # (schedule length, checkpoint) — LIFO, like DFS frames
        for _ in range(60):
            roll = rng.random()
            if roll < 0.2:
                stack.append((len(schedule), journal.checkpoint()))
                continue
            if roll < 0.35 and stack:
                depth, cp = stack.pop()
                journal.restore(cp)
                del schedule[depth:]
                oracle = _replay_oracle(instance, schedule)
                _assert_states_equal(sim, oracle)
                assert journal.digest() == fingerprint(oracle)
                continue
            eligible = sim.eligible()
            if not eligible:
                break
            sim.step(eligible[rng.randrange(len(eligible))])
            schedule.append(sim.trace.steps[-1].pid)
            assert journal.digest() == fingerprint(sim)

    def test_restore_then_branch_differently(self):
        """After a restore, stepping a *different* branch than the one the
        generators originally took must still match the replay oracle —
        the detached-generator rematerialization path."""
        instance = McInstance("fig1", n_processes=2)
        sim = _fresh(instance)
        journal = SimulationJournal(sim)
        cp = journal.checkpoint()
        sim.run_script([0, 0, 1, 0])
        journal.restore(cp)
        sim.run_script([1, 1, 0, 1])
        oracle = _replay_oracle(instance, [1, 1, 0, 1])
        _assert_states_equal(sim, oracle)

    def test_crash_revival(self):
        """Restoring to before a crash revives the process: it steps again
        and its steps match a replayed run."""
        instance = McInstance("fig1", n_processes=3, f=1, crashes=((1, 2),))
        sim = _fresh(instance)
        journal = SimulationJournal(sim)
        cp = journal.checkpoint()
        sim.run_script([0, 2, 0, 2])  # t passes 2: pid 1 crashes
        assert sim.runtimes[1].status is ProcessStatus.CRASHED
        journal.restore(cp)
        assert sim.runtimes[1].status is ProcessStatus.RUNNING
        assert 1 in sim.eligible()
        sim.run_script([1, 0])
        oracle = _replay_oracle(instance, [1, 0])
        _assert_states_equal(sim, oracle)

    def test_memo_serves_revisits_without_generator_replay(self):
        """Re-walking the exact path after a restore is served from the
        per-process history memo — no generator is rebuilt."""
        instance = McInstance("converge", n_processes=2)
        sim = _fresh(instance)
        journal = SimulationJournal(sim)
        cp = journal.checkpoint()
        sim.run_script([0, 1, 0, 1])
        journal.restore(cp)
        before = journal.gen_replays
        sim.run_script([0, 1, 0, 1])  # same observations → memo hits
        assert journal.gen_replays == before
        assert journal.digest() == fingerprint(sim)

    def test_journal_refuses_message_passing_runs(self):
        instance = resolve_instance(McInstance("fig1", n_processes=2))
        sim = build_simulation(instance)
        sim.network = object()  # any non-None network
        with pytest.raises(ValueError):
            SimulationJournal(sim)


class TestExplorerCheckpointing:
    """The DFS explorer backtracks by restore, not replay."""

    def test_dfs_replays_are_zero(self):
        result = explore_instance(
            McInstance("fig1", n_processes=2),
            ExploreConfig(max_depth=12),
        )
        assert result.stats.restores > 0
        assert result.stats.replays == 0
        assert result.stats.replay_steps == 0

    @pytest.mark.parametrize("instance", [
        McInstance("fig1", n_processes=2),
        McInstance("naive-converge", n_processes=2),
        McInstance("fig1", n_processes=3, f=1, crashes=((0, 2),)),
    ], ids=lambda i: i.describe())
    def test_checkpoint_is_a_pure_cost_knob(self, instance):
        """Identical verdicts, counterexamples, and state counts with
        checkpointing on and off."""
        on = explore_instance(instance, ExploreConfig(max_depth=14))
        off = explore_instance(
            instance, ExploreConfig(max_depth=14, checkpoint=False)
        )
        assert on.ok == off.ok
        assert on.stats.states_visited == off.stats.states_visited
        assert on.stats.complete_schedules == off.stats.complete_schedules
        assert [ce.schedule for ce in on.counterexamples] == \
            [ce.schedule for ce in off.counterexamples]
        assert off.stats.restores == 0
        assert on.stats.replays == 0
