"""Cross-process telemetry parity: ``--jobs 4`` must observe like ``--jobs 1``.

The telemetry relay ships per-trial counter/gauge deltas (and raw span
samples) from pool workers back to the parent registry, merging them in
input order.  The contract: every *logical* metric — step counts, FD
queries, memory-op mix, decision times, trial verdicts — is identical
whether trials ran serially, fanned out over processes, through the
resilient wrapper, or out of the disk cache.  Only the ``span_*``
wall-clock histograms are exempt (they time the harness, not the run).
"""

import pytest

from repro.obs import MetricsCollector, TrialCompleted, TrialSpanRecorded
from repro.obs.metrics import SPAN_METRIC_PREFIX
from repro.perf import SetAgreementTrialSpec, TrialCache, run_trials

SPECS = [
    SetAgreementTrialSpec(3, 1, seed=seed, stabilization_time=0)
    for seed in range(6)
]


def _logical(collector):
    """The collector's snapshot minus harness wall-clock histograms."""
    snap = collector.snapshot()
    snap["histograms"] = {
        name: value for name, value in snap["histograms"].items()
        if not name.startswith(SPAN_METRIC_PREFIX)
    }
    return snap


def _run(jobs, **kwargs):
    collector = MetricsCollector()
    results = run_trials(SPECS, jobs=jobs, collector=collector, **kwargs)
    return results, collector


class TestJobsParity:
    def test_plain_executor(self):
        serial_results, serial = _run(jobs=1)
        parallel_results, parallel = _run(jobs=4)
        assert [r.ok for r in parallel_results] == \
            [r.ok for r in serial_results]
        assert _logical(parallel) == _logical(serial)
        counters = serial.snapshot()["counters"]
        assert counters["trials_completed"] == {"set_agreement": len(SPECS)}
        assert counters["trials_cached"] == {}
        # sim-level counters crossed the process boundary intact
        assert sum(counters["steps_total"].values()) > 0
        assert sum(counters["fd_queries"].values()) > 0

    def test_resilient_executor(self):
        serial_results, serial = _run(jobs=1, retries=1, backoff=0.0)
        parallel_results, parallel = _run(jobs=4, retries=1, backoff=0.0)
        assert [r.ok for r in parallel_results] == \
            [r.ok for r in serial_results]
        assert _logical(parallel) == _logical(serial)
        assert serial.snapshot()["counters"]["trials_completed"] == {
            "set_agreement": len(SPECS)
        }

    def test_span_histograms_do_exist(self):
        """The exemption is real: spans are recorded, just not compared."""
        _, collector = _run(jobs=4)
        spans = [name for name in collector.snapshot()["histograms"]
                 if name.startswith(SPAN_METRIC_PREFIX)]
        assert any("execute" in name for name in spans)
        assert any("queue_wait" in name for name in spans)


class TestCacheTelemetry:
    def test_warm_cache_counts_as_cached_not_completed(self, tmp_path):
        cache = TrialCache(tmp_path / "cache")
        cold_results, cold = _run(jobs=2, cache=cache)
        warm_results, warm = _run(jobs=2, cache=cache)
        assert warm_results == cold_results
        cold_counters = cold.snapshot()["counters"]
        warm_counters = warm.snapshot()["counters"]
        assert cold_counters["trials_completed"] == {
            "set_agreement": len(SPECS)
        }
        assert warm_counters["trials_cached"] == {"set_agreement": len(SPECS)}
        assert warm_counters["trials_completed"] == {}
        # cache hits still replay the trial's logical counters
        assert warm_counters["steps_total"] == cold_counters["steps_total"]


class TestEventsPublished:
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_one_completion_event_per_trial(self, jobs):
        collector = MetricsCollector()
        completed, spans = [], []
        collector.bus.subscribe(completed.append, (TrialCompleted,))
        collector.bus.subscribe(spans.append, (TrialSpanRecorded,))
        run_trials(SPECS, jobs=jobs, collector=collector)
        assert len(completed) == len(SPECS)
        assert all(e.kind == "set_agreement" for e in completed)
        assert all(not e.cached for e in completed)
        assert all(e.ok for e in completed)
        assert all(e.seconds >= 0 for e in completed)
        # curve fields populated from the result
        assert all(e.stabilization == 0 for e in completed)
        assert all(e.latency >= 0 for e in completed)
        assert len(spans) > 0
