"""Tests for the iterated-immediate-snapshot model and its topology.

Reproduces the combinatorial heart of the impossibility substrate: one
IS round's view profiles are exactly the ordered set partitions of the
participants (the simplices of the standard chromatic subdivision).
"""

import random

import pytest

from repro.memory.iis import (
    fubini,
    iis_protocol,
    ordered_partitions,
    views_to_ordered_partition,
)
from repro.runtime import (
    BOT,
    RandomScheduler,
    RoundRobinScheduler,
    Simulation,
    System,
)

from tests.test_exhaustive import explore_all_schedules


class TestFubini:
    def test_known_values(self):
        assert [fubini(n) for n in range(6)] == [1, 1, 3, 13, 75, 541]

    def test_matches_enumeration(self):
        for n in range(1, 5):
            assert len(list(ordered_partitions(range(n)))) == fubini(n)

    def test_partitions_are_partitions(self):
        for blocks in ordered_partitions([0, 1, 2]):
            flat = [p for block in blocks for p in block]
            assert sorted(flat) == [0, 1, 2]
            assert len(flat) == len(set(flat))


class TestDecoding:
    def test_singleton_blocks(self):
        views = {
            0: ("a", BOT, BOT),
            1: ("a", "b", BOT),
            2: ("a", "b", "c"),
        }
        assert views_to_ordered_partition(views) == (
            frozenset({0}), frozenset({1}), frozenset({2}),
        )

    def test_one_big_block(self):
        views = {
            0: ("a", "b", BOT),
            1: ("a", "b", BOT),
        }
        assert views_to_ordered_partition(views) == (frozenset({0, 1}),)

    def test_invalid_incomparable_views(self):
        views = {
            0: ("a", BOT),
            1: (BOT, "b"),
        }
        assert views_to_ordered_partition(views) is None

    def test_invalid_missing_self(self):
        views = {0: (BOT, "b"), 1: (BOT, "b")}
        assert views_to_ordered_partition(views) is None


def _round_views(decisions, round_index, n_procs):
    return {
        pid: history[round_index] for pid, history in decisions.items()
    }


class TestOneRoundProfiles:
    def test_primitive_backend_yields_total_orders(self):
        """The one-step primitive linearizes singleton blocks only, so the
        observed profiles are exactly the 3! total orders for 3 procs."""
        system = System(3)
        profiles = set()
        for seed in range(60):
            sim = Simulation(system, iis_protocol(1, register_based=False),
                             inputs={p: f"v{p}" for p in system.pids})
            sim.run_until(Simulation.all_correct_decided, 10_000,
                          RandomScheduler(seed))
            profile = views_to_ordered_partition(
                _round_views(sim.decisions(), 0, 3))
            assert profile is not None
            assert all(len(block) == 1 for block in profile)
            profiles.add(profile)
        assert len(profiles) == 6  # all 3! singleton-block orders

    def test_level_backend_realizes_simultaneous_blocks(self):
        """The Borowsky–Gafni construction also produces multi-process
        blocks — more than the 6 total orders — and never an invalid
        profile.  (All 13 profiles exist in the schedule space; random
        sampling must find strictly more than the total orders.)"""
        system = System(3)
        profiles = set()
        for seed in range(200):
            sim = Simulation(system, iis_protocol(1, register_based=True),
                             inputs={p: f"v{p}" for p in system.pids})
            sim.run_until(Simulation.all_correct_decided, 50_000,
                          RandomScheduler(seed))
            profile = views_to_ordered_partition(
                _round_views(sim.decisions(), 0, 3))
            assert profile is not None, "invalid IS views observed"
            profiles.add(profile)
        valid = set(ordered_partitions(range(3)))
        assert profiles <= valid
        assert any(
            any(len(block) >= 2 for block in profile) for profile in profiles
        ), "no simultaneous block ever realized"

    def test_lockstep_is_the_single_block(self):
        system = System(3)
        sim = Simulation(system, iis_protocol(1, register_based=True),
                         inputs={p: f"v{p}" for p in system.pids})
        sim.run_until(Simulation.all_correct_decided, 10_000,
                      RoundRobinScheduler())
        profile = views_to_ordered_partition(
            _round_views(sim.decisions(), 0, 3))
        assert profile == (frozenset({0, 1, 2}),)

    def test_two_process_profiles_exhaustively(self):
        """All interleavings of a 1-round, 2-process IIS: exactly the 3
        profiles of the subdivided edge — ({0}{1}), ({1}{0}), ({0,1})."""
        system = System(2)
        seen = set()

        def check(sim):
            profile = views_to_ordered_partition(
                _round_views(sim.decisions(), 0, 2))
            assert profile is not None
            seen.add(profile)

        def make_sim():
            return Simulation(system, iis_protocol(1, register_based=True),
                              inputs={0: "a", 1: "b"})

        explore_all_schedules(make_sim, check, max_depth=40)
        assert seen == set(ordered_partitions(range(2)))
        assert len(seen) == fubini(2) == 3


class TestIteratedRounds:
    @pytest.mark.parametrize("register_based", [False, True])
    def test_every_round_is_a_valid_profile(self, register_based):
        system = System(3)
        rounds = 3
        for seed in range(10):
            sim = Simulation(
                system, iis_protocol(rounds, register_based=register_based),
                inputs={p: f"v{p}" for p in system.pids},
            )
            sim.run_until(Simulation.all_correct_decided, 100_000,
                          RandomScheduler(seed))
            for r in range(rounds):
                profile = views_to_ordered_partition(
                    _round_views(sim.decisions(), r, 3))
                assert profile is not None, f"round {r} invalid"

    def test_knowledge_accumulates(self):
        """Full information: a later view contains earlier views."""
        system = System(2)
        sim = Simulation(system, iis_protocol(2),
                         inputs={0: "a", 1: "b"})
        sim.run_until(Simulation.all_correct_decided, 10_000,
                      RoundRobinScheduler())
        for pid, history in sim.decisions().items():
            round2_self = history[1][pid]
            assert round2_self == history[0]  # round 2 carries round 1 view

    def test_rounds_validation(self):
        with pytest.raises(ValueError):
            iis_protocol(0)
