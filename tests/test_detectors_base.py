"""Tests for the failure-detector framework (histories, specs, sampling)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.detectors import (
    ConstantHistory,
    LocallyStableHistory,
    ScriptedHistory,
    StableHistory,
    UpsilonSpec,
    powerset_nonempty,
    seeded_noise,
)
from repro.detectors.base import DetectorSpec
from repro.failures import FailurePattern
from repro.runtime import HistoryError, System


class TestHistories:
    def test_constant(self):
        h = ConstantHistory("d")
        assert h.value(0, 0) == "d"
        assert h.value(5, 99999) == "d"
        assert "d" in h.describe()

    def test_scripted_with_default(self):
        h = ScriptedHistory({(1, 3): "special"}, default="usual")
        assert h.value(1, 3) == "special"
        assert h.value(1, 4) == "usual"
        assert h.value(0, 3) == "usual"

    def test_stable_after_time(self):
        h = StableHistory("stable", stabilization_time=10, noise=lambda p, t: f"n{t}")
        assert h.value(0, 9) == "n9"
        assert h.value(0, 10) == "stable"
        assert h.value(2, 10**9) == "stable"

    def test_stable_without_noise_is_constant(self):
        h = StableHistory("v", stabilization_time=50)
        assert h.value(0, 0) == "v"

    def test_locally_stable_per_process_values(self):
        h = LocallyStableHistory({0: "a", 1: "b"}, stabilization_time=0)
        assert h.value(0, 100) == "a"
        assert h.value(1, 100) == "b"


class TestSeededNoise:
    def test_deterministic(self):
        n1 = seeded_noise(42, ["a", "b", "c"])
        n2 = seeded_noise(42, ["a", "b", "c"])
        assert [n1(p, t) for p in range(3) for t in range(10)] == [
            n2(p, t) for p in range(3) for t in range(10)
        ]

    def test_query_order_independent(self):
        n = seeded_noise(7, list(range(10)))
        forward = [n(0, t) for t in range(20)]
        backward = [n(0, t) for t in reversed(range(20))]
        assert forward == list(reversed(backward))

    def test_varies_with_seed(self):
        pool = list(range(50))
        a = [seeded_noise(1, pool)(0, t) for t in range(30)]
        b = [seeded_noise(2, pool)(0, t) for t in range(30)]
        assert a != b

    def test_draws_from_pool(self):
        n = seeded_noise(3, ["x", "y"])
        assert {n(p, t) for p in range(4) for t in range(25)} <= {"x", "y"}

    def test_empty_pool_rejected(self):
        with pytest.raises(HistoryError):
            seeded_noise(0, [])


class TestSpecSampling:
    def _spec_and_pattern(self):
        system = System(3)
        spec = UpsilonSpec(system)
        pattern = FailurePattern.crash_at(system, {0: 10})
        return spec, pattern

    def test_sampled_history_is_legal(self):
        spec, pattern = self._spec_and_pattern()
        for seed in range(20):
            h = spec.sample_history(pattern, random.Random(seed),
                                    stabilization_time=30)
            spec.validate(h, pattern)  # must not raise
            assert spec.is_legal_stable_value(pattern, h.stable_value)

    def test_requested_stable_value_honoured(self):
        spec, pattern = self._spec_and_pattern()
        h = spec.sample_history(
            pattern, random.Random(0), stable_value=frozenset({0})
        )
        assert h.stable_value == frozenset({0})

    def test_illegal_requested_value_rejected(self):
        spec, pattern = self._spec_and_pattern()
        with pytest.raises(HistoryError):
            spec.sample_history(
                pattern, random.Random(0), stable_value=pattern.correct
            )

    def test_validate_rejects_illegal_stable(self):
        spec, pattern = self._spec_and_pattern()
        bad = StableHistory(pattern.correct, stabilization_time=0)
        with pytest.raises(HistoryError):
            spec.validate(bad, pattern)

    def test_validate_rejects_illegal_constant(self):
        spec, pattern = self._spec_and_pattern()
        with pytest.raises(HistoryError):
            spec.validate(ConstantHistory(pattern.correct), pattern)

    def test_validate_scripted_not_supported(self):
        spec, pattern = self._spec_and_pattern()
        with pytest.raises(HistoryError, match="statically"):
            spec.validate(ScriptedHistory({}, default=frozenset({0})), pattern)

    def test_zero_stabilization_has_no_noise(self):
        spec, pattern = self._spec_and_pattern()
        h = spec.sample_history(pattern, random.Random(1), stabilization_time=0)
        assert h.value(0, 0) == h.stable_value

    @given(seed=st.integers(0, 5000), stab=st.integers(0, 200))
    @settings(max_examples=40, deadline=None)
    def test_noise_values_within_range(self, seed, stab):
        system = System(3)
        spec = UpsilonSpec(system)
        pattern = FailurePattern.failure_free(system)
        h = spec.sample_history(pattern, random.Random(seed),
                                stabilization_time=stab)
        for t in range(0, stab, 7):
            value = h.value(0, t)
            assert value and value <= system.pid_set

    def test_spec_with_no_legal_values_raises(self):
        class Impossible(DetectorSpec):
            name = "∅"

            def legal_stable_values(self, pattern):
                return []

        system = System(2)
        pattern = FailurePattern.failure_free(system)
        with pytest.raises(HistoryError, match="no legal stable value"):
            Impossible().sample_history(pattern, random.Random(0))


def test_powerset_nonempty():
    subsets = list(powerset_nonempty([0, 1, 2]))
    assert len(subsets) == 7
    assert frozenset({0, 1, 2}) in subsets
    assert frozenset() not in subsets
