"""Scheduler-family robustness: the protocols under skewed and staged
schedules.

Fair-random schedules are the easy case.  Here every main protocol runs
under (a) heavily skewed weighted-random schedules (one process ~20×
faster), and (b) a staged adversary — an unfair priority prefix followed
by a fair suffix, the shape real partial synchrony produces.
"""

import itertools
import random

import pytest

from repro.core import (
    make_boosted_consensus,
    make_omega_consensus,
    make_upsilon_f_set_agreement,
    make_upsilon_set_agreement,
    boosted_consensus_memory,
)
from repro.detectors import (
    OmegaSpec,
    UpsilonFSpec,
    UpsilonSpec,
    omega_n,
)
from repro.failures import Environment, FailurePattern
from repro.runtime import (
    PriorityScheduler,
    RandomScheduler,
    ScriptedScheduler,
    Simulation,
    System,
    WeightedRandomScheduler,
)
from repro.tasks import ConsensusSpec, SetAgreementSpec


def skewed_scheduler(n_processes: int, fast_pid: int, seed: int):
    weights = [0.05] * n_processes
    weights[fast_pid] = 1.0
    return WeightedRandomScheduler(weights, seed=seed)


def staged_scheduler(priority_order, prefix_len: int, seed: int):
    """Unfair priority prefix, then fair random forever."""
    priority = PriorityScheduler(priority_order)

    class Staged:
        def __init__(self):
            self.remaining = prefix_len
            self.fallback = RandomScheduler(seed)

        def choose(self, t, eligible):
            if self.remaining > 0:
                self.remaining -= 1
                return priority.choose(t, eligible)
            return self.fallback.choose(t, eligible)

    return Staged()


class TestFig1Robustness:
    @pytest.mark.parametrize("fast_pid", [0, 2])
    @pytest.mark.parametrize("seed", [1, 2])
    def test_skewed_speeds(self, fast_pid, seed):
        system = System(4)
        spec = UpsilonSpec(system)
        rng = random.Random(f"skew:{fast_pid}:{seed}")
        pattern = FailurePattern.random(system, rng, max_crash_time=40)
        history = spec.sample_history(pattern, rng, stabilization_time=80)
        inputs = {p: f"v{p}" for p in system.pids}
        sim = Simulation(system, make_upsilon_set_agreement(),
                         inputs=inputs, pattern=pattern, history=history)
        sim.run_until(Simulation.all_correct_decided, 1_000_000,
                      skewed_scheduler(4, fast_pid, seed))
        SetAgreementSpec(system.n).check(sim, inputs).raise_if_failed()

    @pytest.mark.parametrize("prefix_len", [50, 400])
    def test_staged_priority_then_fair(self, prefix_len):
        system = System(4)
        spec = UpsilonSpec(system)
        rng = random.Random(prefix_len)
        pattern = FailurePattern.failure_free(system)
        history = spec.sample_history(pattern, rng, stabilization_time=100)
        inputs = {p: f"v{p}" for p in system.pids}
        sim = Simulation(system, make_upsilon_set_agreement(),
                         inputs=inputs, pattern=pattern, history=history)
        sim.run_until(Simulation.all_correct_decided, 1_000_000,
                      staged_scheduler([3, 1, 0, 2], prefix_len, 7))
        SetAgreementSpec(system.n).check(sim, inputs).raise_if_failed()


class TestFig2Robustness:
    @pytest.mark.parametrize("seed", [3, 4])
    def test_skewed_speeds(self, seed):
        system = System(5)
        f = 2
        env = Environment(system, f)
        spec = UpsilonFSpec(env)
        rng = random.Random(f"f2skew:{seed}")
        pattern = env.random_pattern(rng, max_crash_time=40)
        history = spec.sample_history(pattern, rng, stabilization_time=60)
        inputs = {p: f"v{p}" for p in system.pids}
        sim = Simulation(system, make_upsilon_f_set_agreement(f),
                         inputs=inputs, pattern=pattern, history=history)
        sim.run_until(Simulation.all_correct_decided, 1_500_000,
                      skewed_scheduler(5, seed % 5, seed))
        SetAgreementSpec(f).check(sim, inputs).raise_if_failed()


class TestConsensusRobustness:
    def test_omega_consensus_skewed(self):
        system = System(3)
        spec = OmegaSpec(system)
        rng = random.Random(11)
        pattern = FailurePattern.crash_at(system, {0: 30})
        history = spec.sample_history(pattern, rng, stabilization_time=80)
        inputs = {p: f"v{p}" for p in system.pids}
        sim = Simulation(system, make_omega_consensus(),
                         inputs=inputs, pattern=pattern, history=history)
        sim.run_until(Simulation.all_correct_decided, 1_000_000,
                      skewed_scheduler(3, 1, 11))
        ConsensusSpec().check(sim, inputs).raise_if_failed()

    def test_boosted_consensus_staged(self):
        system = System(4)
        spec = omega_n(system)
        rng = random.Random(12)
        pattern = FailurePattern.failure_free(system)
        history = spec.sample_history(pattern, rng, stabilization_time=60)
        inputs = {p: f"v{p}" for p in system.pids}
        sim = Simulation(system, make_boosted_consensus(),
                         inputs=inputs, pattern=pattern, history=history,
                         memory=boosted_consensus_memory(system))
        sim.run_until(Simulation.all_correct_decided, 1_000_000,
                      staged_scheduler([0, 1, 2, 3], 200, 12))
        ConsensusSpec().check(sim, inputs).raise_if_failed()


class TestScriptedPrefixIntoFairness:
    def test_solo_prefix_then_fair(self):
        """A long solo prefix (one process races ahead through several
        rounds) followed by fairness: stragglers catch up via D / D[r]."""
        system = System(3)
        spec = UpsilonSpec(system)
        pattern = FailurePattern.failure_free(system)
        history = spec.sample_history(pattern, random.Random(5),
                                      stabilization_time=0)
        inputs = {p: f"v{p}" for p in system.pids}
        sim = Simulation(system, make_upsilon_set_agreement(),
                         inputs=inputs, pattern=pattern, history=history)
        script = itertools.chain([0] * 300)
        sim.run(max_steps=300,
                scheduler=ScriptedScheduler(script, skip_ineligible=True,
                                            fallback=RandomScheduler(5)))
        sim.run_until(Simulation.all_correct_decided, 1_000_000,
                      RandomScheduler(6))
        SetAgreementSpec(system.n).check(sim, inputs).raise_if_failed()
