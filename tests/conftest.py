"""Shared fixtures for the test suite (helpers live in tests/helpers.py)."""

from __future__ import annotations

import random

import pytest

from repro.runtime import System


@pytest.fixture
def system3() -> System:
    """Three processes (n = 2) — the paper's running example size."""
    return System(3)


@pytest.fixture
def system4() -> System:
    return System(4)


@pytest.fixture
def system5() -> System:
    return System(5)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)
