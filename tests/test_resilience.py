"""Tests for the resilient executor: watchdog, retries, quarantine, journal.

The worker-death path is exercised for real: a sabotaged spec calls
``os._exit`` inside the pool worker, the executor requeues the poisoned
batch, isolates the culprit, and quarantines it — while every surviving
result keeps its deterministic input-order slot.
"""

import dataclasses
import json
import signal

import pytest

from repro.chaos import ChaosTrialSpec
from repro.obs import MetricsCollector
from repro.perf import (
    CheckpointJournal,
    QuarantineReport,
    TrialCache,
    TrialFailure,
    guarded_execute,
    run_trials,
    spec_key,
)
from repro.runtime import (
    NonTerminationError,
    RandomScheduler,
    Simulation,
    SimulationLimitError,
    System,
)

_HAS_SIGALRM = hasattr(signal, "SIGALRM")


def _quick_spec(seed: int, sabotage: str = "") -> ChaosTrialSpec:
    return ChaosTrialSpec(
        "fig1", 3, seed=seed, lying_prefix=5, max_steps=50_000,
        sabotage=sabotage,
    )


class TestGuardedExecute:
    def test_success_passes_the_result_through(self):
        result = guarded_execute(_quick_spec(0))
        assert not isinstance(result, TrialFailure)
        assert result.ok

    def test_exception_becomes_a_failure_value(self):
        outcome = guarded_execute(_quick_spec(0, sabotage="raise"))
        assert isinstance(outcome, TrialFailure)
        assert outcome.kind == "error"
        assert "sabotage" in outcome.detail

    @pytest.mark.skipif(not _HAS_SIGALRM, reason="needs SIGALRM")
    def test_watchdog_cuts_a_hang_short(self):
        outcome = guarded_execute(_quick_spec(0, sabotage="hang"),
                                  timeout=0.2)
        assert isinstance(outcome, TrialFailure)
        assert outcome.kind == "timeout"
        assert "0.2" in outcome.detail


class TestSerialResilience:
    def test_failing_spec_is_quarantined_not_raised(self):
        specs = [_quick_spec(0), _quick_spec(1, sabotage="raise"),
                 _quick_spec(2)]
        quarantine = QuarantineReport()
        results = run_trials(specs, jobs=1, quarantine=quarantine,
                             backoff=0)
        assert results[0].ok and results[2].ok
        assert results[1] is None
        assert len(quarantine) == 1
        assert quarantine.entries[0].index == 1
        assert quarantine.entries[0].key == spec_key(specs[1])
        assert "quarantine: 1 spec(s)" in quarantine.render()

    def test_retry_recovers_a_deterministic_flake(self, tmp_path):
        marker = tmp_path / "flake.marker"
        specs = [_quick_spec(0, sabotage=f"raise-once:{marker}")]
        quarantine = QuarantineReport()
        results = run_trials(specs, jobs=1, retries=2,
                             quarantine=quarantine, backoff=0)
        assert results[0] is not None and results[0].ok
        assert len(quarantine) == 0

    def test_harness_events_reach_the_bus(self, tmp_path):
        marker = tmp_path / "flake.marker"
        collector = MetricsCollector()
        specs = [_quick_spec(0, sabotage=f"raise-once:{marker}"),
                 _quick_spec(1, sabotage="raise")]
        results = run_trials(specs, jobs=1, retries=1, backoff=0,
                             bus=collector.bus)
        assert results[0].ok and results[1] is None
        counters = collector.snapshot()["counters"]
        assert sum(counters["trial_retries"].values()) >= 2
        assert sum(counters["trial_quarantines"].values()) == 1

    @pytest.mark.skipif(not _HAS_SIGALRM, reason="needs SIGALRM")
    def test_timeout_is_counted_and_quarantined(self):
        collector = MetricsCollector()
        quarantine = QuarantineReport()
        results = run_trials(
            [_quick_spec(0, sabotage="hang")], jobs=1,
            trial_timeout=0.2, quarantine=quarantine, backoff=0,
            bus=collector.bus,
        )
        assert results == [None]
        assert "wall clock" in quarantine.entries[0].reason
        counters = collector.snapshot()["counters"]
        assert sum(counters["trial_timeouts"].values()) == 1


class TestWorkerDeath:
    def test_crash_is_retried_then_quarantined_in_order(self):
        # Worker death: os._exit(23) inside the pool.  The executor must
        # requeue the poisoned batch, isolate the culprit, quarantine it
        # after `retries + 1` attributable attempts, and keep every
        # surviving result in its input-order slot.
        specs = [_quick_spec(0), _quick_spec(1, sabotage="crash"),
                 _quick_spec(2), _quick_spec(3)]
        quarantine = QuarantineReport()
        results = run_trials(specs, jobs=2, retries=1,
                             quarantine=quarantine, backoff=0)
        assert results[1] is None
        assert [r is not None for r in results] == [True, False, True, True]
        assert len(quarantine) == 1
        entry = quarantine.entries[0]
        assert entry.index == 1
        assert entry.attempts == 2          # retries + 1, both attributable
        assert "worker death" in entry.reason
        # Survivors match a clean serial run slot for slot.
        clean = run_trials([specs[0], specs[2], specs[3]], jobs=1)
        assert [results[0], results[2], results[3]] == clean

    def test_two_crashers_are_both_isolated(self):
        specs = [_quick_spec(0), _quick_spec(1, sabotage="crash"),
                 _quick_spec(2, sabotage="crash"), _quick_spec(3)]
        quarantine = QuarantineReport()
        results = run_trials(specs, jobs=2, retries=0,
                             quarantine=quarantine, backoff=0)
        assert [r is not None for r in results] == [True, False, False, True]
        assert [e.index for e in quarantine.entries] == [1, 2]


class TestCheckpointJournal:
    def test_round_trip_and_idempotence(self, tmp_path):
        path = tmp_path / "run.journal"
        with CheckpointJournal(path) as journal:
            journal.record_done("aaa")
            journal.record_done("aaa")          # idempotent
            journal.record_quarantined("bbb", "worker death")
        with CheckpointJournal(path) as journal:
            assert journal.is_done("aaa")
            assert journal.quarantined() == {"bbb": "worker death"}
            journal.record_done("bbb")          # a later success clears it
        with CheckpointJournal(path) as journal:
            assert journal.done_keys == {"aaa", "bbb"}
            assert journal.quarantined() == {}
        # The file stays lean: the duplicate record_done wrote nothing.
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3

    def test_tolerates_a_truncated_tail_line(self, tmp_path):
        path = tmp_path / "run.journal"
        path.write_text(
            json.dumps({"key": "aaa", "status": "done"}) + "\n"
            + '{"key": "bbb", "sta'        # killed mid-write
        )
        with CheckpointJournal(path) as journal:
            assert journal.done_keys == {"aaa"}

    def test_resume_skips_completed_keys(self, tmp_path):
        specs = [_quick_spec(s) for s in range(3)]
        cache = TrialCache(tmp_path / "cache")
        journal_path = tmp_path / "run.journal"
        first = run_trials(specs, jobs=1, cache=cache,
                           journal=journal_path, backoff=0)
        assert all(r is not None for r in first)
        # Resume: journaled keys are served from the cache, nothing runs.
        cache2 = TrialCache(tmp_path / "cache")
        again = run_trials(specs, jobs=1, cache=cache2,
                           journal=journal_path, backoff=0)
        assert again == first
        assert cache2.hits == 3 and cache2.misses == 0

    def test_interrupted_sweep_resumes_to_100_percent(self, tmp_path):
        # The acceptance scenario: a sweep with a mid-run worker crash
        # completes with partial results + quarantine, then a resume run
        # (crash fixed) reaches 100% without re-running completed keys.
        cache = TrialCache(tmp_path / "cache")
        journal_path = tmp_path / "run.journal"
        specs = [_quick_spec(0), _quick_spec(1, sabotage="crash"),
                 _quick_spec(2)]
        quarantine = QuarantineReport()
        partial = run_trials(specs, jobs=2, retries=0, cache=cache,
                             journal=journal_path, quarantine=quarantine,
                             backoff=0)
        assert partial[1] is None and len(quarantine) == 1
        with CheckpointJournal(journal_path) as journal:
            assert spec_key(specs[1]) in journal.quarantined()
        # Resume with the sabotage removed (a fixed flake / healthy node).
        fixed = [specs[0], dataclasses.replace(specs[1], sabotage=""),
                 specs[2]]
        cache2 = TrialCache(tmp_path / "cache")
        resumed = run_trials(fixed, jobs=2, retries=0, cache=cache2,
                             journal=journal_path, backoff=0)
        assert all(r is not None for r in resumed)
        assert cache2.hits == 2            # the two journaled keys
        assert resumed[0] == partial[0] and resumed[2] == partial[2]

    def test_cleared_cache_degrades_to_a_rerun(self, tmp_path):
        specs = [_quick_spec(0)]
        journal_path = tmp_path / "run.journal"
        cache = TrialCache(tmp_path / "cache")
        run_trials(specs, jobs=1, cache=cache, journal=journal_path,
                   backoff=0)
        cache.clear()
        cache2 = TrialCache(tmp_path / "cache")
        results = run_trials(specs, jobs=1, cache=cache2,
                             journal=journal_path, backoff=0)
        assert results[0] is not None      # journal alone is not a result
        assert cache2.misses == 1


class TestCorruptCache:
    def test_corrupt_entry_is_a_logged_miss_not_an_error(self, tmp_path,
                                                         caplog):
        import logging

        cache = TrialCache(tmp_path / "cache")
        spec = _quick_spec(0)
        result = guarded_execute(spec)
        cache.put(spec, result)
        path = cache._path(spec_key(spec))
        path.write_bytes(b"\x80\x04 this is not a pickle")
        with caplog.at_level(logging.WARNING, logger="repro.perf.cache"):
            assert cache.get(spec) is None
        assert cache.corrupt == 1
        assert cache.misses == 1
        assert any("corrupt" in r.message for r in caplog.records)
        assert not path.exists()           # deleted, will be rewritten
        cache.put(spec, result)
        assert cache.get(spec) == result

    def test_truncated_entry_is_also_recovered(self, tmp_path):
        cache = TrialCache(tmp_path / "cache")
        spec = _quick_spec(1)
        result = guarded_execute(spec)
        cache.put(spec, result)
        path = cache._path(spec_key(spec))
        path.write_bytes(path.read_bytes()[:10])   # killed mid-write
        assert cache.get(spec) is None
        assert cache.corrupt == 1
        cache.put(spec, result)
        assert cache.get(spec) == result


class TestNonTermination:
    def test_run_until_names_the_failure(self):
        from repro.runtime.ops import Nop

        system = System(3)

        def spin(ctx, value):
            while True:
                yield Nop()

        sim = Simulation(system, spin, inputs={p: p for p in system.pids})
        with pytest.raises(NonTerminationError) as info:
            sim.run_until(Simulation.all_correct_decided, 50,
                          RandomScheduler(0))
        assert isinstance(info.value, SimulationLimitError)
        assert info.value.max_steps == 50
        assert info.value.time == 50
        assert "50 steps" in str(info.value)

    def test_cli_names_non_termination(self, capsys, monkeypatch):
        from repro import cli

        def explode(args):
            raise NonTerminationError("condition not reached within 40 steps",
                                      max_steps=40, time=40)

        monkeypatch.setitem(cli._COMMANDS, "run", explode)
        code = cli.main(["run"])
        assert code == 3
        err = capsys.readouterr().err
        assert "NonTerminationError" in err
        assert "--max-steps" in err
