"""Unit tests for the operation algebra and the ⊥ sentinel."""

import pickle

import pytest

from repro.runtime.ops import (
    BOT,
    Bottom,
    ConsensusPropose,
    Decide,
    Emit,
    Nop,
    Operation,
    QueryFD,
    Read,
    SnapshotScan,
    SnapshotUpdate,
    Write,
)


class TestBottom:
    def test_singleton(self):
        assert Bottom() is BOT

    def test_falsy(self):
        assert not BOT

    def test_repr(self):
        assert repr(BOT) == "⊥"

    def test_identity_comparison(self):
        assert BOT is Bottom()
        assert (BOT == Bottom()) is True

    def test_not_equal_to_values(self):
        assert BOT != 0
        assert BOT != ""
        assert BOT != None  # noqa: E711 — ⊥ is not None either
        assert BOT != frozenset()

    def test_pickle_roundtrip_preserves_identity(self):
        assert pickle.loads(pickle.dumps(BOT)) is BOT


class TestOperations:
    def test_read_fields(self):
        op = Read(("R", 1))
        assert op.key == ("R", 1)
        assert isinstance(op, Operation)

    def test_write_fields(self):
        op = Write("D", 42)
        assert op.key == "D" and op.value == 42

    def test_ops_are_frozen(self):
        op = Read("x")
        with pytest.raises(Exception):
            op.key = "y"

    def test_ops_equality(self):
        assert Read("a") == Read("a")
        assert Read("a") != Read("b")
        assert Write("a", 1) != Read("a")

    def test_snapshot_ops(self):
        up = SnapshotUpdate("S", 2, "v")
        assert (up.key, up.index, up.value) == ("S", 2, "v")
        assert SnapshotScan("S").key == "S"

    def test_consensus_propose(self):
        op = ConsensusPropose(("c", 1), "val")
        assert op.value == "val"

    def test_query_decide_emit_nop(self):
        assert QueryFD() == QueryFD()
        assert Decide(3).value == 3
        assert Emit(frozenset({1})).value == frozenset({1})
        assert Nop() == Nop()

    def test_ops_hashable(self):
        {Read("a"), Write("a", 1), QueryFD(), Nop()}
