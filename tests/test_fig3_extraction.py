"""Tests for Fig. 3 — extracting Υf from stable non-trivial detectors
(Theorem 10).

Each run checks the emulated ``Υf-output`` variable: after the source
detector's history stabilizes, all correct processes must converge to the
same set, of size at least ``n + 1 − f``, that is not the correct set.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import run_extraction_trial
from repro.core import (
    PhiMap,
    ShiftedPhiMap,
    make_extraction_protocol,
    stable_emulated_output,
)
from repro.detectors import (
    EventuallyPerfectSpec,
    OmegaKSpec,
    OmegaSpec,
    StableHistory,
    UpsilonFSpec,
    UpsilonSpec,
    omega_n,
)
from repro.failures import Environment, FailurePattern
from repro.runtime import RandomScheduler, Simulation, System


def run_extraction(spec, env, pattern, history, seed=0, shift=0, steps=35_000):
    phi = PhiMap(spec, env)
    if shift:
        phi = ShiftedPhiMap(phi, shift)
    sim = Simulation(
        env.system, make_extraction_protocol(phi), inputs={},
        pattern=pattern, history=history,
    )
    sim.run(max_steps=steps, scheduler=RandomScheduler(seed))
    return sim


def assert_upsilon_f_extracted(sim, env, pattern):
    outputs = stable_emulated_output(sim, pattern)
    assert outputs is not None, "emulated output did not stabilize"
    values = {frozenset(v) for v in outputs.values()}
    assert len(values) == 1, f"correct processes disagree: {outputs}"
    (output,) = values
    upsilon = UpsilonFSpec(env)
    assert upsilon.is_legal_stable_value(pattern, output), (
        f"extracted {sorted(output)} illegal for correct="
        f"{sorted(pattern.correct)}"
    )
    return output


class TestExtractionFromOmega:
    @pytest.mark.parametrize("seed", range(5))
    def test_wait_free(self, system4, seed):
        env = Environment.wait_free(system4)
        spec = OmegaSpec(system4)
        rng = random.Random(seed)
        pattern = FailurePattern.random(system4, rng, max_crash_time=40)
        history = spec.sample_history(pattern, rng, stabilization_time=60)
        sim = run_extraction(spec, env, pattern, history, seed=seed)
        output = assert_upsilon_f_extracted(sim, env, pattern)
        # ϕΩ avoids the stable leader, so the leader is never in the output.
        assert history.stable_value not in output


class TestExtractionFromOmegaN:
    @pytest.mark.parametrize("seed", range(4))
    def test_output_is_complement(self, system4, seed):
        env = Environment.wait_free(system4)
        spec = omega_n(system4)
        rng = random.Random(seed)
        pattern = FailurePattern.random(system4, rng, max_crash_time=40)
        history = spec.sample_history(pattern, rng, stabilization_time=50)
        sim = run_extraction(spec, env, pattern, history, seed=seed)
        output = assert_upsilon_f_extracted(sim, env, pattern)
        assert output == system4.pid_set - history.stable_value


class TestExtractionFromUpsilonIsIdentity:
    def test_identity(self, system4):
        env = Environment.wait_free(system4)
        spec = UpsilonSpec(system4)
        pattern = FailurePattern.crash_at(system4, {1: 10})
        history = StableHistory(frozenset({0, 1}), stabilization_time=30)
        sim = run_extraction(spec, env, pattern, history, seed=2)
        output = assert_upsilon_f_extracted(sim, env, pattern)
        assert output == frozenset({0, 1})


class TestExtractionFromEventuallyPerfect:
    @pytest.mark.parametrize("seed", range(4))
    def test_wait_free(self, system4, seed):
        env = Environment.wait_free(system4)
        spec = EventuallyPerfectSpec(system4)
        rng = random.Random(seed + 100)
        pattern = FailurePattern.random(system4, rng, max_crash_time=40)
        history = spec.sample_history(pattern, rng, stabilization_time=60)
        sim = run_extraction(spec, env, pattern, history, seed=seed)
        assert_upsilon_f_extracted(sim, env, pattern)


class TestFResilientEnvironments:
    @pytest.mark.parametrize("f", [1, 2])
    def test_omega_f_sources(self, system4, f):
        env = Environment(system4, f)
        spec = OmegaKSpec(system4, f)
        rng = random.Random(f * 17)
        pattern = env.random_pattern(rng, max_crash_time=30)
        history = spec.sample_history(pattern, rng, stabilization_time=40)
        sim = run_extraction(spec, env, pattern, history, seed=f)
        output = assert_upsilon_f_extracted(sim, env, pattern)
        assert len(output) >= env.min_correct


class TestBatchObservationPath:
    """w(σ) > 0 exercises the line-15 batch wait of Fig. 3."""

    @pytest.mark.parametrize("shift", [1, 3])
    def test_failure_free_completes_batches(self, system3, shift):
        env = Environment.wait_free(system3)
        spec = OmegaSpec(system3)
        pattern = FailurePattern.failure_free(system3)
        history = StableHistory(0, stabilization_time=20)
        sim = run_extraction(
            spec, env, pattern, history, seed=shift, shift=shift, steps=50_000
        )
        output = assert_upsilon_f_extracted(sim, env, pattern)
        assert 0 not in output

    def test_crash_stalls_batches_output_pi(self, system3):
        """With a crashed process, batches never complete; the emulated
        output stays Π — legal, since Π is not the correct set (case (1)
        of the Theorem 10 proof)."""
        env = Environment.wait_free(system3)
        spec = OmegaSpec(system3)
        pattern = FailurePattern.crash_at(system3, {2: 25})
        history = StableHistory(0, stabilization_time=0)
        sim = run_extraction(
            spec, env, pattern, history, seed=9, shift=2, steps=40_000
        )
        output = assert_upsilon_f_extracted(sim, env, pattern)
        assert output == system3.pid_set

    def test_peer_done_flag_frees_blocked_observers(self, system3):
        """A process that completed its batches before a crash publishes
        B[i]; late observers adopt S through it rather than Π."""
        env = Environment.wait_free(system3)
        spec = OmegaSpec(system3)
        # Crash late: batches complete first (stabilization at 0).
        pattern = FailurePattern.crash_at(system3, {2: 3_000})
        history = StableHistory(0, stabilization_time=0)
        sim = run_extraction(
            spec, env, pattern, history, seed=10, shift=1, steps=40_000
        )
        outputs = stable_emulated_output(sim, pattern)
        assert outputs is not None
        values = {frozenset(v) for v in outputs.values()}
        assert len(values) == 1


class TestRunnerTrialAPI:
    def test_trial_result_fields(self, system4):
        env = Environment.wait_free(system4)
        result = run_extraction_trial(OmegaSpec(system4), env, seed=1)
        assert result.stabilized and result.legal
        assert result.detector == "Ω"
        assert result.output_settle_time >= 0

    def test_trial_handles_shift(self, system3):
        env = Environment.wait_free(system3)
        result = run_extraction_trial(
            OmegaSpec(system3), env, seed=2, shift=1, max_steps=60_000
        )
        assert result.stabilized and result.legal


@given(
    n_procs=st.integers(3, 4),
    seed=st.integers(0, 50_000),
    detector=st.sampled_from(["omega", "omega_n", "diamond_p", "upsilon"]),
)
@settings(max_examples=20, deadline=None)
def test_extraction_hypothesis(n_procs, seed, detector):
    system = System(n_procs)
    env = Environment.wait_free(system)
    spec = {
        "omega": OmegaSpec(system),
        "omega_n": omega_n(system),
        "diamond_p": EventuallyPerfectSpec(system),
        "upsilon": UpsilonSpec(system),
    }[detector]
    rng = random.Random(seed)
    pattern = FailurePattern.random(system, rng, max_crash_time=30)
    history = spec.sample_history(pattern, rng, stabilization_time=40)
    sim = run_extraction(spec, env, pattern, history, seed=seed, steps=45_000)
    assert_upsilon_f_extracted(sim, env, pattern)
