"""Tests for the constructive reductions of Sect. 4 and 5.3."""

import random

import pytest

from repro.analysis import ComplementHistory
from repro.core import (
    make_omega_k_to_upsilon_f,
    make_omega_to_upsilon,
    make_upsilon1_to_omega,
    make_upsilon_to_omega_two_processes,
    stable_emulated_output,
)
from repro.detectors import (
    OmegaKSpec,
    OmegaSpec,
    StableHistory,
    UpsilonFSpec,
    UpsilonSpec,
    omega_n,
)
from repro.failures import Environment, FailurePattern
from repro.runtime import RandomScheduler, Simulation, System


def run_reduction(protocol, env, source_spec, target_spec, seed,
                  stabilization=50, steps=25_000, pattern=None,
                  stable_value=None):
    """Run a reduction; return the agreed stable emitted value (asserting
    agreement and legality against the target spec)."""
    system = env.system
    rng = random.Random(f"red:{seed}")
    if pattern is None:
        pattern = env.random_pattern(rng, max_crash_time=40)
    history = source_spec.sample_history(
        pattern, rng, stabilization_time=stabilization, stable_value=stable_value
    )
    sim = Simulation(system, protocol, inputs={}, pattern=pattern,
                     history=history)
    sim.run(max_steps=steps, scheduler=RandomScheduler(seed))
    outputs = stable_emulated_output(sim, pattern)
    assert outputs is not None, "reduction output did not stabilize"
    values = set(outputs.values())
    assert len(values) == 1, f"correct processes disagree: {outputs}"
    (value,) = values
    assert target_spec.is_legal_stable_value(pattern, value), (
        f"{value!r} illegal for correct={sorted(pattern.correct)} "
        f"(source stable {history.stable_value!r})"
    )
    return value, history, pattern


class TestOmegaNToUpsilon:
    @pytest.mark.parametrize("seed", range(6))
    def test_complement_is_legal_upsilon(self, system4, seed):
        env = Environment.wait_free(system4)
        value, history, _ = run_reduction(
            make_omega_k_to_upsilon_f(), env, omega_n(system4),
            UpsilonSpec(system4), seed,
        )
        assert value == system4.pid_set - history.stable_value

    def test_output_size_is_one_for_omega_n(self, system4):
        env = Environment.wait_free(system4)
        value, _, _ = run_reduction(
            make_omega_k_to_upsilon_f(), env, omega_n(system4),
            UpsilonSpec(system4), seed=42,
        )
        assert len(value) == 1


class TestOmegaFToUpsilonF:
    @pytest.mark.parametrize("f", [1, 2, 3])
    def test_in_e_f(self, system5, f):
        env = Environment(system5, f)
        value, history, _ = run_reduction(
            make_omega_k_to_upsilon_f(), env, OmegaKSpec(system5, f),
            UpsilonFSpec(env), seed=f,
        )
        assert value == system5.pid_set - history.stable_value
        assert len(value) == env.min_correct


class TestOmegaToUpsilon:
    @pytest.mark.parametrize("seed", range(4))
    def test_leader_complement(self, system4, seed):
        env = Environment.wait_free(system4)
        value, history, _ = run_reduction(
            make_omega_to_upsilon(), env, OmegaSpec(system4),
            UpsilonSpec(system4), seed,
        )
        assert value == system4.pid_set - {history.stable_value}


class TestTwoProcessEquivalence:
    """Sect. 4: in a system of 2 processes, Υ and Ω are equivalent."""

    @pytest.mark.parametrize("seed", range(6))
    def test_upsilon_to_omega(self, seed):
        system = System(2)
        env = Environment.wait_free(system)
        run_reduction(
            make_upsilon_to_omega_two_processes(), env,
            UpsilonSpec(system), OmegaSpec(system), seed,
        )

    def test_upsilon_full_set_means_other_faulty(self):
        """Stable U = Π is legal only when some process is faulty; the
        reduction must elect the survivor."""
        system = System(2)
        env = Environment.wait_free(system)
        pattern = FailurePattern.crash_at(system, {1: 15})
        value, _, _ = run_reduction(
            make_upsilon_to_omega_two_processes(), env,
            UpsilonSpec(system), OmegaSpec(system), seed=3,
            pattern=pattern, stable_value=frozenset({0, 1}),
        )
        assert value == 0

    def test_round_trip_omega_upsilon_omega(self):
        """Composing Ω → Υ → Ω over histories yields a legal Ω history."""
        system = System(2)
        env = Environment.wait_free(system)
        pattern = FailurePattern.crash_at(system, {0: 10})
        omega_spec = OmegaSpec(system)
        omega_history = omega_spec.sample_history(
            pattern, random.Random(4), stabilization_time=30
        )
        upsilon_history = ComplementHistory(system, omega_history)
        sim = Simulation(
            system, make_upsilon_to_omega_two_processes(), inputs={},
            pattern=pattern, history=upsilon_history,
        )
        sim.run(max_steps=20_000, scheduler=RandomScheduler(4))
        outputs = stable_emulated_output(sim, pattern)
        assert outputs is not None
        (value,) = set(outputs.values())
        assert value == omega_history.stable_value

    def test_requires_two_processes(self, system3):
        protocol = make_upsilon_to_omega_two_processes()
        # The guard fires while priming the generators (before any step).
        with pytest.raises(ValueError, match="two-process"):
            Simulation(system3, protocol, inputs={})


class TestUpsilon1ToOmega:
    """Sect. 5.3: Υ¹ → Ω in E₁ via timestamps."""

    @pytest.mark.parametrize("seed", range(6))
    def test_random_runs(self, system4, seed):
        env = Environment(system4, 1)
        run_reduction(
            make_upsilon1_to_omega(), env, UpsilonFSpec(env),
            OmegaSpec(system4), seed, steps=40_000,
        )

    def test_proper_subset_elects_excluded_process(self, system4):
        env = Environment(system4, 1)
        pattern = FailurePattern.failure_free(system4)
        value, _, _ = run_reduction(
            make_upsilon1_to_omega(), env, UpsilonFSpec(env),
            OmegaSpec(system4), seed=7, pattern=pattern,
            stable_value=frozenset({0, 1, 2}),
        )
        assert value == 3

    def test_full_set_elects_via_timestamps(self, system4):
        """U = Π in E₁ means exactly one faulty process; the heartbeat
        ranking must exclude it."""
        env = Environment(system4, 1)
        pattern = FailurePattern.crash_at(system4, {2: 40})
        value, _, _ = run_reduction(
            make_upsilon1_to_omega(), env, UpsilonFSpec(env),
            OmegaSpec(system4), seed=8, pattern=pattern,
            stable_value=system4.pid_set, steps=60_000,
        )
        assert value != 2
        assert value in pattern.correct
