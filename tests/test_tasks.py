"""Tests for the task specifications — the checkers must catch violations."""

import pytest

from repro.runtime import Decide, Nop, RandomScheduler, Simulation, System
from repro.failures import FailurePattern
from repro.tasks import ConsensusSpec, SetAgreementSpec, Verdict, Violation


def decide_value(value):
    def protocol(ctx, _):
        yield Decide(value)

    return protocol


def decide_own(ctx, v):
    yield Decide(v)


def never_decide(ctx, _):
    while True:
        yield Nop()


def run(system, protocols, inputs, pattern=None, steps=1000):
    sim = Simulation(system, protocols, inputs=inputs, pattern=pattern)
    sim.run(max_steps=steps, scheduler=RandomScheduler(1),
            stop_when=Simulation.all_correct_decided)
    return sim


class TestValidity:
    def test_accepts_proposed_values(self, system3):
        inputs = {p: f"v{p}" for p in system3.pids}
        sim = run(system3, decide_own, inputs)
        assert SetAgreementSpec(3).check(sim, inputs).ok

    def test_rejects_invented_value(self, system3):
        inputs = {p: f"v{p}" for p in system3.pids}
        sim = run(system3, decide_value("invented"), inputs)
        verdict = SetAgreementSpec(3).check(sim, inputs)
        assert not verdict.ok
        assert any(v.prop == "Validity" for v in verdict.violations)


class TestAgreement:
    def test_rejects_too_many_values(self, system3):
        inputs = {p: f"v{p}" for p in system3.pids}
        sim = run(system3, decide_own, inputs)
        verdict = SetAgreementSpec(2).check(sim, inputs)
        assert not verdict.ok
        assert any(v.prop == "Agreement" for v in verdict.violations)

    def test_boundary_exactly_k(self, system3):
        inputs = {p: f"v{p}" for p in system3.pids}
        protocols = {0: decide_value("v0"), 1: decide_value("v0"),
                     2: decide_value("v2")}
        sim = run(system3, protocols, inputs)
        assert SetAgreementSpec(2).check(sim, inputs).ok
        assert not SetAgreementSpec(1).check(sim, inputs).ok


class TestTermination:
    def test_rejects_undecided_correct_process(self, system3):
        inputs = {p: "v" for p in system3.pids}
        protocols = {0: decide_value("v"), 1: decide_value("v"),
                     2: never_decide}
        sim = run(system3, protocols, inputs, steps=200)
        verdict = SetAgreementSpec(3).check(sim, inputs)
        assert any(v.prop == "Termination" for v in verdict.violations)

    def test_faulty_processes_excused(self, system3):
        inputs = {p: "v" for p in system3.pids}
        pattern = FailurePattern.crash_at(system3, {2: 0})
        protocols = {0: decide_value("v"), 1: decide_value("v"),
                     2: never_decide}
        sim = run(system3, protocols, inputs, pattern=pattern)
        assert SetAgreementSpec(3).check(sim, inputs).ok

    def test_termination_check_can_be_waived(self, system3):
        inputs = {p: "v" for p in system3.pids}
        protocols = {0: decide_value("v"), 1: never_decide, 2: never_decide}
        sim = run(system3, protocols, inputs, steps=100)
        assert SetAgreementSpec(3).check(
            sim, inputs, require_termination=False
        ).ok


class TestConsensusSpec:
    def test_is_1_set_agreement(self):
        spec = ConsensusSpec()
        assert spec.k == 1
        assert spec.name == "consensus"

    def test_k_validation(self):
        with pytest.raises(ValueError):
            SetAgreementSpec(0)


class TestVerdict:
    def test_raise_if_failed(self):
        bad = Verdict("t", [Violation("Agreement", "boom")])
        with pytest.raises(AssertionError, match="Agreement: boom"):
            bad.raise_if_failed()

    def test_ok_verdict_passes_through(self):
        good = Verdict("t", [])
        assert good.raise_if_failed() is good

    def test_violation_str(self):
        v = Violation("Validity", "detail")
        assert str(v) == "Validity: detail"
