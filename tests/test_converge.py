"""Property tests for the k-converge routine (Sect. 5.1, [21]).

The four properties — C-Termination, C-Validity, C-Agreement and
Convergence — are checked over randomized schedules, crash patterns and
input multisets, with both snapshot back-ends.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConvergeInstance, k_converge
from repro.failures import FailurePattern
from repro.runtime import Decide, RandomScheduler, Simulation, System


def converge_protocol(k, register_based):
    def protocol(ctx, value):
        picked, committed = yield from k_converge(
            ctx, "instance", k, value, register_based=register_based
        )
        yield Decide((picked, committed))

    return protocol


def run_converge(n_procs, k, inputs, seed, register_based=False, crashes=None):
    system = System(n_procs)
    pattern = (
        FailurePattern.crash_at(system, crashes)
        if crashes
        else FailurePattern.failure_free(system)
    )
    sim = Simulation(
        system,
        converge_protocol(k, register_based),
        inputs=inputs,
        pattern=pattern,
    )
    sim.run_until(
        Simulation.all_correct_decided,
        max_steps=300_000,
        scheduler=RandomScheduler(seed),
    )
    return sim.decisions()  # pid -> (picked, committed)


def assert_converge_properties(decisions, inputs, k):
    picks = [p for (p, _) in decisions.values()]
    commits = [c for (_, c) in decisions.values()]
    # C-Validity
    assert set(picks) <= set(inputs.values())
    # C-Agreement
    if any(commits):
        assert len(set(picks)) <= max(k, 1)
    # Convergence
    if len(set(inputs.values())) <= k:
        assert all(commits)


class TestDegenerate:
    def test_0_converge_returns_input_uncommitted(self, system3):
        decisions = run_converge(3, 0, {p: f"v{p}" for p in range(3)}, seed=1)
        assert decisions == {p: (f"v{p}", False) for p in range(3)}

    def test_0_converge_takes_no_shared_steps(self, system3):
        def protocol(ctx, value):
            result = yield from k_converge(ctx, "x", 0, value)
            yield Decide(result)

        sim = Simulation(system3, {0: protocol}, inputs={0: "v"})
        sim.step(0)
        assert sim.runtimes[0].decision == ("v", False)
        assert sim.runtimes[0].steps_taken == 1  # just the Decide

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError):
            ConvergeInstance("x", -1, 3)


class TestSingleValue:
    @pytest.mark.parametrize("k", [1, 2, 3])
    @pytest.mark.parametrize("register_based", [False, True])
    def test_unanimous_input_commits(self, k, register_based):
        decisions = run_converge(
            4, k, {p: "same" for p in range(4)}, seed=3,
            register_based=register_based,
        )
        assert all(d == ("same", True) for d in decisions.values())


class TestConvergenceThreshold:
    def test_k_distinct_inputs_commit(self):
        # exactly k = 2 distinct values among 4 processes
        inputs = {0: "a", 1: "a", 2: "b", 3: "b"}
        decisions = run_converge(4, 2, inputs, seed=5)
        assert all(c for (_, c) in decisions.values())
        assert {p for (p, _) in decisions.values()} <= {"a", "b"}

    def test_solo_participant_commits_any_k_ge_1(self):
        system = System(4)

        def protocol(ctx, value):
            result = yield from k_converge(ctx, "solo", 1, value)
            yield Decide(result)

        sim = Simulation(system, {2: protocol}, inputs={2: "mine"})
        while not sim.runtimes[2].has_decided:
            sim.step(2)
        assert sim.runtimes[2].decision == ("mine", True)


class TestAgreementUnderContention:
    @pytest.mark.parametrize("seed", range(10))
    def test_n_plus_1_values_k_n(self, seed):
        """The Fig. 1 top-of-round shape: n+1 distinct values, k = n."""
        inputs = {p: f"v{p}" for p in range(4)}
        decisions = run_converge(4, 3, inputs, seed=seed)
        assert_converge_properties(decisions, inputs, 3)

    @pytest.mark.parametrize("seed", range(10))
    def test_contended_k_1(self, seed):
        inputs = {p: f"v{p}" for p in range(3)}
        decisions = run_converge(3, 1, inputs, seed=seed)
        assert_converge_properties(decisions, inputs, 1)


class TestWithCrashes:
    @pytest.mark.parametrize("seed", range(8))
    def test_crashed_participants_do_not_break_properties(self, seed):
        rng = random.Random(seed)
        inputs = {p: f"v{p % 3}" for p in range(5)}
        crashes = {rng.randrange(5): rng.randrange(30)}
        decisions = run_converge(5, 2, inputs, seed=seed, crashes=crashes)
        assert_converge_properties(decisions, inputs, 2)
        assert set(decisions) >= set(range(5)) - set(crashes)


@given(
    n_procs=st.integers(2, 5),
    k=st.integers(1, 5),
    seed=st.integers(0, 100_000),
    value_count=st.integers(1, 5),
    register_based=st.booleans(),
)
@settings(max_examples=60, deadline=None)
def test_converge_properties_hypothesis(n_procs, k, seed, value_count, register_based):
    rng = random.Random(seed)
    values = [f"v{i}" for i in range(value_count)]
    inputs = {p: rng.choice(values) for p in range(n_procs)}
    decisions = run_converge(
        n_procs, min(k, n_procs), inputs, seed=seed,
        register_based=register_based,
    )
    assert_converge_properties(decisions, inputs, min(k, n_procs))
    # C-Termination: every (correct) process picked.
    assert set(decisions) == set(range(n_procs))


@given(
    n_procs=st.integers(3, 5),
    seed=st.integers(0, 100_000),
)
@settings(max_examples=30, deadline=None)
def test_converge_agreement_with_crash(n_procs, seed):
    rng = random.Random(seed)
    k = rng.randint(1, n_procs - 1)
    inputs = {p: f"v{p}" for p in range(n_procs)}
    victim = rng.randrange(n_procs)
    decisions = run_converge(
        n_procs, k, inputs, seed=seed, crashes={victim: rng.randrange(40)}
    )
    assert_converge_properties(decisions, inputs, k)


class TestInstanceIsolation:
    def test_distinct_keys_do_not_interfere(self):
        """Two instances in the same memory stay independent."""
        system = System(2)

        def protocol(ctx, value):
            r1 = yield from k_converge(ctx, "one", 1, value)
            r2 = yield from k_converge(ctx, "two", 1, f"second-{value}")
            yield Decide((r1, r2))

        sim = Simulation(system, protocol, inputs={0: "a", 1: "b"})
        sim.run_until(Simulation.all_correct_decided, 50_000, RandomScheduler(2))
        for pid, (r1, r2) in sim.decisions().items():
            assert r1[0] in {"a", "b"}
            assert r2[0] in {"second-a", "second-b"}
