"""Round-trip tests for trace serialization."""

import io
import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.trace_io import (
    decode_value,
    dump_jsonl,
    encode_value,
    load_jsonl,
    step_from_dict,
    step_to_dict,
    trace_from_dict,
    trace_to_dict,
)
from repro.core import make_upsilon_set_agreement
from repro.detectors import UpsilonSpec
from repro.failures import FailurePattern
from repro.runtime import (
    BOT,
    Broadcast,
    ConsensusPropose,
    Decide,
    Emit,
    ImmediateWriteScan,
    Nop,
    QueryFD,
    RandomScheduler,
    Read,
    Receive,
    Send,
    Simulation,
    SnapshotScan,
    SnapshotUpdate,
    System,
    Write,
)
from repro.runtime.trace import StepRecord


class TestValueCodec:
    @pytest.mark.parametrize("value", [
        None, True, 0, -7, 3.5, "text",
        (1, 2, "x"), [1, [2, 3]], frozenset({1, 4}),
        {"a": 1, ("k", 2): frozenset({0})},
        BOT, (BOT, "v", BOT), frozenset(),
        ((("nconv", 1), "cvA"),),
    ])
    def test_roundtrip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_bot_identity_preserved(self):
        assert decode_value(encode_value(BOT)) is BOT

    def test_json_serializable(self):
        encoded = encode_value({("Dr", 1): (BOT, frozenset({2}))})
        json.dumps(encoded)  # must not raise

    def test_opaque_fallback(self):
        class Weird:
            def __repr__(self):
                return "<weird>"

        assert decode_value(encode_value(Weird())) == "<weird>"

    def test_unknown_encoding_rejected(self):
        with pytest.raises(ValueError):
            decode_value({"mystery": 1})


class TestStepCodec:
    @pytest.mark.parametrize("step", [
        StepRecord(0, 1, Read(("R", 2)), BOT),
        StepRecord(5, 0, Write("D", "v1"), None),
        StepRecord(9, 2, QueryFD(), frozenset({0, 1})),
        StepRecord(11, 1, Decide("v0"), None),
        StepRecord(3, 0, SnapshotScan(("k", "cvA")), ("a", BOT, "c")),
    ])
    def test_roundtrip(self, step):
        assert step_from_dict(step_to_dict(step)) == step

    # one representative step per operation kind the engine knows —
    # every entry of trace_io._OP_CODES must survive the round trip
    ALL_KINDS = [
        StepRecord(0, 0, Read(("R", 1)), BOT),
        StepRecord(1, 1, Write(("R", 1), frozenset({2, 3})), None),
        StepRecord(2, 2, SnapshotUpdate("S", 2, ("lvl", BOT)), None),
        StepRecord(3, 0, SnapshotScan("S"), (BOT, "x", BOT)),
        StepRecord(4, 1, ImmediateWriteScan("I", 1, "w"),
                   (("w", 1), (BOT, BOT))),
        StepRecord(5, 2, ConsensusPropose(("cons", 4), "val"), "val"),
        StepRecord(6, 0, QueryFD(), frozenset({1})),
        StepRecord(7, 1, Decide(("pair", 9)), None),
        StepRecord(8, 2, Emit(frozenset({0, 2})), None),
        StepRecord(9, 0, Send(2, ("msg", BOT)), None),
        StepRecord(10, 1, Broadcast({"k": (1, 2)}), None),
        StepRecord(11, 2, Receive(), [(0, "payload")]),
        StepRecord(12, 0, Nop(), None),
    ]

    @pytest.mark.parametrize(
        "step", ALL_KINDS, ids=[type(s.op).__name__ for s in ALL_KINDS]
    )
    def test_every_op_kind_roundtrips(self, step):
        body = step_to_dict(step)
        json.dumps(body)  # each step must be JSON-serializable as-is
        assert step_from_dict(body) == step

    def test_all_op_codes_exercised(self):
        from repro.analysis.trace_io import _OP_CODES

        covered = {type(s.op) for s in self.ALL_KINDS}
        assert covered == set(_OP_CODES)

    def test_opaque_payload_degrades_to_repr(self):
        class Token:
            def __repr__(self):
                return "<token#7>"

        step = StepRecord(4, 1, Emit(Token()), None)
        rebuilt = step_from_dict(step_to_dict(step))
        assert rebuilt.op == Emit("<token#7>")

    def test_jsonl_of_every_kind(self):
        from repro.runtime.trace import Trace

        trace = Trace()
        for step in self.ALL_KINDS:
            trace.record(step)
        buffer = io.StringIO()
        assert dump_jsonl(trace, buffer) == len(self.ALL_KINDS)
        buffer.seek(0)
        rebuilt = load_jsonl(buffer)
        assert rebuilt.steps == trace.steps


class TestTraceRoundTrip:
    def _real_trace(self):
        system = System(3)
        spec = UpsilonSpec(system)
        rng = random.Random(5)
        pattern = FailurePattern.crash_at(system, {0: 20})
        history = spec.sample_history(pattern, rng, stabilization_time=40)
        sim = Simulation(system, make_upsilon_set_agreement(),
                         inputs={p: f"v{p}" for p in system.pids},
                         pattern=pattern, history=history)
        sim.run_until(Simulation.all_correct_decided, 200_000,
                      RandomScheduler(5))
        return sim.trace

    def test_dict_roundtrip_preserves_analysis(self):
        trace = self._real_trace()
        rebuilt = trace_from_dict(trace_to_dict(trace))
        assert len(rebuilt) == len(trace)
        assert rebuilt.decisions() == trace.decisions()
        assert rebuilt.decided_values() == trace.decided_values()
        assert rebuilt.step_counts() == trace.step_counts()
        assert rebuilt.steps == trace.steps

    def test_jsonl_roundtrip(self, tmp_path):
        trace = self._real_trace()
        path = str(tmp_path / "run.jsonl")
        count = dump_jsonl(trace, path)
        assert count == len(trace)
        rebuilt = load_jsonl(path)
        assert rebuilt.steps == trace.steps

    def test_jsonl_stream_objects(self):
        trace = self._real_trace()
        buffer = io.StringIO()
        dump_jsonl(trace, buffer)
        buffer.seek(0)
        for line in buffer:
            json.loads(line)  # every line is standalone JSON
        buffer.seek(0)
        assert load_jsonl(buffer).decisions() == trace.decisions()

    def test_empty_trace(self):
        from repro.runtime.trace import Trace

        buffer = io.StringIO()
        assert dump_jsonl(Trace(), buffer) == 0
        buffer.seek(0)
        assert len(load_jsonl(buffer)) == 0


@given(st.recursive(
    st.one_of(st.integers(), st.text(max_size=8), st.booleans(),
              st.none(), st.just(BOT)),
    lambda children: st.one_of(
        st.tuples(children, children),
        st.frozensets(st.integers(0, 5), max_size=3),
        st.lists(children, max_size=3),
    ),
    max_leaves=8,
))
@settings(max_examples=60, deadline=None)
def test_codec_roundtrip_hypothesis(value):
    assert decode_value(encode_value(value)) == value
