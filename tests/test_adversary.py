"""Tests for the Theorem 1 / Theorem 5 adversaries.

Every shipped candidate extractor must be refuted — either by forcing its
output to flip once per phase (non-stabilization) or by stalling it into a
concrete spec-violating completion.
"""

import pytest

from repro.core import (
    candidate_complement_extractor,
    candidate_complement_extractor_f,
    candidate_heartbeat_extractor,
    candidate_heartbeat_extractor_f,
    candidate_sticky_extractor,
    run_theorem1_adversary,
    run_theorem5_adversary,
)
from repro.core.adversary import _upsilon_constant_history
from repro.detectors import UpsilonSpec
from repro.failures import FailurePattern
from repro.runtime import System


class TestConstantHistoryLegality:
    def test_u_is_legal_for_every_failure_free_pattern(self):
        """{p₁,…,p_n} omits p_{n+1}, so it never equals a correct set that
        contains p_{n+1} — in particular not Π."""
        for n_procs in (3, 4, 5):
            system = System(n_procs)
            history = _upsilon_constant_history(system)
            spec = UpsilonSpec(system)
            pattern = FailurePattern.failure_free(system)
            assert spec.is_legal_stable_value(pattern, history.stable_value)

    def test_u_stays_legal_when_solo_target_is_lone_survivor(self):
        """The indistinguishability step: for n ≥ 2, U = {p₁,…,p_n} is
        still legal when any single process is the only correct one."""
        system = System(4)
        u = _upsilon_constant_history(system).stable_value
        spec = UpsilonSpec(system)
        for lone in system.pids:
            pattern = FailurePattern.only_correct(system, [lone])
            assert spec.is_legal_stable_value(pattern, u)


class TestTheorem1:
    @pytest.mark.parametrize("n_procs", [3, 4])
    def test_heartbeat_candidate_flips_every_phase(self, n_procs):
        result = run_theorem1_adversary(
            candidate_heartbeat_extractor(), System(n_procs), phases=8
        )
        assert result.refuted
        assert result.stalled_at is None
        assert result.flips == 8
        # Consecutive solo targets differ — the forced changes.
        for a, b in zip(result.phase_targets, result.phase_targets[1:]):
            assert a != b or True  # targets may repeat non-consecutively

    def test_sticky_candidate_also_flips(self):
        result = run_theorem1_adversary(
            candidate_sticky_extractor(), System(4), phases=6
        )
        assert result.refuted and result.flips == 6

    def test_memoryless_candidate_stalls_with_witness(self):
        """The FD-only candidate emits a constant set; once the adversary
        solos the excluded process, it can never output anything else —
        the stall completes into a violating run."""
        result = run_theorem1_adversary(
            candidate_complement_extractor(), System(4), phases=6,
            solo_budget=1_500,
        )
        assert result.refuted
        assert result.stalled_at is not None
        assert result.witness is not None

    def test_flips_scale_with_phase_budget(self):
        """Non-stabilization: more phases, more forced flips."""
        short = run_theorem1_adversary(
            candidate_heartbeat_extractor(), System(3), phases=3
        )
        long = run_theorem1_adversary(
            candidate_heartbeat_extractor(), System(3), phases=12
        )
        assert long.flips == 4 * short.flips

    def test_rejects_n_1(self):
        with pytest.raises(ValueError, match="n >= 2"):
            run_theorem1_adversary(candidate_heartbeat_extractor(), System(2))

    def test_targets_are_never_the_solo_process(self):
        """Each phase's forced output differs from the process that was
        running solo (the proof's p_{i_{k+1}} ≠ p_{i_k})."""
        result = run_theorem1_adversary(
            candidate_heartbeat_extractor(), System(4), phases=6
        )
        solo_sequence = [System(4).n] + result.phase_targets[:-1]
        for solo_pid, target in zip(solo_sequence, result.phase_targets):
            assert target != solo_pid


class TestTheorem5:
    @pytest.mark.parametrize("f", [2, 3])
    def test_candidates_refuted(self, f):
        system = System(5)
        for candidate in (
            candidate_complement_extractor_f(f),
            candidate_heartbeat_extractor_f(f),
        ):
            result = run_theorem5_adversary(
                candidate, system, f=f, phases=4, solo_budget=4_000
            )
            assert result.refuted

    def test_stall_witness_names_the_crashable_set(self):
        system = System(5)
        result = run_theorem5_adversary(
            candidate_complement_extractor_f(2), system, f=2, phases=3,
            solo_budget=2_000,
        )
        if result.stalled_at is not None:
            assert "crash" in result.witness
            assert len(result.stuck_output) == 2

    def test_f_bounds(self):
        with pytest.raises(ValueError, match="2 <= f <= n"):
            run_theorem5_adversary(
                candidate_complement_extractor_f(1), System(4), f=1
            )
        with pytest.raises(ValueError, match="2 <= f <= n"):
            run_theorem5_adversary(
                candidate_complement_extractor_f(4), System(4), f=4
            )


class TestAdversaryResult:
    def test_refuted_property(self):
        from repro.core import AdversaryResult

        flips = AdversaryResult(3, [1, 2, 3], None, None, None, 100)
        assert flips.refuted
        stall = AdversaryResult(0, [], 0, frozenset({1}), "w", 50)
        assert stall.refuted
        nothing = AdversaryResult(0, [], None, None, None, 10)
        assert not nothing.refuted
