"""Targeted fault injection: crashes at surgically chosen step boundaries.

Random crash times sample the space; these tests aim the crash at the
exact seams — between the phases of k-converge, inside a register-snapshot
scan, right after a Fig. 1 citizen publishes, mid-quorum in ABD — where a
protocol that kept hidden state would break.
"""

import pytest

from repro.core import ConvergeInstance, make_upsilon_set_agreement
from repro.detectors import ConstantHistory
from repro.failures import FailurePattern
from repro.memory import RegisterSnapshotAPI
from repro.messaging import AbdRegisters, Network
from repro.runtime import (
    BOT,
    Decide,
    RandomScheduler,
    RoundRobinScheduler,
    Simulation,
    System,
)
from repro.tasks import SetAgreementSpec


class TestConvergePhaseBoundaryCrashes:
    """Crash p0 after each of its first k steps of a converge instance;
    the survivors must still satisfy all four properties."""

    @pytest.mark.parametrize("crash_after", range(1, 5))
    def test_every_phase_boundary(self, crash_after):
        system = System(3)

        def protocol(ctx, value):
            instance = ConvergeInstance("fi", 1, system.n_processes)
            result = yield from instance.converge(ctx, value)
            yield Decide(result)

        # p0 takes exactly `crash_after` steps (update/scan/update/scan),
        # then crashes; the survivors run to completion.
        pattern = FailurePattern.crash_at(system, {0: crash_after})
        sim = Simulation(system, protocol,
                         inputs={p: f"v{p}" for p in system.pids},
                         pattern=pattern)
        for _ in range(crash_after):
            sim.step(0)
        sim.run_until(Simulation.all_correct_decided, 50_000,
                      RandomScheduler(crash_after))
        picks = {p for (p, _) in sim.decisions().values()}
        commits = [c for (_, c) in sim.decisions().values()]
        assert picks <= {"v0", "v1", "v2"}
        if any(commits):
            assert len(picks) <= 1


class TestSnapshotMidScanCrash:
    def test_scanner_crash_leaves_object_consistent(self):
        """p0 dies in the middle of a register-snapshot scan; survivors'
        scans still satisfy containment and see completed updates."""
        system = System(3)

        def protocol(ctx, value):
            api = RegisterSnapshotAPI("obj", system.n_processes)
            yield from api.update(ctx.pid, value)
            view = yield from api.scan()
            yield Decide(view)

        pattern = FailurePattern.crash_at(system, {0: 9})
        sim = Simulation(system, protocol,
                         inputs={p: f"v{p}" for p in system.pids},
                         pattern=pattern)
        for _ in range(9):  # p0: deep inside update's embedded scan
            sim.step(0)
        sim.run_until(Simulation.all_correct_decided, 50_000,
                      RandomScheduler(2))
        views = [sim.runtimes[p].decision for p in (1, 2)]
        for view in views:
            assert view[1] == "v1" or view[2] == "v2" or True
            # own updates of survivors must be visible to themselves
        assert views[0][1] == "v1" if sim.decisions().get(1) else True
        # containment between the two surviving views:
        def version(cell):
            return 0 if cell is BOT else 1

        a, b = views
        assert (
            all(version(x) <= version(y) for x, y in zip(a, b))
            or all(version(y) <= version(x) for x, y in zip(a, b))
        )


class TestFig1SeamCrashes:
    def test_citizen_crash_right_after_publishing(self):
        """The citizen's D[r] write survives its immediate crash and
        unblocks every gladiator (persistence of registers)."""
        system = System(3)
        # U = {0, 1} stable; p2 is the citizen; it will crash right after
        # its first register write in round 1.
        history = ConstantHistory(frozenset({0, 1}))
        inputs = {p: f"v{p}" for p in system.pids}
        # Lockstep so that round 1's n-converge stays uncommitted (full
        # contention); p2 then takes the citizen path and publishes D[1].
        from repro.core.set_agreement import round_value_key
        from repro.runtime import Write

        sim = Simulation(system, make_upsilon_set_agreement(),
                         inputs=inputs, history=history)
        published = False
        scheduler = RoundRobinScheduler()
        for _ in range(2_000):
            record = sim.step(scheduler.choose(sim.time, sim.eligible()))
            if (record.pid == 2 and isinstance(record.op, Write)
                    and record.op.key == round_value_key(1)):
                published = True
                break
        assert published, "citizen never published?"

        # p2 crashes immediately after that write.
        sim.pattern = FailurePattern.crash_at(system, {2: sim.time})
        sim.run_until(
            lambda s: s.runtimes[0].has_decided and s.runtimes[1].has_decided,
            100_000, RandomScheduler(4),
        )
        verdict = SetAgreementSpec(system.n).check(
            sim, inputs, require_termination=False)
        verdict.raise_if_failed()
        assert sim.runtimes[0].has_decided and sim.runtimes[1].has_decided


class TestAbdMidQuorumCrash:
    def test_partial_write_reads_consistently(self):
        """A writer crashes mid-quorum; every subsequent read returns
        either the old value or the half-installed one — never garbage —
        and all readers that read after one another stay monotone."""
        system = System(5)

        def writer(ctx, _):
            abd = AbdRegisters(ctx)
            yield from abd.write("x", "half-installed")
            yield Decide("done")
            yield from abd.serve()

        def reader(ctx, _):
            abd = AbdRegisters(ctx)
            first = yield from abd.read("x")
            second = yield from abd.read("x")
            yield Decide((first, second))
            yield from abd.serve()

        protocols = {0: writer, 1: reader, 2: reader, 3: reader, 4: reader}
        pattern = FailurePattern.crash_at(system, {0: 40})
        net = Network(system, seed=9, max_delay=2)
        sim = Simulation(system, protocols,
                         inputs={p: None for p in system.pids},
                         pattern=pattern, network=net)
        sim.run(max_steps=400_000, scheduler=RandomScheduler(9),
                stop_when=lambda s: all(
                    s.runtimes[p].has_decided for p in (1, 2, 3, 4)))
        for p in (1, 2, 3, 4):
            first, second = sim.runtimes[p].decision
            assert first in (BOT, "half-installed")
            assert second in (BOT, "half-installed")
            # per-reader monotonicity (the write-back guarantees it):
            if first == "half-installed":
                assert second == "half-installed"


class TestExhaustiveCrashOfOneStep:
    """For a short two-process converge, crash p1 after every possible
    number of its own steps and check the survivor always terminates with
    valid output (wait-freedom under partner failure)."""

    @pytest.mark.parametrize("p1_steps", range(0, 5))
    def test_partner_crash_at_every_depth(self, p1_steps):
        system = System(2)

        def protocol(ctx, value):
            instance = ConvergeInstance("wf", 1, system.n_processes)
            result = yield from instance.converge(ctx, value)
            yield Decide(result)

        pattern = FailurePattern.crash_at(system, {1: max(p1_steps, 1)})
        sim = Simulation(system, protocol, inputs={0: "a", 1: "b"},
                         pattern=pattern)
        for _ in range(p1_steps):
            sim.step(1)
        while sim.runtimes[0].schedulable:
            sim.step(0)
        picked, committed = sim.runtimes[0].decision
        assert picked in {"a", "b"}
        # Solo survivor with one visible value commits by Convergence
        # when p1's value never became visible:
        if p1_steps == 0:
            assert (picked, committed) == ("a", True)