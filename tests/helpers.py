"""Shared non-fixture helpers for the test suite."""

from __future__ import annotations

from repro.failures import Environment, FailurePattern
from repro.runtime import RandomScheduler, Simulation


def run_to_decision(
    system,
    protocol,
    inputs,
    pattern=None,
    history=None,
    seed=0,
    max_steps=500_000,
    memory=None,
):
    """Run a decision protocol under a fair random scheduler to completion."""
    sim = Simulation(
        system, protocol, inputs=inputs, pattern=pattern, history=history,
        memory=memory,
    )
    sim.run_until(
        Simulation.all_correct_decided,
        max_steps=max_steps,
        scheduler=RandomScheduler(seed),
    )
    return sim


def wait_free_env(system) -> Environment:
    return Environment.wait_free(system)


def pattern_with_correct(system, correct) -> FailurePattern:
    return FailurePattern.only_correct(system, correct)
