"""Tests for the detector-hierarchy graph — including the semantic check
that every composed pointwise transform maps legal histories to legal
histories."""

import random

import pytest

from repro.core.hierarchy import DetectorHierarchy
from repro.failures import Environment, FailurePattern
from repro.runtime import System


@pytest.fixture
def wait_free_hierarchy(system4):
    return DetectorHierarchy(Environment.wait_free(system4))


@pytest.fixture
def e2_hierarchy():
    return DetectorHierarchy(Environment(System(5), 2))


class TestStructure:
    def test_wait_free_nodes(self, wait_free_hierarchy):
        assert set(wait_free_hierarchy.detectors()) == {
            "anti-Ω", "dummy", "Ω", "Ωn", "Υ", "◇P",
        }

    def test_f_resilient_adds_f_detectors(self, e2_hierarchy):
        names = e2_hierarchy.detectors()
        assert "Υf" in names and "Ωf" in names

    def test_unknown_detector_rejected(self, wait_free_hierarchy):
        with pytest.raises(KeyError):
            wait_free_hierarchy.weaker_than("Σ", "Ω")


class TestWeakerThan:
    def test_paper_chain(self, wait_free_hierarchy):
        h = wait_free_hierarchy
        chain = ["dummy", "anti-Ω", "Υ", "Ωn", "Ω", "◇P"]
        for weaker, stronger in zip(chain, chain[1:]):
            assert h.weaker_than(weaker, stronger)
        # transitivity end to end:
        assert h.weaker_than("dummy", "◇P")
        assert h.weaker_than("Υ", "◇P")

    def test_reflexive(self, wait_free_hierarchy):
        assert wait_free_hierarchy.weaker_than("Υ", "Υ")

    def test_no_downward_paths(self, wait_free_hierarchy):
        h = wait_free_hierarchy
        assert not h.weaker_than("◇P", "Υ")
        assert not h.weaker_than("Ωn", "Υ")
        assert not h.weaker_than("Ω", "Ωn")

    def test_f_resilient_chain(self, e2_hierarchy):
        h = e2_hierarchy
        assert h.weaker_than("Υf", "Ωf")
        assert h.weaker_than("Υ", "Υf")
        assert h.weaker_than("Υ", "Ωf")  # via Υf
        assert h.weaker_than("Ωf", "Ω")


class TestStrictness:
    def test_theorem1_strictness(self, wait_free_hierarchy):
        assert wait_free_hierarchy.strictly_weaker("Υ", "Ωn")

    def test_theorem5_strictness(self, e2_hierarchy):
        assert e2_hierarchy.strictly_weaker("Υf", "Ωf")

    def test_strictness_propagates_along_paths(self, wait_free_hierarchy):
        assert wait_free_hierarchy.strictly_weaker("Υ", "◇P")

    def test_not_strict_for_equal(self, wait_free_hierarchy):
        assert not wait_free_hierarchy.strictly_weaker("Υ", "Υ")

    def test_explanations_cite_sources(self, wait_free_hierarchy):
        edges = wait_free_hierarchy.explain("Υ", "Ωn")
        assert len(edges) == 1
        assert "Theorem 1" in edges[0].strictness_source


class TestTransforms:
    @pytest.mark.parametrize("weaker,stronger", [
        ("Υ", "Ωn"), ("Υ", "Ω"), ("Ωn", "Ω"), ("Ω", "◇P"),
        ("Υ", "◇P"), ("Ωn", "◇P"),
    ])
    def test_composed_transform_preserves_legality(
        self, wait_free_hierarchy, weaker, stronger
    ):
        """The semantic content of 'weaker than': a stable value legal for
        the stronger detector maps to one legal for the weaker."""
        h = wait_free_hierarchy
        transform = h.transform(weaker, stronger)
        rng = random.Random(7)
        for seed in range(10):
            pattern = FailurePattern.random(h.system, rng, max_crash_time=20)
            for value in h.specs[stronger].legal_stable_values(pattern):
                mapped = transform(value)
                assert h.specs[weaker].is_legal_stable_value(
                    pattern, mapped
                ), (
                    f"{stronger}={value!r} mapped to illegal "
                    f"{weaker}={mapped!r} for correct="
                    f"{sorted(pattern.correct)}"
                )

    def test_f_resilient_transforms(self, e2_hierarchy):
        h = e2_hierarchy
        transform = h.transform("Υf", "Ωf")
        rng = random.Random(3)
        for seed in range(5):
            pattern = h.env.random_pattern(rng)
            for value in h.specs["Ωf"].legal_stable_values(pattern):
                assert h.specs["Υf"].is_legal_stable_value(
                    pattern, transform(value)
                )

    def test_transform_history(self, wait_free_hierarchy):
        h = wait_free_hierarchy
        pattern = FailurePattern.crash_at(h.system, {0: 5})
        rng = random.Random(1)
        strong = h.specs["Ω"].sample_history(pattern, rng,
                                             stabilization_time=10)
        weak = h.transform_history("Υ", "Ω", strong)
        stable = weak.value(1, 10**6)
        assert h.specs["Υ"].is_legal_stable_value(pattern, stable)

    def test_non_constructive_path_rejected(self, wait_free_hierarchy):
        with pytest.raises(ValueError, match="no constructive reduction"):
            wait_free_hierarchy.transform("anti-Ω", "Υ")

    def test_dummy_transform_is_constant(self, wait_free_hierarchy):
        transform = wait_free_hierarchy.transform("dummy", "anti-Ω")
        assert transform(0) == transform(3) == "d"
