"""Cross-checks: the independent run-axiom validator over every protocol
family, and hierarchy strictness at the environment boundaries."""

import random

import pytest

from repro.analysis import validate_simulation
from repro.core import (
    DetectorHierarchy,
    PhiMap,
    make_extraction_protocol,
    make_upsilon_f_set_agreement,
)
from repro.detectors import OmegaSpec, UpsilonFSpec
from repro.failures import Environment, FailurePattern
from repro.messaging import AbdRegisters, Network
from repro.runtime import Decide, RandomScheduler, Simulation, System


class TestValidatorOverAllProtocolFamilies:
    @pytest.mark.parametrize("seed", range(3))
    def test_fig2_runs_satisfy_axioms(self, system4, seed):
        f = 2
        env = Environment(system4, f)
        spec = UpsilonFSpec(env)
        rng = random.Random(f"vf2:{seed}")
        pattern = env.random_pattern(rng, max_crash_time=40)
        history = spec.sample_history(pattern, rng, stabilization_time=60)
        sim = Simulation(system4, make_upsilon_f_set_agreement(f),
                         inputs={p: f"v{p}" for p in system4.pids},
                         pattern=pattern, history=history)
        sim.run_until(Simulation.all_correct_decided, 1_000_000,
                      RandomScheduler(seed))
        assert validate_simulation(sim) == []

    def test_extraction_run_satisfies_axioms(self, system4):
        env = Environment.wait_free(system4)
        spec = OmegaSpec(system4)
        rng = random.Random(8)
        pattern = FailurePattern.crash_at(system4, {1: 20})
        history = spec.sample_history(pattern, rng, stabilization_time=40)
        sim = Simulation(system4, make_extraction_protocol(PhiMap(spec, env)),
                         inputs={}, pattern=pattern, history=history)
        sim.run(max_steps=20_000, scheduler=RandomScheduler(8))
        assert validate_simulation(sim) == []

    def test_messaging_run_satisfies_axioms(self, system3):
        """Messaging steps are outside the register replay but must not
        trip R1/R3 and coexist with register traffic."""
        def protocol(ctx, _):
            abd = AbdRegisters(ctx)
            yield from abd.write("x", ctx.pid)
            got = yield from abd.read("x")
            yield Decide(got)
            yield from abd.serve()

        net = Network(system3, seed=3, max_delay=2)
        pattern = FailurePattern.crash_at(system3, {2: 500})
        sim = Simulation(system3, protocol,
                         inputs={p: None for p in system3.pids},
                         pattern=pattern, network=net)
        sim.run(max_steps=100_000, scheduler=RandomScheduler(3),
                stop_when=Simulation.all_correct_decided)
        assert sim.all_correct_decided()
        assert validate_simulation(sim) == []

    def test_fairness_window_accepts_fair_protocol_run(self, system3):
        from repro.core import make_upsilon_set_agreement
        from repro.detectors import UpsilonSpec
        from repro.runtime import RoundRobinScheduler

        spec = UpsilonSpec(system3)
        pattern = FailurePattern.failure_free(system3)
        history = spec.sample_history(pattern, random.Random(1),
                                      stabilization_time=0)
        sim = Simulation(system3, make_upsilon_set_agreement(),
                         inputs={p: f"v{p}" for p in system3.pids},
                         pattern=pattern, history=history)
        sim.run_until(Simulation.all_correct_decided, 100_000,
                      RoundRobinScheduler())
        # Lockstep: nobody ever starves past a 2·(n+1) window.
        assert validate_simulation(sim, fairness_window=8) == []


class TestHierarchyEnvironmentBoundaries:
    def test_e1_upsilon_f_not_strictly_weaker(self):
        """Theorem 5 needs f ≥ 2; in E₁ the Υf ≤ Ωf edge is recorded as
        non-strict (indeed Υ¹ → Ω exists, Sect. 5.3)."""
        system = System(4)
        hierarchy = DetectorHierarchy(Environment(system, 1))
        assert hierarchy.weaker_than("Υf", "Ωf")
        assert not hierarchy.strictly_weaker("Υf", "Ωf")

    def test_e2_is_strict(self):
        system = System(4)
        hierarchy = DetectorHierarchy(Environment(system, 2))
        assert hierarchy.strictly_weaker("Υf", "Ωf")

    def test_two_process_upsilon_omega_not_strict(self):
        """n = 1: Υ ≡ Ω (Sect. 4) — the Υ ≤ Ωn edge must be non-strict."""
        system = System(2)
        hierarchy = DetectorHierarchy(Environment.wait_free(system))
        assert hierarchy.weaker_than("Υ", "Ωn")
        assert not hierarchy.strictly_weaker("Υ", "Ωn")
