# Developer entry points.  Everything runs from a source checkout with
# PYTHONPATH=src — no install step required.

PYTHON ?= python
PYTHONPATH := src
export PYTHONPATH

AUDIT_BUDGET ?= 2000
AUDIT_SEED ?= 7
AUDIT_JOBS ?= 0
AUDIT_REPORT ?= audit-report.json

.PHONY: test bench audit audit-smoke

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks/ -q

# Full differential audit.  Exit code contract: 0 = every trial-pair
# agreed, 4 = an equivalence broke (report path is printed).
audit:
	$(PYTHON) -m repro audit --budget $(AUDIT_BUDGET) --seed $(AUDIT_SEED) \
		--jobs $(AUDIT_JOBS) --report $(AUDIT_REPORT)

# The small fixed-seed slice CI runs: a clean pass over every pair, then
# a sabotaged run that must exit exactly 4.
audit-smoke:
	$(PYTHON) -m repro audit --budget 40 --seed 7 --jobs 2 \
		--report /tmp/audit-smoke-report.json
	code=0; $(PYTHON) -m repro audit --budget 2 --seed 7 --pairs substrate \
		--sabotage abd-ack --report /tmp/audit-sabotaged-report.json \
		|| code=$$?; test "$$code" -eq 4
