"""ABD — atomic registers over asynchronous messages (Attiya–Bar-Noy–Dolev).

Discharges the paper's shared-memory assumption for the f-resilient case:
with ``f < (n+1)/2`` crashes, multi-writer multi-reader atomic registers
are implementable over an asynchronous reliable network, so Υf-based
f-set agreement (Fig. 2) — and anything else built from registers — runs
in message-passing systems too.  With ``f ≥ (n+1)/2`` the emulation
*cannot* be live (quorums may die); the tests exhibit that as well.

Protocol (multi-writer variant; quorum = majority):

* every process maintains, per register key, a local replica
  ``(tag, value)`` with ``tag = (timestamp, writer-pid)``, and *serves*
  incoming requests (replies to reads, adopts fresher writes);
* ``read(key)``: broadcast a read request, await replies from a quorum,
  pick the replica with the largest tag, then **write back** that tag to a
  quorum (the write-back is what makes concurrent reads linearizable);
* ``write(key, v)``: query a quorum for the largest tag, broadcast
  ``(tag + 1, own pid, v)``, await a quorum of acks.

Every ``Broadcast``/``Receive`` is one atomic step of the simulation; the
await loops serve foreign requests while waiting, so a process blocked in
its own operation never blocks anybody else's quorum.  A process that has
finished its protocol work must keep serving (:meth:`AbdRegisters.serve`)
— quorum liveness counts *serving* processes, and the model's correct
processes take steps forever.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Optional, Tuple

from ..runtime.ops import BOT, Broadcast, Receive, Send
from ..runtime.process import ProcessContext

#: A replica tag: (timestamp, writer pid) — totally ordered.
Tag = Tuple[int, int]

_ZERO_TAG: Tag = (0, -1)


class AbdRegisters:
    """Per-process ABD endpoint: replica store + client operations.

    One instance per process; instances of different processes interact
    only through the network.  ``quorum`` defaults to a majority of the
    system.
    """

    def __init__(self, ctx: ProcessContext, quorum: Optional[int] = None):
        self.ctx = ctx
        n_procs = ctx.system.n_processes
        self.quorum = quorum if quorum is not None else n_procs // 2 + 1
        if not 1 <= self.quorum <= n_procs:
            raise ValueError(f"quorum {self.quorum} outside 1..{n_procs}")
        self._replica: Dict[Hashable, Tuple[Tag, Any]] = {}
        self._next_rid = 0
        self.ops_completed = 0

    # -- the server half ------------------------------------------------------

    def _local(self, key: Hashable) -> Tuple[Tag, Any]:
        return self._replica.get(key, (_ZERO_TAG, BOT))

    def _adopt(self, key: Hashable, tag: Tag, value: Any) -> None:
        if tag > self._local(key)[0]:
            self._replica[key] = (tag, value)

    def handle(self, sender: int, payload: Any):
        """Serve one incoming request; yields the reply ``Send`` if any.

        Recognized requests (others are ignored — they are some other
        component's traffic):

        * ``("abd-read", rid, key)`` → reply ``("abd-read-ack", rid, key,
          tag, value)``;
        * ``("abd-write", rid, key, tag, value)`` → adopt if fresher,
          reply ``("abd-write-ack", rid, key)``.
        """
        if not isinstance(payload, tuple) or not payload:
            return
        kind = payload[0]
        if kind == "abd-read":
            _, rid, key = payload
            tag, value = self._local(key)
            yield Send(sender, ("abd-read-ack", rid, key, tag, value))
        elif kind == "abd-write":
            _, rid, key, tag, value = payload
            self._adopt(key, tag, value)
            yield Send(sender, ("abd-write-ack", rid, key))

    def serve_batch(self, messages):
        """Serve a whole ``Receive`` result; returns the acks addressed to
        *this* process's own pending operation (for the await loops)."""
        own_acks = []
        for sender, payload in messages:
            if isinstance(payload, tuple) and payload and payload[0] in (
                "abd-read-ack", "abd-write-ack"
            ):
                own_acks.append(payload)
                continue
            yield from self.handle(sender, payload)
        return own_acks

    def serve(self):
        """Serve forever — run this after the protocol's real work ends."""
        while True:
            messages = yield Receive()
            yield from self.serve_batch(messages)

    # -- the client half -------------------------------------------------------

    def _rid(self) -> tuple:
        self._next_rid += 1
        return (self.ctx.pid, self._next_rid)

    def _await_acks(self, kind: str, rid, needed: int):
        """Drain mailboxes (serving as we go) until ``needed`` matching
        acks for request ``rid`` arrived."""
        acks = []
        while len(acks) < needed:
            messages = yield Receive()
            own = yield from self.serve_batch(messages)
            for payload in own:
                if payload[0] == kind and payload[1] == rid:
                    acks.append(payload)
        return acks

    def _query_phase(self, key: Hashable):
        """Phase 1 of both operations: learn a quorum's largest replica."""
        rid = self._rid()
        yield Broadcast(("abd-read", rid, key))
        acks = yield from self._await_acks("abd-read-ack", rid, self.quorum)
        best_tag, best_value = _ZERO_TAG, BOT
        for (_, _, _, tag, value) in acks:
            if tuple(tag) > tuple(best_tag):
                best_tag, best_value = tag, value
        return best_tag, best_value

    def _store_phase(self, key: Hashable, tag: Tag, value: Any):
        """Phase 2: install (tag, value) at a quorum."""
        self._adopt(key, tag, value)
        rid = self._rid()
        yield Broadcast(("abd-write", rid, key, tag, value))
        yield from self._await_acks("abd-write-ack", rid, self.quorum)

    def read(self, key: Hashable):
        """Linearizable read: query phase + write-back phase."""
        tag, value = yield from self._query_phase(key)
        yield from self._store_phase(key, tag, value)
        self.ops_completed += 1
        return value

    def write(self, key: Hashable, value: Any):
        """Linearizable write: query phase + higher-tag store phase."""
        (timestamp, _), _ = yield from self._query_phase(key)
        yield from self._store_phase(key, (timestamp + 1, self.ctx.pid), value)
        self.ops_completed += 1


def abd_snapshot_api(abd: AbdRegisters, name: Hashable, n_cells: int):
    """An atomic snapshot over ABD registers.

    Plugs the quorum read/write into the Afek-et-al. construction: the
    result is an atomic snapshot — hence k-converge, hence everything the
    paper builds — running over pure message passing.
    """
    from ..memory.snapshot import RegisterSnapshotAPI

    return RegisterSnapshotAPI(
        name, n_cells, read_cell=abd.read, write_cell=abd.write
    )
