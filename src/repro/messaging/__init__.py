"""Message-passing substrate: asynchronous network + ABD register emulation."""

from .abd import AbdRegisters, abd_snapshot_api
from .network import Network

__all__ = ["AbdRegisters", "Network", "abd_snapshot_api"]
