"""Asynchronous message-passing network model.

The paper's model is shared memory; this substrate exists to *discharge
its assumption*: atomic registers are implementable over asynchronous
messages when fewer than a majority of processes crash (Attiya–Bar-Noy–
Dolev, :mod:`repro.messaging.abd`), so every ``E_f`` result with
``f < (n+1)/2`` transfers to message passing.

The network is asynchronous but reliable: every sent message is delivered
after a finite, adversary/seed-chosen delay (messages are never lost, not
even those sent by processes that later crash — the standard model).
Delays are drawn deterministically from the seed; per-channel FIFO order
is preserved by construction.
"""

from __future__ import annotations

import dataclasses
import heapq
import itertools
import random
from typing import Any, List, Tuple

from ..obs.events import MessageDelivered, MessageSent
from ..runtime.process import System


@dataclasses.dataclass(order=True)
class _InFlight:
    deliver_at: int
    sequence: int              # tie-break: preserves send order
    sender: int = dataclasses.field(compare=False)
    payload: Any = dataclasses.field(compare=False)
    sent_at: int = dataclasses.field(compare=False, default=0)


class Network:
    """Mailboxes with seeded, bounded, per-channel-monotone delays.

    Parameters
    ----------
    system:
        The process universe.
    seed:
        Drives the delay draws; same seed = same delivery schedule.
    max_delay:
        Extra delay beyond the minimum of 1 step, drawn uniformly from
        ``0..max_delay`` per message.  0 = prompt delivery.
    """

    def __init__(self, system: System, seed: int = 0, max_delay: int = 0):
        self.system = system
        self.max_delay = max_delay
        self._rng = random.Random(seed)
        self._mailboxes: List[List[_InFlight]] = [
            [] for _ in system.pids
        ]
        self._sequence = itertools.count()
        # per-channel monotone delivery (FIFO links):
        self._last_delivery: dict[Tuple[int, int], int] = {}
        self.sent_count = 0
        self.delivered_count = 0
        #: Optional :class:`~repro.obs.events.EventBus`; the simulation
        #: attaches its own bus here so sends/deliveries are published.
        self.bus = None

    def send(
        self, sender: int, dest: int, payload: Any, now: int,
        extra_delay: int = 0,
    ) -> None:
        """Enqueue a message; it becomes receivable at its delivery time.

        ``extra_delay`` adds deterministic steps on top of the seeded
        draw — the hook :class:`repro.chaos.network.FaultyNetwork` uses
        for reorder jitter (extra delay is always safe in an asynchronous
        model, so the base network accepts it unconditionally).
        """
        self.system.validate_pid(dest)
        deliver_at = now + 1 + extra_delay + self._rng.randint(0, self.max_delay)
        floor = self._last_delivery.get((sender, dest), 0)
        deliver_at = max(deliver_at, floor)  # FIFO per channel
        self._last_delivery[(sender, dest)] = deliver_at
        heapq.heappush(
            self._mailboxes[dest],
            _InFlight(deliver_at, next(self._sequence), sender, payload, now),
        )
        self.sent_count += 1
        bus = self.bus
        if bus is not None and bus.active:
            bus.publish(MessageSent(now, sender, dest, deliver_at))

    def broadcast(self, sender: int, payload: Any, now: int) -> None:
        """Send to every process, the sender included."""
        for dest in self.system.pids:
            self.send(sender, dest, payload, now)

    def deliver(self, dest: int, now: int) -> tuple:
        """Drain all messages for ``dest`` whose delivery time has come."""
        mailbox = self._mailboxes[dest]
        bus = self.bus
        publish = bus is not None and bus.active
        out = []
        while mailbox and mailbox[0].deliver_at <= now:
            message = heapq.heappop(mailbox)
            out.append((message.sender, message.payload))
            if publish:
                bus.publish(
                    MessageDelivered(
                        now, dest, message.sender, now - message.sent_at
                    )
                )
        self.delivered_count += len(out)
        return tuple(out)

    def pending(self, dest: int) -> int:
        """Messages queued for ``dest`` (delivered or not) — analysis."""
        return len(self._mailboxes[dest])
