"""Atomic snapshots (Afek et al. [1]) — primitive and register-based.

The protocols of Sect. 5 use atomic snapshot objects; the paper notes that
"atomic snapshots can be implemented in an asynchronous system using
registers [1]".  We provide both:

* :class:`PrimitiveSnapshotAPI` — drives the one-step-per-operation
  :class:`~repro.memory.base.PrimitiveSnapshot` object.  Linearizable by
  construction; cheap; the default for experiments.

* :class:`RegisterSnapshotAPI` — the wait-free construction of Afek,
  Attiya, Dolev, Gafni, Merritt and Shavit from single-writer registers
  (the unbounded-sequence-number variant).  Using it makes every run
  register-only, matching the paper's "weakest shared memory model".

Both expose the same generator-subroutine interface::

    yield from api.update(my_pid, value)
    view = yield from api.scan()

``view`` is a tuple of length ``n + 1`` with ``BOT`` in never-updated
positions.  Any two views returned by ``scan`` are related by containment
(position-wise, one is at least as recent as the other) — the property the
Fig. 2 termination argument relies on.

Register-based construction
---------------------------

Each position ``i`` is a single-writer register ``(name, i)`` holding
``(seq, value, embedded_view)``:

* ``update(i, v)``: perform a ``scan`` (the *embedded* scan), then write
  ``(seq + 1, v, that_scan)``.
* ``scan()``: repeatedly double-collect all positions.  If two successive
  collects are identical (same sequence numbers everywhere), the second
  collect is a linearizable view (it was simultaneously valid).  Otherwise
  some position moved; a scanner that observes the *same* position move
  twice borrows that position's embedded view — that view was taken
  entirely inside the scanner's interval, hence is linearizable for it too.

Wait-freedom: after ``n + 2`` failed double collects some single position
has moved twice (pigeonhole), so a scan costs ``O(n^2)`` steps.
"""

from __future__ import annotations

from typing import Any, Hashable, List, Optional, Tuple

from ..runtime.ops import BOT, Read, SnapshotScan, SnapshotUpdate, Write


class SnapshotAPI:
    """Interface shared by both snapshot implementations."""

    def update(self, index: int, value: Any):
        raise NotImplementedError

    def scan(self):
        raise NotImplementedError


class PrimitiveSnapshotAPI(SnapshotAPI):
    """Snapshot via the primitive atomic object (1 step per operation)."""

    def __init__(self, key: Hashable, n_cells: int):
        self.key = key
        self.n_cells = n_cells

    def update(self, index: int, value: Any):
        yield SnapshotUpdate(self.key, index, value)

    def scan(self):
        view = yield SnapshotScan(self.key)
        return view


#: A register-based snapshot cell: (sequence number, value, embedded view).
_Cell = Tuple[int, Any, Optional[tuple]]

_EMPTY_CELL: _Cell = (0, BOT, None)


class RegisterSnapshotAPI(SnapshotAPI):
    """Afek-et-al. wait-free snapshot from single-writer registers.

    One instance is *per process per object*: it caches the process's own
    sequence number.  Different processes share the object through the
    common ``name``.

    The construction is generic in its base registers: ``read_cell`` /
    ``write_cell`` are generator subroutines defaulting to primitive
    ``Read``/``Write`` steps.  Passing ABD quorum reads/writes
    (:mod:`repro.messaging.abd`) instead yields an atomic snapshot — and
    hence k-converge and everything above it — over message passing.
    """

    def __init__(
        self,
        name: Hashable,
        n_cells: int,
        read_cell=None,
        write_cell=None,
    ):
        self.name = name
        self.n_cells = n_cells
        self._my_seq = 0
        self._read_cell = read_cell or self._primitive_read
        self._write_cell = write_cell or self._primitive_write

    @staticmethod
    def _primitive_read(key):
        value = yield Read(key)
        return value

    @staticmethod
    def _primitive_write(key, value):
        yield Write(key, value)

    def _key(self, index: int) -> tuple:
        return (self.name, "snapcell", index)

    def _collect(self):
        cells: List[_Cell] = []
        for i in range(self.n_cells):
            raw = yield from self._read_cell(self._key(i))
            cells.append(_EMPTY_CELL if raw is BOT else raw)
        return cells

    @staticmethod
    def _values(cells: List[_Cell]) -> tuple:
        return tuple(c[1] for c in cells)

    def scan(self):
        moved: set[int] = set()
        previous = yield from self._collect()
        while True:
            current = yield from self._collect()
            if all(previous[i][0] == current[i][0] for i in range(self.n_cells)):
                return self._values(current)
            for i in range(self.n_cells):
                if previous[i][0] != current[i][0]:
                    if i in moved:
                        # Position i moved twice during this scan: its
                        # latest embedded view was taken entirely within
                        # our interval — borrow it.
                        embedded = current[i][2]
                        assert embedded is not None, (
                            "a moved cell always carries an embedded view"
                        )
                        return embedded
                    moved.add(i)
            previous = current

    def update(self, index: int, value: Any):
        embedded = yield from self.scan()
        self._my_seq += 1
        yield from self._write_cell(
            self._key(index), (self._my_seq, value, embedded)
        )


def make_snapshot_api(
    name: Hashable, n_cells: int, register_based: bool
) -> SnapshotAPI:
    """Factory selecting the snapshot implementation for a protocol run."""
    if register_based:
        return RegisterSnapshotAPI(name, n_cells)
    return PrimitiveSnapshotAPI(name, n_cells)


def nonbot_count(view: tuple) -> int:
    """Number of non-``⊥`` positions in a view (Fig. 2, line 19)."""
    return sum(1 for v in view if v is not BOT)


def nonbot_values(view: tuple) -> list:
    """The non-``⊥`` values of a view, in position order."""
    return [v for v in view if v is not BOT]
