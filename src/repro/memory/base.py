"""Shared-object framework.

The paper's processes communicate by applying atomic operations to shared
objects (Sect. 3.1).  :class:`Memory` is the collection of shared objects of
one run: it owns the initial memory state, creates objects lazily on first
use (protocols with unbounded round structure address fresh registers every
round), and dispatches the operations of :mod:`repro.runtime.ops` to them.

Atomicity is by construction: the simulation executes exactly one operation
per global time step, so every operation is trivially linearizable at its
step's time.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Tuple

from ..obs.events import MemoryOp
from ..runtime.errors import MemoryError_
from ..runtime.ops import (
    BOT,
    ConsensusPropose,
    ImmediateWriteScan,
    Operation,
    Read,
    SnapshotScan,
    SnapshotUpdate,
    Write,
)
from ..runtime.process import System


class SharedObject:
    """Base class for atomic shared objects."""

    def describe(self) -> str:
        return type(self).__name__


class AtomicRegister(SharedObject):
    """A multi-writer multi-reader atomic read/write register."""

    __slots__ = ("value", "write_count")

    def __init__(self, initial: Any = BOT):
        self.value = initial
        self.write_count = 0

    def read(self) -> Any:
        return self.value

    def write(self, value: Any) -> None:
        self.value = value
        self.write_count += 1

    def check_writer(self, pid: int) -> None:  # MWMR: anyone may write
        pass


class SWMRRegister(AtomicRegister):
    """A single-writer multi-reader register.

    The base-register constructions of the literature (Afek et al.'s
    snapshots, the immediate-snapshot levels) only need SWMR registers;
    declaring a register single-writer makes the discipline machine-checked
    rather than by-convention.
    """

    __slots__ = ("writer",)

    def __init__(self, writer: int, initial: Any = BOT):
        super().__init__(initial)
        self.writer = writer

    def check_writer(self, pid: int) -> None:
        if pid != self.writer:
            raise MemoryError_(
                f"process {pid} wrote a single-writer register owned by "
                f"{self.writer}"
            )


class PrimitiveSnapshot(SharedObject):
    """An atomic-snapshot object as a primitive (one step per operation).

    The object has one position per process (Sect. 5.3): ``update(i, v)``
    writes ``v`` to position ``i`` and ``snapshot()`` atomically returns all
    positions.  Because the simulation serializes steps, the containment
    property of [1] (any two snapshots are ``⊆``-comparable) holds trivially.

    The register-based wait-free construction (used when a run must be
    register-only) lives in :mod:`repro.memory.snapshot`.
    """

    __slots__ = ("cells", "update_count")

    def __init__(self, n_cells: int):
        self.cells = [BOT] * n_cells
        self.update_count = 0

    def update(self, index: int, value: Any) -> None:
        if not 0 <= index < len(self.cells):
            raise MemoryError_(f"snapshot index {index} out of range")
        self.cells[index] = value
        self.update_count += 1

    def scan(self) -> tuple:
        return tuple(self.cells)


class ConsensusObject(SharedObject):
    """An ``m``-process consensus object (Sect. 1, Corollary 4).

    ``propose(v)`` returns the first value ever proposed.  The object may be
    accessed by at most ``m`` *distinct* processes over its lifetime;
    an access by an ``m+1``-st process raises, which is how the type
    discipline of "solving n+1-process consensus using n-process consensus
    objects" is enforced in :mod:`repro.core.boosting`.
    """

    __slots__ = ("m", "decision", "decided", "accessors")

    def __init__(self, m: int):
        if m < 1:
            raise MemoryError_("consensus object needs m >= 1")
        self.m = m
        self.decision: Any = None
        self.decided = False
        self.accessors: set[int] = set()

    def propose(self, pid: int, value: Any) -> Any:
        self.accessors.add(pid)
        if len(self.accessors) > self.m:
            raise MemoryError_(
                f"{len(self.accessors)} distinct processes accessed an "
                f"{self.m}-process consensus object"
            )
        if not self.decided:
            self.decided = True
            self.decision = value
        return self.decision


class Memory:
    """All shared objects of one run, with lazy creation and dispatch."""

    def __init__(self, system: System, default_consensus_m: int | None = None):
        self.system = system
        self._objects: Dict[Hashable, SharedObject] = {}
        self._default_consensus_m = (
            system.n_processes if default_consensus_m is None else default_consensus_m
        )
        self.op_count = 0
        #: Optional :class:`~repro.obs.events.EventBus`; the simulation
        #: attaches its own bus here so every dispatched operation is
        #: published as a :class:`~repro.obs.events.MemoryOp` event.
        self.bus = None

    # -- explicit creation -------------------------------------------------

    def create_register(self, key: Hashable, initial: Any = BOT) -> AtomicRegister:
        return self._create(key, AtomicRegister(initial))

    def create_swmr(self, key: Hashable, writer: int, initial: Any = BOT) -> "SWMRRegister":
        """Create a single-writer register owned by ``writer``."""
        return self._create(key, SWMRRegister(writer, initial))

    def create_snapshot(self, key: Hashable, n_cells: int | None = None) -> PrimitiveSnapshot:
        cells = self.system.n_processes if n_cells is None else n_cells
        return self._create(key, PrimitiveSnapshot(cells))

    def create_consensus(self, key: Hashable, m: int) -> ConsensusObject:
        return self._create(key, ConsensusObject(m))

    def _create(self, key: Hashable, obj: SharedObject) -> Any:
        if key in self._objects:
            raise MemoryError_(f"object {key!r} already exists")
        self._objects[key] = obj
        return obj

    # -- lookup ------------------------------------------------------------

    def get(self, key: Hashable) -> SharedObject | None:
        """Peek at an object without creating it (testing/analysis only)."""
        return self._objects.get(key)

    def keys(self) -> Tuple[Hashable, ...]:
        """The keys of every object created so far (read-only snapshot).

        Analysis code that needs to walk the footprint of a run (e.g. the
        round counter of :func:`repro.analysis.runner.max_round_reached`)
        should use this instead of reaching into private state.
        """
        return tuple(self._objects)

    def peek_register(self, key: Hashable) -> Any:
        """Read a register's value outside the run (analysis only)."""
        obj = self._objects.get(key)
        if obj is None:
            return BOT
        if not isinstance(obj, AtomicRegister):
            raise MemoryError_(f"{key!r} is a {obj.describe()}, not a register")
        return obj.value

    def __len__(self) -> int:
        return len(self._objects)

    def _lookup(self, key: Hashable, expected: type, factory) -> SharedObject:
        obj = self._objects.get(key)
        if obj is None:
            obj = factory()
            self._objects[key] = obj
        elif not isinstance(obj, expected):
            raise MemoryError_(
                f"operation expects {expected.__name__} at {key!r}, "
                f"found {obj.describe()}"
            )
        return obj

    # -- dispatch ----------------------------------------------------------
    #
    # ``execute`` is on the engine's hot path (one call per shared-object
    # step), so operations dispatch through a per-type table instead of an
    # ``isinstance`` chain.  Unknown concrete types fall back to an MRO walk
    # once and are then memoized, so ``Operation`` subclasses keep working.

    def _exec_read(self, op: Read, pid: int) -> Any:
        return self._lookup(op.key, AtomicRegister, AtomicRegister).read()

    def _exec_write(self, op: Write, pid: int) -> None:
        reg = self._lookup(op.key, AtomicRegister, AtomicRegister)
        reg.check_writer(pid)
        reg.write(op.value)
        return None

    def _exec_snapshot_update(self, op: SnapshotUpdate, pid: int) -> None:
        snap = self._lookup(
            op.key,
            PrimitiveSnapshot,
            lambda: PrimitiveSnapshot(self.system.n_processes),
        )
        snap.update(op.index, op.value)
        return None

    def _exec_snapshot_scan(self, op: SnapshotScan, pid: int) -> tuple:
        snap = self._lookup(
            op.key,
            PrimitiveSnapshot,
            lambda: PrimitiveSnapshot(self.system.n_processes),
        )
        return snap.scan()

    def _exec_immediate(self, op: ImmediateWriteScan, pid: int) -> Any:
        from .immediate import ImmediateSnapshotObject

        obj = self._lookup(
            op.key,
            ImmediateSnapshotObject,
            lambda: ImmediateSnapshotObject(self.system.n_processes),
        )
        return obj.write_and_scan(op.index, op.value)

    def _exec_consensus(self, op: ConsensusPropose, pid: int) -> Any:
        cons = self._lookup(
            op.key,
            ConsensusObject,
            lambda: ConsensusObject(self._default_consensus_m),
        )
        return cons.propose(pid, op.value)

    _HANDLERS = {
        Read: _exec_read,
        Write: _exec_write,
        SnapshotUpdate: _exec_snapshot_update,
        SnapshotScan: _exec_snapshot_scan,
        ImmediateWriteScan: _exec_immediate,
        ConsensusPropose: _exec_consensus,
    }

    def execute(self, op: Operation, pid: int) -> Any:
        """Apply one shared-object operation; returns its response."""
        self.op_count += 1
        bus = self.bus
        if bus is not None and bus.active:
            bus.publish(
                MemoryOp(-1, pid, type(op).__name__, getattr(op, "key", None))
            )
        handlers = self._HANDLERS
        handler = handlers.get(type(op))
        if handler is None:
            for base in type(op).__mro__[1:]:
                handler = handlers.get(base)
                if handler is not None:
                    handlers[type(op)] = handler  # memoize the subclass
                    break
            else:
                raise MemoryError_(f"not a shared-object operation: {op!r}")
        return handler(self, op, pid)
