"""Shared-object framework.

The paper's processes communicate by applying atomic operations to shared
objects (Sect. 3.1).  :class:`Memory` is the collection of shared objects of
one run: it owns the initial memory state, creates objects lazily on first
use (protocols with unbounded round structure address fresh registers every
round), and dispatches the operations of :mod:`repro.runtime.ops` to them.

Atomicity is by construction: the simulation executes exactly one operation
per global time step, so every operation is trivially linearizable at its
step's time.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Tuple

from ..obs.events import MemoryOp
from ..runtime.errors import MemoryError_
from ..runtime.ops import (
    BOT,
    ConsensusPropose,
    ImmediateWriteScan,
    Operation,
    Read,
    SnapshotScan,
    SnapshotUpdate,
    Write,
)
from ..runtime.process import System


class SharedObject:
    """Base class for atomic shared objects."""

    def describe(self) -> str:
        return type(self).__name__

    # -- checkpoint support -------------------------------------------------
    #
    # ``undo_state`` / ``restore_state`` give the model checker's memory
    # journal an O(object) snapshot of the mutable fields, so backtracking
    # can restore a checkpoint instead of replaying the run prefix.  Only
    # objects implementing both can be journaled; the journal raises for
    # anything else (mirroring the fingerprint encodability contract).

    def undo_state(self) -> Any:
        raise MemoryError_(
            f"{self.describe()} does not support checkpoint/undo"
        )

    def restore_state(self, state: Any) -> None:
        raise MemoryError_(
            f"{self.describe()} does not support checkpoint/undo"
        )


class AtomicRegister(SharedObject):
    """A multi-writer multi-reader atomic read/write register."""

    __slots__ = ("value", "write_count")

    def __init__(self, initial: Any = BOT):
        self.value = initial
        self.write_count = 0

    def read(self) -> Any:
        return self.value

    def write(self, value: Any) -> None:
        self.value = value
        self.write_count += 1

    def check_writer(self, pid: int) -> None:  # MWMR: anyone may write
        pass

    def undo_state(self) -> Any:
        return (self.value, self.write_count)

    def restore_state(self, state: Any) -> None:
        self.value, self.write_count = state


class SWMRRegister(AtomicRegister):
    """A single-writer multi-reader register.

    The base-register constructions of the literature (Afek et al.'s
    snapshots, the immediate-snapshot levels) only need SWMR registers;
    declaring a register single-writer makes the discipline machine-checked
    rather than by-convention.
    """

    __slots__ = ("writer",)

    def __init__(self, writer: int, initial: Any = BOT):
        super().__init__(initial)
        self.writer = writer

    def check_writer(self, pid: int) -> None:
        if pid != self.writer:
            raise MemoryError_(
                f"process {pid} wrote a single-writer register owned by "
                f"{self.writer}"
            )


class PrimitiveSnapshot(SharedObject):
    """An atomic-snapshot object as a primitive (one step per operation).

    The object has one position per process (Sect. 5.3): ``update(i, v)``
    writes ``v`` to position ``i`` and ``snapshot()`` atomically returns all
    positions.  Because the simulation serializes steps, the containment
    property of [1] (any two snapshots are ``⊆``-comparable) holds trivially.

    The register-based wait-free construction (used when a run must be
    register-only) lives in :mod:`repro.memory.snapshot`.
    """

    __slots__ = ("cells", "update_count")

    def __init__(self, n_cells: int):
        self.cells = [BOT] * n_cells
        self.update_count = 0

    def update(self, index: int, value: Any) -> None:
        if not 0 <= index < len(self.cells):
            raise MemoryError_(f"snapshot index {index} out of range")
        self.cells[index] = value
        self.update_count += 1

    def scan(self) -> tuple:
        return tuple(self.cells)

    def undo_state(self) -> Any:
        return (tuple(self.cells), self.update_count)

    def restore_state(self, state: Any) -> None:
        cells, self.update_count = state
        self.cells = list(cells)


class ConsensusObject(SharedObject):
    """An ``m``-process consensus object (Sect. 1, Corollary 4).

    ``propose(v)`` returns the first value ever proposed.  The object may be
    accessed by at most ``m`` *distinct* processes over its lifetime;
    an access by an ``m+1``-st process raises, which is how the type
    discipline of "solving n+1-process consensus using n-process consensus
    objects" is enforced in :mod:`repro.core.boosting`.
    """

    __slots__ = ("m", "decision", "decided", "accessors")

    def __init__(self, m: int):
        if m < 1:
            raise MemoryError_("consensus object needs m >= 1")
        self.m = m
        self.decision: Any = None
        self.decided = False
        self.accessors: set[int] = set()

    def propose(self, pid: int, value: Any) -> Any:
        self.accessors.add(pid)
        if len(self.accessors) > self.m:
            raise MemoryError_(
                f"{len(self.accessors)} distinct processes accessed an "
                f"{self.m}-process consensus object"
            )
        if not self.decided:
            self.decided = True
            self.decision = value
        return self.decision

    def undo_state(self) -> Any:
        return (self.decision, self.decided, frozenset(self.accessors))

    def restore_state(self, state: Any) -> None:
        self.decision, self.decided, accessors = state
        self.accessors = set(accessors)


#: Operations that never change object state.  Anything else dispatched to
#: the memory is journaled conservatively as a mutation (restoring an
#: unchanged state is harmless; missing a change would corrupt restores).
_READ_ONLY_OPS = frozenset({Read, SnapshotScan})

#: Sentinel undo entry: the operation created the object, so the undo is
#: deleting it.
_CREATED = object()


class MemoryJournal:
    """Reverse-delta undo log over one :class:`Memory`.

    The model checker's checkpointed backtracking attaches one of these
    (``memory.attach_journal``).  Every operation that creates or mutates
    a shared object first appends a reverse delta — copy-on-write over
    the object table, scoped to exactly the keys a step touched.
    ``mark()`` is an O(1) checkpoint token; ``undo_to(mark)`` walks the
    deltas backwards, restoring object states and deleting objects that
    were created after the mark.

    ``on_touch(key)`` (when set) fires after any forward change or undo
    of ``key`` — the incremental fingerprint subscribes to invalidate
    just that key's cached canonical fragment.
    """

    __slots__ = ("memory", "on_touch", "_log")

    def __init__(self, memory: "Memory"):
        self.memory = memory
        self.on_touch = None
        self._log: list = []

    def mark(self) -> int:
        return len(self._log)

    def record_and_execute(self, memory, handler, op, pid) -> Any:
        """Journal the pre-state of ``op``'s target, then run ``handler``.

        The delta is logged *before* execution so a handler that raises
        mid-mutation (e.g. a consensus access-limit breach after the
        accessor set grew) still restores cleanly.
        """
        key = getattr(op, "key", None)
        obj = memory._objects.get(key)
        if obj is None:
            self._log.append((key, _CREATED))
        elif op.__class__ not in _READ_ONLY_OPS:
            self._log.append((key, obj.undo_state()))
        else:
            return handler(memory, op, pid)
        try:
            return handler(memory, op, pid)
        finally:
            on_touch = self.on_touch
            if on_touch is not None:
                on_touch(key)

    def undo_to(self, mark: int) -> None:
        log = self._log
        objects = self.memory._objects
        on_touch = self.on_touch
        while len(log) > mark:
            key, state = log.pop()
            if state is _CREATED:
                objects.pop(key, None)
            else:
                objects[key].restore_state(state)
            if on_touch is not None:
                on_touch(key)


class Memory:
    """All shared objects of one run, with lazy creation and dispatch."""

    def __init__(self, system: System, default_consensus_m: int | None = None):
        self.system = system
        self._objects: Dict[Hashable, SharedObject] = {}
        self._default_consensus_m = (
            system.n_processes if default_consensus_m is None else default_consensus_m
        )
        self.op_count = 0
        #: Optional :class:`~repro.obs.events.EventBus`; the simulation
        #: attaches its own bus here so every dispatched operation is
        #: published as a :class:`~repro.obs.events.MemoryOp` event.
        self.bus = None
        #: Optional :class:`MemoryJournal`; costs one ``is None`` test per
        #: operation while detached.
        self._journal: MemoryJournal | None = None

    def attach_journal(self) -> MemoryJournal:
        """Create (or return) the undo journal for this memory."""
        if self._journal is None:
            self._journal = MemoryJournal(self)
        return self._journal

    # -- explicit creation -------------------------------------------------

    def create_register(self, key: Hashable, initial: Any = BOT) -> AtomicRegister:
        return self._create(key, AtomicRegister(initial))

    def create_swmr(self, key: Hashable, writer: int, initial: Any = BOT) -> "SWMRRegister":
        """Create a single-writer register owned by ``writer``."""
        return self._create(key, SWMRRegister(writer, initial))

    def create_snapshot(self, key: Hashable, n_cells: int | None = None) -> PrimitiveSnapshot:
        cells = self.system.n_processes if n_cells is None else n_cells
        return self._create(key, PrimitiveSnapshot(cells))

    def create_consensus(self, key: Hashable, m: int) -> ConsensusObject:
        return self._create(key, ConsensusObject(m))

    def _create(self, key: Hashable, obj: SharedObject) -> Any:
        if key in self._objects:
            raise MemoryError_(f"object {key!r} already exists")
        self._objects[key] = obj
        return obj

    # -- lookup ------------------------------------------------------------

    def get(self, key: Hashable) -> SharedObject | None:
        """Peek at an object without creating it (testing/analysis only)."""
        return self._objects.get(key)

    def keys(self) -> Tuple[Hashable, ...]:
        """The keys of every object created so far (read-only snapshot).

        Analysis code that needs to walk the footprint of a run (e.g. the
        round counter of :func:`repro.analysis.runner.max_round_reached`)
        should use this instead of reaching into private state.
        """
        return tuple(self._objects)

    def peek_register(self, key: Hashable) -> Any:
        """Read a register's value outside the run (analysis only)."""
        obj = self._objects.get(key)
        if obj is None:
            return BOT
        if not isinstance(obj, AtomicRegister):
            raise MemoryError_(f"{key!r} is a {obj.describe()}, not a register")
        return obj.value

    def __len__(self) -> int:
        return len(self._objects)

    def _lookup(self, key: Hashable, expected: type, factory) -> SharedObject:
        obj = self._objects.get(key)
        if obj is None:
            obj = factory()
            self._objects[key] = obj
        elif not isinstance(obj, expected):
            raise MemoryError_(
                f"operation expects {expected.__name__} at {key!r}, "
                f"found {obj.describe()}"
            )
        return obj

    # -- dispatch ----------------------------------------------------------
    #
    # ``execute`` is on the engine's hot path (one call per shared-object
    # step), so operations dispatch through a per-type table instead of an
    # ``isinstance`` chain.  Unknown concrete types fall back to an MRO walk
    # once and are then memoized, so ``Operation`` subclasses keep working.

    # Reads and writes are the bulk of every run's operation mix; both
    # inline ``_lookup``'s hit path (kept in sync with it) to spare the
    # call frame.

    def _exec_read(self, op: Read, pid: int) -> Any:
        reg = self._objects.get(op.key)
        if reg is None or not isinstance(reg, AtomicRegister):
            reg = self._lookup(op.key, AtomicRegister, AtomicRegister)
        return reg.read()

    def _exec_write(self, op: Write, pid: int) -> None:
        reg = self._objects.get(op.key)
        if reg is None or not isinstance(reg, AtomicRegister):
            reg = self._lookup(op.key, AtomicRegister, AtomicRegister)
        reg.check_writer(pid)
        reg.write(op.value)
        return None

    def _exec_snapshot_update(self, op: SnapshotUpdate, pid: int) -> None:
        snap = self._lookup(
            op.key,
            PrimitiveSnapshot,
            lambda: PrimitiveSnapshot(self.system.n_processes),
        )
        snap.update(op.index, op.value)
        return None

    def _exec_snapshot_scan(self, op: SnapshotScan, pid: int) -> tuple:
        snap = self._lookup(
            op.key,
            PrimitiveSnapshot,
            lambda: PrimitiveSnapshot(self.system.n_processes),
        )
        return snap.scan()

    def _exec_immediate(self, op: ImmediateWriteScan, pid: int) -> Any:
        from .immediate import ImmediateSnapshotObject

        obj = self._lookup(
            op.key,
            ImmediateSnapshotObject,
            lambda: ImmediateSnapshotObject(self.system.n_processes),
        )
        return obj.write_and_scan(op.index, op.value)

    def _exec_consensus(self, op: ConsensusPropose, pid: int) -> Any:
        cons = self._lookup(
            op.key,
            ConsensusObject,
            lambda: ConsensusObject(self._default_consensus_m),
        )
        return cons.propose(pid, op.value)

    #: Exact-type dispatch table.  Subclass resolution is precomputed at
    #: registration time (import, or :meth:`register_operation`) — never
    #: memoized from the hot path, which mutated class state from instance
    #: code and raced under the farm's threaded heartbeat.
    _HANDLERS = {
        Read: _exec_read,
        Write: _exec_write,
        SnapshotUpdate: _exec_snapshot_update,
        SnapshotScan: _exec_snapshot_scan,
        ImmediateWriteScan: _exec_immediate,
        ConsensusPropose: _exec_consensus,
    }

    @classmethod
    def register_operation(cls, op_type, handler=None) -> None:
        """Register ``handler`` for ``op_type`` (resolved from its bases
        when omitted) and re-precompute subclass dispatch."""
        from ..runtime.simulation import (
            _HANDLER_LOCK,
            precompute_op_handlers,
            resolve_op_handler,
        )

        with _HANDLER_LOCK:
            table = dict(cls._HANDLERS)
            if handler is None:
                handler = resolve_op_handler(table, op_type)
                if handler is None:
                    raise MemoryError_(
                        f"no handler registered for {op_type!r} or its bases"
                    )
            table[op_type] = handler
            precompute_op_handlers(table)
            cls._HANDLERS = table

    def execute(self, op: Operation, pid: int) -> Any:
        """Apply one shared-object operation; returns its response."""
        self.op_count += 1
        bus = self.bus
        if bus is not None and bus.active:
            try:
                key = op.key
            except AttributeError:  # exotic op without a key slot
                key = None
            event = MemoryOp(-1, pid, op.__class__.__name__, key)
            # Inline of ``EventBus.publish`` (kept in sync with it):
            # instrumented runs come through here about once per step.
            handler = bus._dispatch.get(MemoryOp)
            if handler is not None:
                handler(event)
            if bus._catch_all:
                for handler in bus._catch_all:
                    handler(event)
        handlers = self._HANDLERS
        handler = handlers.get(op.__class__)
        if handler is None:
            # Read-only MRO fallback for unregistered late subclasses.
            for base in op.__class__.__mro__[1:]:
                handler = handlers.get(base)
                if handler is not None:
                    break
            else:
                raise MemoryError_(f"not a shared-object operation: {op!r}")
        journal = self._journal
        if journal is None:
            return handler(self, op, pid)
        return journal.record_and_execute(self, handler, op, pid)
