"""One-shot immediate snapshots (Borowsky–Gafni [2]).

The topology-based impossibility proofs the paper builds on ([2, 14, 20])
work in the *iterated immediate snapshot* model.  A one-shot immediate
snapshot object supports a single ``write_and_scan(i, v)`` per process and
guarantees, writing ``V_p`` for the view returned to ``p``:

* **Self-inclusion** — ``p``'s own value is in ``V_p``;
* **Containment**    — all views are ``⊆``-comparable;
* **Immediacy**      — if ``p``'s value appears in ``V_q``, then
  ``V_p ⊆ V_q``.

Immediacy is what an atomic-snapshot ``update`` followed by a ``scan``
does **not** give (``p`` can land in ``q``'s view and then scan much
later, seeing strictly more; `tests/test_immediate.py` constructs the
counterexample schedule), and it is why the object needs either a
combined atomic step or the level-descent algorithm below.

Two implementations behind one generator API:

* :class:`PrimitiveImmediateAPI` — drives the one-step
  :class:`ImmediateSnapshotObject` primitive (every step is its own
  linearization block).
* :class:`LevelImmediateAPI` — the Borowsky–Gafni wait-free construction
  from single-writer registers: descend levels ``n+1, n, …``, at each
  level write ``(value, level)`` and collect; return once the set ``S`` of
  processes at your level or below has ``|S| ≥ level``.  Costs ``O(n²)``
  steps.
"""

from __future__ import annotations

from typing import Any, Hashable, List

from ..runtime.errors import MemoryError_
from ..runtime.ops import BOT, ImmediateWriteScan, Read, Write
from .base import SharedObject


class ImmediateSnapshotObject(SharedObject):
    """Primitive one-shot immediate snapshot: one atomic step per call."""

    __slots__ = ("cells", "called")

    def __init__(self, n_cells: int):
        self.cells: List[Any] = [BOT] * n_cells
        self.called: set[int] = set()

    def write_and_scan(self, index: int, value: Any) -> tuple:
        if not 0 <= index < len(self.cells):
            raise MemoryError_(f"immediate-snapshot index {index} out of range")
        if index in self.called:
            raise MemoryError_(
                f"one-shot immediate snapshot called twice by {index}"
            )
        self.called.add(index)
        self.cells[index] = value
        return tuple(self.cells)

    def undo_state(self) -> Any:
        return (tuple(self.cells), frozenset(self.called))

    def restore_state(self, state: Any) -> None:
        cells, called = state
        self.cells = list(cells)
        self.called = set(called)


class ImmediateAPI:
    """Interface shared by both immediate-snapshot implementations."""

    def write_and_scan(self, index: int, value: Any):
        raise NotImplementedError


class PrimitiveImmediateAPI(ImmediateAPI):
    """Immediate snapshot via the primitive object (1 step per call)."""

    def __init__(self, key: Hashable, n_cells: int):
        self.key = key
        self.n_cells = n_cells

    def write_and_scan(self, index: int, value: Any):
        view = yield ImmediateWriteScan(self.key, index, value)
        return view


class LevelImmediateAPI(ImmediateAPI):
    """The Borowsky–Gafni level-descent construction from SWMR registers.

    Each process owns the register ``(name, "is", pid)`` holding
    ``(value, level)``; levels descend from ``n + 1``.  A process returns
    at the first level ``L`` where at least ``L`` processes sit at levels
    ``≤ L`` — those processes' values form its view.
    """

    def __init__(self, name: Hashable, n_cells: int):
        self.name = name
        self.n_cells = n_cells

    def _key(self, index: int) -> tuple:
        return (self.name, "is", index)

    def write_and_scan(self, index: int, value: Any):
        level = self.n_cells + 1
        while True:
            level -= 1
            yield Write(self._key(index), (value, level))
            cells: List[Any] = []
            for j in range(self.n_cells):
                raw = yield Read(self._key(j))
                cells.append(raw)
            at_or_below = [
                j
                for j, raw in enumerate(cells)
                if raw is not BOT and raw[1] <= level
            ]
            if len(at_or_below) >= level:
                view = [BOT] * self.n_cells
                for j in at_or_below:
                    view[j] = cells[j][0]
                return tuple(view)


def make_immediate_api(
    name: Hashable, n_cells: int, register_based: bool
) -> ImmediateAPI:
    """Factory mirroring :func:`repro.memory.snapshot.make_snapshot_api`."""
    if register_based:
        return LevelImmediateAPI(name, n_cells)
    return PrimitiveImmediateAPI(name, n_cells)


def check_immediacy(views: dict[int, tuple]) -> List[str]:
    """Verify the three immediate-snapshot properties on returned views.

    ``views`` maps pid to its returned view.  Returns human-readable
    violation strings (empty = all properties hold).
    """
    problems: List[str] = []
    members = {
        pid: frozenset(
            j for j, v in enumerate(view) if v is not BOT
        )
        for pid, view in views.items()
    }
    for pid, seen in members.items():
        if pid not in seen:
            problems.append(f"self-inclusion: p{pid} missing from own view")
    pids = sorted(views)
    for a in pids:
        for b in pids:
            if a >= b:
                continue
            if not (members[a] <= members[b] or members[b] <= members[a]):
                problems.append(
                    f"containment: views of p{a} and p{b} incomparable"
                )
    for p in pids:
        for q in pids:
            if p in members[q] and not members[p] <= members[q]:
                problems.append(
                    f"immediacy: p{p} ∈ view of p{q} but "
                    f"view(p{p}) ⊄ view(p{q})"
                )
    return problems
