"""Shared-memory substrate: registers, snapshots, consensus objects."""

from .base import (
    AtomicRegister,
    SWMRRegister,
    ConsensusObject,
    Memory,
    PrimitiveSnapshot,
    SharedObject,
)
from .collect import cell, collect, read_cell, store
from .immediate import (
    ImmediateSnapshotObject,
    LevelImmediateAPI,
    PrimitiveImmediateAPI,
    check_immediacy,
    make_immediate_api,
)
from .iis import (
    fubini,
    iis_protocol,
    ordered_partitions,
    views_to_ordered_partition,
)
from .snapshot import (
    PrimitiveSnapshotAPI,
    RegisterSnapshotAPI,
    SnapshotAPI,
    make_snapshot_api,
    nonbot_count,
    nonbot_values,
)

__all__ = [
    "AtomicRegister",
    "ConsensusObject",
    "ImmediateSnapshotObject",
    "LevelImmediateAPI",
    "Memory",
    "PrimitiveImmediateAPI",
    "PrimitiveSnapshot",
    "PrimitiveSnapshotAPI",
    "SWMRRegister",
    "RegisterSnapshotAPI",
    "SharedObject",
    "SnapshotAPI",
    "cell",
    "check_immediacy",
    "collect",
    "fubini",
    "iis_protocol",
    "make_immediate_api",
    "make_snapshot_api",
    "nonbot_count",
    "ordered_partitions",
    "nonbot_values",
    "read_cell",
    "store",
    "views_to_ordered_partition",
]
