"""Register-array helpers: store/collect sub-protocols.

A *register array* ``A`` over keys ``(name, i)`` for ``i ∈ Π`` gives each
process a single-writer cell read by all.  ``collect`` reads all cells one
step at a time — it is *not* atomic (that is what snapshots are for), but it
is all that many protocols need (e.g. Task 2 of Fig. 3).

These helpers are generator subroutines: call them with ``yield from``.
"""

from __future__ import annotations

from typing import Any, Hashable, List

from ..runtime.ops import Read, Write


def cell(name: Hashable, index: int) -> tuple:
    """The register key of position ``index`` of array ``name``."""
    return (name, index)


def store(name: Hashable, index: int, value: Any):
    """Write ``value`` into position ``index`` of array ``name`` (1 step)."""
    yield Write(cell(name, index), value)


def collect(name: Hashable, n_cells: int) -> Any:
    """Read the whole array, one register per step; returns a list.

    The reads happen at increasing times; the result is a *collect*, not a
    snapshot.
    """
    values: List[Any] = []
    for i in range(n_cells):
        value = yield Read(cell(name, i))
        values.append(value)
    return values


def read_cell(name: Hashable, index: int) -> Any:
    """Read one position of an array (1 step)."""
    value = yield Read(cell(name, index))
    return value
