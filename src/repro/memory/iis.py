"""Iterated immediate snapshots and their combinatorial topology.

The impossibility results the paper builds on ([2, 14, 20]) analyse
protocols in the *iterated immediate snapshot* (IIS) model: processes pass
through a sequence of fresh one-shot immediate-snapshot objects, each
accessed exactly once (full-information: round r's input is the view from
round r−1).  The possible view profiles of one IS round are exactly the
**ordered set partitions** of the participants (Fubini numbers: 1, 3, 13,
75 profiles for 1..4 processes) — the simplices of the standard chromatic
subdivision, whose connectivity is what makes wait-free set agreement
impossible.

This module provides:

* :func:`iis_protocol` — the R-round full-information IIS protocol over
  either immediate-snapshot implementation;
* :func:`views_to_ordered_partition` — decode one round's views into the
  ordered partition (block sequence) they witness, or ``None`` when the
  views violate the IS properties;
* :func:`ordered_partitions` — all valid profiles for a participant set
  (for exhaustiveness checks);
* :func:`fubini` — the expected count.

The tests drive schedules that realize *simultaneous* blocks (only the
level-based construction can produce them — the one-step primitive always
linearizes singleton blocks) and check that every observed profile is a
valid ordered partition, reproducing the subdivision structure.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ..runtime.ops import BOT, Decide
from .immediate import make_immediate_api


def iis_protocol(rounds: int, register_based: bool = False):
    """The full-information IIS protocol: R rounds, decide the last view.

    Round ``r`` writes the process's complete knowledge (its round ``r−1``
    view; initially its input) into the round-``r`` object and takes the
    combined write-and-scan.  The decision is the list of per-round views.
    """
    if rounds < 1:
        raise ValueError("IIS needs at least one round")

    def protocol(ctx, value):
        knowledge: Any = value
        history: List[tuple] = []
        for r in range(rounds):
            api = make_immediate_api(("iis", r), ctx.system.n_processes,
                                     register_based)
            view = yield from api.write_and_scan(ctx.pid, knowledge)
            history.append(view)
            knowledge = view
        yield Decide(tuple(history))

    return protocol


def views_to_ordered_partition(
    views: Dict[int, tuple]
) -> Optional[Tuple[frozenset, ...]]:
    """Decode one IS round's views into its ordered partition.

    In a legal immediate-snapshot execution the participants split into a
    sequence of *blocks* ``B₁, …, B_m``: every process in ``B_i`` sees
    exactly ``B₁ ∪ … ∪ B_i``.  Returns that block sequence, or ``None``
    if the views fit no ordered partition (i.e. some IS property fails).
    """
    members = {
        pid: frozenset(j for j, v in enumerate(view) if v is not BOT)
        for pid, view in views.items()
    }
    participants = frozenset(members)
    # Group processes by their view; order groups by view size.
    by_view: Dict[frozenset, set] = {}
    for pid, seen in members.items():
        by_view.setdefault(seen, set()).add(pid)
    ordered = sorted(by_view.items(), key=lambda item: len(item[0]))
    blocks: List[frozenset] = []
    union: frozenset = frozenset()
    for seen, pids in ordered:
        block = frozenset(pids)
        union = union | block
        # Block i's view must be exactly the union of blocks 1..i, and it
        # must cover every participant seen so far.
        if seen != union:
            return None
        blocks.append(block)
    if union != participants:
        return None
    return tuple(blocks)


def ordered_partitions(
    participants: Sequence[int],
) -> Iterable[Tuple[frozenset, ...]]:
    """All ordered set partitions of ``participants`` (Fubini many)."""
    items = list(participants)
    if not items:
        yield ()
        return
    for first_size in range(1, len(items) + 1):
        for first in itertools.combinations(items, first_size):
            rest = [x for x in items if x not in first]
            for tail in ordered_partitions(rest):
                yield (frozenset(first),) + tail


def fubini(n: int) -> int:
    """The n-th Fubini (ordered Bell) number: 1, 1, 3, 13, 75, 541, …"""
    if n == 0:
        return 1
    total = 0
    for k in range(1, n + 1):
        total += _comb(n, k) * fubini(n - k)
    return total


def _comb(n: int, k: int) -> int:
    import math

    return math.comb(n, k)
