"""Fig. 3 — transforming a stable f-non-trivial D into Υf (Theorem 10).

Every process runs two logically parallel tasks (interleaved step-by-step
here, which is one legal asynchronous schedule of the paper's "parallel
tasks"):

* **Task 1** — periodically query the local module of ``D`` and publish
  the returned value with an ever-growing timestamp in register ``R[i]``.
  Two successive ``d``-valued writes by ``p_j`` prove a fresh query of
  ``p_j`` returned ``d`` in between — the unit of evidence the batch
  observation counts.

* **Task 2** — proceed in rounds.  A round works with the process's
  current detector value ``d``:

  1. set the emulated output ``Υf-output`` to ``Π`` (line 8);
  2. evaluate ``(S, w) = ϕD(d)`` (line 10) — the correct-set /
     prefix-length certificate that the constantly-``d`` sequence over
     ``S`` is *not* an f-resilient sample of ``D``
     (:mod:`repro.core.samples`);
  3. if ``S = Π``: keep Task 1 running and watch the registers; the round
     ends only if some process reports a fresh value ``≠ d`` (line 21);
  4. else: observe ``w`` *batches* — a batch completes when every process
     in ``Π`` has published two fresh ``d``-valued reports (line 15).  A
     process that completes the observation publishes ``d`` in ``B[i]``
     (line 19) so that blocked peers may exit too, sets ``Υf-output`` to
     ``S``, and then blocks watching for a fresh value ``≠ d``
     (line 21).

  Any fresh report of a value different from ``d`` restarts the procedure
  with the process's own current detector value.

Why the emitted values eventually satisfy Υf: after ``D``'s history
stabilizes on ``d*``, restarts cease.  If every process is correct, Task 1
supplies batches forever, so every correct process eventually emits
``S = ϕD(d*).correct`` — and ``correct(F) = S`` is impossible, since ``d*``
(the actual stable value) is incompatible with correct set ``S`` by the
construction of ϕD.  If batches stall forever, some process has crashed, so
the emitted ``Π`` is also not the correct set.  The ``B`` register makes
the two cases mutually exclusive in the limit: one completed observation
frees everybody.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from ..runtime.ops import BOT, Emit, QueryFD, Read, Write
from ..runtime.process import ProcessContext, Protocol
from .samples import PhiEntry

#: Return sentinel of the observation subroutine: all batches observed.
_DONE = object()


def report_key(pid: int) -> tuple:
    """``R[i]`` — Task 1's (value, timestamp) report register."""
    return ("R", pid)


def done_key(pid: int) -> tuple:
    """``B[i]`` — the observation-complete register (the proof's D[j])."""
    return ("B", pid)


def make_extraction_protocol(phi: Callable[[Any], PhiEntry]) -> Protocol:
    """Build the Fig. 3 reduction for a given ϕD map.

    The returned protocol never terminates; its ``Emit`` outputs implement
    the distributed variable ``Υf-output``.  Run it under a fair scheduler
    and inspect :meth:`repro.runtime.simulation.Simulation.emulated_outputs`
    (or the trace's emit timeline).
    """

    def protocol(ctx: ProcessContext, _input: Any):
        pids = list(ctx.system.pids)
        everyone = ctx.system.pid_set
        timestamp = 0
        # Freshness tracking: last timestamp seen per process's R register.
        last_seen: Dict[int, int] = {j: -1 for j in pids}

        def task1_pulse():
            """One Task 1 beat: query D, publish with a fresh timestamp."""
            nonlocal timestamp
            value = yield QueryFD()
            yield Write(report_key(ctx.pid), (value, timestamp))
            timestamp += 1
            return value

        def fresh_reports(d):
            """Scan R[*]; returns (d_write_counts, conflicting_value).

            Counts processes' fresh ``d``-valued writes since the last
            scan; a fresh write with a different value is a conflict.
            """
            counts: Dict[int, int] = {}
            conflict = None
            for j in pids:
                raw = yield Read(report_key(j))
                if raw is BOT:
                    continue
                value, ts = raw
                if ts > last_seen[j]:
                    last_seen[j] = ts
                    if value == d:
                        counts[j] = counts.get(j, 0) + 1
                    else:
                        conflict = value
            return counts, conflict

        def watch_for_change(d):
            """Line 21: block until a fresh report differs from ``d``.

            Keeps Task 1 beating.  Returns the process's own next value to
            restart with.
            """
            while True:
                own = yield from task1_pulse()
                if own != d:
                    return own
                _, conflict = yield from fresh_reports(d)
                if conflict is not None:
                    own = yield from task1_pulse()
                    return own

        def observe_batches(d, batches_needed):
            """Line 15: wait for the batches (or a peer's B flag).

            Returns ``_DONE`` on success or the value to restart with.
            """
            batches = 0
            progress: Dict[int, int] = {j: 0 for j in pids}
            while batches < batches_needed:
                own = yield from task1_pulse()
                if own != d:
                    return own
                counts, conflict = yield from fresh_reports(d)
                if conflict is not None:
                    own = yield from task1_pulse()
                    return own
                for j, c in counts.items():
                    progress[j] += c
                if all(progress[j] >= 2 for j in pids):
                    batches += 1
                    progress = {j: 0 for j in pids}
                    continue
                # A peer that finished observing d frees us (line 15/19).
                for j in pids:
                    flag = yield Read(done_key(j))
                    if flag is not BOT and flag == d:
                        return _DONE
            return _DONE

        current = yield from task1_pulse()
        while True:  # rounds of Task 2
            yield Emit(everyone)  # line 8
            target, width = phi(current)  # line 10
            target = frozenset(target)
            if target == everyone:
                current = yield from watch_for_change(current)
                continue
            outcome = yield from observe_batches(current, width)
            if outcome is not _DONE:
                current = outcome
                continue
            yield Write(done_key(ctx.pid), current)  # line 19
            yield Emit(target)
            current = yield from watch_for_change(current)

    return protocol


def make_local_extraction_protocol(phi: Callable[[Any], PhiEntry]) -> Protocol:
    """The *locally stable* variant of the reduction (Sect. 6.2, footnote).

    The paper notes its lower bounds also hold for detectors that are only
    **locally** stable — each correct process eventually sticks to its own
    value, possibly different across processes.  Cross-process round
    restarts (Fig. 3's "some process reported a new value") would then
    never cease, so the local variant drops all shared registers: each
    process simply queries its own module and emits ``ϕD(d)`` for its
    current value ``d``.  Once the local value stabilizes on ``d*``, the
    emitted set stabilizes on ``S = ϕD(d*).correct`` — and ``correct(F) =
    S`` is impossible because ``d*`` could then not be a stable output at
    *any* process (our ϕ maps derive incompatibility from per-process
    legality, which is process-independent for every shipped detector).

    The extracted object is the locally-stable variant of Υf: each correct
    process eventually permanently outputs a (possibly different) set of
    at least ``n + 1 − f`` processes that is not the correct set.  Check
    with :func:`locally_stable_outputs`.

    Only ``w(σ) = 0`` certificates are usable without cross-process
    evidence; the constructive :class:`~repro.core.samples.PhiMap` always
    produces ``w = 0``, so this covers every stable detector we ship.  A
    ``w > 0`` entry raises at run time.
    """

    def protocol(ctx: ProcessContext, _input: Any):
        while True:
            current = yield QueryFD()
            target, width = phi(current)
            if width != 0:
                raise ValueError(
                    "local extraction needs w(σ) = 0 certificates; got "
                    f"w = {width} for value {current!r}"
                )
            yield Emit(frozenset(target))

    return protocol


def locally_stable_outputs(
    sim, pattern, tail_fraction: float = 0.25
) -> Optional[Dict[int, Any]]:
    """Per-process final emitted values, requiring only *local* stability.

    Like :func:`stable_emulated_output` but without the all-processes-agree
    requirement: returns the map as long as every correct process's output
    stopped changing before the trailing window.
    """
    return stable_emulated_output(sim, pattern, tail_fraction=tail_fraction)


def stable_emulated_output(
    sim, pattern, tail_fraction: float = 0.25
) -> Optional[Dict[int, Any]]:
    """Final emitted value per correct process, or ``None`` if any correct
    process's emits were still changing during the trailing window.

    ``tail_fraction`` of the run (by time) must be change-free for the run
    to count as stabilized — the finite-horizon stand-in for "eventually
    permanently output".
    """
    horizon = sim.time
    cutoff = horizon * (1 - tail_fraction)
    outputs: Dict[int, Any] = {}
    for pid in sorted(pattern.correct):
        runtime = sim.runtimes.get(pid)
        if runtime is None or not runtime.has_emitted:
            return None
        stable_since = sim.trace.emit_stabilization_time(pid)
        if stable_since is None or stable_since > cutoff:
            return None
        outputs[pid] = sim.trace.final_emit(pid)
    return outputs
