"""The paper's contribution: Υ-based protocols, extraction, separations."""

from .adversary import (
    AdversaryResult,
    candidate_complement_extractor,
    candidate_complement_extractor_f,
    candidate_heartbeat_extractor,
    candidate_heartbeat_extractor_f,
    candidate_sticky_extractor,
    run_theorem1_adversary,
    run_theorem5_adversary,
)
from .boosting import (
    boosted_consensus_memory,
    make_boosted_consensus,
    make_omega_consensus,
)
from .compose import (
    omega_k_complement_transform,
    upsilon_to_omega_two_process_transform,
    with_fd_transform,
)
from .converge import ConvergeInstance, k_converge
from .extraction import (
    locally_stable_outputs,
    make_extraction_protocol,
    make_local_extraction_protocol,
    stable_emulated_output,
)
from .f_resilient import make_upsilon_f_set_agreement
from .hierarchy import DetectorHierarchy, TransformedHistory, WeakerThanEdge
from .timeouts import (
    EventuallySynchronousScheduler,
    GrowingDelayScheduler,
    make_timeout_upsilon,
)
from .reductions import (
    make_omega_k_to_upsilon_f,
    make_omega_to_upsilon,
    make_upsilon1_to_omega,
    make_upsilon_to_omega_two_processes,
)
from .samples import (
    PhiMap,
    ShiftedPhiMap,
    TrivialDetectorError,
    assert_valid_phi_entry,
    canonical_pattern,
    is_forever_sample,
)
from .set_agreement import (
    DECISION,
    make_upsilon_set_agreement,
    round_value_key,
    stable_flag_key,
)

__all__ = [
    "AdversaryResult",
    "DetectorHierarchy",
    "EventuallySynchronousScheduler",
    "GrowingDelayScheduler",
    "ConvergeInstance",
    "DECISION",
    "PhiMap",
    "ShiftedPhiMap",
    "TransformedHistory",
    "TrivialDetectorError",
    "WeakerThanEdge",
    "assert_valid_phi_entry",
    "boosted_consensus_memory",
    "candidate_complement_extractor",
    "candidate_complement_extractor_f",
    "candidate_heartbeat_extractor",
    "candidate_heartbeat_extractor_f",
    "candidate_sticky_extractor",
    "canonical_pattern",
    "is_forever_sample",
    "k_converge",
    "locally_stable_outputs",
    "make_boosted_consensus",
    "make_extraction_protocol",
    "make_local_extraction_protocol",
    "make_omega_consensus",
    "make_omega_k_to_upsilon_f",
    "make_omega_to_upsilon",
    "make_upsilon1_to_omega",
    "make_upsilon_f_set_agreement",
    "make_upsilon_set_agreement",
    "make_timeout_upsilon",
    "make_upsilon_to_omega_two_processes",
    "omega_k_complement_transform",
    "round_value_key",
    "run_theorem1_adversary",
    "run_theorem5_adversary",
    "stable_emulated_output",
    "stable_flag_key",
    "upsilon_to_omega_two_process_transform",
    "with_fd_transform",
]
