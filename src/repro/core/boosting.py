"""Consensus algorithms for the Corollary 4 context.

Corollary 4 separates two classical ways of beating asynchrony:

* solving **n-set agreement with registers** — doable with Υ (Fig. 1);
* solving **(n+1)-process consensus using n-process consensus objects**
  — doable with Ωn (Yang–Neiger–Gafni [21]) and *requiring* Ωn
  (Guerraoui–Kuznetsov [13]).

Since Υ is strictly weaker than Ωn (Theorem 1), every detector for the
second problem solves the first, but not vice versa.  This module makes
both sides runnable:

* :func:`make_omega_consensus` — consensus from Ω + registers (the
  ``n = 1`` base case, and a substrate in its own right): a round-based
  leader algorithm using 1-converge (commit-adopt).
* :func:`make_boosted_consensus` — (n+1)-process consensus from
  ``n``-process consensus *objects* + registers + Ωn: in each round the
  current Ωn set (at most ``n`` processes) agrees through a typed
  ``n``-consensus object and publishes the result; everybody then runs
  commit-adopt on it.  The ``m``-process access restriction is enforced
  by :class:`repro.memory.base.ConsensusObject`, so a run of this
  protocol is also a machine-checked witness that only ``n``-process
  objects were used.

Both protocols decide via the shared register ``D`` exactly like Fig. 1,
so Agreement reduces to the C-Agreement of the first committing
1-converge instance.
"""

from __future__ import annotations

from typing import Any

from ..memory.base import Memory
from ..runtime.ops import BOT, Decide, QueryFD, Read, Write
from ..runtime.process import ProcessContext, Protocol, System
from .converge import ConvergeInstance
from .set_agreement import DECISION


def leader_value_key(r: int) -> tuple:
    """``L[r]`` — the round-r leader proposal register."""
    return ("L", r)


def round_result_key(r: int) -> tuple:
    """``V[r]`` — the round-r boosted-object result register."""
    return ("V", r)


def make_omega_consensus(register_based: bool = False) -> Protocol:
    """Consensus from Ω and registers.

    Round ``r``: the process that considers itself leader writes its
    estimate to ``L[r]``; everyone waits for ``L[r]`` (or a leader change,
    or a decision), then runs 1-converge on the awaited value.  A commit
    is written to ``D`` and decided.  Once Ω stabilizes on a correct
    leader, a round is eventually entered in which every participant
    converges on the leader's single value, so 1-converge commits.
    """

    def protocol(ctx: ProcessContext, value: Any):
        est = value
        r = 0
        while True:
            r += 1
            leader = yield QueryFD()
            if leader == ctx.pid:
                yield Write(leader_value_key(r), est)
            proposal = None
            while proposal is None:
                decision = yield Read(DECISION)
                if decision is not BOT:
                    yield Decide(decision)
                    return decision
                published = yield Read(leader_value_key(r))
                if published is not BOT:
                    proposal = published
                    break
                leader_now = yield QueryFD()
                if leader_now != leader:
                    proposal = est  # give up on this round's leader
            conv = ConvergeInstance(
                ("omega-cons", r),
                1,
                ctx.system.n_processes,
                register_based=register_based,
            )
            est, committed = yield from conv.converge(ctx, proposal)
            if committed:
                yield Write(DECISION, est)
                yield Decide(est)
                return est

    return protocol


def make_boosted_consensus(register_based: bool = False) -> Protocol:
    """(n+1)-process consensus from n-consensus objects, registers and Ωn.

    Round ``r``: let ``L`` be the Ωn output (``|L| = n``).  Processes in
    ``L`` propose their estimates to the ``n``-process consensus object
    keyed ``("boost", r, L)`` — at most the ``n`` members of ``L`` ever
    touch one object, satisfying its type restriction — and publish the
    object's decision in ``V[r]``.  Processes outside ``L`` wait for
    ``V[r]`` (or an Ωn change, or a decision).  All participants then run
    1-converge on the awaited value; commits decide through ``D``.

    Once Ωn stabilizes on a set ``L*`` containing a correct process, that
    process eventually publishes ``V[r]`` and every participant of round
    ``r`` converges on the same single value.
    """
    from ..runtime.ops import ConsensusPropose

    def protocol(ctx: ProcessContext, value: Any):
        est = value
        r = 0
        while True:
            r += 1
            leaders = frozenset((yield QueryFD()))
            if ctx.pid in leaders:
                agreed = yield ConsensusPropose(("boost", r, leaders), est)
                yield Write(round_result_key(r), agreed)
            proposal = None
            while proposal is None:
                decision = yield Read(DECISION)
                if decision is not BOT:
                    yield Decide(decision)
                    return decision
                published = yield Read(round_result_key(r))
                if published is not BOT:
                    proposal = published
                    break
                leaders_now = frozenset((yield QueryFD()))
                if leaders_now != leaders:
                    proposal = est
            conv = ConvergeInstance(
                ("boost-cons", r),
                1,
                ctx.system.n_processes,
                register_based=register_based,
            )
            est, committed = yield from conv.converge(ctx, proposal)
            if committed:
                yield Write(DECISION, est)
                yield Decide(est)
                return est

    return protocol


def boosted_consensus_memory(system: System) -> Memory:
    """A memory whose lazily-created consensus objects are ``n``-process
    typed — run :func:`make_boosted_consensus` with this memory so the
    access restriction is enforced."""
    return Memory(system, default_consensus_m=system.n)
