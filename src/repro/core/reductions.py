"""Constructive failure-detector reductions (Sect. 4 and 5.3).

A reduction algorithm using ``D'`` *extracts* the output of ``D`` when it
maintains a distributed variable ``D-output`` whose values form a legal
history of ``D`` for the current failure pattern (Sect. 3.5); then ``D`` is
*weaker than* ``D'``.  Our reduction protocols publish ``D-output`` with
``Emit`` steps; tests check the emitted values stabilize on a value that
the target detector's spec deems legal.

Shipped reductions:

* :func:`make_omega_k_to_upsilon_f` — Ωf → Υf (and Ωn → Υ): emit the
  complement ``Π − L``.  Since the stable ``L`` contains a correct process,
  ``Π − L`` misses one, so it cannot be the correct set; its size is
  ``n + 1 − f``.
* :func:`make_omega_to_upsilon` — Ω → Υ: emit ``Π − {leader}``; the stable
  leader is correct, so the complement is not the correct set.
* :func:`make_upsilon_to_omega_two_processes` — Υ → Ω for ``n = 1``
  (Sect. 4: with two processes Υ and Ω are equivalent): emit the
  complement of ``U`` when it is a singleton, else own id.
* :func:`make_upsilon1_to_omega` — Υ¹ → Ω in ``E₁`` (Sect. 5.3): processes
  heartbeat ever-growing timestamps; on ``U = Π`` (exactly one faulty
  process) elect the smallest id among the ``n`` most recently active
  processes, otherwise elect the one process outside ``U``.

Theorem 1 (:mod:`repro.core.adversary`) shows the missing direction —
Υ → Ωn — cannot exist for ``n ≥ 2``, which is the paper's separation.
"""

from __future__ import annotations

from typing import Any

from ..runtime.ops import BOT, Emit, QueryFD, Read, Write
from ..runtime.process import ProcessContext, Protocol


def make_omega_k_to_upsilon_f() -> Protocol:
    """Ωk → Υ^{n+1−k}: forever emit the complement of the Ωk output.

    With ``k = f`` this is the paper's Ωf → Υf (Sect. 5.3); with
    ``k = n`` it is Ωn → Υ (Sect. 4).
    """

    def protocol(ctx: ProcessContext, _input: Any):
        while True:
            leaders = yield QueryFD()
            yield Emit(ctx.system.complement(leaders))

    return protocol


def make_omega_to_upsilon() -> Protocol:
    """Ω → Υ: forever emit ``Π − {leader}`` (any ``n ≥ 1``)."""

    def protocol(ctx: ProcessContext, _input: Any):
        while True:
            leader = yield QueryFD()
            yield Emit(ctx.system.pid_set - {leader})

    return protocol


def make_upsilon_to_omega_two_processes() -> Protocol:
    """Υ → Ω for ``n = 1`` (two processes).

    Emit the complement of ``U`` when it is a singleton; with ``U = Π``
    (legal only when the other process is faulty) emit own id.
    """

    def protocol(ctx: ProcessContext, _input: Any):
        if ctx.system.n_processes != 2:
            raise ValueError("this equivalence is the two-process case")
        while True:
            upsilon = frozenset((yield QueryFD()))
            rest = ctx.system.pid_set - upsilon
            if len(rest) == 1:
                (leader,) = rest
                yield Emit(leader)
            else:
                yield Emit(ctx.pid)

    return protocol


def heartbeat_key(pid: int) -> tuple:
    """The timestamp register of the Υ¹ → Ω reduction."""
    return ("TS", pid)


def make_upsilon1_to_omega() -> Protocol:
    """Υ¹ → Ω in ``E₁`` (Sect. 5.3).

    Every process writes ever-growing timestamps.  If Υ¹ outputs a proper
    subset ``U ⊊ Π`` (of size ``n``), elect the process ``Π − U``; if it
    outputs ``Π`` (exactly one process is faulty), elect the smallest id
    among the ``n`` processes with the highest timestamps — eventually the
    crashed process's timestamp freezes below all others, so the election
    stabilizes on a correct process.
    """

    def protocol(ctx: ProcessContext, _input: Any):
        pids = list(ctx.system.pids)
        counter = 0
        while True:
            counter += 1
            yield Write(heartbeat_key(ctx.pid), counter)
            upsilon = frozenset((yield QueryFD()))
            rest = ctx.system.pid_set - upsilon
            if len(rest) == 1:
                (leader,) = rest
                yield Emit(leader)
                continue
            # U = Π: rank processes by observed activity.
            stamps = []
            for j in pids:
                raw = yield Read(heartbeat_key(j))
                stamps.append((0 if raw is BOT else raw, -j))
            # Drop the least active process (ties broken toward dropping
            # the higher id), elect the smallest id among the rest.
            ranked = sorted(zip(stamps, pids))  # ascending activity
            survivors = [pid for (_, pid) in ranked[1:]]
            yield Emit(min(survivors))

    return protocol
