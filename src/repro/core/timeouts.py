"""Timeout-based Υ under partial synchrony — the paper's motivation, live.

Sect. 1: "timing assumptions circumvent asynchronous impossibilities by
providing processes with information about failures, typically through
time-out mechanisms".  This module makes that sentence executable:

* :func:`make_timeout_upsilon` — a *protocol* (no oracle!) in which every
  process heartbeats a counter, watches everybody's counters, suspects
  processes whose counters stall past an adaptive timeout, and emits a
  Υ-output derived from the suspicion set: the complement of one
  unsuspected process (a set that eventually differs from the correct set
  whenever suspicions converge to the faulty set).  Timeouts double on
  every false suspicion, the classic partial-synchrony trick.

* :class:`EventuallySynchronousScheduler` — arbitrary (seeded-adversarial)
  scheduling before a global stabilization time, bounded round-robin
  after it: the ``GST`` model of Dwork–Lynch–Stockmeyer [10].

Under an eventually-synchronous schedule the emitted outputs stabilize on
a legal Υ value — failure information really does emerge from timing.
Under unrestricted asynchrony no such implementation can exist (that is
what "Υ is not implementable / non-trivial" means — Theorem 10's premise),
and the tests exhibit ever-growing-delay schedules that keep the emitted
output flapping for as long as the run is extended.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterator

from ..runtime.ops import BOT, Emit, Read, Write
from ..runtime.process import ProcessContext, Protocol
from ..runtime.scheduler import RandomScheduler, Scheduler


def heartbeat_key(pid: int) -> tuple:
    return ("TOHB", pid)


def make_timeout_upsilon(initial_timeout: int = 4) -> Protocol:
    """The heartbeat/timeout Υ implementation (correct only under GST).

    Emits, after every watch pass, the set ``Π − {max unsuspected}``
    (everyone is its own last-resort unsuspected process).  When the
    suspicion set converges to ``faulty(F)`` — which bounded step delays
    after GST guarantee — the emitted set converges to
    ``Π − {max correct} ≠ correct(F)``.  (Using the *max* matters: the
    output must actually depend on the suspicion set at every process,
    which is what the asynchronous adversary exploits to force flips.)
    """

    def protocol(ctx: ProcessContext, _input: Any):
        pids = list(ctx.system.pids)
        beat = 0
        last_seen: Dict[int, Any] = {}
        staleness: Dict[int, int] = {j: 0 for j in pids}
        timeout: Dict[int, int] = {j: initial_timeout for j in pids}
        suspected: set[int] = set()
        while True:
            beat += 1
            yield Write(heartbeat_key(ctx.pid), beat)
            for j in pids:
                raw = yield Read(heartbeat_key(j))
                if raw is not BOT and last_seen.get(j) != raw:
                    last_seen[j] = raw
                    staleness[j] = 0
                    if j in suspected:
                        # False suspicion: back off, classic doubling.
                        suspected.discard(j)
                        timeout[j] *= 2
                else:
                    staleness[j] += 1
                    if staleness[j] > timeout[j]:
                        suspected.add(j)
            unsuspected = [j for j in pids if j not in suspected] or [ctx.pid]
            yield Emit(ctx.system.pid_set - {max(unsuspected)})

    return protocol


class EventuallySynchronousScheduler(Scheduler):
    """Arbitrary before GST, bounded round-robin after (the [10] model).

    Before ``gst`` (a global step count) choices follow a seeded random
    adversary; from ``gst`` on, processes are scheduled round-robin, so
    every alive process takes a step in every window of ``|eligible|``
    steps — the bounded relative speeds the timeout protocol needs.
    """

    def __init__(self, gst: int, seed: int = 0):
        self.gst = gst
        self._before = RandomScheduler(seed)
        self._cycle = 0

    def choose(self, t: int, eligible) -> int:
        if t < self.gst:
            return self._before.choose(t, eligible)
        self._cycle += 1
        return eligible[self._cycle % len(eligible)]


class GrowingDelayScheduler(Scheduler):
    """A fair-in-the-limit but never-synchronous adversary.

    Process 0's solo bursts double in length forever: every process takes
    infinitely many steps (fairness holds), yet no bound on relative
    speeds ever holds — the schedule family against which timeout-based
    detectors cannot stabilize.
    """

    def __init__(self):
        self._script: Iterator[int] = self._generate()

    @staticmethod
    def _generate() -> Iterator[int]:
        burst = 4
        while True:
            yield from itertools.repeat(0, burst)
            yield 1  # the starved process blips once
            yield from range(2, 100)  # other pids if present (skipped when
            # ineligible by the consumer below)
            burst *= 2

    def choose(self, t: int, eligible) -> int:
        eligible_set = set(eligible)
        for pid in self._script:
            if pid in eligible_set:
                return pid
        raise AssertionError("unreachable: the script is infinite")
