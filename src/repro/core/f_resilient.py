"""Fig. 2 — the Υf-based f-resilient f-set-agreement protocol (Sect. 5.3).

Structure follows Fig. 1 (:mod:`repro.core.set_agreement`), with two
changes mandated by the weaker resilience:

* the top-of-round convergence is ``f``-converge (at most ``f`` values may
  be decided);
* the gladiators — now at least ``n + 1 − f`` of them, since
  ``|U| ≥ n + 1 − f`` — must jointly commit on at most
  ``|U| + f − n − 1`` values, so that together with the at most
  ``n + 1 − |U|`` citizen values at most ``f`` distinct values survive a
  round.  They achieve this with an **atomic snapshot** ``A[r][k]``
  (lines 15–30): each gladiator updates its value, then repeatedly scans
  until the view has at least ``n + 1 − f`` non-⊥ entries (line 19);
  because all views of one snapshot object are related by containment and
  (when at least one gladiator is faulty and no citizen writes) contain at
  most ``|U| − 1`` entries, at most ``|U| + f − n − 1`` *distinct* views —
  hence minima (line 25) — are possible, and
  ``(|U| + f − n − 1)``-converge commits (line 26).

The waiting loop of lines 17–19 is the one *blocking* element; a waiting
gladiator periodically re-checks ``D``, ``D[r]`` and ``Stable[r]`` and
re-queries Υf, exactly the escapes the Theorem 6 termination proof uses.

``0``-converge (the ``|U| = n + 1 − f`` case) never commits, and indeed
then some correct citizen must exist (``C ⊆ U`` with ``|U| = n + 1 − f``
would force ``U = C``, which Υf forbids), so ``D[r]`` is eventually
written.
"""

from __future__ import annotations

from typing import Any

from ..memory.snapshot import make_snapshot_api, nonbot_count, nonbot_values
from ..runtime.ops import BOT, Decide, QueryFD, Read, Write
from ..runtime.process import ProcessContext, Protocol
from .converge import ConvergeInstance
from .set_agreement import DECISION, round_value_key, stable_flag_key


def make_upsilon_f_set_agreement(
    f: int, register_based: bool = False
) -> Protocol:
    """Build the Fig. 2 protocol for resilience ``f``.

    Parameters
    ----------
    f:
        Maximum number of crashes (``1 ≤ f ≤ n``); the protocol solves
        f-set agreement in ``E_f`` given a Υf history
        (:class:`~repro.detectors.upsilon.UpsilonFSpec`).
    register_based:
        Use register-built snapshots for both the converge instances and
        the ``A[r][k]`` objects.
    """
    if f < 1:
        raise ValueError("f-resilient set agreement needs f >= 1")

    def protocol(ctx: ProcessContext, value: Any):
        n = ctx.system.n
        n_procs = ctx.system.n_processes
        min_correct = n_procs - f  # n + 1 − f
        est = value
        r = 0
        while True:
            r += 1
            # Line 4 analogue: try to commit via f-convergence.
            top = ConvergeInstance(
                ("fconv", r), f, n_procs, register_based=register_based
            )
            est, committed = yield from top.converge(ctx, est)
            if committed:
                yield Write(DECISION, est)
                yield Decide(est)
                return est

            upsilon = yield QueryFD()
            u_set = frozenset(upsilon)

            k = 0
            while True:
                k += 1
                decision = yield Read(DECISION)
                if decision is not BOT:
                    yield Decide(decision)
                    return decision
                round_value = yield Read(round_value_key(r))
                if round_value is not BOT:
                    est = round_value
                    break
                stable_flag = yield Read(stable_flag_key(r))
                if stable_flag is not BOT:
                    break

                if ctx.pid not in u_set:
                    # Line 11: citizen publishes its value.
                    yield Write(round_value_key(r), est)
                    break

                # Lines 15-16: gladiator publishes est in A[r][k].
                board = make_snapshot_api(
                    ("A", r, k, u_set), n_procs, register_based
                )
                yield from board.update(ctx.pid, est)

                # Lines 17-19: wait for >= n+1-f entries, with escapes.
                view = None
                escape = None  # None | "decide" | "adopt" | "break"
                while True:
                    view = yield from board.scan()
                    if nonbot_count(view) >= min_correct:
                        break
                    decision = yield Read(DECISION)
                    if decision is not BOT:
                        yield Decide(decision)
                        return decision
                    round_value = yield Read(round_value_key(r))
                    if round_value is not BOT:
                        est = round_value
                        escape = "adopt"
                        break
                    stable_flag = yield Read(stable_flag_key(r))
                    if stable_flag is not BOT:
                        escape = "break"
                        break
                    upsilon_now = yield QueryFD()
                    if frozenset(upsilon_now) != u_set:
                        yield Write(stable_flag_key(r), True)
                        escape = "break"
                        break
                if escape is not None:
                    break  # to next round (est possibly adopted)

                # Line 25: adopt the minimum of the latest snapshot.
                est = min(nonbot_values(view))

                # Line 26: (|U| + f − n − 1)-converge on the adopted value.
                sub = ConvergeInstance(
                    ("gfconv", r, k, u_set),
                    len(u_set) + f - n - 1,
                    n_procs,
                    register_based=register_based,
                )
                est, sub_committed = yield from sub.converge(ctx, est)
                if sub_committed:
                    yield Write(round_value_key(r), est)
                    break

                upsilon_now = yield QueryFD()
                if frozenset(upsilon_now) != u_set:
                    yield Write(stable_flag_key(r), True)
                    break

    return protocol
