"""The ``k``-converge routine of Yang, Neiger and Gafni [21] (Sect. 5.1).

A process calls ``k-converge`` with an input value ``v ∈ V`` and gets back
``(v', c)`` — it *picks* ``v'`` and, if ``c`` is true, *commits* to it.
The routine guarantees:

1. **C-Termination** — every correct process picks some value;
2. **C-Validity** — if a process picks ``v`` then some process invoked
   ``k-converge`` with ``v``;
3. **C-Agreement** — if some process commits, then at most ``k`` values
   are picked (by anybody);
4. **Convergence** — if at most ``k`` distinct values are input, every
   process that picks commits.

By definition ``0-converge(v)`` always returns ``(v, false)``.

Implementation and correctness
------------------------------

We use two atomic-snapshot phases (snapshots themselves are register-
implementable, :mod:`repro.memory.snapshot`, so the routine needs only
registers):

* *Phase 1*: ``update`` own value into snapshot object ``A``; ``scan`` and
  let ``V`` be the set of values seen.  Set the local flag
  ``ok := |V| ≤ k``.
* *Phase 2*: ``update`` the proposal ``(V, ok)`` into snapshot object
  ``B``; ``scan`` ``B`` and consider the proposals seen:

  - If no proposal has ``ok = true``: return ``(v, false)``.
  - Else let ``W`` be the smallest ``ok``-proposal set seen.  Return
    ``(min(W), true)`` if own ``ok`` holds and *every* proposal seen has
    ``ok = true``; return ``(min(W), false)`` otherwise.

Correctness sketch (full argument mirrored by the property-based tests):

* **C-Termination** is wait-freedom: two updates and two scans, no loops.
* **C-Validity**: ``min(W)`` is a member of some phase-1 scan, hence an
  input.
* **Convergence**: with at most ``k`` distinct inputs every phase-1 set
  has at most ``k`` values, so every proposal carries ``ok = true`` and
  every process takes the commit branch.
* **C-Agreement**: phase-1 scans of ``A`` are totally ordered by
  containment, so their value sets form a chain; the ``ok``-proposal sets
  are a sub-chain ``C₁ ⊆ … ⊆ C_m`` with ``|C_m| ≤ k``.  Every pick of the
  form ``min(W)`` satisfies ``min(W) ∈ C_m``, and the minima of a chain
  take at most ``|C_m| ≤ k`` distinct values.  It remains to rule out
  picks of own values when somebody commits.  Suppose ``p`` commits: every
  proposal in ``p``'s phase-2 scan has ``ok = true``.  Take any ``q`` with
  ``ok = false``.  If ``q``'s phase-2 update preceded ``p``'s scan, ``p``
  would have seen ``ok = false`` — contradiction; hence it followed
  ``p``'s scan, so ``q``'s own phase-2 scan contains ``p``'s ``ok = true``
  proposal and ``q`` picks ``min(W_q)``, not its own value.  ∎

The values proposed must be totally ordered (we use Python's ``min``); all
experiments propose integers or strings.
"""

from __future__ import annotations

from typing import Any, Hashable, Tuple

from ..memory.snapshot import SnapshotAPI, make_snapshot_api, nonbot_values
from ..runtime.process import ProcessContext


class ConvergeInstance:
    """One shared ``k``-converge instance.

    Each participating *process* builds its own :class:`ConvergeInstance`
    with the same ``key`` (the instance identity) and the same ``k``; the
    two snapshot objects are shared through the key.

    Parameters
    ----------
    key:
        Hashable instance identity, e.g. ``("conv", round, sub_round)``.
        Protocols with per-set instances include the set in the key.
    k:
        The convergence parameter; ``k = 0`` yields the degenerate routine.
    n_cells:
        Snapshot width — the number of processes that may participate.
    register_based:
        Build the snapshots from registers (Afek et al.) instead of the
        primitive snapshot objects.
    """

    def __init__(
        self,
        key: Hashable,
        k: int,
        n_cells: int,
        register_based: bool = False,
        snapshot_factory=None,
    ):
        if k < 0:
            raise ValueError(f"k-converge needs k >= 0, got {k}")
        self.key = key
        self.k = k
        self.n_cells = n_cells
        if snapshot_factory is None:
            def snapshot_factory(name, cells):
                return make_snapshot_api(name, cells, register_based)
        self._phase1: SnapshotAPI = snapshot_factory((key, "cvA"), n_cells)
        self._phase2: SnapshotAPI = snapshot_factory((key, "cvB"), n_cells)

    def converge(self, ctx: ProcessContext, value: Any):
        """Generator subroutine: ``(picked, committed) = yield from …``."""
        if self.k == 0:
            # By definition 0-converge(v) always returns (v, false).
            return value, False

        # Phase 1: publish own value, scan the values so far.
        yield from self._phase1.update(ctx.pid, value)
        view1 = yield from self._phase1.scan()
        seen = frozenset(nonbot_values(view1))
        ok = len(seen) <= self.k

        # Phase 2: publish (seen, ok), scan the proposals.
        yield from self._phase2.update(ctx.pid, (seen, ok))
        view2 = yield from self._phase2.scan()
        proposals = nonbot_values(view2)
        ok_sets = [s for (s, flag) in proposals if flag]

        if not ok_sets:
            return value, False
        smallest = min(ok_sets, key=len)
        picked = min(smallest)
        commit = ok and all(flag for (_, flag) in proposals)
        return picked, commit


def k_converge(
    ctx: ProcessContext,
    key: Hashable,
    k: int,
    value: Any,
    register_based: bool = False,
) -> Tuple[Any, bool]:
    """One-shot helper: run ``k``-converge on instance ``key``.

    Suitable when a process participates in an instance exactly once (the
    common case in Fig. 1 / Fig. 2, where instances are indexed by round).
    """
    instance = ConvergeInstance(
        key, k, ctx.system.n_processes, register_based=register_based
    )
    result = yield from instance.converge(ctx, value)
    return result
