"""Ablation studies — broken-on-purpose variants of the core mechanisms.

Each public object here removes exactly one ingredient from a correct
construction; the tests and benches then exhibit a concrete run where the
removed ingredient was load-bearing.  DESIGN.md's design-choice table
points at these.

* :class:`NaiveConvergeInstance` — k-converge **without the second
  phase**: commit directly when the phase-1 scan shows ≤ k values.
  C-Agreement breaks: a solo early process sees only itself and commits,
  later processes see everything, fail to commit and keep their own
  values — more than k picks despite a commit.

* :func:`make_gladiators_only_set_agreement` — Fig. 1 **without the
  citizen path**: every process joins the ``(|U|−1)``-convergence even
  when it is outside ``U``.  With a stable ``U`` of size 1 nobody can
  ever commit (0-converge) and nobody publishes ``D[r]`` — livelock,
  even though Υ behaved perfectly.

* :func:`make_no_stability_flag_set_agreement` — Fig. 1 **without
  line 16** (no Υ re-query, no ``Stable[r]`` flag): a process that enters
  a round during the noisy prefix is stuck with its entry-time view
  forever; if every process enters with ``U = {self}``, all run
  0-converge forever and no citizen exists — livelock that the real
  protocol escapes by reporting instability.

* :class:`NoBorrowScanAPI` — the Afek-et-al. scan **without view
  borrowing**: double-collect only.  A scanner running concurrently with
  a perpetual updater never sees two equal collects and never returns —
  wait-freedom breaks (the real construction borrows the mover's embedded
  view after seeing it move twice).
"""

from __future__ import annotations

from typing import Any

from ..memory.snapshot import RegisterSnapshotAPI, nonbot_values
from ..runtime.ops import BOT, Decide, QueryFD, Read, Write
from ..runtime.process import ProcessContext, Protocol
from .converge import ConvergeInstance
from .set_agreement import DECISION, round_value_key


class NaiveConvergeInstance(ConvergeInstance):
    """k-converge with phase 2 removed (ablation: why commit needs the
    second round of agreement on the *proposals*)."""

    def converge(self, ctx: ProcessContext, value: Any):
        if self.k == 0:
            return value, False
        yield from self._phase1.update(ctx.pid, value)
        view1 = yield from self._phase1.scan()
        seen = frozenset(nonbot_values(view1))
        if len(seen) <= self.k:
            return min(seen), True  # commit straight away — unsound
        return value, False


def make_gladiators_only_set_agreement() -> Protocol:
    """Fig. 1 without citizens (ablation: why ``Π − U`` must publish)."""

    def protocol(ctx: ProcessContext, value: Any):
        n = ctx.system.n
        n_procs = ctx.system.n_processes
        est = value
        r = 0
        while True:
            r += 1
            top = ConvergeInstance(("nconv", r), n, n_procs)
            est, committed = yield from top.converge(ctx, est)
            if committed:
                yield Write(DECISION, est)
                yield Decide(est)
                return est
            u_set = frozenset((yield QueryFD()))
            k = 0
            while True:
                k += 1
                decision = yield Read(DECISION)
                if decision is not BOT:
                    yield Decide(decision)
                    return decision
                round_value = yield Read(round_value_key(r))
                if round_value is not BOT:
                    est = round_value
                    break
                # ABLATED: no citizen path — everyone converges on U.
                sub = ConvergeInstance(
                    ("gconv", r, k, u_set), len(u_set) - 1, n_procs
                )
                est, sub_committed = yield from sub.converge(ctx, est)
                if sub_committed:
                    yield Write(round_value_key(r), est)
                    break

    return protocol


def make_no_stability_flag_set_agreement() -> Protocol:
    """Fig. 1 without line 16 (ablation: why instability is reported)."""

    def protocol(ctx: ProcessContext, value: Any):
        n = ctx.system.n
        n_procs = ctx.system.n_processes
        est = value
        r = 0
        while True:
            r += 1
            top = ConvergeInstance(("nconv", r), n, n_procs)
            est, committed = yield from top.converge(ctx, est)
            if committed:
                yield Write(DECISION, est)
                yield Decide(est)
                return est
            u_set = frozenset((yield QueryFD()))  # queried once, kept forever
            k = 0
            while True:
                k += 1
                decision = yield Read(DECISION)
                if decision is not BOT:
                    yield Decide(decision)
                    return decision
                round_value = yield Read(round_value_key(r))
                if round_value is not BOT:
                    est = round_value
                    break
                if ctx.pid not in u_set:
                    yield Write(round_value_key(r), est)
                    break
                sub = ConvergeInstance(
                    ("gconv", r, k, u_set), len(u_set) - 1, n_procs
                )
                est, sub_committed = yield from sub.converge(ctx, est)
                if sub_committed:
                    yield Write(round_value_key(r), est)
                    break
                # ABLATED: no re-query, no Stable[r] write.

    return protocol


class NoBorrowScanAPI(RegisterSnapshotAPI):
    """Afek-et-al. scan without the borrow rule (ablation: wait-freedom)."""

    def scan(self):
        previous = yield from self._collect()
        while True:
            current = yield from self._collect()
            if all(
                previous[i][0] == current[i][0] for i in range(self.n_cells)
            ):
                return self._values(current)
            previous = current  # never borrows — may loop forever
