"""The failure-detector hierarchy around Υ, as a queryable graph.

Sect. 2 and 4 of the paper situate Υ among the known detectors:

    dummy  ≤  anti-Ω  ≤  Υ  ≤  Ωn  ≤ … ≤  Ω1 = Ω  ≤  ◇P
                          Υf ≤  Ωf            (Sect. 5.3, in E_f)

with the paper's contributions being the *strict* separations Υ ≺ Ωn
(Theorem 1) and Υf ≺ Ωf (Theorem 5).  This module encodes those facts as
a directed graph (edge ``a → b`` = "a is weaker than b", i.e. ``b`` can
emulate ``a``):

* Most edges carry a **pointwise history transform** — the constructive
  reduction as a function on detector outputs, so legal histories of the
  stronger detector map to legal histories of the weaker one and the
  transforms compose along paths (:meth:`DetectorHierarchy.transform`).
* Strict separations carry the adversary that refutes the reverse
  direction.
* Literature edges without a shipped construction (anti-Ω ≤ Υ, from
  Zieliński [22, 23]) are recorded as non-constructive.

Queries go through :class:`DetectorHierarchy`, which instantiates the zoo
for one environment and answers ``weaker_than`` / ``strictly_weaker`` /
``explain`` via graph reachability (networkx).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional

import networkx as nx

from ..detectors.anti_omega import AntiOmegaSpec
from ..detectors.base import DetectorSpec, History
from ..detectors.dummy import DummySpec
from ..detectors.eventually_perfect import EventuallyPerfectSpec
from ..detectors.omega import OmegaSpec
from ..detectors.omega_k import OmegaKSpec
from ..detectors.upsilon import UpsilonFSpec, UpsilonSpec
from ..failures.environment import Environment

#: A pointwise reduction: maps one detector output value to another.
ValueTransform = Callable[[Any], Any]


@dataclasses.dataclass(frozen=True)
class WeakerThanEdge:
    """``weaker → stronger`` with its justification."""

    weaker: str
    stronger: str
    justification: str
    transform: Optional[ValueTransform] = None   # None = non-constructive
    strict: bool = False                          # reverse provably fails
    strictness_source: str = ""


class TransformedHistory(History):
    """A history mapped pointwise through a value transform."""

    def __init__(self, inner: History, transform: ValueTransform):
        self.inner = inner
        self.transform = transform

    def value(self, pid: int, t: int) -> Any:
        return self.transform(self.inner.value(pid, t))


class DetectorHierarchy:
    """The detector zoo and its weaker-than structure for one environment."""

    def __init__(self, env: Environment):
        self.env = env
        self.system = env.system
        self.specs: Dict[str, DetectorSpec] = {}
        self.graph = nx.DiGraph()
        self._populate()

    # -- construction --------------------------------------------------------

    def _add_spec(self, name: str, spec: DetectorSpec) -> None:
        self.specs[name] = spec
        self.graph.add_node(name)

    def _add_edge(self, edge: WeakerThanEdge) -> None:
        self.graph.add_edge(edge.weaker, edge.stronger, edge=edge)

    def _populate(self) -> None:
        system, env = self.system, self.env
        n = system.n
        f = env.f
        pid_set = system.pid_set
        pids_sorted = sorted(system.pids)

        self._add_spec("dummy", DummySpec("d"))
        self._add_spec("anti-Ω", AntiOmegaSpec(system))
        self._add_spec("Υ", UpsilonSpec(system))
        self._add_spec("Ω", OmegaSpec(system))
        self._add_spec("Ωn", OmegaKSpec(system, n))
        self._add_spec("◇P", EventuallyPerfectSpec(system))
        if f < n:
            self._add_spec("Υf", UpsilonFSpec(env))
            self._add_spec("Ωf", OmegaKSpec(system, f))

        def pad_to(size: int):
            def transform(leaders: Any) -> frozenset:
                base = (
                    frozenset({leaders})
                    if isinstance(leaders, int)
                    else frozenset(leaders)
                )
                extra = [p for p in pids_sorted if p not in base]
                return base | frozenset(extra[: max(0, size - len(base))])

            return transform

        def complement(value: Any) -> frozenset:
            members = (
                frozenset({value}) if isinstance(value, int)
                else frozenset(value)
            )
            return pid_set - members

        def elect_unsuspected(suspects: Any) -> int:
            alive = pid_set - frozenset(suspects)
            return min(alive) if alive else min(pid_set)

        self._add_edge(WeakerThanEdge(
            "dummy", "anti-Ω",
            "a constant output is extractable from anything",
            transform=lambda _v: "d",
        ))
        self._add_edge(WeakerThanEdge(
            "anti-Ω", "Υ",
            "Zieliński [22, 23]: anti-Ω is the weakest eventual "
            "non-trivial detector; no constructive reduction shipped "
            "(DESIGN.md §6)",
            transform=None,
            strict=True,
            strictness_source="[23]",
        ))
        self._add_edge(WeakerThanEdge(
            "Υ", "Ωn",
            "Sect. 4: output the complement Π − L",
            transform=complement,
            strict=(n >= 2),
            strictness_source="Theorem 1 (run_theorem1_adversary)",
        ))
        self._add_edge(WeakerThanEdge(
            "Ωn", "Ω",
            "pad the leader to an n-set containing it",
            transform=pad_to(n),
        ))
        self._add_edge(WeakerThanEdge(
            "Ω", "◇P",
            "elect the smallest unsuspected process",
            transform=elect_unsuspected,
        ))
        if f < n:
            self._add_edge(WeakerThanEdge(
                "Υf", "Ωf",
                "Sect. 5.3: output the complement Π − L (size n+1−f)",
                transform=complement,
                strict=(f >= 2),
                strictness_source="Theorem 5 (run_theorem5_adversary)",
            ))
            self._add_edge(WeakerThanEdge(
                "Ωf", "Ω",
                "pad the leader to an f-set containing it",
                transform=pad_to(f),
            ))
            self._add_edge(WeakerThanEdge(
                "Υ", "Υf",
                "a Υf output is a legal Υ output (|U| ≥ n+1−f ≥ 1, "
                "U ≠ correct)",
                transform=lambda u: frozenset(u),
            ))

    # -- queries --------------------------------------------------------------

    def detectors(self) -> List[str]:
        return sorted(self.graph.nodes)

    def weaker_than(self, weaker: str, stronger: str) -> bool:
        """Is ``weaker`` ≤ ``stronger`` (via recorded reductions)?"""
        self._check(weaker), self._check(stronger)
        if weaker == stronger:
            return True
        return nx.has_path(self.graph, weaker, stronger)

    def strictly_weaker(self, weaker: str, stronger: str) -> bool:
        """≤ holds and some edge on a witnessing path is a recorded strict
        separation."""
        if weaker == stronger or not self.weaker_than(weaker, stronger):
            return False
        path = nx.shortest_path(self.graph, weaker, stronger)
        return any(
            self.graph.edges[a, b]["edge"].strict
            for a, b in zip(path, path[1:])
        )

    def explain(self, weaker: str, stronger: str) -> List[WeakerThanEdge]:
        """The chain of justifications along one witnessing path."""
        self._check(weaker), self._check(stronger)
        path = nx.shortest_path(self.graph, weaker, stronger)
        return [self.graph.edges[a, b]["edge"] for a, b in zip(path, path[1:])]

    def transform(self, weaker: str, stronger: str) -> ValueTransform:
        """Compose the pointwise transforms along a witnessing path.

        Raises ``ValueError`` if any edge on every shortest path is
        non-constructive (e.g. through anti-Ω ≤ Υ).
        """
        edges = self.explain(weaker, stronger)
        for edge in edges:
            if edge.transform is None:
                raise ValueError(
                    f"no constructive reduction along {weaker} ≤ {stronger}: "
                    f"edge {edge.weaker} ≤ {edge.stronger} is recorded only"
                )

        def composed(value: Any) -> Any:
            for edge in reversed(edges):
                value = edge.transform(value)
            return value

        return composed

    def transform_history(
        self, weaker: str, stronger: str, history: History
    ) -> History:
        """Map a legal ``stronger`` history to a legal ``weaker`` history."""
        return TransformedHistory(history, self.transform(weaker, stronger))

    def _check(self, name: str) -> None:
        if name not in self.graph:
            raise KeyError(
                f"unknown detector {name!r}; have {self.detectors()}"
            )
