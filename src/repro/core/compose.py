"""Online composition of protocols with failure-detector reductions.

``weaker than`` (Sect. 3.5) means algorithms designed for detector ``D``
can run in systems equipped with ``D′`` by interposing the reduction.  For
the *pointwise* reductions of Sect. 4/5.3 (complement, padding, election —
the edges of :class:`~repro.core.hierarchy.DetectorHierarchy`), the
interposition is a pure function on query responses, and
:func:`with_fd_transform` applies it **online**: every ``QueryFD`` step of
the wrapped protocol receives the transformed value, all other steps pass
through untouched.  The step count is exactly preserved — the combinator
adds no steps, faithfully modelling "the same algorithm, reading the
derived module".

Examples this enables (both tested):

* consensus from Υ for two processes — `make_omega_consensus()` wrapped
  with the Υ → Ω map (the paper's n = 1 equivalence, Sect. 4);
* n-set agreement from Ωn — Fig. 1 wrapped with the complement map
  (Corollary 3's easy direction), against an *actual* Ωn history.
"""

from __future__ import annotations

from typing import Any, Callable

from ..runtime.ops import QueryFD
from ..runtime.process import ProcessContext, Protocol

#: A per-process pointwise reduction: (ctx, queried value) -> derived value.
ContextTransform = Callable[[ProcessContext, Any], Any]


def with_fd_transform(protocol: Protocol, transform: ContextTransform) -> Protocol:
    """Run ``protocol`` with every detector query mapped through
    ``transform`` (which may depend on the querying process's context,
    e.g. "emit own pid when the complement is empty")."""

    def wrapped(ctx: ProcessContext, value: Any):
        inner = protocol(ctx, value)
        try:
            op = next(inner)
            while True:
                response = yield op
                if isinstance(op, QueryFD):
                    response = transform(ctx, response)
                op = inner.send(response)
        except StopIteration as stop:
            return stop.value

    return wrapped


def upsilon_to_omega_two_process_transform(ctx: ProcessContext, upsilon) -> int:
    """The Sect. 4 two-process map: complement singleton, else own pid."""
    rest = ctx.system.pid_set - frozenset(upsilon)
    if len(rest) == 1:
        (leader,) = rest
        return leader
    return ctx.pid


def omega_k_complement_transform(ctx: ProcessContext, leaders) -> frozenset:
    """Ωk → Υ^{n+1−k}: the complement map (accepts Ω's scalar too)."""
    if isinstance(leaders, int):
        leaders = (leaders,)
    return ctx.system.complement(leaders)
