"""f-resilient samples and the maps ϕD (Sect. 6.3, Lemma 8 / Corollary 9).

A sequence ``σ ∈ (Π × R)^∞`` is an *f-resilient sample* of detector ``D``
if the values of ``σ`` could have been observed, in order, by the
processes of ``σ`` in some run over a pattern of ``E_f`` — and
``correct(σ)`` (the processes appearing infinitely often) has at least
``n + 1 − f`` members.

Corollary 9 says every f-non-trivial ``D`` admits a map ϕD carrying each
range value ``d`` to ``(correct(σ), w(σ))`` for some σ ∈ (Π × {d})^∞ that
is **not** a sample; the paper's proof of existence is non-constructive.
For the stable detectors shipped in this library we can make ϕD explicit:

*For a stable detector, the constantly-``d`` sequence over a candidate
correct set ``C`` is a sample iff ``d`` is a legal stable value for a
pattern with ``correct(F) = C``.*  (⇐ immediate; ⇒ because a stable
history eventually sticks to one value, and a value observed at correct
processes infinitely often must be the stable one.)

All our detector specifications are closed under indistinguishability —
their legal stable values depend on ``F`` only through ``correct(F)`` — so
"some pattern with correct set C" reduces to one canonical pattern (the
initially-dead one).  The generic map :class:`PhiMap` therefore scans the
candidate correct sets of the environment in a fixed order and returns the
first ``C`` for which ``d`` is illegal, with ``w = 0`` (σ contains only
steps of ``C``, so its shortest all-finite-steps prefix is empty).

If *no* such ``C`` exists for some ``d``, the constantly-``d`` history is
a legal stabilization for every pattern — then ``D`` is implementable from
the dummy detector ``I_d`` and hence f-trivial (the argument of Lemma 8),
and :class:`PhiMap` raises :class:`TrivialDetectorError`.

``w(σ) > 0`` maps are also valid (prepending finitely many steps of
processes outside ``C`` cannot turn a non-sample into a sample, by the
contrapositive of Lemma 7); :class:`ShiftedPhiMap` produces them to
exercise the batch-observation path of the Fig. 3 reduction.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Tuple

from ..detectors.base import DetectorSpec
from ..failures.environment import Environment
from ..failures.pattern import FailurePattern
from ..runtime.errors import ReproError


class TrivialDetectorError(ReproError):
    """Raised when no incompatible correct set exists for a value — the
    detector admits a dummy implementation and Theorem 10 does not apply."""


#: A ϕD entry: (the set correct(σ), the prefix length w(σ)).
PhiEntry = Tuple[frozenset, int]


def canonical_pattern(env: Environment, correct: frozenset) -> FailurePattern:
    """The initially-dead pattern with the given correct set."""
    return env.initially_dead(env.system.pid_set - correct)


def is_forever_sample(
    spec: DetectorSpec, env: Environment, value: Any, correct: frozenset
) -> bool:
    """Is the constantly-``value`` sequence over ``correct`` an f-resilient
    sample of ``spec``?

    By the stable-detector characterization above this holds iff ``value``
    is a legal stable value for the canonical pattern with that correct
    set (our specs being indistinguishability-closed).
    """
    if len(correct) < env.min_correct:
        return False
    pattern = canonical_pattern(env, correct)
    return spec.is_legal_stable_value(pattern, value)


class PhiMap:
    """The constructive ϕD for a stable detector in an environment.

    Deterministic: candidate correct sets are scanned in a fixed order
    (increasing size, then lexicographic), so every process computes the
    same entry for the same value — the property Fig. 3 relies on.
    """

    def __init__(self, spec: DetectorSpec, env: Environment):
        self.spec = spec
        self.env = env
        self._cache: Dict[Hashable, PhiEntry] = {}
        self._candidates = sorted(
            env.correct_set_candidates(), key=lambda s: (len(s), sorted(s))
        )

    def __call__(self, value: Any) -> PhiEntry:
        key = self._freeze(value)
        if key not in self._cache:
            self._cache[key] = self._compute(value)
        return self._cache[key]

    @staticmethod
    def _freeze(value: Any) -> Hashable:
        if isinstance(value, (set, frozenset)):
            return frozenset(value)
        if isinstance(value, list):
            return tuple(value)
        return value

    def _compute(self, value: Any) -> PhiEntry:
        for candidate in self._candidates:
            if not is_forever_sample(self.spec, self.env, value, candidate):
                return candidate, 0
        raise TrivialDetectorError(
            f"{self.spec.name}: value {value!r} is a legal stable output "
            f"for every correct set in E_{self.env.f} — the detector is "
            "f-trivial and Υf cannot be extracted from it"
        )


class ShiftedPhiMap:
    """Wrap a ϕ map, forcing ``w(σ) = shift > 0`` on every entry.

    Valid by Lemma 7's contrapositive: extending a non-sample σ with a
    finite prefix of steps by the other processes leaves it a non-sample.
    Exists purely to exercise the batch-observation wait (line 15 of
    Fig. 3) in tests and benchmarks.
    """

    def __init__(self, inner, shift: int):
        if shift < 1:
            raise ValueError("shift must be positive; use the inner map")
        self._inner = inner
        self.shift = shift

    def __call__(self, value: Any) -> PhiEntry:
        correct, _ = self._inner(value)
        return correct, self.shift


def assert_valid_phi_entry(
    spec: DetectorSpec, env: Environment, value: Any, entry: PhiEntry
) -> None:
    """Check a ϕ entry: the set must be large enough and genuinely
    incompatible with the value (used by the property-based tests)."""
    correct, w = entry
    if w < 0:
        raise AssertionError("w(σ) must be non-negative")
    if len(correct) < env.min_correct:
        raise AssertionError(
            f"|correct(σ)| = {len(correct)} < n+1−f = {env.min_correct}"
        )
    if is_forever_sample(spec, env, value, correct):
        raise AssertionError(
            f"ϕ({value!r}) = {sorted(correct)} is a sample — entry invalid"
        )
