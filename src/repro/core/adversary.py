"""The adversarial constructions of Theorems 1 and 5.

Theorem 1: Υ is strictly weaker than Ωn for ``n ≥ 2`` — no reduction
algorithm can extract Ωn from Υ.  Theorem 5 generalizes: Υf is strictly
weaker than Ωf for ``2 ≤ f ≤ n``.

The proofs are adversary arguments.  Fix any candidate extractor ``A``
(an algorithm using Υ that emits Ωn outputs).  The adversary builds a
failure-free run in which Υ constantly outputs ``U = {p₁, …, p_n}`` (a
legal history for *every* failure-free pattern, since ``U ≠ Π``) and
drives the schedule:

1. run ``p_{n+1}`` solo — indistinguishable from a run where everyone
   else is faulty, so ``A`` must eventually output, at ``p_{n+1}``, a
   process ``p_{i₁} ≠ p_{n+1}`` (its Ωn set must include the possibly-only
   correct process ``p_{n+1}``);
2. let every process take exactly one step, then run ``p_{i₁}`` solo —
   again indistinguishable from "only ``p_{i₁}`` is correct" (and ``U``
   stays legal because ``n ≥ 2``), forcing an output ``p_{i₂} ≠ p_{i₁}``;
3. repeat forever.  The extracted output never stabilizes — yet the run
   is failure-free and fair, so ``A`` is not a correct extractor.

No finite program can quantify over *all* candidate extractors; this
module implements the **adversary as a driver** that defeats any *given*
candidate.  For each candidate the driver produces one of two refutations:

* ``flips`` — the candidate's output was forced to change once per phase
  (non-stabilization: flips grow linearly in the step budget), or
* ``stalled + witness`` — some phase's solo process never produced the
  required output; the driver then *completes* the partial run into a
  concrete spec-violating run by crashing every other process (the
  indistinguishable extension), yielding a checkable counterexample.

Three natural candidate extractors are provided as the straw men the
benchmarks defeat; users can plug in their own.
"""

from __future__ import annotations

import dataclasses
from typing import Any, List, Optional

from ..detectors.base import StableHistory
from ..failures.pattern import FailurePattern
from ..runtime.ops import BOT, Emit, QueryFD, Read, Write
from ..runtime.process import ProcessContext, Protocol, System
from ..runtime.simulation import Simulation


# ----------------------------------------------------------------------
# Candidate Υ → Ωn extractors (straw men).
# ----------------------------------------------------------------------


def candidate_complement_extractor() -> Protocol:
    """Emit ``Π − {min(U)}`` — a memoryless complement-style guess."""

    def protocol(ctx: ProcessContext, _input: Any):
        while True:
            upsilon = frozenset((yield QueryFD()))
            excluded = min(upsilon)
            yield Emit(ctx.system.pid_set - {excluded})

    return protocol


def candidate_heartbeat_extractor(fresh_window: int = 4) -> Protocol:
    """Emit ``Π − {least recently active process}``.

    Processes heartbeat counters; the emitted Ωn set excludes the process
    whose counter has been frozen longest (own pid never excluded).  This
    candidate adapts to schedules — and is exactly the kind the adversary
    flips forever.
    """

    def protocol(ctx: ProcessContext, _input: Any):
        pids = list(ctx.system.pids)
        beat = 0
        last: dict[int, tuple] = {}
        staleness: dict[int, int] = {j: 0 for j in pids}
        while True:
            beat += 1
            yield Write(("HB", ctx.pid), beat)
            for j in pids:
                raw = yield Read(("HB", j))
                if raw is BOT:
                    staleness[j] += 1
                elif last.get(j) == raw:
                    staleness[j] += 1
                else:
                    last[j] = raw
                    staleness[j] = 0
            # Exclude the stalest process other than ourselves.
            candidates = [j for j in pids if j != ctx.pid]
            stalest = max(candidates, key=lambda j: (staleness[j], j))
            if staleness[stalest] >= fresh_window:
                yield Emit(ctx.system.pid_set - {stalest})
            else:
                yield Emit(ctx.system.pid_set - {min(ctx.system.complement([ctx.pid]))})

    return protocol


def candidate_sticky_extractor(patience: int = 8) -> Protocol:
    """A hysteresis candidate: like the heartbeat one, but it changes its
    output only after ``patience`` consecutive contradicting observations."""

    def protocol(ctx: ProcessContext, _input: Any):
        pids = list(ctx.system.pids)
        beat = 0
        last: dict[int, Any] = {}
        staleness: dict[int, int] = {j: 0 for j in pids}
        current_excluded: Optional[int] = None
        votes = 0
        while True:
            beat += 1
            yield Write(("HB", ctx.pid), beat)
            for j in pids:
                raw = yield Read(("HB", j))
                if raw is not BOT and last.get(j) != raw:
                    last[j] = raw
                    staleness[j] = 0
                else:
                    staleness[j] += 1
            candidates = [j for j in pids if j != ctx.pid]
            stalest = max(candidates, key=lambda j: (staleness[j], j))
            if current_excluded is None:
                current_excluded = stalest
            elif stalest != current_excluded:
                votes += 1
                if votes >= patience:
                    current_excluded = stalest
                    votes = 0
            else:
                votes = 0
            yield Emit(ctx.system.pid_set - {current_excluded})

    return protocol


# ----------------------------------------------------------------------
# The adversary drivers.
# ----------------------------------------------------------------------


@dataclasses.dataclass
class AdversaryResult:
    """Outcome of one adversarial drive against a candidate extractor."""

    #: Number of phases in which the output was forced to change.
    flips: int
    #: The sequence of solo targets (p_{i₁}, p_{i₂}, …) / solo sets.
    phase_targets: List[Any]
    #: Phase index at which the candidate stalled, or None.
    stalled_at: Optional[int]
    #: If stalled: the emitted value the candidate was stuck on.
    stuck_output: Optional[Any]
    #: If stalled: description of the spec-violating completion.
    witness: Optional[str]
    #: Total steps driven.
    steps: int

    @property
    def refuted(self) -> bool:
        """The candidate was refuted (it always is, one way or the other,
        when driven long enough)."""
        return self.flips > 0 or self.stalled_at is not None


def _upsilon_constant_history(system: System) -> StableHistory:
    """Υ permanently outputting ``{p₁, …, p_n}`` (pids 0..n−1): legal for
    every failure-free pattern since the set omits ``p_{n+1}``."""
    return StableHistory(frozenset(range(system.n)), stabilization_time=0)


def _emitted_leader_complement(system: System, emitted: Any) -> Optional[int]:
    """Interpret an emitted Ωn value: return ``pc`` with ``{pc} = Π − L``."""
    if emitted is None:
        return None
    try:
        excluded = system.pid_set - frozenset(emitted)
    except TypeError:
        return None
    if len(frozenset(emitted)) != system.n or len(excluded) != 1:
        return None
    (pc,) = excluded
    return pc


def run_theorem1_adversary(
    candidate: Protocol,
    system: System,
    phases: int = 10,
    solo_budget: int = 4_000,
    stability_window: int = 50,
) -> AdversaryResult:
    """Drive the Theorem 1 adversary against a candidate Υ → Ωn extractor.

    Returns an :class:`AdversaryResult`; see the module docstring for the
    two refutation modes.
    """
    if system.n < 2:
        raise ValueError("Theorem 1 requires n >= 2 (Υ ≡ Ω for n = 1)")
    history = _upsilon_constant_history(system)
    sim = Simulation(
        system,
        candidate,
        inputs={},
        pattern=FailurePattern.failure_free(system),
        history=history,
    )
    current = system.n  # start with p_{n+1}
    targets: List[int] = []
    flips = 0
    for phase in range(phases):
        target = _drive_solo_until_output(
            sim, current, solo_budget, stability_window, system
        )
        if target is None:
            witness = (
                f"crash Π − {{p{current}}} now: the run so far is "
                f"indistinguishable from one where p{current} is the only "
                f"correct process and Υ's output stays legal, yet the "
                f"candidate's emitted Ωn set excludes no-one sensible / "
                f"never settles on a set containing p{current}'s potential "
                f"loneliness — Ωn's 'contains a correct process' fails"
            )
            return AdversaryResult(
                flips=flips,
                phase_targets=targets,
                stalled_at=phase,
                stuck_output=sim.runtimes[current].emitted,
                witness=witness,
                steps=sim.time,
            )
        targets.append(target)
        flips += 1
        # Every process takes exactly one step, then switch solo target.
        for pid in system.pids:
            sim.step(pid)
        current = target
    return AdversaryResult(
        flips=flips,
        phase_targets=targets,
        stalled_at=None,
        stuck_output=None,
        witness=None,
        steps=sim.time,
    )


def _drive_solo_until_output(
    sim: Simulation,
    pid: int,
    budget: int,
    window: int,
    system: System,
) -> Optional[int]:
    """Solo-run ``pid`` until it stably emits an Ωn set excluding a process
    other than itself; return that process, or None on stall."""
    stable_for = 0
    last_pc: Optional[int] = None
    for _ in range(budget):
        sim.step(pid)
        pc = _emitted_leader_complement(system, sim.runtimes[pid].emitted)
        if pc is not None and pc != pid:
            if pc == last_pc:
                stable_for += 1
                if stable_for >= window:
                    return pc
            else:
                last_pc = pc
                stable_for = 1
        else:
            last_pc = None
            stable_for = 0
    return None


# ----------------------------------------------------------------------
# Theorem 5: the f-resilient generalization.
# ----------------------------------------------------------------------


def candidate_complement_extractor_f(f: int) -> Protocol:
    """A memoryless Υf → Ωf straw man: emit the ``f`` largest pids of
    ``Π − U`` padded from ``U``."""

    def protocol(ctx: ProcessContext, _input: Any):
        pids = sorted(ctx.system.pids, reverse=True)
        while True:
            upsilon = frozenset((yield QueryFD()))
            outside = [p for p in pids if p not in upsilon]
            padded = (outside + [p for p in pids if p in upsilon])[:f]
            yield Emit(frozenset(padded))

    return protocol


def candidate_heartbeat_extractor_f(f: int, fresh_window: int = 4) -> Protocol:
    """Adaptive Υf → Ωf straw man: emit the ``f`` stalest processes
    (never including own pid while fresher choices exist)."""

    def protocol(ctx: ProcessContext, _input: Any):
        pids = list(ctx.system.pids)
        beat = 0
        last: dict[int, Any] = {}
        staleness: dict[int, int] = {j: 0 for j in pids}
        while True:
            beat += 1
            yield Write(("HB", ctx.pid), beat)
            for j in pids:
                raw = yield Read(("HB", j))
                if raw is not BOT and last.get(j) != raw:
                    last[j] = raw
                    staleness[j] = 0
                else:
                    staleness[j] += 1
            ranked = sorted(
                (j for j in pids if j != ctx.pid),
                key=lambda j: (-staleness[j], j),
            )
            yield Emit(frozenset(ranked[:f]))

    return protocol


def run_theorem5_adversary(
    candidate: Protocol,
    system: System,
    f: int,
    phases: int = 10,
    solo_budget: int = 6_000,
    stability_window: int = 50,
) -> AdversaryResult:
    """Drive the Theorem 5 adversary against a candidate Υf → Ωf extractor.

    Each phase lets every process take one step, then runs only the
    processes *outside* the currently emitted set ``L`` (round-robin) —
    indistinguishable from all of ``L`` being faulty — until some stepping
    process stably emits a set ``L' ≠ L``.
    """
    if not 2 <= f <= system.n:
        raise ValueError("Theorem 5 requires 2 <= f <= n")
    history = _upsilon_constant_history(system)  # |U| = n > n+1-f, legal
    sim = Simulation(
        system,
        candidate,
        inputs={},
        pattern=FailurePattern.failure_free(system),
        history=history,
    )

    def emitted_set(pid: int) -> Optional[frozenset]:
        emitted = sim.runtimes[pid].emitted
        if emitted is None:
            return None
        value = frozenset(emitted)
        return value if len(value) == f else None

    # Phase 0: free run (everyone steps) until some process emits a set L1.
    current_l: Optional[frozenset] = None
    for _ in range(solo_budget):
        for pid in system.pids:
            sim.step(pid)
        sets = [s for pid in system.pids if (s := emitted_set(pid))]
        if sets:
            current_l = sets[0]
            break
    if current_l is None:
        return AdversaryResult(0, [], 0, None, "no Ωf output ever emitted", sim.time)

    targets: List[frozenset] = [current_l]
    flips = 0
    for phase in range(phases):
        runners = sorted(system.pid_set - current_l)
        new_l = None
        stable_for = 0
        last_seen: Optional[frozenset] = None
        for pid in system.pids:  # everyone takes exactly one step
            sim.step(pid)
        for i in range(solo_budget):
            sim.step(runners[i % len(runners)])
            observed = [
                s
                for pid in runners
                if (s := emitted_set(pid)) is not None and s != current_l
            ]
            if observed:
                if observed[0] == last_seen:
                    stable_for += 1
                    if stable_for >= stability_window:
                        new_l = observed[0]
                        break
                else:
                    last_seen = observed[0]
                    stable_for = 1
            else:
                last_seen = None
                stable_for = 0
        if new_l is None:
            witness = (
                f"crash L = {sorted(current_l)} now (|L| = {f} ≤ f): the "
                f"run extends to one where correct(F) = Π − L, the Υf "
                f"history stays legal, and the candidate's stable output "
                f"L contains no correct process — Ωf violated"
            )
            return AdversaryResult(
                flips=flips,
                phase_targets=targets,
                stalled_at=phase,
                stuck_output=current_l,
                witness=witness,
                steps=sim.time,
            )
        flips += 1
        targets.append(new_l)
        current_l = new_l
    return AdversaryResult(
        flips=flips,
        phase_targets=targets,
        stalled_at=None,
        stuck_output=None,
        witness=None,
        steps=sim.time,
    )
