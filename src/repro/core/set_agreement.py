"""Fig. 1 — the Υ-based n-set-agreement protocol (Sect. 5.2, Theorem 2).

The protocol proceeds in rounds.  In round ``r``:

* **line 4** — processes first try to agree via ``n``-converge[r]; a
  process that commits writes its value to the decision register ``D`` and
  decides (lines 5–6).
* A process that fails to commit queries Υ; let ``U`` be the output.  It
  then cyclically executes the sub-round procedure (lines 12–17):

  - a **citizen** (``p ∉ U``) writes its value to ``D[r]`` and proceeds to
    round ``r + 1``;
  - a **gladiator** (``p ∈ U``) joins ``(|U|−1)``-converge[r][k] for
    sub-rounds ``k = 1, 2, …``, trying to eliminate one of the gladiators'
    values; a committed value is written to ``D[r]``;
  - the sub-round loop ends when (line 17): some participant reported that
    Υ has not stabilized (register ``Stable[r]``), or the gladiator
    convergence committed, or a non-⊥ value appears in ``D[r]`` or ``D``.
    A process whose own Υ output changes mid-round sets ``Stable[r]``
    (line 16) before moving on.

* On exit: ``D ≠ ⊥`` means decide ``D`` (lines 20–21); ``D[r] ≠ ⊥`` means
  adopt that value into round ``r + 1``.

Υ's guarantee — the eventual stable set ``U`` is not the correct set —
yields termination: either a correct citizen exists (its ``D[r]`` write
frees everybody) or some gladiator is faulty (a fresh sub-round after its
crash has at most ``|U| − 1`` participants, so ``(|U|−1)``-convergence
commits).  Either way at most ``n`` distinct values survive into round
``r + 1`` and ``n``-converge[r+1] commits.

Implementation notes
--------------------

* Gladiator convergence instances are keyed by ``(r, k, U)``: during the
  unstable prefix different processes may hold different ``U`` views, and
  joining a ``(|U|−1)``-converge with inconsistent ``k`` parameters would
  be meaningless.  After stabilization all correct gladiators share ``U``
  and hence the instance, which is all the proof uses.
* Each paper "check" of a shared register is one atomic read step, so the
  line-17 conditions are evaluated one register per step, matching the
  model's one-operation-per-step discipline.
"""

from __future__ import annotations

from typing import Any

from ..runtime.ops import BOT, Decide, QueryFD, Read, Write
from ..runtime.process import ProcessContext, Protocol
from .converge import ConvergeInstance

#: Register keys (module-level so tests/analysis can peek at them).
DECISION = "D"


def round_value_key(r: int) -> tuple:
    """``D[r]`` — the per-round adopted-value register."""
    return ("Dr", r)


def stable_flag_key(r: int) -> tuple:
    """``Stable[r]`` — set when some participant saw Υ change in round r."""
    return ("Stable", r)


def make_upsilon_set_agreement(register_based: bool = False) -> Protocol:
    """Build the Fig. 1 protocol.

    Parameters
    ----------
    register_based:
        Run every converge instance on register-built snapshots, making the
        whole protocol register-only (the paper's weakest memory model).

    Returns
    -------
    A protocol ``(ctx, value) -> generator`` deciding per n-set agreement,
    given a Υ history (:class:`~repro.detectors.upsilon.UpsilonSpec`).
    """

    def protocol(ctx: ProcessContext, value: Any):
        n = ctx.system.n
        n_procs = ctx.system.n_processes
        est = value
        r = 0
        while True:
            r += 1
            # Line 4: try to commit via n-convergence.
            top = ConvergeInstance(
                ("nconv", r), n, n_procs, register_based=register_based
            )
            est, committed = yield from top.converge(ctx, est)
            if committed:
                # Lines 5-6: publish and decide.
                yield Write(DECISION, est)
                yield Decide(est)
                return est

            # Query Υ; U partitions Π into gladiators (U) and citizens.
            upsilon = yield QueryFD()
            u_set = frozenset(upsilon)

            k = 0
            next_round = False
            while not next_round:
                k += 1
                # Line 17 conditions, one register per step.
                decision = yield Read(DECISION)
                if decision is not BOT:
                    yield Decide(decision)
                    return decision
                round_value = yield Read(round_value_key(r))
                if round_value is not BOT:
                    est = round_value  # adopt and proceed to round r+1
                    break
                stable_flag = yield Read(stable_flag_key(r))
                if stable_flag is not BOT:
                    break  # someone saw Υ change: give up on this round

                if ctx.pid not in u_set:
                    # Citizen: publish own value, proceed to next round.
                    yield Write(round_value_key(r), est)
                    break

                # Gladiator: try to eliminate one of the |U| values.
                sub = ConvergeInstance(
                    ("gconv", r, k, u_set),
                    len(u_set) - 1,
                    n_procs,
                    register_based=register_based,
                )
                est, sub_committed = yield from sub.converge(ctx, est)
                if sub_committed:
                    yield Write(round_value_key(r), est)
                    break

                # Line 16: report Υ instability if our output changed.
                upsilon_now = yield QueryFD()
                if frozenset(upsilon_now) != u_set:
                    yield Write(stable_flag_key(r), True)
                    break

    return protocol
