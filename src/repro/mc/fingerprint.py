"""Deterministic state fingerprints for the model checker.

A fingerprint is a stable hash of everything that determines a run's
*future* behaviour, so that two exploration branches reaching the same
fingerprint may share their subtrees:

* **Per-process control state.**  Protocols are deterministic generators:
  a process's local state is a function of its input and the sequence of
  ``(operation, response)`` pairs it has observed.  We therefore hash each
  process's step history (plus its runtime status) instead of its Python
  frame — frames carry address-bearing objects that differ across replays
  of the *same* run.  The history enters the digest as a per-process
  **blake2b chain**: ``chain_{k+1} = blake2b(chain_k ‖ fragment_k)`` where
  ``fragment_k`` canonically encodes the ``k``-th ``(op, response)`` pair.
  A chain is updated in O(1) from the single step a transition produced
  (see :class:`FingerprintState`), while the chained digest still commits
  to the entire observation sequence.
* **Shared-memory contents**, canonically encoded per object kind via
  :meth:`repro.memory.base.Memory.keys`.  Write/update counters are
  deliberately excluded: no operation observes them.  Each object's
  fragment is cached and re-derived only when a step touches its key.
* **Time, the detector-history position, and the pending crash set** —
  but only when the state is *time-sensitive* (:func:`time_sensitive`).
  Once a :class:`~repro.detectors.base.StableHistory` has stabilized and
  no crash is pending, the detector answers and the failure pattern are
  invariant under time shifts, so states reached at different clock values
  may merge.

:func:`fingerprint` computes the digest from scratch (walking the trace);
:class:`FingerprintState` maintains the same digest incrementally and is
byte-identical to :func:`fingerprint` at every state — the explorer uses
the incremental form, and ``tests/test_mc_checkpoint.py`` pins the
equivalence.  :func:`canonical_fingerprint` hashes the whole
:func:`canonical_state` JSON in one piece (the pre-incremental scheme);
it induces the same state partition — equal states, equal digests — which
is what deduplication soundness rests on.

Soundness caveats (see docs/API.md):

* Protocols must be deterministic in their observations.  Randomized
  protocols would need their RNG state folded into the process history.
* Unknown shared-object types cannot be canonically encoded;
  :func:`fingerprint` raises :class:`FingerprintError` rather than hash a
  ``repr`` containing a memory address.  The explorer falls back to
  exploration without merging in that case.
* Message-passing runs (a non-``None`` network) are not fingerprinted —
  mailbox delivery times are absolute, so almost no merging would be
  sound; the explorer disables deduplication instead.
"""

from __future__ import annotations

import hashlib
import math
from bisect import bisect_left, insort
from typing import Any, Dict, List, Optional, Tuple

import json

from ..analysis.trace_io import _encode_op, encode_value
from ..detectors.base import (
    ConstantHistory,
    History,
    LocallyStableHistory,
    ScriptedHistory,
    StableHistory,
)
from ..memory.base import (
    AtomicRegister,
    ConsensusObject,
    PrimitiveSnapshot,
    SWMRRegister,
)
from ..memory.immediate import ImmediateSnapshotObject
from ..runtime.errors import ReproError
from ..runtime.process import ProcessStatus
from ..runtime.simulation import Simulation


class FingerprintError(ReproError):
    """A state holds something the fingerprint cannot canonically encode."""


# -- time sensitivity ---------------------------------------------------------


def pending_crashes(sim: Simulation) -> List[Tuple[int, int]]:
    """Crashes of participating processes still in the future, sorted."""
    t = sim.time
    return sorted(
        (pid, when)
        for pid, when in sim.pattern.crash_times.items()
        if pid in sim.runtimes and when > t
    )


def history_time_sensitive(history: Optional[History], t: int) -> bool:
    """Can the history's answers still change at or after time ``t``?

    ``False`` is only returned when provably constant from ``t`` on:
    no history, a :class:`ConstantHistory`, or a (locally) stable history
    past its stabilization time (or with no noise at all).  Unknown
    history classes are conservatively sensitive.
    """
    return t < history_sensitivity_horizon(history)


def history_sensitivity_horizon(history: Optional[History]) -> float:
    """First time from which the history is provably constant.

    ``history_time_sensitive(h, t)`` ⟺ ``t < history_sensitivity_horizon(h)``
    — the horizon form lets the incremental fingerprint precompute the
    threshold once per exploration instead of re-dispatching per state.
    """
    if history is None or isinstance(history, ConstantHistory):
        return 0
    if isinstance(history, (StableHistory, LocallyStableHistory)):
        if history._noise is None:
            return 0
        return history.stabilization_time
    if isinstance(history, ScriptedHistory):
        return max((when for (_, when) in history._table), default=-1) + 1
    return math.inf


def time_sensitive(sim: Simulation) -> bool:
    """Does the absolute clock value still matter for this state's future?

    True when a network is attached (delivery times are absolute), when a
    participating process has a crash scheduled in the future, or when the
    detector history has not provably stabilized yet.  Time-insensitivity
    is monotone: once a state is insensitive, all its successors are.
    """
    if sim.network is not None:
        return True
    if pending_crashes(sim):
        return True
    return history_time_sensitive(sim.history, sim.time)


# -- canonical encoding -------------------------------------------------------


def _encode_object(key: Any, obj: Any) -> list:
    kind = type(obj)
    if kind is SWMRRegister:
        return ["swmr", obj.writer, encode_value(obj.value)]
    if kind is AtomicRegister:
        return ["reg", encode_value(obj.value)]
    if kind is PrimitiveSnapshot:
        return ["snap", [encode_value(c) for c in obj.cells]]
    if kind is ImmediateSnapshotObject:
        return [
            "imm",
            [encode_value(c) for c in obj.cells],
            sorted(obj.called),
        ]
    if isinstance(obj, ConsensusObject):
        return [
            "cons",
            obj.m,
            bool(obj.decided),
            encode_value(obj.decision),
            sorted(obj.accessors),
        ]
    raise FingerprintError(
        f"cannot canonically encode shared object {obj.describe()} at "
        f"key {key!r}"
    )


def _canonical_json(value: Any) -> str:
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    )


def canonical_state(sim: Simulation) -> Dict[str, Any]:
    """The state as a JSON-safe structure (the fingerprint's preimage).

    Exposed separately from :func:`fingerprint` so tests can inspect *why*
    two states hash equal or different.
    """
    per_pid: Dict[int, list] = {pid: [] for pid in sim.runtimes}
    for step in sim.trace.steps:
        per_pid[step.pid].append(
            [_encode_op(step.op), encode_value(step.response)]
        )
    procs: Dict[str, Any] = {}
    for pid in sorted(sim.runtimes):
        runtime = sim.runtimes[pid]
        procs[str(pid)] = {"st": runtime.status.name, "h": per_pid[pid]}
    memory = [
        [encode_value(key), _encode_object(key, sim.memory.get(key))]
        for key in sorted(
            sim.memory.keys(), key=lambda k: _canonical_json(encode_value(k))
        )
    ]
    state: Dict[str, Any] = {"p": procs, "m": memory}
    if time_sensitive(sim):
        state["t"] = sim.time
        state["crash"] = [[pid, when] for pid, when in pending_crashes(sim)]
    return state


def canonical_fingerprint(sim: Simulation) -> str:
    """Hash of the whole :func:`canonical_state` JSON in one piece.

    The pre-incremental scheme, kept as the differential-testing oracle:
    it costs O(trace) per call, but its digests partition states exactly
    like :func:`fingerprint`'s (two states collide in one scheme iff they
    collide in the other — both commit to the same canonical components).
    """
    blob = _canonical_json(canonical_state(sim))
    return hashlib.blake2b(blob.encode("utf-8"), digest_size=16).hexdigest()


# -- chained (incremental) fingerprints ---------------------------------------

_EMPTY_CHAIN = b""
_blake2b = hashlib.blake2b

_STATUS_TAG = {
    ProcessStatus.RUNNING: b"R",
    ProcessStatus.RETURNED: b"D",
    ProcessStatus.CRASHED: b"C",
}


#: Exact value classes whose ``__eq__`` implies identical canonical
#: encoding — the domain :func:`_typed` (and therefore the fragment and
#: token caches) is willing to key on.  ``bool`` and ``int`` are distinct
#: entries on purpose: ``True == 1`` but they encode differently, so the
#: cache key carries the exact class alongside the value.
_ATOMIC_TYPES = frozenset(
    {int, bool, float, str, bytes, type(None)}
)

try:  # BOT is its own singleton sentinel (encode_value special-cases it)
    from ..runtime.ops import BOT as _BOT
except ImportError:  # pragma: no cover
    _BOT = object()


def _typed(value: Any) -> Any:
    """A hashable cache key that is *type-faithful*: two values get equal
    keys only when they have the same exact classes and equal contents
    recursively — which guarantees equal canonical encodings.  Raises
    ``TypeError`` for anything outside the known-safe domain (the caller
    then skips the cache and encodes from scratch)."""
    cls = value.__class__
    if cls in _ATOMIC_TYPES or value is _BOT:
        return (cls, value)
    if cls is tuple:
        return (cls, tuple(map(_typed, value)))
    if cls is frozenset:
        return (cls, frozenset(map(_typed, value)))
    raise TypeError(f"not cache-keyable: {cls.__name__}")


#: (op class, typed fields, typed response) -> fragment bytes.  Bounded:
#: cleared wholesale if it ever grows past the cap (distinct observations
#: in one exploration are far fewer; the cap is a leak guard, not LRU).
_OP_FRAGMENT_CACHE: Dict[Any, bytes] = {}
_OP_FRAGMENT_CACHE_CAP = 1 << 16


def _op_fragment(op: Any, response: Any) -> bytes:
    """Canonical bytes of one ``(op, response)`` observation (cached —
    the same observations recur across every interleaving of a run)."""
    try:
        key = (
            op.__class__,
            tuple(map(_typed, op.__dict__.values())),
            _typed(response),
        )
    except TypeError:
        key = None
    else:
        fragment = _OP_FRAGMENT_CACHE.get(key)
        if fragment is not None:
            return fragment
    try:
        encoded = [_encode_op(op), encode_value(response)]
    except KeyError as exc:  # op type unknown to the trace codec
        raise FingerprintError(
            f"cannot canonically encode operation {op!r}"
        ) from exc
    fragment = _canonical_json(encoded).encode("utf-8")
    if key is not None:
        if len(_OP_FRAGMENT_CACHE) >= _OP_FRAGMENT_CACHE_CAP:
            _OP_FRAGMENT_CACHE.clear()
        _OP_FRAGMENT_CACHE[key] = fragment
    return fragment


def _chain_extend(chain: bytes, fragment: bytes) -> bytes:
    """``chain'`` committing to ``chain`` followed by ``fragment``.

    The previous chain is a fixed-width (16-byte, or empty initial)
    prefix, so the concatenation is prefix-free — no framing needed.
    """
    h = _blake2b(chain, digest_size=16)
    h.update(fragment)
    return h.digest()


_KEY_TOKEN_CACHE: Dict[Any, str] = {}


def _key_token(key: Any) -> str:
    """Canonical sort token of a memory key (matches the order
    :func:`canonical_state` lists objects in).  Cached type-faithfully:
    protocols address the same few keys on every step."""
    try:
        cache_key = _typed(key)
    except TypeError:
        return _canonical_json(encode_value(key))
    token = _KEY_TOKEN_CACHE.get(cache_key)
    if token is None:
        token = _canonical_json(encode_value(key))
        if len(_KEY_TOKEN_CACHE) >= _OP_FRAGMENT_CACHE_CAP:
            _KEY_TOKEN_CACHE.clear()
        _KEY_TOKEN_CACHE[cache_key] = token
    return token


def _memory_fragment(token: str, key: Any, obj: Any) -> bytes:
    return (
        token + "\x1f" + _canonical_json(_encode_object(key, obj))
    ).encode("utf-8")


def _assemble_digest(
    proc_entries,  # iterable of (pid, status_tag: bytes, chain: bytes)
    memory_fragments,  # iterable of bytes, in key-token order
    time_blob: Optional[bytes],  # None when time-insensitive
) -> str:
    """Combine the per-component digests into the state digest.

    Every variable-length field is length-prefixed, so distinct component
    sequences yield distinct byte streams.  Shared by :func:`fingerprint`
    and :class:`FingerprintState` — byte-identity between the two is by
    construction, not by test alone.
    """
    h = _blake2b(digest_size=16)
    update = h.update
    for pid, status_tag, chain in proc_entries:
        update(b"p%d%s%d:" % (pid, status_tag, len(chain)))
        update(chain)
    for fragment in memory_fragments:
        update(b"m%d:" % len(fragment))
        update(fragment)
    if time_blob is not None:
        update(b"t%d:" % len(time_blob))
        update(time_blob)
    return h.hexdigest()


def _time_blob(sim: Simulation) -> Optional[bytes]:
    if not time_sensitive(sim):
        return None
    return _canonical_json(
        [sim.time, [[pid, when] for pid, when in pending_crashes(sim)]]
    ).encode("utf-8")


def fingerprint(sim: Simulation) -> str:
    """A stable 128-bit hex digest of the state (chained scheme).

    Deterministic across replays and across processes (the encoding never
    touches object identities or hash randomization).  Computed from
    scratch by walking the trace; byte-identical to the incrementally
    maintained :meth:`FingerprintState.digest` at every reachable state.
    """
    chains: Dict[int, bytes] = {pid: _EMPTY_CHAIN for pid in sim.runtimes}
    for step in sim.trace.steps:
        chains[step.pid] = _chain_extend(
            chains[step.pid], _op_fragment(step.op, step.response)
        )
    proc_entries = [
        (pid, _STATUS_TAG[sim.runtimes[pid].status], chains[pid])
        for pid in sorted(sim.runtimes)
    ]
    memory = sim.memory
    tokens = sorted((_key_token(key), key) for key in memory.keys())
    fragments = [
        _memory_fragment(token, key, memory.get(key))
        for token, key in tokens
    ]
    return _assemble_digest(proc_entries, fragments, _time_blob(sim))


class FingerprintState:
    """Incrementally-maintained fingerprint of one live simulation.

    Owns three caches, each invalidated by exactly the events that change
    its component:

    * per-process blake2b **chains**, extended in O(1) per executed step
      (:meth:`extend`) and restored from checkpoints on backtrack;
    * per-key canonical **memory fragments**, dropped when the memory
      journal reports a touch (:meth:`touch`) and re-derived lazily;
    * the sorted **key-token order**, adjusted on object creation and
      checkpoint-undo deletion.

    :meth:`digest` assembles the same byte stream as :func:`fingerprint`,
    paying O(processes + objects) instead of O(trace).
    """

    __slots__ = (
        "_sim",
        "_chains",
        "_fragments",
        "_tokens",
        "_by_token",
        "_pids",
        "_history_horizon",
    )

    def __init__(self, sim: Simulation):
        self._sim = sim
        self._pids = sorted(sim.runtimes)
        self._chains: Dict[int, bytes] = {
            pid: _EMPTY_CHAIN for pid in self._pids
        }
        for step in sim.trace.steps:
            self.extend(step.pid, step.op, step.response)
        self._fragments: Dict[str, bytes] = {}
        self._tokens: List[str] = []
        self._by_token: Dict[str, Any] = {}
        for key in sim.memory.keys():
            token = _key_token(key)
            insort(self._tokens, token)
            self._by_token[token] = key
        self._history_horizon = history_sensitivity_horizon(sim.history)

    # -- maintenance -------------------------------------------------------

    def extend(self, pid: int, op: Any, response: Any) -> bytes:
        """Fold one executed step into ``pid``'s chain; returns the new
        chain (which doubles as the history-memo key in
        :mod:`repro.mc.checkpoint`)."""
        chain = _chain_extend(
            self._chains[pid], _op_fragment(op, response)
        )
        self._chains[pid] = chain
        return chain

    def touch(self, key: Any) -> None:
        """A step (or an undo) changed ``key``'s object — invalidate its
        fragment, and track creation/deletion in the sorted key order."""
        token = _key_token(key)
        self._fragments.pop(token, None)
        if key in self._sim.memory._objects:
            if token not in self._by_token:
                insort(self._tokens, token)
                self._by_token[token] = key
        elif token in self._by_token:
            index = bisect_left(self._tokens, token)
            del self._tokens[index]
            del self._by_token[token]

    def chains_snapshot(self) -> Tuple[bytes, ...]:
        """The per-process chains in sorted-pid order (checkpoint state)."""
        chains = self._chains
        return tuple(chains[pid] for pid in self._pids)

    def restore_chains(self, snapshot: Tuple[bytes, ...]) -> None:
        chains = self._chains
        for pid, chain in zip(self._pids, snapshot):
            chains[pid] = chain

    # -- digest ------------------------------------------------------------

    def digest(self) -> str:
        """The state digest; byte-identical to ``fingerprint(self._sim)``."""
        sim = self._sim
        runtimes = sim.runtimes
        chains = self._chains
        proc_entries = [
            (pid, _STATUS_TAG[runtimes[pid].status], chains[pid])
            for pid in self._pids
        ]
        fragments = self._fragments
        by_token = self._by_token
        memory = sim.memory
        mem_iter = []
        for token in self._tokens:
            fragment = fragments.get(token)
            if fragment is None:
                key = by_token[token]
                fragment = _memory_fragment(token, key, memory.get(key))
                fragments[token] = fragment
            mem_iter.append(fragment)
        time_blob = None
        if sim.time < self._history_horizon:
            time_blob = _time_blob(sim)
        elif sim._next_crash is not None and pending_crashes(sim):
            time_blob = _time_blob(sim)
        return _assemble_digest(proc_entries, mem_iter, time_blob)
