"""Deterministic state fingerprints for the model checker.

A fingerprint is a stable hash of everything that determines a run's
*future* behaviour, so that two exploration branches reaching the same
fingerprint may share their subtrees:

* **Per-process control state.**  Protocols are deterministic generators:
  a process's local state is a function of its input and the sequence of
  ``(operation, response)`` pairs it has observed.  We therefore hash each
  process's step history (plus its runtime status) instead of its Python
  frame — frames carry address-bearing objects that differ across replays
  of the *same* run.
* **Shared-memory contents**, canonically encoded per object kind via
  :meth:`repro.memory.base.Memory.keys`.  Write/update counters are
  deliberately excluded: no operation observes them.
* **Time, the detector-history position, and the pending crash set** —
  but only when the state is *time-sensitive* (:func:`time_sensitive`).
  Once a :class:`~repro.detectors.base.StableHistory` has stabilized and
  no crash is pending, the detector answers and the failure pattern are
  invariant under time shifts, so states reached at different clock values
  may merge.

Soundness caveats (see docs/API.md):

* Protocols must be deterministic in their observations.  Randomized
  protocols would need their RNG state folded into the process history.
* Unknown shared-object types cannot be canonically encoded;
  :func:`fingerprint` raises :class:`FingerprintError` rather than hash a
  ``repr`` containing a memory address.  The explorer falls back to
  exploration without merging in that case.
* Message-passing runs (a non-``None`` network) are not fingerprinted —
  mailbox delivery times are absolute, so almost no merging would be
  sound; the explorer disables deduplication instead.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional, Tuple

from ..analysis.trace_io import _encode_op, encode_value
from ..detectors.base import (
    ConstantHistory,
    History,
    LocallyStableHistory,
    ScriptedHistory,
    StableHistory,
)
from ..memory.base import (
    AtomicRegister,
    ConsensusObject,
    PrimitiveSnapshot,
    SWMRRegister,
)
from ..memory.immediate import ImmediateSnapshotObject
from ..runtime.errors import ReproError
from ..runtime.simulation import Simulation


class FingerprintError(ReproError):
    """A state holds something the fingerprint cannot canonically encode."""


# -- time sensitivity ---------------------------------------------------------


def pending_crashes(sim: Simulation) -> List[Tuple[int, int]]:
    """Crashes of participating processes still in the future, sorted."""
    t = sim.time
    return sorted(
        (pid, when)
        for pid, when in sim.pattern.crash_times.items()
        if pid in sim.runtimes and when > t
    )


def history_time_sensitive(history: Optional[History], t: int) -> bool:
    """Can the history's answers still change at or after time ``t``?

    ``False`` is only returned when provably constant from ``t`` on:
    no history, a :class:`ConstantHistory`, or a (locally) stable history
    past its stabilization time (or with no noise at all).  Unknown
    history classes are conservatively sensitive.
    """
    if history is None or isinstance(history, ConstantHistory):
        return False
    if isinstance(history, (StableHistory, LocallyStableHistory)):
        return history._noise is not None and t < history.stabilization_time
    if isinstance(history, ScriptedHistory):
        return any(when >= t for (_, when) in history._table)
    return True


def time_sensitive(sim: Simulation) -> bool:
    """Does the absolute clock value still matter for this state's future?

    True when a network is attached (delivery times are absolute), when a
    participating process has a crash scheduled in the future, or when the
    detector history has not provably stabilized yet.  Time-insensitivity
    is monotone: once a state is insensitive, all its successors are.
    """
    if sim.network is not None:
        return True
    if pending_crashes(sim):
        return True
    return history_time_sensitive(sim.history, sim.time)


# -- canonical encoding -------------------------------------------------------


def _encode_object(key: Any, obj: Any) -> list:
    kind = type(obj)
    if kind is SWMRRegister:
        return ["swmr", obj.writer, encode_value(obj.value)]
    if kind is AtomicRegister:
        return ["reg", encode_value(obj.value)]
    if kind is PrimitiveSnapshot:
        return ["snap", [encode_value(c) for c in obj.cells]]
    if kind is ImmediateSnapshotObject:
        return [
            "imm",
            [encode_value(c) for c in obj.cells],
            sorted(obj.called),
        ]
    if isinstance(obj, ConsensusObject):
        return [
            "cons",
            obj.m,
            bool(obj.decided),
            encode_value(obj.decision),
            sorted(obj.accessors),
        ]
    raise FingerprintError(
        f"cannot canonically encode shared object {obj.describe()} at "
        f"key {key!r}"
    )


def _canonical_json(value: Any) -> str:
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    )


def canonical_state(sim: Simulation) -> Dict[str, Any]:
    """The state as a JSON-safe structure (the fingerprint's preimage).

    Exposed separately from :func:`fingerprint` so tests can inspect *why*
    two states hash equal or different.
    """
    per_pid: Dict[int, list] = {pid: [] for pid in sim.runtimes}
    for step in sim.trace.steps:
        per_pid[step.pid].append(
            [_encode_op(step.op), encode_value(step.response)]
        )
    procs: Dict[str, Any] = {}
    for pid in sorted(sim.runtimes):
        runtime = sim.runtimes[pid]
        procs[str(pid)] = {"st": runtime.status.name, "h": per_pid[pid]}
    memory = [
        [encode_value(key), _encode_object(key, sim.memory.get(key))]
        for key in sorted(
            sim.memory.keys(), key=lambda k: _canonical_json(encode_value(k))
        )
    ]
    state: Dict[str, Any] = {"p": procs, "m": memory}
    if time_sensitive(sim):
        state["t"] = sim.time
        state["crash"] = [[pid, when] for pid, when in pending_crashes(sim)]
    return state


def fingerprint(sim: Simulation) -> str:
    """A stable 128-bit hex digest of :func:`canonical_state`.

    Deterministic across replays and across processes (the encoding never
    touches object identities or hash randomization).
    """
    blob = _canonical_json(canonical_state(sim))
    return hashlib.blake2b(blob.encode("utf-8"), digest_size=16).hexdigest()
