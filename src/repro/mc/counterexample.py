"""Replayable counterexample bundles.

A :class:`Counterexample` packs everything needed to reproduce a
violation found by the explorer — the instance descriptor (protocol
family, participants, crash pattern, stable value, noise seed) and the
explicit schedule — plus the recorded trace for byte-for-byte
comparison.  The bundle:

* **replays deterministically**: :meth:`Counterexample.replay` rebuilds
  the instance's simulation from the descriptor and drives it with
  ``Simulation.step``; :meth:`Counterexample.verify` asserts the replay
  reproduces the *same* violation at the *same* step (and, when a trace
  was captured, the identical trace through
  :func:`repro.analysis.trace_io.trace_to_dict`);
* **round-trips** through JSON via :meth:`to_dict`/:meth:`from_dict` and
  :meth:`save`/:meth:`load`, reusing the trace_io value encoding (``⊥``
  and frozensets included);
* **auto-shrinks** via
  :func:`repro.analysis.stress.minimize_schedule` — the explorer hands
  over whatever schedule DFS stumbled on; :meth:`shrink` delta-debugs it
  down to a 1-minimal reproduction of the same violation.

Violation kinds:

* ``"property"`` — a :mod:`repro.mc.properties` adapter reported a
  reason; ``step`` is the schedule position after which it fired.
* ``"error"`` — stepping the final pid raised
  :class:`~repro.runtime.errors.ReproError` (e.g. the engine's
  crashed-process guard); the schedule *includes* that failing step.
* ``"no-termination"`` — a depth-bounded branch of a run that was
  required to make progress; the schedule is the exhausted branch.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, IO, List, Mapping, Optional, Tuple, Union

from ..analysis.stress import minimize_schedule
from ..analysis.trace_io import trace_from_dict, trace_to_dict
from ..runtime.errors import ReproError
from ..runtime.simulation import Simulation
from ..runtime.trace import Trace
from .instances import (
    McInstance,
    build_simulation,
    instance_properties,
    resolve_instance,
)


@dataclasses.dataclass
class ReplayOutcome:
    """What one replay of a schedule produced."""

    kind: str  # "property" | "error" | "none"
    prop: Optional[str]
    reason: Optional[str]
    step: int
    #: No process was left to schedule when the replay stopped.
    quiescent: bool
    sim: Simulation


@dataclasses.dataclass
class Counterexample:
    """A self-contained, replayable violation witness."""

    instance: McInstance
    schedule: Tuple[int, ...]
    kind: str
    prop: Optional[str]
    reason: str
    step: int
    trace: Optional[Trace] = None

    # -- construction --------------------------------------------------------

    @classmethod
    def from_violation(cls, instance: McInstance, violation) -> "Counterexample":
        """Bundle an explorer violation (``RawViolation`` duck type)."""
        instance = resolve_instance(instance)
        schedule = tuple(violation.schedule)
        return cls(
            instance=instance,
            schedule=schedule,
            kind=violation.kind,
            prop=violation.prop,
            reason=violation.reason,
            step=violation.step,
            trace=_capture_trace(instance, schedule),
        )

    @classmethod
    def from_schedule(
        cls, instance: McInstance, schedule, properties=None
    ) -> "Counterexample":
        """Bundle whatever violation replaying ``schedule`` produces.

        Raises ``ValueError`` if the schedule does not violate anything —
        a counterexample must witness a failure.
        """
        instance = resolve_instance(instance)
        outcome = _replay(instance, tuple(schedule), properties)
        if outcome.kind == "none":
            raise ValueError(
                "schedule replays cleanly; not a counterexample"
            )
        trimmed = tuple(schedule)[: outcome.step]
        return cls(
            instance=instance,
            schedule=trimmed,
            kind=outcome.kind,
            prop=outcome.prop,
            reason=outcome.reason or "",
            step=outcome.step,
            trace=_capture_trace(instance, trimmed),
        )

    # -- replay --------------------------------------------------------------

    def replay(self) -> ReplayOutcome:
        """Re-execute the schedule on a freshly built instance."""
        return _replay(self.instance, self.schedule)

    def verify(self) -> bool:
        """Does a fresh replay reproduce this exact violation?

        Checks kind, property, reason, and failing step; when a trace was
        captured, additionally requires the replayed trace to serialize
        identically (byte-for-byte determinism).
        """
        outcome = self.replay()
        if self.kind == "no-termination":
            # The branch must replay cleanly to its full length without
            # quiescing — the depth bound, not the run, ended it.
            ok = (
                outcome.kind == "none"
                and not outcome.quiescent
                and outcome.step == len(self.schedule)
            )
        else:
            ok = (
                outcome.kind == self.kind
                and outcome.prop == self.prop
                and outcome.reason == self.reason
                and outcome.step == self.step
            )
        if ok and self.trace is not None:
            ok = trace_to_dict(outcome.sim.trace) == trace_to_dict(self.trace)
        return ok

    # -- shrinking -----------------------------------------------------------

    def shrink(self) -> "Counterexample":
        """Delta-debug the schedule to a 1-minimal reproduction.

        Returns ``self`` when the violation kind cannot be expressed as a
        replay predicate (``no-termination``) or the schedule is already
        minimal.  The shrunk bundle witnesses the *same* property and
        reason; its failing step may move earlier.
        """
        if self.kind == "no-termination" or len(self.schedule) <= 1:
            return self
        instance = self.instance
        make_sim = lambda: build_simulation(instance)  # noqa: E731
        if self.kind == "error":
            # minimize_schedule treats raising replays as non-reproducing,
            # so split off the step that raises: minimize the body, with a
            # predicate that replays the failing pid on top and demands
            # the identical error.
            body, failing = list(self.schedule[:-1]), self.schedule[-1]

            def raises_same(sim: Simulation) -> bool:
                try:
                    sim.step(failing)
                except ReproError as exc:
                    return str(exc) == self.reason
                return False

            if not body:
                return self
            try:
                minimal_body = minimize_schedule(make_sim, body, raises_same)
            except ValueError:
                return self
            # An empty body may also reproduce; minimize_schedule never
            # returns one, so probe it directly.
            if raises_same(make_sim()):
                minimal_body = []
            schedule = tuple(minimal_body) + (failing,)
            if schedule == self.schedule:
                return self
            return dataclasses.replace(
                self,
                schedule=schedule,
                step=len(schedule),
                trace=_capture_trace(instance, schedule),
            )
        # Property violation: re-evaluate the named adapter on the
        # replayed end state (check_run — the whole-run view).
        adapter = _find_adapter(instance, self.prop)
        if adapter is None:
            return self

        def still_violates(sim: Simulation) -> bool:
            return adapter.check_run(sim) is not None

        try:
            minimal = minimize_schedule(
                make_sim, list(self.schedule), still_violates
            )
        except ValueError:
            return self
        if tuple(minimal) == self.schedule:
            return self
        try:
            return self.from_schedule(instance, minimal, [adapter])
        except ValueError:
            return self  # paranoia: keep the original witness

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        body: Dict[str, Any] = {
            "instance": self.instance.to_dict(),
            "schedule": list(self.schedule),
            "kind": self.kind,
            "prop": self.prop,
            "reason": self.reason,
            "step": self.step,
        }
        if self.trace is not None:
            body["trace"] = trace_to_dict(self.trace)
        return body

    @classmethod
    def from_dict(cls, body: Mapping[str, Any]) -> "Counterexample":
        trace = body.get("trace")
        return cls(
            instance=McInstance.from_dict(body["instance"]),
            schedule=tuple(body["schedule"]),
            kind=body["kind"],
            prop=body.get("prop"),
            reason=body["reason"],
            step=body["step"],
            trace=trace_from_dict(trace) if trace is not None else None,
        )

    def save(self, destination: Union[str, IO[str]]) -> None:
        if isinstance(destination, str):
            with open(destination, "w", encoding="utf-8") as handle:
                json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
                handle.write("\n")
        else:
            json.dump(self.to_dict(), destination, indent=2, sort_keys=True)

    @classmethod
    def load(cls, source: Union[str, IO[str]]) -> "Counterexample":
        if isinstance(source, str):
            with open(source, "r", encoding="utf-8") as handle:
                return cls.from_dict(json.load(handle))
        return cls.from_dict(json.load(source))

    def describe(self) -> str:
        what = self.prop or self.kind
        return (
            f"{self.instance.describe()}: {what} violated at step "
            f"{self.step}/{len(self.schedule)} — {self.reason}"
        )


# -- helpers ------------------------------------------------------------------


def _find_adapter(instance: McInstance, name: Optional[str]):
    for adapter in instance_properties(instance):
        if adapter.name == name:
            return adapter
    return None


def _capture_trace(
    instance: McInstance, schedule: Tuple[int, ...]
) -> Optional[Trace]:
    """The trace a replay records (including a final raising step's none)."""
    sim = build_simulation(instance)
    try:
        sim.run_script(schedule)
    except ReproError:
        pass  # an "error"-kind schedule ends in the raising step
    return sim.trace


def _replay(
    instance: McInstance,
    schedule: Tuple[int, ...],
    properties=None,
) -> ReplayOutcome:
    """Drive a fresh simulation through ``schedule``, watching properties."""
    adapters = (
        list(properties)
        if properties is not None
        else instance_properties(instance)
    )
    sim = build_simulation(instance)
    executed = 0
    for pid in schedule:
        try:
            record = sim.step(pid)
        except ReproError as exc:
            return ReplayOutcome(
                "error", None, str(exc), executed + 1, False, sim
            )
        executed += 1
        for adapter in adapters:
            reason = adapter.on_step(sim, record)
            if reason:
                return ReplayOutcome(
                    "property", adapter.name, reason, executed, False, sim
                )
    quiescent = not sim.eligible()
    if quiescent:
        for adapter in adapters:
            reason = adapter.at_terminal(sim)
            if reason:
                return ReplayOutcome(
                    "property", adapter.name, reason, executed, True, sim
                )
    return ReplayOutcome("none", None, None, executed, quiescent, sim)
