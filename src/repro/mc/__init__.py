"""repro.mc — systematic model checking of the paper's constructions.

Where the statistical benches sample schedules, this subsystem
*enumerates* them: bounded DFS/BFS over every scheduling choice, crash
subset, and crash time of a small instance, with

* deterministic state fingerprints (:mod:`repro.mc.fingerprint`) so
  converging branches share subtrees,
* sleep-set partial-order reduction (:mod:`repro.mc.reduction`) with a
  stats record proving the reduction ratio,
* property adapters (:mod:`repro.mc.properties`) for agreement /
  validity / termination, the C-properties of k-converge, and the Υf
  output-range condition,
* replayable, shrinkable, JSON round-tripping counterexamples
  (:mod:`repro.mc.counterexample`), and
* a perf-pool parallel mode (:mod:`repro.mc.parallel`).

Front door::

    from repro.mc import McInstance, check
    report = check(McInstance("fig1", n_processes=2), sweep=CrashSweep())
    assert report.ok, report.counterexamples[0].describe()
"""

from .counterexample import Counterexample, ReplayOutcome
from .explorer import (
    CheckReport,
    CheckResult,
    ExploreConfig,
    ExploreResult,
    ExploreStats,
    Explorer,
    RawViolation,
    check,
    explore_instance,
)
from .fingerprint import (
    FingerprintError,
    canonical_state,
    fingerprint,
    time_sensitive,
)
from .instances import (
    FAMILIES,
    CrashSweep,
    McInstance,
    build_simulation,
    family_of,
    instance_inputs,
    instance_properties,
    resolve_instance,
    sweep_instances,
)
from .parallel import (
    McShardSpec,
    ParallelExplorer,
    execute_mc_shard,
    make_shard_spec,
    shard_prefixes,
)
from .properties import (
    AgreementProperty,
    CallbackProperty,
    ConvergeAgreementProperty,
    ConvergeValidityProperty,
    PropertyAdapter,
    TerminationProperty,
    UpsilonOutputProperty,
    ValidityProperty,
)
from .reduction import ReductionStats, SleepSetReducer, independent

__all__ = [
    "AgreementProperty",
    "CallbackProperty",
    "CheckReport",
    "CheckResult",
    "ConvergeAgreementProperty",
    "ConvergeValidityProperty",
    "Counterexample",
    "CrashSweep",
    "ExploreConfig",
    "ExploreResult",
    "ExploreStats",
    "Explorer",
    "FAMILIES",
    "FingerprintError",
    "McInstance",
    "McShardSpec",
    "ParallelExplorer",
    "PropertyAdapter",
    "RawViolation",
    "ReductionStats",
    "ReplayOutcome",
    "SleepSetReducer",
    "TerminationProperty",
    "UpsilonOutputProperty",
    "ValidityProperty",
    "build_simulation",
    "canonical_state",
    "check",
    "execute_mc_shard",
    "explore_instance",
    "family_of",
    "fingerprint",
    "independent",
    "instance_inputs",
    "instance_properties",
    "make_shard_spec",
    "resolve_instance",
    "shard_prefixes",
    "sweep_instances",
    "time_sensitive",
]
