"""Property adapters — task specifications as exploration observers.

The explorer calls back into a small hook protocol:

* :meth:`PropertyAdapter.on_step` after every executed step (safety along
  the path);
* :meth:`PropertyAdapter.at_terminal` on quiescent states (no process
  left to schedule);
* :meth:`PropertyAdapter.at_horizon` when the depth bound cuts a branch;
* :meth:`PropertyAdapter.check_run` on a stopped simulation — the whole-run
  re-evaluation used by counterexample shrinking, where the minimizer can
  only look at the replayed end state.

Each hook returns ``None`` (property holds) or a human-readable reason
string (violation).  Adapters cover the task specs the benches already
check — k-set agreement/validity/termination for Fig. 1/Fig. 2, the
C-properties of k-converge, and the Υf output-range condition for the
Fig. 3 extraction.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Optional

from ..runtime.ops import Decide, Emit
from ..runtime.simulation import Simulation
from ..runtime.trace import StepRecord


class PropertyAdapter:
    """Base adapter: every hook passes by default."""

    name: str = "property"

    def on_step(
        self, sim: Simulation, record: StepRecord
    ) -> Optional[str]:
        return None

    def at_terminal(self, sim: Simulation) -> Optional[str]:
        return None

    def at_horizon(self, sim: Simulation) -> Optional[str]:
        return None

    def check_run(self, sim: Simulation) -> Optional[str]:
        """Evaluate on a stopped simulation (used by shrinking)."""
        return self.at_terminal(sim)


class AgreementProperty(PropertyAdapter):
    """At most ``k`` distinct decision values (k-set agreement)."""

    def __init__(self, k: int):
        self.k = k
        self.name = f"{k}-agreement"

    def _check(self, sim: Simulation) -> Optional[str]:
        values = set(sim.decisions().values())
        if len(values) > self.k:
            listing = ", ".join(sorted(repr(v) for v in values))
            return f"{len(values)} distinct decisions ({listing}) > k={self.k}"
        return None

    def on_step(self, sim, record):
        if type(record.op) is Decide:
            return self._check(sim)
        return None

    def at_terminal(self, sim):
        return self._check(sim)

    def check_run(self, sim):
        return self._check(sim)


class ValidityProperty(PropertyAdapter):
    """Every decision was some process's input."""

    name = "validity"

    def __init__(self, inputs: Mapping[int, Any]):
        self.allowed = set(inputs.values())

    def _bad(self, value: Any) -> Optional[str]:
        if value not in self.allowed:
            return f"decided {value!r}, which no process proposed"
        return None

    def on_step(self, sim, record):
        if type(record.op) is Decide:
            return self._bad(record.op.value)
        return None

    def at_terminal(self, sim):
        return self.check_run(sim)

    def check_run(self, sim):
        for value in sim.decisions().values():
            reason = self._bad(value)
            if reason:
                return reason
        return None


class TerminationProperty(PropertyAdapter):
    """A quiescent run must have every correct process decided."""

    name = "termination"

    def at_terminal(self, sim):
        undecided = [
            r.pid for r in sim.correct_runtimes() if not r.has_decided
        ]
        if undecided:
            return (
                f"run quiescent at t={sim.time} with undecided correct "
                f"processes {undecided}"
            )
        return None

    def check_run(self, sim):
        if sim.eligible():
            return None  # not quiescent: nothing to conclude
        return self.at_terminal(sim)


class ConvergeAgreementProperty(PropertyAdapter):
    """C-Agreement: a commit bounds the distinct picks by ``k``.

    Decisions are the ``(picked, committed)`` pairs a converge-driver
    protocol decides with.
    """

    def __init__(self, k: int):
        self.k = k
        self.name = f"c-agreement(k={k})"

    def _check(self, sim: Simulation) -> Optional[str]:
        decisions = sim.decisions()
        picks = {picked for (picked, _) in decisions.values()}
        if any(committed for (_, committed) in decisions.values()) \
                and len(picks) > self.k:
            listing = ", ".join(sorted(repr(v) for v in picks))
            return (
                f"a process committed yet {len(picks)} distinct values "
                f"were picked ({listing}) > k={self.k}"
            )
        return None

    def on_step(self, sim, record):
        if type(record.op) is Decide:
            return self._check(sim)
        return None

    def at_terminal(self, sim):
        return self._check(sim)

    def check_run(self, sim):
        return self._check(sim)


class ConvergeValidityProperty(PropertyAdapter):
    """C-Validity: every pick was some process's converge input."""

    name = "c-validity"

    def __init__(self, inputs: Mapping[int, Any]):
        self.allowed = set(inputs.values())

    def _check(self, sim: Simulation) -> Optional[str]:
        for picked, _ in sim.decisions().values():
            if picked not in self.allowed:
                return f"picked {picked!r}, which no process input"
        return None

    def on_step(self, sim, record):
        if type(record.op) is Decide:
            return self._check(sim)
        return None

    def at_terminal(self, sim):
        return self._check(sim)

    def check_run(self, sim):
        return self._check(sim)


class UpsilonOutputProperty(PropertyAdapter):
    """Range condition on emitted Υf outputs (Fig. 3 extraction).

    Every ``Emit`` must publish a non-empty subset of Π of size at least
    ``n + 1 − f``.  The *eventual* conditions (stability, and the output
    differing from ``correct(F)``) are not safety properties a bounded
    exploration can refute; they stay with the statistical benches.
    """

    def __init__(self, pid_set: frozenset, min_size: int = 1):
        self.pid_set = frozenset(pid_set)
        self.min_size = min_size
        self.name = f"upsilon-range(min={min_size})"

    def _bad(self, value: Any) -> Optional[str]:
        try:
            output = frozenset(value)
        except TypeError:
            return f"emitted non-set output {value!r}"
        if not output:
            return "emitted the empty set"
        if not output <= self.pid_set:
            return f"emitted {sorted(output)} ⊄ Π={sorted(self.pid_set)}"
        if len(output) < self.min_size:
            return (
                f"emitted {sorted(output)} with |U|={len(output)} < "
                f"n+1−f={self.min_size}"
            )
        return None

    def on_step(self, sim, record):
        if type(record.op) is Emit:
            return self._bad(record.op.value)
        return None

    def check_run(self, sim):
        for step in sim.trace.steps:
            if type(step.op) is Emit:
                reason = self._bad(step.op.value)
                if reason:
                    return reason
        return None

    def at_terminal(self, sim):
        return self.check_run(sim)


class CallbackProperty(PropertyAdapter):
    """Wrap an assertion-style callback as a terminal-state property.

    The callback receives the finished simulation and raises
    ``AssertionError`` on violation — the shape the old
    ``explore_all_schedules`` test helper used.
    """

    def __init__(self, callback: Callable[[Simulation], None],
                 name: str = "callback"):
        self.callback = callback
        self.name = name

    def at_terminal(self, sim):
        try:
            self.callback(sim)
        except AssertionError as exc:
            return str(exc) or "assertion failed"
        return None

    def check_run(self, sim):
        return self.at_terminal(sim)


def default_property_names(properties: Iterable[PropertyAdapter]) -> list:
    """The adapter names, in order (report/CLI helper)."""
    return [prop.name for prop in properties]
