"""Sleep-set partial-order reduction.

Two steps by *distinct* processes are independent when executing them in
either order from any state yields the same state and the same responses.
The explorer then needs only one of the two orders: after fully exploring
the subtree below sibling ``p``, later siblings put ``p`` to *sleep* and
child states drop sleeping processes from their candidate sets as long as
the executed step stays independent of the sleeper's pending step
(Godefroid's sleep sets).  Every Mazurkiewicz trace keeps at least one
representative interleaving, so all terminal states — and all safety
violations along the way — are preserved.

Soundness assumptions (enforced by :meth:`SleepSetReducer.applicable`):

* **Time-insensitive states only.**  Every step advances the global
  clock, so two orders of the same steps reach the same state only when
  nothing else observes the clock — no pending crash, no unstabilized
  detector history, no network (see
  :func:`repro.mc.fingerprint.time_sensitive`).  ``QueryFD`` is treated
  as a local step for the same reason: past stabilization its response is
  a constant.
* **Op-level independence** (:func:`independent`) is a static
  under-approximation: operations on distinct keys commute because
  objects are disjoint; same-key reads (and scans) commute; same-key
  snapshot updates commute iff they write distinct cells.  Everything
  else on a shared key is conservatively dependent, as are all messaging
  operations.
"""

from __future__ import annotations

import dataclasses
from typing import FrozenSet, Iterable

from ..runtime.ops import (
    Broadcast,
    Decide,
    Emit,
    Nop,
    Operation,
    QueryFD,
    Read,
    Receive,
    Send,
    SnapshotScan,
    SnapshotUpdate,
)
from ..runtime.simulation import Simulation
from .fingerprint import time_sensitive

#: Steps with no shared-state footprint.  ``QueryFD`` qualifies only in
#: time-insensitive states — the only states where the reducer runs.
_LOCAL_OPS = frozenset({Decide, Emit, Nop, QueryFD})
_NETWORK_OPS = frozenset({Send, Broadcast, Receive})


def independent(op_a: Operation, op_b: Operation) -> bool:
    """Do steps ``op_a`` and ``op_b`` (by distinct processes) commute?

    A static, conservative check on the operations alone; only meaningful
    in time-insensitive states (see the module docstring).
    """
    type_a, type_b = type(op_a), type(op_b)
    if type_a in _NETWORK_OPS or type_b in _NETWORK_OPS:
        return False
    if type_a in _LOCAL_OPS or type_b in _LOCAL_OPS:
        return True
    # Both shared-object operations from here on.
    if getattr(op_a, "key", None) != getattr(op_b, "key", None):
        return True
    if type_a is Read and type_b is Read:
        return True
    if type_a is SnapshotScan and type_b is SnapshotScan:
        return True
    if type_a is SnapshotUpdate and type_b is SnapshotUpdate:
        return op_a.index != op_b.index
    return False


@dataclasses.dataclass
class ReductionStats:
    """Proof of the reduction ratio, aggregated over one exploration."""

    #: Scheduler choices enabled across all expanded states.
    enabled: int = 0
    #: Choices actually branched on (``enabled − slept``).
    explored: int = 0
    #: Choices pruned because the process was asleep.
    slept: int = 0
    #: Expanded states where reduction was inhibited (time-sensitive).
    sensitive_states: int = 0

    @property
    def ratio(self) -> float:
        """Explored fraction of enabled choices (1.0 = no reduction)."""
        return self.explored / self.enabled if self.enabled else 1.0

    def merge(self, other: "ReductionStats") -> None:
        self.enabled += other.enabled
        self.explored += other.explored
        self.slept += other.slept
        self.sensitive_states += other.sensitive_states

    def to_dict(self) -> dict:
        body = dataclasses.asdict(self)
        body["ratio"] = self.ratio
        return body


class SleepSetReducer:
    """Sleep-set bookkeeping for the DFS explorer."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.stats = ReductionStats()

    def applicable(self, sim: Simulation) -> bool:
        """May sleep sets prune at this state without losing behaviours?"""
        return (
            self.enabled
            and sim.network is None
            and not time_sensitive(sim)
        )

    def child_sleep(
        self,
        sim: Simulation,
        executed_op: Operation,
        prior: Iterable[int],
    ) -> FrozenSet[int]:
        """The sleep set below an executed step.

        ``prior`` holds the parent's sleepers plus the earlier-explored
        siblings; a process stays asleep iff it is still schedulable and
        its pending step is independent of the step just executed.
        """
        runtimes = sim.runtimes
        keep = set()
        for pid in prior:
            runtime = runtimes.get(pid)
            if runtime is None or not runtime.schedulable:
                continue
            pending = runtime.pending_op
            if pending is not None and independent(executed_op, pending):
                keep.add(pid)
        return frozenset(keep)
