"""Checkable instances — picklable descriptors of what to model-check.

An :class:`McInstance` pins everything a deterministic exploration needs:
the protocol family, the system size, the resilience, the failure
pattern, and the detector-history parameters (stable value, stabilization
time, noise seed).  The descriptor is primitives-plus-frozensets only, so
it crosses process boundaries, hashes into perf cache keys, and
round-trips through JSON (:meth:`McInstance.to_dict`).

The family registry maps the paper's protocols — and the planted-bug
ablation variants — to builders for the protocol, the inputs, the
detector specification, and the default property set:

========================  =====================================  =========
family                    protocol                               detector
========================  =====================================  =========
``fig1``                  Fig. 1 Υ-based n-set agreement         Υ
``fig2``                  Fig. 2 Υf-based f-set agreement        Υf
``extraction``            Fig. 3 Υf extraction (from Ω)          Ω
``converge``              bare k-converge + Decide               —
``naive-converge``        ablation: converge without phase 2     —
``gladiators-only``       ablation: Fig. 1 without citizens      Υ
``no-stability-flag``     ablation: Fig. 1 without line 16       Υ
========================  =====================================  =========

For the converge families ``f`` doubles as the convergence parameter
``k`` (default ``n``).  When ``stable_value`` is unset, the detector's
stable output is chosen deterministically — the first legal value by
(size, lexicographic) order — and :func:`resolve_instance` pins it into
the descriptor so serialized instances are self-describing.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..analysis.trace_io import decode_value, encode_value
from ..core.ablations import (
    NaiveConvergeInstance,
    make_gladiators_only_set_agreement,
    make_no_stability_flag_set_agreement,
)
from ..core.converge import ConvergeInstance
from ..core.extraction import make_extraction_protocol
from ..core.f_resilient import make_upsilon_f_set_agreement
from ..core.samples import PhiMap
from ..core.set_agreement import make_upsilon_set_agreement
from ..detectors.base import DetectorSpec, StableHistory, seeded_noise
from ..detectors.omega import OmegaSpec
from ..detectors.upsilon import UpsilonFSpec, UpsilonSpec
from ..failures.environment import Environment
from ..failures.pattern import FailurePattern
from ..runtime.errors import HistoryError
from ..runtime.ops import Decide
from ..runtime.process import System
from ..runtime.simulation import Simulation
from .properties import (
    AgreementProperty,
    ConvergeAgreementProperty,
    ConvergeValidityProperty,
    PropertyAdapter,
    TerminationProperty,
    UpsilonOutputProperty,
    ValidityProperty,
)


@dataclasses.dataclass(frozen=True)
class McInstance:
    """One fully deterministic checkable instance."""

    protocol: str
    n_processes: int
    #: Resilience for ``fig2``/``extraction``; the converge parameter
    #: ``k`` for the converge families; ignored by ``fig1``.
    f: Optional[int] = None
    #: ``((pid, crash_time), ...)`` — the failure pattern.
    crashes: Tuple[Tuple[int, int], ...] = ()
    #: Detector stable output; ``None`` = deterministic first legal value.
    stable_value: Any = None
    stabilization_time: int = 0
    noise_seed: int = 0

    def __post_init__(self):
        object.__setattr__(
            self,
            "crashes",
            tuple(sorted((int(p), int(t)) for p, t in self.crashes)),
        )

    def describe(self) -> str:
        crashes = ", ".join(f"p{p}@{t}" for p, t in self.crashes) or "none"
        stable = (
            "auto" if self.stable_value is None else repr(self.stable_value)
        )
        return (
            f"{self.protocol} n+1={self.n_processes} f={self.f} "
            f"crashes=[{crashes}] stable={stable} "
            f"stab={self.stabilization_time}"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "protocol": self.protocol,
            "n_processes": self.n_processes,
            "f": self.f,
            "crashes": [[p, t] for p, t in self.crashes],
            "stable_value": encode_value(self.stable_value),
            "stabilization_time": self.stabilization_time,
            "noise_seed": self.noise_seed,
        }

    @classmethod
    def from_dict(cls, body: Mapping[str, Any]) -> "McInstance":
        f = body.get("f")
        return cls(
            protocol=body["protocol"],
            n_processes=int(body["n_processes"]),
            f=None if f is None else int(f),
            crashes=tuple(
                (int(p), int(t)) for p, t in body.get("crashes", ())
            ),
            stable_value=decode_value(body.get("stable_value")),
            stabilization_time=int(body.get("stabilization_time", 0)),
            noise_seed=int(body.get("noise_seed", 0)),
        )


# -- family registry ----------------------------------------------------------

_ProtocolBuilder = Callable[["McInstance", System, Environment], Any]
_PropertyBuilder = Callable[
    ["McInstance", System, Environment, Mapping[int, Any]],
    List[PropertyAdapter],
]


@dataclasses.dataclass(frozen=True)
class ProtocolFamily:
    name: str
    detector: Optional[str]  # "upsilon" | "upsilon_f" | "omega" | None
    terminating: bool
    build_protocol: _ProtocolBuilder
    build_properties: _PropertyBuilder
    has_inputs: bool = True


def _value_inputs(system: System) -> Dict[int, str]:
    return {pid: f"v{pid}" for pid in system.pids}


def _set_agreement_props(k: int, inputs) -> List[PropertyAdapter]:
    return [
        AgreementProperty(k),
        ValidityProperty(inputs),
        TerminationProperty(),
    ]


def _converge_k(instance: McInstance, system: System) -> int:
    return system.n if instance.f is None else instance.f


def _converge_protocol(factory):
    def build(instance, system, env):
        k = _converge_k(instance, system)

        def protocol(ctx, value):
            converge = factory(("mc", "conv"), k, system.n_processes)
            result = yield from converge.converge(ctx, value)
            yield Decide(result)

        return protocol

    return build


def _converge_props(instance, system, env, inputs):
    k = _converge_k(instance, system)
    return [
        ConvergeAgreementProperty(k),
        ConvergeValidityProperty(inputs),
        TerminationProperty(),
    ]


def _extraction_protocol(instance, system, env):
    return make_extraction_protocol(PhiMap(OmegaSpec(system), env))


FAMILIES: Dict[str, ProtocolFamily] = {
    "fig1": ProtocolFamily(
        "fig1",
        detector="upsilon",
        terminating=True,
        build_protocol=lambda i, s, e: make_upsilon_set_agreement(),
        build_properties=lambda i, s, e, inp: _set_agreement_props(s.n, inp),
    ),
    "fig2": ProtocolFamily(
        "fig2",
        detector="upsilon_f",
        terminating=True,
        build_protocol=lambda i, s, e: make_upsilon_f_set_agreement(e.f),
        build_properties=lambda i, s, e, inp: _set_agreement_props(e.f, inp),
    ),
    "extraction": ProtocolFamily(
        "extraction",
        detector="omega",
        terminating=False,
        build_protocol=_extraction_protocol,
        build_properties=lambda i, s, e, inp: [
            UpsilonOutputProperty(s.pid_set, e.min_correct)
        ],
        has_inputs=False,
    ),
    "converge": ProtocolFamily(
        "converge",
        detector=None,
        terminating=True,
        build_protocol=_converge_protocol(ConvergeInstance),
        build_properties=_converge_props,
    ),
    "naive-converge": ProtocolFamily(
        "naive-converge",
        detector=None,
        terminating=True,
        build_protocol=_converge_protocol(NaiveConvergeInstance),
        build_properties=_converge_props,
    ),
    "gladiators-only": ProtocolFamily(
        "gladiators-only",
        detector="upsilon",
        terminating=True,
        build_protocol=lambda i, s, e: make_gladiators_only_set_agreement(),
        build_properties=lambda i, s, e, inp: _set_agreement_props(s.n, inp),
    ),
    "no-stability-flag": ProtocolFamily(
        "no-stability-flag",
        detector="upsilon",
        terminating=True,
        build_protocol=lambda i, s, e: make_no_stability_flag_set_agreement(),
        build_properties=lambda i, s, e, inp: _set_agreement_props(s.n, inp),
    ),
}


def family_of(instance: McInstance) -> ProtocolFamily:
    family = FAMILIES.get(instance.protocol)
    if family is None:
        known = ", ".join(sorted(FAMILIES))
        raise ValueError(
            f"unknown protocol family {instance.protocol!r} (known: {known})"
        )
    return family


# -- builders -----------------------------------------------------------------


def _environment(instance: McInstance, system: System) -> Environment:
    if instance.f is None:
        return Environment.wait_free(system)
    return Environment(system, instance.f)


def _detector_spec(
    family: ProtocolFamily, system: System, env: Environment
) -> Optional[DetectorSpec]:
    if family.detector == "upsilon":
        return UpsilonSpec(system)
    if family.detector == "upsilon_f":
        return UpsilonFSpec(env)
    if family.detector == "omega":
        return OmegaSpec(system)
    return None


def build_pattern(instance: McInstance, system: System) -> FailurePattern:
    if instance.crashes:
        return FailurePattern.crash_at(system, dict(instance.crashes))
    return FailurePattern.failure_free(system)


def _stable_sort_key(value: Any):
    if isinstance(value, frozenset):
        return (1, len(value), tuple(sorted(repr(v) for v in value)))
    return (0, repr(value))


def choose_stable_value(
    spec: DetectorSpec,
    pattern: FailurePattern,
    requested: Any = None,
) -> Any:
    """A legal stable value, deterministically.

    With no request, pick the first legal value by (size, lexicographic)
    order — the same value on every machine and in every worker process.
    """
    if requested is not None:
        if not spec.is_legal_stable_value(pattern, requested):
            raise HistoryError(
                f"{spec.name}: requested stable value {requested!r} "
                f"illegal for [{pattern.describe()}]"
            )
        return requested
    legal = sorted(spec.legal_stable_values(pattern), key=_stable_sort_key)
    if not legal:
        raise HistoryError(
            f"{spec.name} has no legal stable value for "
            f"[{pattern.describe()}]"
        )
    return legal[0]


def build_history(
    instance: McInstance,
    spec: Optional[DetectorSpec],
    pattern: FailurePattern,
):
    if spec is None:
        return None
    stable = choose_stable_value(spec, pattern, instance.stable_value)
    noise = None
    if instance.stabilization_time > 0:
        noise = seeded_noise(
            instance.noise_seed, list(spec.noise_pool(pattern))
        )
    return StableHistory(stable, instance.stabilization_time, noise)


def resolve_instance(instance: McInstance) -> McInstance:
    """Pin the deterministic detector choice into the descriptor.

    A resolved instance carries its stable value explicitly, so a
    serialized counterexample is self-describing even if the default
    choice rule ever changes.
    """
    family = family_of(instance)
    system = System(instance.n_processes)
    env = _environment(instance, system)
    spec = _detector_spec(family, system, env)
    if spec is None or instance.stable_value is not None:
        return instance
    pattern = build_pattern(instance, system)
    stable = choose_stable_value(spec, pattern)
    return dataclasses.replace(instance, stable_value=stable)


def instance_inputs(instance: McInstance) -> Dict[int, Any]:
    family = family_of(instance)
    system = System(instance.n_processes)
    return _value_inputs(system) if family.has_inputs else {}


def build_simulation(instance: McInstance) -> Simulation:
    """A fresh simulation of the instance (deterministic: equal instances
    build behaviourally identical simulations)."""
    family = family_of(instance)
    system = System(instance.n_processes)
    env = _environment(instance, system)
    pattern = build_pattern(instance, system)
    spec = _detector_spec(family, system, env)
    history = build_history(instance, spec, pattern)
    protocol = family.build_protocol(instance, system, env)
    inputs = _value_inputs(system) if family.has_inputs else {}
    return Simulation(
        system, protocol, inputs=inputs, pattern=pattern, history=history
    )


def instance_properties(instance: McInstance) -> List[PropertyAdapter]:
    """The default property set checked for the instance's family."""
    family = family_of(instance)
    system = System(instance.n_processes)
    env = _environment(instance, system)
    inputs = _value_inputs(system) if family.has_inputs else {}
    return family.build_properties(instance, system, env, inputs)


# -- crash-pattern sweeping ---------------------------------------------------


@dataclasses.dataclass(frozen=True)
class CrashSweep:
    """Bounds for sweeping failure patterns in one ``check()`` call.

    Covers every crash subset of size ``1..max_crashes`` (further bounded
    by the environment's resilience and by "at least one correct
    process") combined with every assignment of ``crash_times`` to the
    victims.
    """

    max_crashes: int = 1
    crash_times: Tuple[int, ...] = (0,)

    def __post_init__(self):
        object.__setattr__(
            self, "crash_times", tuple(int(t) for t in self.crash_times)
        )


def sweep_instances(
    instance: McInstance, sweep: CrashSweep
) -> List[McInstance]:
    """The base instance plus one instance per swept failure pattern."""
    system = System(instance.n_processes)
    env = _environment(instance, system)
    limit = min(sweep.max_crashes, env.f, system.n)
    out = [instance]
    for size in range(1, limit + 1):
        for victims in itertools.combinations(system.pids, size):
            for times in itertools.product(sweep.crash_times, repeat=size):
                crashes = tuple(sorted(zip(victims, times)))
                if crashes == instance.crashes:
                    continue
                out.append(dataclasses.replace(instance, crashes=crashes))
    return out
