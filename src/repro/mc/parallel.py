"""Parallel exploration — sharding the scheduling tree over perf workers.

A model-checking *shard* is an instance plus a schedule prefix: the
worker replays the prefix and exhaustively explores the subtree below
it.  Sharding the root branching factor (one shard per length-``d``
prefix) makes the shards independent, so they fan out over the existing
:func:`repro.perf.executor.run_trials` process pool and land in the same
content-addressed :class:`~repro.perf.cache.TrialCache` as bench trials
(:class:`McShardSpec` carries the instance and config as canonical JSON
strings precisely so ``spec_key`` hashes them unchanged).

Two deliberate approximations versus a serial run:

* Sibling shards don't share sleep sets or visited-state tables, so a
  parallel exploration may visit *more* states than the serial one —
  verdicts and counterexamples are identical, the stats are an upper
  bound.
* Each shard re-checks its prefix, so a violation inside a shared prefix
  is reported by every shard below it; :func:`merge_shard_results`
  deduplicates counterexamples by (schedule, kind, prop, reason).
"""

from __future__ import annotations

import dataclasses
import json
import time
from typing import List, Optional, Sequence, Tuple

from ..runtime.errors import ReproError
from .explorer import CheckResult, ExploreConfig, explore_instance
from .instances import McInstance, build_simulation, resolve_instance


@dataclasses.dataclass(frozen=True)
class McShardSpec:
    """One shard of a model-checking run (picklable, cache-keyable).

    The instance and configuration travel as canonical JSON strings so
    that :func:`repro.perf.spec.spec_key` — which hashes the sorted JSON
    of ``dataclasses.asdict(spec)`` — keys shards with zero changes to
    the perf layer.
    """

    instance_json: str
    config_json: str
    prefix: Tuple[int, ...] = ()

    kind = "mc_shard"

    def instance(self) -> McInstance:
        return McInstance.from_dict(json.loads(self.instance_json))

    def config(self) -> ExploreConfig:
        return ExploreConfig(**json.loads(self.config_json))


def make_shard_spec(
    instance: McInstance,
    config: ExploreConfig,
    prefix: Sequence[int] = (),
) -> McShardSpec:
    instance = resolve_instance(instance)
    return McShardSpec(
        instance_json=json.dumps(
            instance.to_dict(), sort_keys=True, separators=(",", ":")
        ),
        config_json=json.dumps(
            config.to_dict(), sort_keys=True, separators=(",", ":")
        ),
        prefix=tuple(prefix),
    )


def execute_mc_shard(spec: McShardSpec) -> CheckResult:
    """Worker entry point (dispatched from ``perf.spec.execute_trial``)."""
    return explore_instance(
        spec.instance(), spec.config(), prefix=spec.prefix
    )


def shard_prefixes(
    instance: McInstance,
    config: ExploreConfig,
    depth: int = 1,
) -> List[Tuple[int, ...]]:
    """All schedule prefixes of length ``depth`` (shorter when a branch
    terminates or errors first — those stay as leaf shards)."""
    instance = resolve_instance(instance)
    depth = min(depth, config.max_depth)
    frontier: List[Tuple[int, ...]] = [()]
    for _ in range(depth):
        next_frontier: List[Tuple[int, ...]] = []
        for prefix in frontier:
            sim = build_simulation(instance)
            try:
                sim.run_script(prefix)
            except ReproError:
                next_frontier.append(prefix)  # error leaf: keep as shard
                continue
            eligible = sim.eligible()
            if not eligible:
                next_frontier.append(prefix)  # terminal leaf
            else:
                next_frontier.extend(prefix + (pid,) for pid in eligible)
        frontier = next_frontier
    return frontier


def merge_shard_results(
    instance: McInstance,
    config: ExploreConfig,
    shards: Sequence[Optional[CheckResult]],
) -> CheckResult:
    """Combine shard results into one instance-level :class:`CheckResult`.

    ``None`` shards (quarantined by a resilient executor) are skipped and
    mark the merged stats *truncated*: the verdict is still sound for the
    subtrees that ran, but the exploration no longer covers everything.

    Shards ran side by side, so their stats fold via
    :meth:`~repro.mc.explorer.ExploreStats.merge_concurrent`: compute
    time (``cpu_seconds``) sums, wall time takes the max — summing the
    overlapping shard walls understated the reported throughput by
    roughly the worker count.  Callers that timed the whole fan-out
    (:class:`ParallelExplorer`) overwrite ``wall_seconds`` with the
    measured elapsed time, which also covers dispatch overhead.
    """
    merged = CheckResult(
        instance=resolve_instance(instance),
        config=config,
        stats=None,  # type: ignore[arg-type]  # filled below
        reduction=None,  # type: ignore[arg-type]
        counterexamples=[],
    )
    from .explorer import ExploreStats
    from .reduction import ReductionStats

    stats = ExploreStats()
    reduction = ReductionStats()
    seen = set()
    for shard in shards:
        if shard is None:
            stats.truncated = True
            continue
        stats.merge_concurrent(shard.stats)
        reduction.merge(shard.reduction)
        for ce in shard.counterexamples:
            key = (ce.schedule, ce.kind, ce.prop, ce.reason)
            if key in seen:
                continue  # same prefix violation, reported by a sibling
            seen.add(key)
            merged.counterexamples.append(ce)
    merged.stats = stats
    merged.reduction = reduction
    return merged


class ParallelExplorer:
    """Shard one instance's root branching across perf workers.

    Parameters
    ----------
    jobs:
        Worker process count (``None`` lets ``run_trials`` pick).
    shard_depth:
        Prefix length to shard on; depth 1 gives at most ``n`` shards,
        depth 2 up to ``n²`` — raise it when cores outnumber processes.
    cache:
        Optional :class:`~repro.perf.cache.TrialCache`; shards of an
        unchanged instance/config are content-addressed hits.
    batch_size:
        Shards per dispatched batch (``run_trials``'s ``chunk_size``);
        ``None`` means ~2 batches per worker.
    retries / trial_timeout / journal / quarantine:
        Resilience knobs, forwarded verbatim to
        :func:`~repro.perf.executor.run_trials`.  A shard that exhausts
        its retries is quarantined and its subtree marks the merged
        stats truncated instead of aborting the exploration.
    """

    def __init__(self, jobs: Optional[int] = None, shard_depth: int = 1,
                 cache=None, *, batch_size: Optional[int] = None,
                 retries: int = 0,
                 trial_timeout: Optional[float] = None,
                 journal=None, quarantine=None, collector=None):
        self.jobs = jobs
        self.shard_depth = shard_depth
        self.cache = cache
        self.batch_size = batch_size
        self.retries = retries
        self.trial_timeout = trial_timeout
        self.journal = journal
        self.quarantine = quarantine
        self.collector = collector

    def explore(
        self,
        instance: McInstance,
        config: Optional[ExploreConfig] = None,
    ) -> CheckResult:
        from ..perf.executor import run_trials

        config = config if config is not None else ExploreConfig()
        instance = resolve_instance(instance)
        started = time.perf_counter()
        prefixes = shard_prefixes(instance, config, self.shard_depth)
        specs = [
            make_shard_spec(instance, config, prefix) for prefix in prefixes
        ]
        results = run_trials(
            specs, jobs=self.jobs, cache=self.cache,
            chunk_size=self.batch_size,
            retries=self.retries, trial_timeout=self.trial_timeout,
            journal=self.journal, quarantine=self.quarantine,
            collector=self.collector,
        )
        merged = merge_shard_results(instance, config, results)
        # Measured elapsed of the whole fan-out (sharding + dispatch +
        # slowest shard) — the honest denominator for states/second.
        merged.stats.wall_seconds = time.perf_counter() - started
        return merged


def run_check_shards(
    instances: Sequence[McInstance],
    config: ExploreConfig,
    jobs: Optional[int] = None,
    cache=None,
    *,
    batch_size: Optional[int] = None,
    retries: int = 0,
    trial_timeout: Optional[float] = None,
    journal=None,
    quarantine=None,
    collector=None,
) -> List[Optional[CheckResult]]:
    """The ``check(jobs > 1)`` backend.

    A single instance is sharded at its root branching; a crash sweep
    already has natural parallelism, so each swept instance becomes one
    shard.  With the resilience knobs set, a quarantined swept instance
    leaves ``None`` in its result slot.
    """
    if len(instances) == 1:
        explorer = ParallelExplorer(
            jobs=jobs, cache=cache, batch_size=batch_size, retries=retries,
            trial_timeout=trial_timeout, journal=journal,
            quarantine=quarantine, collector=collector,
        )
        return [explorer.explore(instances[0], config)]
    from ..perf.executor import run_trials

    specs = [make_shard_spec(instance, config) for instance in instances]
    return run_trials(
        specs, jobs=jobs, cache=cache, chunk_size=batch_size,
        retries=retries,
        trial_timeout=trial_timeout, journal=journal, quarantine=quarantine,
        collector=collector,
    )
