"""Bounded explicit-state exploration of scheduling nondeterminism.

The explorer walks the tree of scheduling choices of a deterministic
simulation factory.  Three mechanisms replace the old tests' blind
re-execution of every schedule from scratch:

* **Prefix-sharing replay** — descending into a child costs one
  ``Simulation.step``; only backtracking to an earlier branch rebuilds
  the simulation and replays the shared prefix (generators cannot be
  cloned).  The stats record counts both (``replays``, ``replay_steps``).
* **Visited-state deduplication** — states are keyed by their
  :func:`repro.mc.fingerprint.fingerprint`; a branch is pruned when the
  same state was already expanded no deeper and with a sleep set no
  larger (the covering condition that keeps sleep sets + caching sound).
* **Sleep-set partial-order reduction**
  (:mod:`repro.mc.reduction`) in time-insensitive states, DFS only.

Properties are observed through :mod:`repro.mc.properties` hooks.  A
depth-bounded exploration of a non-terminating protocol is a *bounded
horizon* check: branches cut at the bound are counted in
``stats.depth_exhausted`` and are violations only when the configuration
demands progress (``require_progress``), so Fig. 1's unfair infinite
branches (a solo gladiator spinning forever) don't count as bugs while
the livelock ablations — which cannot terminate on *any* branch — do.

:func:`check` is the subsystem's front door: one call covers schedules ×
crash subsets × crash times (via
:func:`repro.mc.instances.sweep_instances`) and returns a
:class:`CheckReport` whose counterexamples replay deterministically.
"""

from __future__ import annotations

import dataclasses
import time as _time
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..obs.metrics import MetricsRegistry
from ..runtime.errors import ReproError
from ..runtime.simulation import Simulation
from .checkpoint import SimulationJournal
from .counterexample import Counterexample
from .fingerprint import FingerprintError, fingerprint
from .instances import (
    CrashSweep,
    McInstance,
    build_simulation,
    instance_properties,
    resolve_instance,
    sweep_instances,
)
from .properties import PropertyAdapter
from .reduction import ReductionStats, SleepSetReducer


@dataclasses.dataclass(frozen=True)
class ExploreConfig:
    """Exploration bounds and strategy knobs (picklable, JSON-able)."""

    max_depth: int = 40
    por: bool = True
    dedup: bool = True
    strategy: str = "dfs"  # "dfs" | "bfs"
    first_violation: bool = True
    #: Treat depth-bound exhaustion as a "no-termination" violation.
    require_progress: bool = False
    max_states: Optional[int] = None
    #: Auto-shrink counterexamples via ``minimize_schedule``.
    shrink: bool = True
    #: Backtrack by restoring checkpoints (:mod:`repro.mc.checkpoint`)
    #: instead of rebuilding + replaying the schedule prefix.  DFS only;
    #: auto-disabled for message-passing runs.  Identical verdicts and
    #: state counts either way — this is purely a cost knob, kept
    #: switchable so the differential tests can pin the equivalence.
    checkpoint: bool = True

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class ExploreStats:
    """What the exploration did (and how exhaustive it was)."""

    #: State entries: root + every successful step into a state,
    #: including entries immediately pruned by the visited set.
    states_visited: int = 0
    #: States actually expanded or evaluated as leaves (post-pruning).
    states_distinct: int = 0
    pruned_visited: int = 0
    transitions_explored: int = 0
    complete_schedules: int = 0
    depth_exhausted: int = 0
    replays: int = 0
    replay_steps: int = 0
    #: Checkpoint-restore backtracking (replaces replays when enabled).
    restores: int = 0
    #: Generator rematerializations after a restore detached one (the
    #: honest residue of "replay-free": each counts a memo miss).
    gen_replays: int = 0
    gen_replay_steps: int = 0
    max_depth: int = 0
    truncated: bool = False
    wall_seconds: float = 0.0
    #: Compute time summed across shards.  For a serial exploration this
    #: equals ``wall_seconds``; after :meth:`merge_concurrent` the two
    #: diverge — ``wall_seconds`` stays elapsed time, ``cpu_seconds``
    #: keeps the total work.
    cpu_seconds: float = 0.0

    @property
    def states_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.states_visited / self.wall_seconds

    def merge(self, other: "ExploreStats") -> None:
        """Fold in stats from work that ran *serially* after this work
        (wall times add).  For shards that ran side by side use
        :meth:`merge_concurrent` — summing concurrent walls divides the
        reported throughput by the shard count."""
        self.states_visited += other.states_visited
        self.states_distinct += other.states_distinct
        self.pruned_visited += other.pruned_visited
        self.transitions_explored += other.transitions_explored
        self.complete_schedules += other.complete_schedules
        self.depth_exhausted += other.depth_exhausted
        self.replays += other.replays
        self.replay_steps += other.replay_steps
        self.restores += other.restores
        self.gen_replays += other.gen_replays
        self.gen_replay_steps += other.gen_replay_steps
        self.max_depth = max(self.max_depth, other.max_depth)
        self.truncated = self.truncated or other.truncated
        self.wall_seconds += other.wall_seconds
        self.cpu_seconds += other.cpu_seconds

    def merge_concurrent(self, other: "ExploreStats") -> None:
        """Fold in stats from work that ran *concurrently* with this work:
        wall time is the max (a lower bound on true elapsed — callers
        with a measured elapsed time should overwrite ``wall_seconds``
        with it), compute time still sums."""
        wall = max(self.wall_seconds, other.wall_seconds)
        self.merge(other)
        self.wall_seconds = wall

    def to_dict(self) -> Dict[str, Any]:
        body = dataclasses.asdict(self)
        body["states_per_second"] = self.states_per_second
        return body


@dataclasses.dataclass(frozen=True)
class RawViolation:
    """A violation as the explorer saw it (pre-bundling)."""

    kind: str  # "error" | "property" | "no-termination"
    prop: Optional[str]
    reason: str
    schedule: Tuple[int, ...]
    step: int


@dataclasses.dataclass
class ExploreResult:
    stats: ExploreStats
    reduction: ReductionStats
    violations: List[RawViolation]

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def exhaustive(self) -> bool:
        """Did the exploration cover every behaviour within the bounds?"""
        return not self.stats.truncated


class _Frame:
    __slots__ = (
        "depth", "candidates", "index", "sleep", "executed", "por", "cp",
    )

    def __init__(self, depth, candidates, sleep, por):
        self.depth = depth
        self.candidates = candidates
        self.index = 0
        self.sleep = sleep
        self.executed = []  # (pid, op) per successfully explored sibling
        self.por = por
        self.cp = None  # checkpoint token (checkpointed DFS only)


class Explorer:
    """One bounded exploration of ``make_sim()``'s scheduling tree.

    Parameters
    ----------
    make_sim:
        Zero-argument factory; must build behaviourally identical
        simulations on every call (the replay soundness requirement).
    properties:
        :class:`~repro.mc.properties.PropertyAdapter` observers.
    config:
        Bounds and strategy.
    prefix:
        A schedule to replay (with property checks) before exploring —
        the sharding hook used by :class:`~repro.mc.parallel.ParallelExplorer`.
    """

    def __init__(
        self,
        make_sim: Callable[[], Simulation],
        properties: Sequence[PropertyAdapter] = (),
        config: Optional[ExploreConfig] = None,
        prefix: Sequence[int] = (),
    ):
        self._make_sim = make_sim
        self._properties = list(properties)
        self.config = config if config is not None else ExploreConfig()
        self._prefix = tuple(prefix)
        self.stats = ExploreStats()
        self._reducer = SleepSetReducer(enabled=self.config.por)
        self.violations: List[RawViolation] = []
        self._stop = False
        self._dedup = self.config.dedup
        self._journal: Optional[SimulationJournal] = None

    # -- plumbing ------------------------------------------------------------

    def _replay(self, schedule: Sequence[int]) -> Simulation:
        sim = self._make_sim()
        for pid in schedule:
            sim.step(pid)
        self.stats.replays += 1
        self.stats.replay_steps += len(schedule)
        return sim

    def _record_violation(self, kind, prop, reason, schedule) -> None:
        self.violations.append(
            RawViolation(kind, prop, reason, tuple(schedule), len(schedule))
        )
        if self.config.first_violation:
            self._stop = True

    def _check_step(self, sim, record, schedule) -> bool:
        found = False
        for prop in self._properties:
            reason = prop.on_step(sim, record)
            if reason:
                self._record_violation("property", prop.name, reason, schedule)
                found = True
        return found

    def _leaf(self, sim, schedule, terminal: bool) -> None:
        if terminal:
            self.stats.complete_schedules += 1
            for prop in self._properties:
                reason = prop.at_terminal(sim)
                if reason:
                    self._record_violation(
                        "property", prop.name, reason, schedule
                    )
        else:
            self.stats.depth_exhausted += 1
            for prop in self._properties:
                reason = prop.at_horizon(sim)
                if reason:
                    self._record_violation(
                        "property", prop.name, reason, schedule
                    )
            if self.config.require_progress:
                self._record_violation(
                    "no-termination",
                    None,
                    f"no termination within depth bound "
                    f"{self.config.max_depth}",
                    schedule,
                )

    def _run_prefix(self, sim: Simulation, schedule: List[int]) -> bool:
        """Replay the shard prefix with property checks.  False = abort."""
        for pid in self._prefix:
            try:
                record = sim.step(pid)
            except ReproError as exc:
                self.stats.transitions_explored += 1
                self._record_violation(
                    "error", None, str(exc), schedule + [pid]
                )
                return False
            schedule.append(pid)
            self.stats.transitions_explored += 1
            self._check_step(sim, record, schedule)
            if self._stop:
                return False
        return True

    # -- entry ---------------------------------------------------------------

    def explore(self) -> ExploreResult:
        started = _time.perf_counter()
        if self.config.strategy == "dfs":
            self._dfs()
        elif self.config.strategy == "bfs":
            self._bfs()
        else:
            raise ValueError(
                f"unknown exploration strategy {self.config.strategy!r}"
            )
        self.stats.wall_seconds = _time.perf_counter() - started
        self.stats.cpu_seconds = self.stats.wall_seconds
        return ExploreResult(
            self.stats, self._reducer.stats, list(self.violations)
        )

    def _fingerprint(self, sim) -> Optional[str]:
        """The current state's fingerprint — incremental when a journal is
        attached, from-scratch otherwise.  An unencodable state disables
        deduplication for the rest of this exploration (soundness over
        speed: exploring without merging is always correct) and returns
        ``None``."""
        try:
            if self._journal is not None:
                return self._journal.digest()
            return fingerprint(sim)
        except FingerprintError:
            self._dedup = False
            return None

    # -- DFS -----------------------------------------------------------------

    def _enter(self, sim, schedule, sleep, visited) -> Optional[_Frame]:
        config = self.config
        stats = self.stats
        depth = len(schedule)
        stats.states_visited += 1
        if depth > stats.max_depth:
            stats.max_depth = depth
        if (
            config.max_states is not None
            and stats.states_visited > config.max_states
        ):
            stats.truncated = True
            self._stop = True
            return None
        eligible = sim.eligible()
        if not eligible:
            stats.states_distinct += 1
            self._leaf(sim, schedule, terminal=True)
            return None
        if depth >= config.max_depth:
            stats.states_distinct += 1
            self._leaf(sim, schedule, terminal=False)
            return None
        por = self._reducer.applicable(sim)
        if not por:
            sleep = frozenset()  # a full expansion covers any sleep set
        if self._dedup:
            fp = self._fingerprint(sim)
            if fp is not None:
                entries = visited.get(fp)
                if entries is None:
                    visited[fp] = [(depth, sleep)]
                else:
                    for seen_depth, seen_sleep in entries:
                        if seen_depth <= depth and seen_sleep <= sleep:
                            stats.pruned_visited += 1
                            return None
                    entries.append((depth, sleep))
        stats.states_distinct += 1
        reduction = self._reducer.stats
        reduction.enabled += len(eligible)
        if por:
            candidates = [p for p in eligible if p not in sleep]
            reduction.slept += len(eligible) - len(candidates)
        else:
            candidates = eligible
            if self.config.por:
                reduction.sensitive_states += 1
        reduction.explored += len(candidates)
        return _Frame(depth, candidates, sleep, por)

    def _dfs(self) -> None:
        sim = self._make_sim()
        self._dedup = self.config.dedup and sim.network is None
        journal: Optional[SimulationJournal] = None
        if self.config.checkpoint and sim.network is None:
            journal = SimulationJournal(sim)
        self._journal = journal
        try:
            self._dfs_loop(sim, journal)
        finally:
            if journal is not None:
                self.stats.restores += journal.restores
                self.stats.gen_replays += journal.gen_replays
                self.stats.gen_replay_steps += journal.gen_replay_steps
                self._journal = None

    def _dfs_loop(
        self, sim: Simulation, journal: Optional[SimulationJournal]
    ) -> None:
        schedule: List[int] = []
        if not self._run_prefix(sim, schedule):
            return
        visited: Dict[str, list] = {}
        frames: List[_Frame] = []
        root = self._enter(sim, schedule, frozenset(), visited)
        if root is not None:
            if journal is not None:
                root.cp = journal.checkpoint()
            frames.append(root)
        dirty = False
        while frames and not self._stop:
            frame = frames[-1]
            if frame.index >= len(frame.candidates):
                frames.pop()
                continue
            pid = frame.candidates[frame.index]
            frame.index += 1
            if dirty or len(schedule) != frame.depth:
                # Backtrack: restore the frame's checkpoint (O(processes)
                # + undo of the abandoned branch's deltas), or rebuild
                # and replay the prefix when checkpointing is off.
                if journal is not None:
                    journal.restore(frame.cp)
                else:
                    sim = self._replay(schedule[: frame.depth])
                del schedule[frame.depth:]
                dirty = False
            try:
                record = sim.step(pid)
            except ReproError as exc:
                self.stats.transitions_explored += 1
                self._record_violation(
                    "error", None, str(exc), schedule + [pid]
                )
                dirty = True  # the failed step may have mutated memory
                continue
            schedule.append(pid)
            self.stats.transitions_explored += 1
            if self._check_step(sim, record, schedule):
                continue  # don't descend below a violating step
            frame.executed.append((pid, record.op))
            child_sleep: frozenset = frozenset()
            if frame.por:
                prior = set(frame.sleep)
                prior.update(p for p, _ in frame.executed[:-1])
                child_sleep = self._reducer.child_sleep(
                    sim, record.op, prior
                )
            child = self._enter(sim, schedule, child_sleep, visited)
            if child is not None:
                if journal is not None:
                    child.cp = journal.checkpoint()
                frames.append(child)

    # -- BFS -----------------------------------------------------------------
    #
    # Breadth-first exploration finds *shortest* violating schedules at the
    # cost of one full replay per expansion; sleep sets do not apply (they
    # are a DFS notion), but fingerprint deduplication does — BFS visits
    # states in nondecreasing depth, so the first visit is minimal.

    def _bfs_enter(self, sim, schedule, visited, queue) -> None:
        config = self.config
        stats = self.stats
        depth = len(schedule)
        stats.states_visited += 1
        if depth > stats.max_depth:
            stats.max_depth = depth
        if (
            config.max_states is not None
            and stats.states_visited > config.max_states
        ):
            stats.truncated = True
            self._stop = True
            return
        eligible = sim.eligible()
        if not eligible:
            stats.states_distinct += 1
            self._leaf(sim, list(schedule), terminal=True)
            return
        if depth >= config.max_depth:
            stats.states_distinct += 1
            self._leaf(sim, list(schedule), terminal=False)
            return
        if self._dedup:
            fp = self._fingerprint(sim)
            if fp is not None:
                if fp in visited:
                    stats.pruned_visited += 1
                    return
                visited.add(fp)
        stats.states_distinct += 1
        reduction = self._reducer.stats
        reduction.enabled += len(eligible)
        reduction.explored += len(eligible)
        queue.append(tuple(schedule))

    def _bfs(self) -> None:
        sim = self._make_sim()
        self._dedup = self.config.dedup and sim.network is None
        schedule: List[int] = []
        if not self._run_prefix(sim, schedule):
            return
        visited: set = set()
        queue: deque = deque()
        self._bfs_enter(sim, schedule, visited, queue)
        while queue and not self._stop:
            base = queue.popleft()
            sim = self._replay(base)
            for pid in sim.eligible():
                if self._stop:
                    break
                child = self._replay(base)
                try:
                    record = child.step(pid)
                except ReproError as exc:
                    self.stats.transitions_explored += 1
                    self._record_violation(
                        "error", None, str(exc), list(base) + [pid]
                    )
                    continue
                self.stats.transitions_explored += 1
                extended = list(base) + [pid]
                if self._check_step(child, record, extended):
                    continue
                self._bfs_enter(child, extended, visited, queue)


# -- instance-level checking --------------------------------------------------


@dataclasses.dataclass
class CheckResult:
    """One instance's exploration outcome (picklable, JSON-able)."""

    instance: McInstance
    config: ExploreConfig
    stats: ExploreStats
    reduction: ReductionStats
    counterexamples: List[Counterexample]

    @property
    def ok(self) -> bool:
        return not self.counterexamples

    def to_dict(self) -> Dict[str, Any]:
        return {
            "instance": self.instance.to_dict(),
            "config": self.config.to_dict(),
            "stats": self.stats.to_dict(),
            "reduction": self.reduction.to_dict(),
            "ok": self.ok,
            "counterexamples": [
                ce.to_dict() for ce in self.counterexamples
            ],
        }


@dataclasses.dataclass
class CheckReport:
    """Aggregate over a (possibly swept) :func:`check` call."""

    results: List[CheckResult]
    #: Measured wall time of the whole call, set by :func:`check` when the
    #: per-result walls overlapped (``jobs > 1``).  ``total_stats`` uses
    #: it in place of the summed shard walls, so parallel throughput is
    #: states over *elapsed* time, not over total cpu time.
    elapsed_seconds: Optional[float] = None

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def counterexamples(self) -> List[Counterexample]:
        return [ce for r in self.results for ce in r.counterexamples]

    @property
    def instances_checked(self) -> int:
        return len(self.results)

    def total_stats(self) -> ExploreStats:
        total = ExploreStats()
        if self.elapsed_seconds is None:
            for result in self.results:
                total.merge(result.stats)
        else:
            for result in self.results:
                total.merge_concurrent(result.stats)
            total.wall_seconds = self.elapsed_seconds
        return total

    def total_reduction(self) -> ReductionStats:
        total = ReductionStats()
        for result in self.results:
            total.merge(result.reduction)
        return total

    def record_metrics(self, registry: MetricsRegistry) -> None:
        """Publish the exploration statistics as obs metrics."""
        stats = self.total_stats()
        reduction = self.total_reduction()
        states = registry.counter("mc_states", "model-checker state counts")
        states.inc("visited", stats.states_visited)
        states.inc("distinct", stats.states_distinct)
        states.inc("pruned_visited", stats.pruned_visited)
        transitions = registry.counter(
            "mc_transitions", "scheduler choices during exploration"
        )
        transitions.inc("explored", stats.transitions_explored)
        transitions.inc("enabled", reduction.enabled)
        transitions.inc("slept", reduction.slept)
        leaves = registry.counter("mc_leaves", "exploration leaves")
        leaves.inc("complete", stats.complete_schedules)
        leaves.inc("depth_exhausted", stats.depth_exhausted)
        registry.counter(
            "mc_counterexamples", "violations found"
        ).inc(amount=len(self.counterexamples))
        registry.gauge("mc_max_depth", "deepest explored state").set(
            stats.max_depth
        )
        registry.gauge("mc_wall_seconds", "exploration wall time").set(
            stats.wall_seconds
        )
        registry.gauge(
            "mc_reduction_ratio", "explored / enabled transitions"
        ).set(reduction.ratio)
        registry.gauge(
            "mc_states_per_second", "visited states per wall second"
        ).set(stats.states_per_second)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "instances_checked": self.instances_checked,
            "elapsed_seconds": self.elapsed_seconds,
            "stats": self.total_stats().to_dict(),
            "reduction": self.total_reduction().to_dict(),
            "results": [result.to_dict() for result in self.results],
        }


def explore_instance(
    instance: McInstance,
    config: Optional[ExploreConfig] = None,
    prefix: Sequence[int] = (),
) -> CheckResult:
    """Explore one instance and bundle its violations as counterexamples."""
    instance = resolve_instance(instance)
    config = config if config is not None else ExploreConfig()
    explorer = Explorer(
        lambda: build_simulation(instance),
        instance_properties(instance),
        config,
        prefix=prefix,
    )
    result = explorer.explore()
    counterexamples = []
    for violation in result.violations:
        bundle = Counterexample.from_violation(instance, violation)
        if config.shrink and bundle.kind in ("property", "error"):
            bundle = bundle.shrink()
        counterexamples.append(bundle)
    return CheckResult(
        instance, config, result.stats, result.reduction, counterexamples
    )


def check(
    instance: McInstance,
    config: Optional[ExploreConfig] = None,
    sweep: Optional[CrashSweep] = None,
    jobs: int = 1,
    cache=None,
    *,
    batch_size: Optional[int] = None,
    retries: int = 0,
    trial_timeout: Optional[float] = None,
    journal=None,
    quarantine=None,
    collector=None,
) -> CheckReport:
    """Model-check an instance — schedules × crash subsets × crash times.

    With ``sweep``, the failure patterns of
    :func:`~repro.mc.instances.sweep_instances` are each explored in
    full.  With ``jobs > 1`` the work is fanned out over
    :func:`repro.perf.run_trials` workers (sharding the root branching
    factor when there is only one instance to check); the resilience
    knobs (``retries``, ``trial_timeout``, ``journal``, ``quarantine``)
    apply only on that fan-out path and degrade a quarantined shard or
    swept instance to a truncated/omitted result instead of aborting.
    """
    config = config if config is not None else ExploreConfig()
    instances = (
        sweep_instances(instance, sweep) if sweep is not None else [instance]
    )
    if jobs and jobs > 1:
        from .parallel import run_check_shards  # deferred: import cycle

        started = _time.perf_counter()
        results = run_check_shards(
            instances, config, jobs=jobs, cache=cache,
            batch_size=batch_size,
            retries=retries, trial_timeout=trial_timeout,
            journal=journal, quarantine=quarantine, collector=collector,
        )
        elapsed = _time.perf_counter() - started
        results = [r for r in results if r is not None]
        return CheckReport(results, elapsed_seconds=elapsed)
    results = [explore_instance(i, config) for i in instances]
    return CheckReport(results)
