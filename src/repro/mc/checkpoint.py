"""Checkpointed backtracking for the explorer (replay-free DFS).

The explorer's DFS historically backtracked by rebuilding the simulation
and replaying the shared schedule prefix — O(depth) generator steps and
shared-object operations per backtrack, which profiling put at ~⅓ of the
exploration budget (the rest being fingerprints, now incremental too; see
:mod:`repro.mc.fingerprint`).

:class:`SimulationJournal` removes the replays.  Attached to a fresh
simulation it takes over post-step bookkeeping (``Simulation.step`` calls
:meth:`advance` instead of ``runtime.resume``) and maintains, per step:

* the **memory undo journal** (:class:`repro.memory.base.MemoryJournal`)
  — reverse deltas scoped to the keys each step touched;
* the **incremental fingerprint**
  (:class:`repro.mc.fingerprint.FingerprintState`) — per-process blake2b
  chains plus per-key memory fragments, wired to the memory journal's
  ``on_touch``;
* a per-process **response log** (everything the process observed, in
  order) and a **history memo** mapping a process's chain digest to the
  step outcome it produced.

:meth:`checkpoint` is O(processes): scalar runtime fields, the chain
snapshot, and marks into the shared logs.  :meth:`restore` undoes memory
deltas back to the mark, truncates the trace and response logs, and
resets the runtime scalars — **without** touching protocol generators.

Generators cannot be rewound, so a restore that moves a process back past
steps its generator already took *detaches* the generator
(:meth:`repro.runtime.process.ProcessRuntime.detach_generator`).  A
detached process then serves steps virtually from the history memo: the
chain digest after folding in the new ``(op, response)`` identifies the
exact observation sequence, and protocols are deterministic in their
observations (the same assumption fingerprint dedup rests on), so the
memoized ``pending_op`` / return value *is* the step's outcome.  Only on
a memo miss — the first time a branch pushes a process past everything
it has ever executed — is a generator rebuilt and fast-forwarded through
the response log (``gen_replays`` / ``gen_replay_steps`` count exactly
this residual work; DFS over a tree re-executes each process-local
prefix at most once, so the counters collapse toward zero relative to
the old whole-run replays).

Not supported: message-passing runs (mailbox state has no undo journal)
— the journal refuses to attach when a network is present, and the
explorer falls back to rebuild-and-replay backtracking there.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..runtime.process import ProcessStatus
from ..runtime.simulation import Simulation
from .fingerprint import FingerprintState

_RUNNING = ProcessStatus.RUNNING


class Checkpoint:
    """O(processes) token capturing one simulation state.

    Everything mutable-per-step lives either in a scalar captured here or
    in a shared append-only log captured by an integer mark.
    """

    __slots__ = (
        "time",
        "next_crash",
        "trace_len",
        "outputs_len",
        "op_count",
        "mem_mark",
        "procs",
        "chains",
    )

    def __init__(
        self,
        time: int,
        next_crash: Optional[int],
        trace_len: int,
        outputs_len: int,
        op_count: int,
        mem_mark: int,
        procs: Tuple[tuple, ...],
        chains: Tuple[bytes, ...],
    ):
        self.time = time
        self.next_crash = next_crash
        self.trace_len = trace_len
        self.outputs_len = outputs_len
        self.op_count = op_count
        self.mem_mark = mem_mark
        self.procs = procs
        self.chains = chains


class SimulationJournal:
    """Checkpoint/restore driver over one live :class:`Simulation`."""

    __slots__ = (
        "sim",
        "memory_journal",
        "fingerprints",
        "_responses",
        "_memo",
        "restores",
        "gen_replays",
        "gen_replay_steps",
    )

    def __init__(self, sim: Simulation):
        if sim.network is not None:
            raise ValueError(
                "checkpointed backtracking does not support message-passing "
                "runs (no undo journal over mailboxes); use replay"
            )
        self.sim = sim
        self.memory_journal = sim.memory.attach_journal()
        self.fingerprints = FingerprintState(sim)
        self.memory_journal.on_touch = self.fingerprints.touch
        self._responses: Dict[int, List[Any]] = {
            pid: [] for pid in sim.runtimes
        }
        for step in sim.trace.steps:  # warm attach: rebuild response logs
            self._responses[step.pid].append(step.response)
        self._memo: Dict[int, Dict[bytes, tuple]] = {
            pid: {} for pid in sim.runtimes
        }
        self.restores = 0
        self.gen_replays = 0
        self.gen_replay_steps = 0
        sim._journal = self

    # -- forward path ------------------------------------------------------

    def advance(self, runtime, op, response) -> None:
        """Post-execution half of one step (called from ``Simulation.step``
        in place of ``runtime.resume``): fold the step into the process's
        chain, log the response, and advance the process — live generator,
        memo hit, or rematerialization, in that order of preference."""
        pid = runtime.pid
        chain = self.fingerprints.extend(pid, op, response)
        self._responses[pid].append(response)
        if runtime.detached:
            hit = self._memo[pid].get(chain)
            if hit is not None:
                is_op, value = hit
                runtime.steps_taken += 1
                if is_op:
                    runtime.pending_op = value
                else:
                    runtime.status = ProcessStatus.RETURNED
                    runtime.return_value = value
                    runtime.pending_op = None
                return
            responses = self._responses[pid]
            steps = runtime.rematerialize(responses)
            self.gen_replays += 1
            self.gen_replay_steps += steps
            runtime.steps_taken = len(responses)
        else:
            runtime.resume(response)
        if runtime.status is _RUNNING:
            self._memo[pid][chain] = (True, runtime.pending_op)
        else:
            self._memo[pid][chain] = (False, runtime.return_value)

    def digest(self) -> str:
        """The current state's fingerprint (incremental; byte-identical to
        :func:`repro.mc.fingerprint.fingerprint`)."""
        return self.fingerprints.digest()

    # -- checkpoint / restore ----------------------------------------------

    def checkpoint(self) -> Checkpoint:
        sim = self.sim
        trace = sim.trace
        procs = tuple(
            (
                rt.status,
                rt.steps_taken,
                rt.pending_op,
                rt.has_decided,
                rt.decision,
                rt.has_emitted,
                rt.emitted,
                rt.return_value,
            )
            for _, rt in sim._ordered_runtimes
        )
        return Checkpoint(
            sim.time,
            sim._next_crash,
            len(trace.steps),
            len(trace.outputs),
            sim.memory.op_count,
            self.memory_journal.mark(),
            procs,
            self.fingerprints.chains_snapshot(),
        )

    def restore(self, checkpoint: Checkpoint) -> None:
        """Rewind the simulation to ``checkpoint``.

        Checkpoints must be restored inner-first (LIFO, as DFS naturally
        does): the memory journal is a single shared log, and undoing to
        an older mark discards the deltas of every younger checkpoint.
        """
        sim = self.sim
        self.restores += 1
        self.memory_journal.undo_to(checkpoint.mem_mark)
        trace = sim.trace
        del trace.steps[checkpoint.trace_len:]
        del trace.outputs[checkpoint.outputs_len:]
        sim.time = checkpoint.time
        sim._next_crash = checkpoint.next_crash
        sim.memory.op_count = checkpoint.op_count
        self.fingerprints.restore_chains(checkpoint.chains)
        responses = self._responses
        for (pid, rt), saved in zip(sim._ordered_runtimes, checkpoint.procs):
            (
                status,
                steps_taken,
                pending_op,
                has_decided,
                decision,
                has_emitted,
                emitted,
                return_value,
            ) = saved
            if rt.steps_taken != steps_taken and not rt.detached:
                # The generator moved past the checkpoint; it cannot be
                # rewound.  (Equal steps_taken ⟹ untouched: steps only
                # ever accumulate between checkpoint and restore.)
                rt.detach_generator()
            rt.status = status
            rt.steps_taken = steps_taken
            rt.pending_op = pending_op
            rt.has_decided = has_decided
            rt.decision = decision
            rt.has_emitted = has_emitted
            rt.emitted = emitted
            rt.return_value = return_value
            log = responses[pid]
            if len(log) > steps_taken:
                del log[steps_taken:]
        sim._eligible = None
