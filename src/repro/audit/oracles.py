"""Oracle pairs: the same logical trial, run two ways, must agree.

Each oracle names one equivalence claim the engine makes implicitly and
turns it into an executable check:

=================  =========================================================
pair               claim
=================  =========================================================
``serial-parallel``  ``run_trials(jobs=1)`` and ``jobs=2`` return identical
                     ordered results for the same spec grid.
``cache``            a cache miss (computed), a cache hit (deserialized),
                     and a direct ``execute_trial`` all yield equal results.
``substrate``        k-converge over atomic shared memory and over
                     ABD-emulated registers satisfy the same output
                     contract, and the ABD run itself is deterministic.
``replay``           a live run under ``RandomScheduler`` and a
                     ``run_script`` replay of its recorded schedule
                     produce the same trace and state fingerprint.
``chaos-zero``       a zero-severity chaos run equals its pristine twin
                     (no chaos wrappers at all), step for step.
``faulty-infra``     a farm campaign drained under infrastructure chaos
                     (lock storms, a torn-process kill, cache ENOSPC)
                     settles every trial exactly once, byte-identical to
                     a pristine serial run of the same grid.
=================  =========================================================

Every oracle derives its case parameters from
``random.Random(f"audit:{pair}:{seed}:{case}")`` alone, so a case is
reproducible from ``(pair, seed, case)`` — exactly the fields of a
picklable :class:`~repro.audit.runner.AuditTrialSpec`.

``sabotage`` hooks exist to prove the oracles can fail: ``"cache"``
poisons one stored cache entry with a well-formed pickle of a wrong
result, ``"abd-ack"`` corrupts the first ABD read acknowledgement on
the wire, and ``"infra-dup"`` doctors the drained farm store with a
duplicate ``done`` row.  Each must flip a clean audit into a divergence
report.
"""

from __future__ import annotations

import dataclasses
import random
import tempfile
from typing import Any, Dict, List, Optional, Tuple

from .diff import (
    Divergence,
    diff_result_fields,
    first_trace_divergence,
    shrink_replay_schedule,
)

#: Comparisons one case of each oracle performs (budget accounting).
PAIRS_PER_CASE = {
    "serial-parallel": 8,
    "cache": 8,
    "substrate": 2,
    "replay": 1,
    "chaos-zero": 1,
    "faulty-infra": 3,
}

ORACLE_PAIRS = tuple(sorted(PAIRS_PER_CASE))


@dataclasses.dataclass
class CaseOutcome:
    """What one oracle case produced: comparisons done, breaks found."""

    trials: int
    divergences: List[Divergence] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences


def _case_rng(pair: str, seed: int, case: int) -> random.Random:
    return random.Random(f"audit:{pair}:{seed}:{case}")


def run_case(
    pair: str, case: int, seed: int, sabotage: str = ""
) -> CaseOutcome:
    """Execute one fuzzed case of the named oracle pair."""
    try:
        oracle = _ORACLES[pair]
    except KeyError:
        known = ", ".join(ORACLE_PAIRS)
        raise ValueError(f"unknown oracle pair {pair!r} (known: {known})")
    return oracle(case, seed, sabotage)


# -- serial vs parallel -------------------------------------------------------


#: (detector, f) combinations from which Υf extraction is possible at
#: n = 3 — weaker entries (anti_omega, dummy; Ω_2 in E_1) are f-trivial
#: there and make the extraction runner raise, not a fair audit subject.
_EXTRACTABLE_COMBOS = (
    ("diamond_p", None), ("diamond_p", 1), ("diamond_p", 2),
    ("omega", None), ("omega", 1), ("omega", 2),
    ("omega_n", None), ("omega_n", 2),
)


def _fuzz_spec_grid(rng: random.Random, count: int) -> List[Any]:
    """A deterministic grid of cheap mixed-kind trial specs."""
    from ..perf.spec import ExtractionTrialSpec, SetAgreementTrialSpec
    specs: List[Any] = []
    for _ in range(count):
        if rng.random() < 0.5:
            n = rng.choice((3, 4))
            specs.append(
                SetAgreementTrialSpec(
                    n_processes=n,
                    f=rng.choice((1, n - 1)),
                    seed=rng.randrange(1_000_000),
                    stabilization_time=rng.choice((0, 8, 25)),
                    adversarial=rng.random() < 0.25,
                    max_steps=200_000,
                )
            )
        else:
            detector, f = rng.choice(_EXTRACTABLE_COMBOS)
            specs.append(
                ExtractionTrialSpec(
                    detector=detector,
                    n_processes=3,
                    seed=rng.randrange(1_000_000),
                    f=f,
                    stabilization_time=rng.choice((20, 40)),
                    max_steps=40_000,
                )
            )
    return specs


def _serial_parallel(case: int, seed: int, sabotage: str) -> CaseOutcome:
    from ..perf.executor import run_trials

    rng = _case_rng("serial-parallel", seed, case)
    specs = _fuzz_spec_grid(rng, PAIRS_PER_CASE["serial-parallel"])
    serial = run_trials(specs, jobs=1)
    parallel = run_trials(specs, jobs=2)
    outcome = CaseOutcome(trials=len(specs))
    for index, (spec, a, b) in enumerate(zip(specs, serial, parallel)):
        if a != b:
            outcome.divergences.append(
                Divergence(
                    pair="serial-parallel",
                    case=case,
                    seed=seed,
                    kind="result",
                    detail=(
                        f"spec #{index} differs between jobs=1 and jobs=2"
                    ),
                    spec=dict(
                        dataclasses.asdict(spec), kind=spec.kind
                    ),
                    fields=diff_result_fields(a, b),
                )
            )
    return outcome


# -- cold vs warm vs disabled cache ------------------------------------------


def _cache(case: int, seed: int, sabotage: str) -> CaseOutcome:
    from ..perf.cache import TrialCache
    from ..perf.executor import run_trials
    from ..perf.spec import execute_trial

    rng = _case_rng("cache", seed, case)
    specs = _fuzz_spec_grid(rng, 4)
    baseline = [execute_trial(spec) for spec in specs]  # cache disabled
    outcome = CaseOutcome(trials=PAIRS_PER_CASE["cache"])
    with tempfile.TemporaryDirectory(prefix="repro-audit-cache-") as root:
        cache = TrialCache(root)
        cold = run_trials(specs, jobs=1, cache=cache)
        if sabotage == "cache":
            # A well-formed pickle of a *wrong* result: the cache layer
            # cannot reject it as corrupt, only the audit can catch it.
            poisoned = dataclasses.replace(
                baseline[0], total_steps=baseline[0].total_steps + 1
            )
            cache.put(specs[0], poisoned)
        warm = run_trials(specs, jobs=1, cache=cache)
    for label, results in (("cold", cold), ("warm", warm)):
        for index, (spec, expected, got) in enumerate(
            zip(specs, baseline, results)
        ):
            if expected != got:
                outcome.divergences.append(
                    Divergence(
                        pair="cache",
                        case=case,
                        seed=seed,
                        kind="result",
                        detail=(
                            f"spec #{index}: {label}-cache result differs "
                            f"from direct execution"
                        ),
                        spec=dict(
                            dataclasses.asdict(spec), kind=spec.kind
                        ),
                        fields=diff_result_fields(expected, got),
                    )
                )
    return outcome


# -- shared memory vs ABD-emulated registers ---------------------------------


def _is_phase1_cell(key) -> bool:
    """Is ``key`` a snapshot cell of a converge phase-1 object (``cvA``)?"""
    return (
        isinstance(key, tuple)
        and len(key) == 3
        and key[1] == "snapcell"
        and isinstance(key[0], tuple)
        and bool(key[0])
        and key[0][-1] == "cvA"
    )


class _AckCorruptingNetwork:
    """Subclass factory: forge ABD read-acks for phase-1 cells.

    Every ``abd-read-ack`` for a ``cvA`` snapshot cell is rewritten to
    report the same forged cell — a huge tag (so the lie wins every
    quorum max) carrying a value outside the input set (so C-Validity
    must notice).  Scans then see only the lie, it becomes the smallest
    ok-proposal set, and the pick violates validity deterministically.
    """

    @staticmethod
    def build(network_cls):
        class Corrupting(network_cls):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self._ack_corrupted = False

            def send(self, sender, dest, payload, now, extra_delay=0):
                if (
                    isinstance(payload, tuple)
                    and len(payload) == 5
                    and payload[0] == "abd-read-ack"
                    and _is_phase1_cell(payload[2])
                ):
                    self._ack_corrupted = True
                    # (seq, value) is the register-snapshot cell format;
                    # a constant huge seq keeps scans from retrying.
                    payload = (
                        payload[0],
                        payload[1],
                        payload[2],
                        (10**6, 0),
                        (10**6, "!corrupted"),
                    )
                super().send(sender, dest, payload, now, extra_delay)

        return Corrupting


#: The schedule-independent projection of a converge run's contract —
#: the only keys comparable across substrates.  ``distinct_picked`` and
#: ``all_committed`` are legitimate observations of *one* run but depend
#: on the interleaving, which necessarily differs between a
#: native-register run and the ABD emulation (C-Agreement only bounds
#: distinct picks when some process commits; both 1 and 2 distinct
#: picks are legal outcomes of the same k=2 instance).
_CONTRACT_INVARIANTS = ("decided", "clean")


def _converge_contract(
    sim, k: int, inputs: Dict[int, str]
) -> Tuple[Dict[str, Any], List[str]]:
    """The output contract both substrates must satisfy, plus breaches.

    Only the :data:`_CONTRACT_INVARIANTS` keys of the returned dict are
    cross-substrate comparable; the rest are per-run diagnostics."""
    from ..mc.properties import (
        ConvergeAgreementProperty,
        ConvergeValidityProperty,
    )

    violations: List[str] = []
    for adapter in (
        ConvergeAgreementProperty(k),
        ConvergeValidityProperty(inputs),
    ):
        reason = adapter.check_run(sim)
        if reason:
            violations.append(f"{adapter.name}: {reason}")
    decided = sim.all_correct_decided()
    if not decided:
        violations.append(f"termination: undecided after {sim.time} steps")
    decisions = sim.decisions()
    picked = sorted({repr(v[0]) for v in decisions.values()})
    committed = sorted({bool(v[1]) for v in decisions.values()})
    contract = {
        "decided": decided,
        "distinct_picked": len(picked),
        "all_committed": committed == [True],
        "clean": not violations,
    }
    return contract, violations


def _run_converge_shared(n: int, k: int, inputs, pattern, seed: int):
    from ..core.converge import ConvergeInstance
    from ..runtime.ops import Decide
    from ..runtime.process import System
    from ..runtime.scheduler import RandomScheduler
    from ..runtime.simulation import Simulation

    system = System(n)

    def protocol(ctx, value):
        instance = ConvergeInstance(("audit", "conv"), k, n)
        picked, committed = yield from instance.converge(ctx, value)
        yield Decide((picked, committed))

    sim = Simulation(system, protocol, inputs=inputs, pattern=pattern)
    sim.run(
        max_steps=200_000,
        scheduler=RandomScheduler(seed),
        stop_when=Simulation.all_correct_decided,
    )
    return sim


def _run_converge_abd(
    n: int, k: int, quorum: int, inputs, pattern, seed: int,
    corrupt_ack: bool = False,
):
    from ..core.converge import ConvergeInstance
    from ..messaging.abd import AbdRegisters, abd_snapshot_api
    from ..messaging.network import Network
    from ..runtime.ops import Decide
    from ..runtime.process import System
    from ..runtime.scheduler import RandomScheduler
    from ..runtime.simulation import Simulation

    system = System(n)
    network_cls = Network
    if corrupt_ack:
        network_cls = _AckCorruptingNetwork.build(Network)
    network = network_cls(system, seed=seed + 101, max_delay=3)

    def protocol(ctx, value):
        abd = AbdRegisters(ctx, quorum=quorum)
        instance = ConvergeInstance(
            ("audit", "conv"), k, n,
            snapshot_factory=lambda name, cells: abd_snapshot_api(
                abd, name, cells
            ),
        )
        picked, committed = yield from instance.converge(ctx, value)
        yield Decide((picked, committed))
        yield from abd.serve()

    sim = Simulation(
        system, protocol, inputs=inputs, pattern=pattern, network=network
    )
    sim.run(
        max_steps=400_000,
        scheduler=RandomScheduler(seed),
        stop_when=Simulation.all_correct_decided,
    )
    return sim


def _substrate(case: int, seed: int, sabotage: str) -> CaseOutcome:
    from ..failures.environment import Environment
    from ..failures.pattern import FailurePattern
    from ..runtime.process import System

    rng = _case_rng("substrate", seed, case)
    n = rng.choice((3, 4, 5))
    f_eff = (n - 1) // 2
    quorum = n - f_eff
    k = max(1, f_eff)
    inputs = {p: f"v{p % k}" for p in System(n).pids}
    run_seed = rng.randrange(1_000_000)
    if f_eff > 0 and rng.random() < 0.5:
        pattern = Environment(System(n), f_eff).random_pattern(
            rng, max_crash_time=60
        )
    else:
        pattern = FailurePattern.failure_free(System(n))

    shared = _run_converge_shared(n, k, inputs, pattern, run_seed)
    abd = _run_converge_abd(
        n, k, quorum, inputs, pattern, run_seed,
        corrupt_ack=(sabotage == "abd-ack"),
    )
    shared_contract, shared_violations = _converge_contract(
        shared, k, inputs
    )
    abd_contract, abd_violations = _converge_contract(abd, k, inputs)

    outcome = CaseOutcome(trials=PAIRS_PER_CASE["substrate"])
    shared_inv = {key: shared_contract[key] for key in _CONTRACT_INVARIANTS}
    abd_inv = {key: abd_contract[key] for key in _CONTRACT_INVARIANTS}
    if shared_inv != abd_inv or shared_violations or abd_violations:
        details = "; ".join(shared_violations + abd_violations) or (
            "contract projections differ"
        )
        outcome.divergences.append(
            Divergence(
                pair="substrate",
                case=case,
                seed=seed,
                kind="contract",
                detail=(
                    f"converge n={n} k={k}: shared memory vs ABD — {details}"
                ),
                spec={
                    "n_processes": n, "k": k, "quorum": quorum,
                    "seed": run_seed,
                    "crashes": sorted(
                        (p, t) for p, t in pattern.crashes.items()
                    ) if getattr(pattern, "crashes", None) else [],
                },
                fields=[
                    [key, repr(shared_contract.get(key)),
                     repr(abd_contract.get(key))]
                    for key in sorted(
                        set(shared_contract) | set(abd_contract)
                    )
                    if shared_contract.get(key) != abd_contract.get(key)
                ],
            )
        )

    # Second comparison: the ABD path must be deterministic in its seed.
    abd_again = _run_converge_abd(
        n, k, quorum, inputs, pattern, run_seed,
        corrupt_ack=(sabotage == "abd-ack"),
    )
    if (
        abd.decisions() != abd_again.decisions()
        or abd.time != abd_again.time
    ):
        outcome.divergences.append(
            Divergence(
                pair="substrate",
                case=case,
                seed=seed,
                kind="result",
                detail=(
                    f"ABD converge n={n} seed={run_seed} is not "
                    f"deterministic across identical runs"
                ),
                fields=[
                    ["decisions", repr(abd.decisions()),
                     repr(abd_again.decisions())],
                    ["total_steps", repr(abd.time), repr(abd_again.time)],
                ],
            )
        )
    return outcome


# -- live run vs recorded-schedule replay ------------------------------------

_REPLAY_FAMILIES = ("fig1", "fig2", "converge")


def _replay(case: int, seed: int, sabotage: str) -> CaseOutcome:
    from ..analysis.trace_io import trace_to_dict
    from ..mc.fingerprint import fingerprint
    from ..mc.instances import McInstance, build_simulation, resolve_instance
    from ..runtime.scheduler import RandomScheduler

    rng = _case_rng("replay", seed, case)
    protocol = rng.choice(_REPLAY_FAMILIES)
    n = rng.choice((2, 3))
    crashes: Tuple[Tuple[int, int], ...] = ()
    if n > 2 and rng.random() < 0.4:
        crashes = ((rng.randrange(n), rng.choice((0, 2, 5))),)
    instance = resolve_instance(
        McInstance(
            protocol=protocol,
            n_processes=n,
            f=1 if protocol in ("fig2", "converge") else None,
            crashes=crashes,
            stabilization_time=rng.choice((0, 3)),
            noise_seed=rng.randrange(1_000),
        )
    )
    run_seed = rng.randrange(1_000_000)

    live = build_simulation(instance)
    live.run(max_steps=200, scheduler=RandomScheduler(run_seed))
    schedule = [step.pid for step in live.trace.steps]

    replayed = build_simulation(instance)
    replayed.run_script(schedule)

    outcome = CaseOutcome(trials=PAIRS_PER_CASE["replay"])
    trace_diff = first_trace_divergence(live.trace, replayed.trace)
    fp_live, fp_replay = fingerprint(live), fingerprint(replayed)
    if trace_diff is not None or fp_live != fp_replay:
        kind = "trace" if trace_diff is not None else "fingerprint"
        divergence = Divergence(
            pair="replay",
            case=case,
            seed=seed,
            kind=kind,
            detail=(
                f"{instance.describe()} seed={run_seed}: live run and "
                f"schedule replay disagree"
            ),
            fingerprint_a=fp_live,
            fingerprint_b=fp_replay,
            instance=instance.to_dict(),
            schedule=schedule,
        )
        if trace_diff is not None:
            divergence.first_step = trace_diff[0]
            divergence.step_a = trace_diff[1]
            divergence.step_b = trace_diff[2]
        divergence.shrunk_schedule = shrink_replay_schedule(
            instance.to_dict(), schedule
        )
        outcome.divergences.append(divergence)
    return outcome


# -- zero-severity chaos vs pristine -----------------------------------------


def _chaos_zero(case: int, seed: int, sabotage: str) -> CaseOutcome:
    from ..chaos.trial import PROTOCOLS, ChaosTrialSpec, run_chaos_trial

    rng = _case_rng("chaos-zero", seed, case)
    protocol = rng.choice(PROTOCOLS)
    spec = ChaosTrialSpec(
        protocol=protocol,
        n_processes=rng.choice((3, 4)),
        seed=rng.randrange(1_000_000),
        f=None,
        detector=rng.choice(("omega", "omega_n", "diamond_p")),
        max_steps=60_000 if protocol != "abd-converge" else 400_000,
    )
    chaotic_sims: List[Any] = []
    pristine_sims: List[Any] = []
    chaotic = run_chaos_trial(spec, sim_out=chaotic_sims)
    pristine = run_chaos_trial(spec, pristine=True, sim_out=pristine_sims)

    outcome = CaseOutcome(trials=PAIRS_PER_CASE["chaos-zero"])
    if chaotic != pristine:
        outcome.divergences.append(
            Divergence(
                pair="chaos-zero",
                case=case,
                seed=seed,
                kind="result",
                detail=(
                    f"{protocol} n={spec.n_processes} seed={spec.seed}: "
                    f"zero-severity chaos differs from pristine run"
                ),
                spec=dict(dataclasses.asdict(spec), kind=spec.kind),
                fields=diff_result_fields(chaotic, pristine),
            )
        )
    else:
        trace_diff = first_trace_divergence(
            chaotic_sims[0].trace, pristine_sims[0].trace
        )
        if trace_diff is not None:
            outcome.divergences.append(
                Divergence(
                    pair="chaos-zero",
                    case=case,
                    seed=seed,
                    kind="trace",
                    detail=(
                        f"{protocol} n={spec.n_processes} "
                        f"seed={spec.seed}: results equal but traces "
                        f"differ step-for-step"
                    ),
                    spec=dict(dataclasses.asdict(spec), kind=spec.kind),
                    first_step=trace_diff[0],
                    step_a=trace_diff[1],
                    step_b=trace_diff[2],
                )
            )
    return outcome


# -- faulty infrastructure vs pristine serial --------------------------------


def _faulty_infra(case: int, seed: int, sabotage: str) -> CaseOutcome:
    """One crash-consistency run of the farm under an infra fault plan.

    The checker drains a small seeded grid through a fault-injected
    worker (lock storms on every guarded store op, a torn-process kill
    at a seeded barrier, cache ENOSPC) plus a pristine finisher, then
    asserts the store's exactly-once invariants against a serial
    baseline.  Every violated invariant surfaces as one ``"contract"``
    divergence.  ``sabotage="infra-dup"`` duplicates a ``done`` row in
    the drained store — the self-test proving the oracle can fail.
    """
    from ..chaos.infra import CrashConsistencyChecker
    from ..perf.spec import SetAgreementTrialSpec

    rng = _case_rng("faulty-infra", seed, case)
    count = PAIRS_PER_CASE["faulty-infra"]
    specs = [
        SetAgreementTrialSpec(
            n_processes=3,
            f=1,
            seed=rng.randrange(1_000_000),
            stabilization_time=rng.choice((0, 8)),
            max_steps=200_000,
        )
        for _ in range(count)
    ]
    checker = CrashConsistencyChecker(
        specs,
        runs=1,
        seed=rng.randrange(1_000_000),
        severity=rng.choice(("light", "max")),
        sabotage="duplicate-done" if sabotage == "infra-dup" else "",
    )
    report = checker.run()
    outcome = CaseOutcome(trials=count)
    for violation in report.violations:
        outcome.divergences.append(
            Divergence(
                pair="faulty-infra",
                case=case,
                seed=seed,
                kind="contract",
                detail=(
                    f"{violation.kind}"
                    + (f" at position {violation.position}"
                       if violation.position >= 0 else "")
                    + f": {violation.detail}"
                ),
                spec={
                    "kind": "faulty-infra",
                    "severity": report.severity,
                    "checker_seed": report.seed,
                    "trials": report.trials_per_run,
                },
            )
        )
    return outcome


_ORACLES = {
    "serial-parallel": _serial_parallel,
    "cache": _cache,
    "substrate": _substrate,
    "replay": _replay,
    "chaos-zero": _chaos_zero,
    "faulty-infra": _faulty_infra,
}
