"""Differential audit: the same trial by different paths must agree.

The engine makes several silent equivalence promises — serial and
parallel execution interchangeable, the cache invisible, ABD registers
indistinguishable from shared memory at the contract level, replays
faithful, zero-severity chaos free.  This package makes each promise an
executable oracle (:mod:`repro.audit.oracles`), fuzzes them with seeded
random cases (:mod:`repro.audit.fuzz`), and renders any break as a
structured, shrunken, replayable counterexample
(:mod:`repro.audit.diff`).  ``python -m repro audit`` drives it; exit
code ``4`` means an equivalence broke and a report was written.
"""

from .diff import (
    Divergence,
    diff_result_fields,
    first_trace_divergence,
    shrink_replay_schedule,
)
from .fuzz import (
    HAVE_HYPOTHESIS,
    AuditReport,
    plan_audit,
    run_audit,
)
from .oracles import ORACLE_PAIRS, PAIRS_PER_CASE, CaseOutcome, run_case
from .runner import AuditOutcome, AuditTrialSpec, run_audit_trial

__all__ = [
    "AuditOutcome",
    "AuditReport",
    "AuditTrialSpec",
    "CaseOutcome",
    "Divergence",
    "HAVE_HYPOTHESIS",
    "ORACLE_PAIRS",
    "PAIRS_PER_CASE",
    "diff_result_fields",
    "first_trace_divergence",
    "plan_audit",
    "run_audit",
    "run_audit_trial",
    "run_case",
    "shrink_replay_schedule",
]
