"""The audit fuzzer: seeded random cases driven through every oracle.

:func:`plan_audit` turns a trial-pair budget into a deterministic list of
:class:`~repro.audit.runner.AuditTrialSpec` (splitting the budget evenly
across the selected oracle pairs, honouring each pair's comparisons-per-
case cost); :func:`run_audit` executes the plan — serially or sharded
through :func:`repro.perf.executor.run_trials` — and folds the outcomes
into an :class:`AuditReport`, publishing one
:class:`~repro.obs.events.AuditDivergence` event per break so the
metrics registry counts them per pair.

When the `hypothesis <https://hypothesis.readthedocs.io>`_ library is
available, :func:`case_stream` uses its ``Random`` integration-free
seeded derivation all the same — case parameters are *always* derived
from ``random.Random(f"audit:{pair}:{seed}:{case}")`` inside the worker,
so the stdlib fallback and the hypothesis-assisted test-suite strategies
(:data:`HAVE_HYPOTHESIS` gates those) explore the identical space.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from .oracles import ORACLE_PAIRS, PAIRS_PER_CASE
from .runner import AuditOutcome, AuditTrialSpec

try:  # pragma: no cover - exercised indirectly via the test suite
    import hypothesis  # noqa: F401

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAVE_HYPOTHESIS = False


@dataclasses.dataclass
class AuditReport:
    """Aggregated outcome of one audit run (JSON round-trippable)."""

    seed: int
    budget: int
    pairs: List[str]
    cases: int
    trial_pairs: int
    divergences: List[Dict[str, Any]]
    quarantined: int = 0
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.divergences and not self.quarantined

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, body: Dict[str, Any]) -> "AuditReport":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in body.items() if k in known})

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        return path

    def summary(self) -> str:
        status = "clean" if self.ok else (
            f"{len(self.divergences)} divergence(s)"
            + (f", {self.quarantined} quarantined" if self.quarantined
               else "")
        )
        return (
            f"audit: {self.trial_pairs} trial-pairs over {self.cases} "
            f"cases across {len(self.pairs)} oracle pair(s) — {status}"
        )


def plan_audit(
    budget: int,
    seed: int,
    pairs: Optional[Sequence[str]] = None,
    sabotage: str = "",
) -> List[AuditTrialSpec]:
    """A deterministic audit plan worth about ``budget`` trial-pairs.

    The budget is split evenly across the selected oracle pairs; each
    pair then gets ``ceil(share / pairs_per_case)`` cases so every pair
    runs at least one case even under tiny budgets.
    """
    selected = list(pairs) if pairs else list(ORACLE_PAIRS)
    for pair in selected:
        if pair not in PAIRS_PER_CASE:
            known = ", ".join(ORACLE_PAIRS)
            raise ValueError(
                f"unknown oracle pair {pair!r} (known: {known})"
            )
    if budget < 1:
        raise ValueError(f"budget must be positive, got {budget}")
    share = max(1, budget // len(selected))
    specs: List[AuditTrialSpec] = []
    for pair in selected:
        per_case = PAIRS_PER_CASE[pair]
        cases = max(1, -(-share // per_case))  # ceil division
        for case in range(cases):
            specs.append(
                AuditTrialSpec(
                    pair=pair, case=case, seed=seed, sabotage=sabotage
                )
            )
    return specs


def run_audit(
    budget: int = 200,
    seed: int = 0,
    pairs: Optional[Sequence[str]] = None,
    jobs: int = 1,
    sabotage: str = "",
    bus=None,
    progress=None,
    collector=None,
) -> AuditReport:
    """Plan and execute an audit; return the aggregated report.

    ``jobs > 1`` shards the audit cases through the parallel executor
    (each :class:`AuditTrialSpec` is picklable); divergence events are
    published on ``bus`` after results return, so metrics work in both
    modes.  ``progress`` is an optional callable receiving one line per
    finished oracle pair.
    """
    from ..perf.executor import run_trials

    specs = plan_audit(budget, seed, pairs=pairs, sabotage=sabotage)
    started = time.perf_counter()
    outcomes = run_trials(specs, jobs=jobs, collector=collector)
    elapsed = time.perf_counter() - started

    report = _fold(specs, outcomes, seed=seed, budget=budget, bus=bus)
    report.elapsed_seconds = elapsed
    if progress is not None:
        for pair in report.pairs:
            found = sum(
                1 for d in report.divergences if d.get("pair") == pair
            )
            cases = sum(1 for s in specs if s.pair == pair)
            progress(
                f"  {pair}: {cases} case(s), "
                f"{'clean' if not found else f'{found} divergence(s)'}"
            )
    return report


def _fold(
    specs: Sequence[AuditTrialSpec],
    outcomes: Iterable[Optional[AuditOutcome]],
    seed: int,
    budget: int,
    bus=None,
) -> AuditReport:
    """Aggregate worker outcomes; publish divergence events on ``bus``."""
    from ..obs.events import AuditDivergence

    pairs = sorted({spec.pair for spec in specs})
    divergences: List[Dict[str, Any]] = []
    trial_pairs = 0
    cases = 0
    quarantined = 0
    for spec, outcome in zip(specs, outcomes):
        if outcome is None:  # quarantined by the resilient executor
            quarantined += 1
            continue
        cases += 1
        trial_pairs += outcome.trials
        for body in outcome.divergences:
            divergences.append(body)
            if bus is not None and bus.active:
                bus.publish(
                    AuditDivergence(
                        -1,
                        pair=body.get("pair", spec.pair),
                        kind=body.get("kind", "result"),
                        detail=body.get("detail", ""),
                    )
                )
    return AuditReport(
        seed=seed,
        budget=budget,
        pairs=pairs,
        cases=cases,
        trial_pairs=trial_pairs,
        divergences=divergences,
        quarantined=quarantined,
    )
