"""Picklable audit trial specs — the audit's unit of sharded work.

An :class:`AuditTrialSpec` names one fuzzed oracle case by primitives
only (``pair``, ``case``, ``seed``, optional ``sabotage``); the case's
actual parameters are re-derived deterministically inside the worker by
:func:`repro.audit.oracles.run_case`.  That makes audit cases first-class
citizens of the perf layer: they shard through
:func:`repro.perf.executor.run_trials` (including the resilient path),
pickle across process boundaries, and key into the trial cache.

``sabotage`` is deliberately part of the spec (and hence the cache key):
a sabotaged audit must never be served a clean cached outcome.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List


@dataclasses.dataclass(frozen=True)
class AuditTrialSpec:
    """One fuzzed oracle case (picklable, cache-keyable).

    ``pair`` is an entry of :data:`repro.audit.oracles.ORACLE_PAIRS`;
    ``case`` indexes the fuzzer's case stream for that pair; ``seed``
    seeds the whole stream.  ``sabotage`` (self-test only): ``"cache"``
    poisons a stored cache entry, ``"abd-ack"`` corrupts an ABD
    acknowledgement — both must surface as divergences.
    """

    pair: str
    case: int
    seed: int
    sabotage: str = ""

    kind = "audit"


@dataclasses.dataclass
class AuditOutcome:
    """Flat, comparable result of one audit case."""

    pair: str
    case: int
    seed: int
    trials: int
    divergences: List[Dict[str, Any]] = dataclasses.field(
        default_factory=list
    )

    @property
    def ok(self) -> bool:
        return not self.divergences


def run_audit_trial(spec: AuditTrialSpec) -> AuditOutcome:
    """Execute one audit case (worker entry point).

    An exception inside an oracle is itself an audit failure — one of the
    two paths could not even complete — so it is reported as a divergence
    of kind ``"error"`` rather than allowed to abort the whole audit.
    """
    from .diff import Divergence
    from .oracles import PAIRS_PER_CASE, run_case

    try:
        outcome = run_case(
            spec.pair, spec.case, spec.seed, sabotage=spec.sabotage
        )
    except Exception as exc:
        return AuditOutcome(
            pair=spec.pair,
            case=spec.case,
            seed=spec.seed,
            trials=PAIRS_PER_CASE.get(spec.pair, 0),
            divergences=[
                Divergence(
                    pair=spec.pair,
                    case=spec.case,
                    seed=spec.seed,
                    kind="error",
                    detail=f"{type(exc).__name__}: {exc}",
                ).to_dict()
            ],
        )
    return AuditOutcome(
        pair=spec.pair,
        case=spec.case,
        seed=spec.seed,
        trials=outcome.trials,
        divergences=[d.to_dict() for d in outcome.divergences],
    )
