"""Structured divergence reports for the differential audit.

A :class:`Divergence` is the audit's counterexample format: which oracle
pair broke, on which fuzzed case, *where* the two paths first disagreed
(field-level diff of the result dataclasses, first differing trace step
via :mod:`repro.analysis.trace_io`, fingerprints), and — for replay
divergences — the failing schedule shrunk to a 1-minimal subsequence by
:func:`repro.mc.counterexample.minimize_schedule`.  Everything is plain
JSON types so a report round-trips through ``audit-report.json`` and a
committed regression test can replay it.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..analysis.trace_io import step_to_dict


@dataclasses.dataclass
class Divergence:
    """One equivalence break between two run paths of the same trial.

    ``kind`` classifies the comparison that failed:

    * ``"result"`` — result dataclasses differ (``fields`` has the
      field-level diff);
    * ``"trace"`` — step-for-step traces differ (``first_step`` /
      ``step_a`` / ``step_b`` locate the first disagreement);
    * ``"fingerprint"`` — canonical state fingerprints differ;
    * ``"contract"`` — a path violated the output contract both must
      satisfy (decided / validity / agreement / commit flags);
    * ``"error"`` — an oracle raised: one of the paths could not even
      complete (``detail`` carries the exception).
    """

    pair: str
    case: int
    seed: int
    kind: str
    detail: str
    spec: Optional[Dict[str, Any]] = None
    fields: List[List[str]] = dataclasses.field(default_factory=list)
    first_step: Optional[int] = None
    step_a: Optional[Dict[str, Any]] = None
    step_b: Optional[Dict[str, Any]] = None
    fingerprint_a: Optional[str] = None
    fingerprint_b: Optional[str] = None
    instance: Optional[Dict[str, Any]] = None
    schedule: Optional[List[int]] = None
    shrunk_schedule: Optional[List[int]] = None

    def describe(self) -> str:
        where = ""
        if self.first_step is not None:
            where = f" (first differing step: {self.first_step})"
        return f"[{self.pair}] case {self.case}: {self.kind} — " \
               f"{self.detail}{where}"

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, body: Dict[str, Any]) -> "Divergence":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in body.items() if k in known})

    def save(self, path: Union[str, Path]) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Divergence":
        return cls.from_dict(json.loads(Path(path).read_text()))


def diff_result_fields(a: Any, b: Any) -> List[List[str]]:
    """Field-level diff of two result dataclasses, as ``[name, a, b]``
    rows (reprs).  Fields declared ``compare=False`` (metrics snapshots)
    are ignored, matching dataclass equality."""
    if type(a) is not type(b):
        return [["type", type(a).__name__, type(b).__name__]]
    if not dataclasses.is_dataclass(a):
        return [] if a == b else [["value", repr(a), repr(b)]]
    rows: List[List[str]] = []
    for field in dataclasses.fields(a):
        if not field.compare:
            continue
        va, vb = getattr(a, field.name), getattr(b, field.name)
        if va != vb:
            rows.append([field.name, repr(va), repr(vb)])
    return rows


def first_trace_divergence(
    trace_a, trace_b
) -> Optional[Tuple[int, Optional[Dict], Optional[Dict]]]:
    """``(index, step_a, step_b)`` of the first differing step, or ``None``
    when the traces are identical.  A missing step (shorter trace) is
    reported as ``None`` on that side."""
    steps_a = [step_to_dict(s) for s in trace_a.steps]
    steps_b = [step_to_dict(s) for s in trace_b.steps]
    for index, (sa, sb) in enumerate(zip(steps_a, steps_b)):
        if sa != sb:
            return index, sa, sb
    if len(steps_a) != len(steps_b):
        index = min(len(steps_a), len(steps_b))
        sa = steps_a[index] if index < len(steps_a) else None
        sb = steps_b[index] if index < len(steps_b) else None
        return index, sa, sb
    return None


def replay_disagrees(sim) -> bool:
    """Does a scheduled live run of ``sim``'s executed schedule disagree
    with a ``run_script`` replay of it?

    ``sim`` must carry the :class:`~repro.mc.instances.McInstance` it was
    built from in ``sim.audit_instance`` (the replay oracle attaches it).
    The live twin is driven through :meth:`Simulation.run` by a
    :class:`~repro.runtime.scheduler.ScriptedScheduler` — *not* by bare
    steps — so the comparison reproduces exactly the scheduled-run versus
    replay asymmetry the oracle checks.  Used as the failure predicate
    under schedule minimization.
    """
    from ..analysis.trace_io import trace_to_dict
    from ..mc.fingerprint import fingerprint
    from ..mc.instances import build_simulation
    from ..runtime.scheduler import ScriptedScheduler

    executed = [step.pid for step in sim.trace.steps]
    instance = sim.audit_instance
    live = build_simulation(instance)
    live.run(
        max_steps=len(executed), scheduler=ScriptedScheduler(executed)
    )
    if [step.pid for step in live.trace.steps] != executed:
        return False  # the schedule is not live-followable; discard
    replayed = build_simulation(instance)
    replayed.run_script(executed)
    if trace_to_dict(live.trace) != trace_to_dict(replayed.trace):
        return True
    return fingerprint(live) != fingerprint(replayed)


def shrink_replay_schedule(
    instance_dict: Dict[str, Any], schedule: List[int]
) -> Optional[List[int]]:
    """Shrink a live-vs-replay divergence to a 1-minimal schedule.

    Replays subsequences of ``schedule`` on fresh builds of the instance
    and keeps deleting steps while the replayed prefix still disagrees
    with an independent replay of itself (:func:`replay_disagrees`).
    Returns ``None`` when the divergence does not reproduce from the
    instance descriptor alone (e.g. nondeterminism outside the schedule).
    """
    # Deferred: mc.counterexample pulls in the explorer stack.
    from ..mc.counterexample import minimize_schedule
    from ..mc.instances import McInstance, build_simulation

    instance = McInstance.from_dict(instance_dict)

    def make_sim():
        sim = build_simulation(instance)
        sim.audit_instance = instance
        return sim

    try:
        return minimize_schedule(make_sim, schedule, replay_disagrees)
    except ValueError:
        return None
