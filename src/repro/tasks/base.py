"""Problems as sets of traces (Sect. 3.4).

A problem specifies the permitted input/output sequences given the failure
pattern.  We realize decision problems as :class:`TaskSpec` objects that
*check* a finished simulation: each property (Validity, Agreement,
Termination) is verified on the recorded trace, never inside protocol code,
so a buggy protocol cannot self-certify.

All problems in this library are closed under indistinguishability (the
checks depend on the failure pattern only through ``correct(F)``), matching
the paper's standing assumption.
"""

from __future__ import annotations

import dataclasses
from typing import Any, List, Mapping

from ..runtime.simulation import Simulation


@dataclasses.dataclass
class Violation:
    """One property violation found while checking a run."""

    prop: str
    detail: str

    def __str__(self) -> str:
        return f"{self.prop}: {self.detail}"


@dataclasses.dataclass
class Verdict:
    """The outcome of checking one run against a task spec."""

    task: str
    violations: List[Violation]

    @property
    def ok(self) -> bool:
        return not self.violations

    def raise_if_failed(self) -> "Verdict":
        if not self.ok:
            lines = "; ".join(str(v) for v in self.violations)
            raise AssertionError(f"{self.task} violated — {lines}")
        return self


class TaskSpec:
    """Base class for decision-task specifications."""

    name: str = "task"

    def check(
        self,
        sim: Simulation,
        inputs: Mapping[int, Any],
        require_termination: bool = True,
    ) -> Verdict:
        """Check a finished simulation; returns a :class:`Verdict`."""
        raise NotImplementedError

    # -- shared property checkers -----------------------------------------

    @staticmethod
    def _check_termination(
        sim: Simulation, violations: List[Violation]
    ) -> None:
        """Termination: every correct participating process decided."""
        for runtime in sim.correct_runtimes():
            if not runtime.has_decided:
                violations.append(
                    Violation(
                        "Termination",
                        f"correct process {runtime.pid} never decided "
                        f"(t={sim.time})",
                    )
                )

    @staticmethod
    def _check_validity(
        sim: Simulation,
        inputs: Mapping[int, Any],
        violations: List[Violation],
    ) -> None:
        """Validity: any decided value is a proposed value."""
        proposed = set(inputs.values())
        for pid, value in sim.decisions().items():
            if value not in proposed:
                violations.append(
                    Violation(
                        "Validity",
                        f"process {pid} decided {value!r}, not among "
                        f"proposals {sorted(map(repr, proposed))}",
                    )
                )

    @staticmethod
    def _check_agreement(
        sim: Simulation, k: int, violations: List[Violation]
    ) -> None:
        """Agreement: at most ``k`` distinct values decided."""
        decided = sim.trace.decided_values()
        if len(decided) > k:
            violations.append(
                Violation(
                    "Agreement",
                    f"{len(decided)} > {k} distinct decisions: "
                    f"{sorted(map(repr, decided))}",
                )
            )
