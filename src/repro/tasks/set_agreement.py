"""The k-set-agreement task (Sect. 5.1).

Every process proposes a value from a domain ``V`` (``⊥ ∉ V``) and must
irrevocably decide such that:

1. **Termination** — every correct process eventually decides;
2. **Agreement** — at most ``k`` values are decided on;
3. **Validity** — any decided value was proposed.

``k = 1`` is consensus; ``k = n`` among ``n + 1`` processes is the
wait-free set agreement whose impossibility [2, 14, 20] the paper's Υ
circumvents.
"""

from __future__ import annotations

from typing import Any, List, Mapping

from ..runtime.simulation import Simulation
from .base import TaskSpec, Verdict, Violation


class SetAgreementSpec(TaskSpec):
    """k-set agreement over traces."""

    def __init__(self, k: int):
        if k < 1:
            raise ValueError("k-set agreement needs k >= 1")
        self.k = k
        self.name = f"{k}-set-agreement"

    def check(
        self,
        sim: Simulation,
        inputs: Mapping[int, Any],
        require_termination: bool = True,
    ) -> Verdict:
        violations: List[Violation] = []
        if require_termination:
            self._check_termination(sim, violations)
        self._check_validity(sim, inputs, violations)
        self._check_agreement(sim, self.k, violations)
        return Verdict(self.name, violations)


class ConsensusSpec(SetAgreementSpec):
    """Consensus = 1-set agreement."""

    def __init__(self) -> None:
        super().__init__(1)
        self.name = "consensus"
