"""Decision tasks: k-set agreement, consensus, and trace checkers."""

from .base import TaskSpec, Verdict, Violation
from .set_agreement import ConsensusSpec, SetAgreementSpec

__all__ = [
    "ConsensusSpec",
    "SetAgreementSpec",
    "TaskSpec",
    "Verdict",
    "Violation",
]
