"""Failure patterns and environments."""

from .environment import Environment
from .pattern import FailurePattern

__all__ = ["Environment", "FailurePattern"]
