"""Environments — sets of admissible failure patterns (Sect. 3.2, 5.3).

The paper's default environment contains all failure patterns with at least
one correct process (the wait-free environment ``E_n``).  Sect. 5.3
generalizes to ``E_f``: all patterns with at most ``f`` faulty processes.
"""

from __future__ import annotations

import dataclasses
import itertools
import random
from typing import Iterator, Optional

from ..runtime.errors import PatternError
from ..runtime.process import System
from .pattern import FailurePattern


@dataclasses.dataclass(frozen=True)
class Environment:
    """The environment ``E_f`` over a given system.

    ``E_f`` = all failure patterns ``F`` with ``|faulty(F)| <= f``.  The
    wait-free case is ``f = n``.
    """

    system: System
    f: int

    def __post_init__(self) -> None:
        if not 0 <= self.f <= self.system.n:
            raise PatternError(
                f"resilience f={self.f} outside 0..{self.system.n}"
            )

    @classmethod
    def wait_free(cls, system: System) -> "Environment":
        """``E_n``: up to ``n`` of the ``n + 1`` processes may crash."""
        return cls(system, system.n)

    @property
    def is_wait_free(self) -> bool:
        return self.f == self.system.n

    @property
    def min_correct(self) -> int:
        """``n + 1 − f``: a lower bound on ``|correct(F)|`` in this
        environment, and on the Υf output-set size."""
        return self.system.n_processes - self.f

    def admits(self, pattern: FailurePattern) -> bool:
        """Whether ``pattern ∈ E_f``."""
        return (
            pattern.system == self.system
            and len(pattern.faulty) <= self.f
        )

    def require(self, pattern: FailurePattern) -> FailurePattern:
        """Validate membership, returning the pattern for chaining."""
        if not self.admits(pattern):
            raise PatternError(
                f"pattern with faulty={sorted(pattern.faulty)} not in E_{self.f}"
            )
        return pattern

    def random_pattern(
        self,
        rng: random.Random,
        max_crash_time: int = 200,
        max_faulty: Optional[int] = None,
    ) -> FailurePattern:
        """Draw a random pattern from this environment."""
        limit = self.f if max_faulty is None else min(max_faulty, self.f)
        return FailurePattern.random(
            self.system, rng, max_faulty=limit, max_crash_time=max_crash_time
        )

    def correct_set_candidates(self) -> Iterator[frozenset[int]]:
        """All sets that can be ``correct(F)`` for some ``F ∈ E_f``.

        These are exactly the subsets of ``Π`` of size ``>= n + 1 − f``.
        Used by the sample machinery of Sect. 6.3 and by detector
        specifications.
        """
        pids = list(self.system.pids)
        for size in range(self.min_correct, len(pids) + 1):
            for combo in itertools.combinations(pids, size):
                yield frozenset(combo)

    def initially_dead(self, dead: frozenset[int]) -> FailurePattern:
        """The pattern where ``dead`` crash at time 0 — the canonical
        witness used in indistinguishability arguments."""
        if len(dead) > self.f:
            raise PatternError(f"{len(dead)} crashes exceed f={self.f}")
        return FailurePattern.only_correct(
            self.system, self.system.pid_set - dead, crash_time=0
        )
