"""Failure patterns (Sect. 3.2 of the paper).

A failure pattern ``F`` is a function from the time range
``T = {0} ∪ N`` to ``2^Π`` where ``F(t)`` is the set of processes that have
crashed by time ``t``, with ``F(t) ⊆ F(t+1)`` (crashes are permanent).

Since each process crashes at most once, we represent ``F`` compactly as a
map ``pid -> crash time`` (absent = correct).  Time is the simulation's
global step index.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, Iterable, Mapping, Optional

from ..runtime.errors import PatternError
from ..runtime.process import System


@dataclasses.dataclass(frozen=True)
class FailurePattern:
    """An immutable crash schedule over a :class:`System`.

    Parameters
    ----------
    system:
        The process universe ``Π``.
    crash_times:
        Map from pid to the time (global step index) at which the process
        is crashed.  A process ``p`` with ``crash_times[p] = t`` is in
        ``F(t')`` for every ``t' >= t`` and takes no step at or after ``t``.
    """

    system: System
    crash_times: Mapping[int, int]

    def __post_init__(self) -> None:
        crash_times = dict(self.crash_times)
        object.__setattr__(self, "crash_times", crash_times)
        for pid, when in crash_times.items():
            self.system.validate_pid(pid)
            if when < 0:
                raise PatternError(f"crash time for {pid} is negative: {when}")
        if len(crash_times) >= self.system.n_processes:
            raise PatternError("at least one process must be correct")

    # ------------------------------------------------------------------
    # The paper's F(t), faulty(F), correct(F).
    # ------------------------------------------------------------------

    def crashed_by(self, t: int) -> frozenset[int]:
        """``F(t)``: the set of processes crashed by time ``t``."""
        return frozenset(p for p, when in self.crash_times.items() if when <= t)

    @property
    def faulty(self) -> frozenset[int]:
        """``faulty(F) = ∪_t F(t)``."""
        return frozenset(self.crash_times)

    @property
    def correct(self) -> frozenset[int]:
        """``correct(F) = Π − faulty(F)``."""
        return self.system.pid_set - self.faulty

    def is_alive(self, pid: int, t: int) -> bool:
        """Whether ``pid`` may take a step at time ``t`` (``pid ∉ F(t)``)."""
        when = self.crash_times.get(pid)
        return when is None or t < when

    def crash_time(self, pid: int) -> Optional[int]:
        """The time at which ``pid`` crashes, or ``None`` if correct."""
        return self.crash_times.get(pid)

    @property
    def last_crash_time(self) -> int:
        """The time by which every faulty process has crashed (0 if none)."""
        return max(self.crash_times.values(), default=0)

    # ------------------------------------------------------------------
    # Constructors.
    # ------------------------------------------------------------------

    @classmethod
    def failure_free(cls, system: System) -> "FailurePattern":
        """The pattern in which every process is correct."""
        return cls(system, {})

    @classmethod
    def crash_at(cls, system: System, crashes: Mapping[int, int]) -> "FailurePattern":
        """Explicit crash schedule."""
        return cls(system, dict(crashes))

    @classmethod
    def only_correct(
        cls, system: System, correct: Iterable[int], crash_time: int = 0
    ) -> "FailurePattern":
        """Pattern where exactly ``correct`` survive; the rest crash at
        ``crash_time`` (initially-dead by default)."""
        correct_set = frozenset(correct)
        crashes = {p: crash_time for p in system.pids if p not in correct_set}
        return cls(system, crashes)

    @classmethod
    def random(
        cls,
        system: System,
        rng: random.Random,
        max_faulty: Optional[int] = None,
        max_crash_time: int = 200,
    ) -> "FailurePattern":
        """Draw a pattern with 0..max_faulty crashes at random times.

        ``max_faulty`` defaults to ``n`` (the wait-free environment).
        """
        if max_faulty is None:
            max_faulty = system.n
        if not 0 <= max_faulty <= system.n:
            raise PatternError(f"max_faulty {max_faulty} outside 0..{system.n}")
        n_faulty = rng.randint(0, max_faulty)
        victims = rng.sample(list(system.pids), n_faulty)
        crashes: Dict[int, int] = {
            p: rng.randint(0, max_crash_time) for p in victims
        }
        return cls(system, crashes)

    def describe(self) -> str:
        """Human-readable one-liner for logs and experiment reports."""
        if not self.crash_times:
            return "failure-free"
        parts = ", ".join(
            f"p{p}@{t}" for p, t in sorted(self.crash_times.items())
        )
        return f"crashes: {parts}"
