"""Adversarial-but-legal detector histories (the lying prefix).

Sect. 3.2 defines all of the paper's detectors as *eventual*: a history is
in ``D(F)`` as soon as its limit behaviour is right, so any finite prefix
of arbitrary range values is legal.  :class:`LyingHistory` exploits that
to the hilt — before ``lie_until`` it outputs a seeded mix of the *worst
case* value for the wrapped detector and plain noise; from ``lie_until``
on it defers to a legal stable history.

The worst case is detector-specific but derivable from the spec alone:

* for Υ/Υf the most damaging transient output is the correct set itself
  (the one value the spec forbids as a *limit* — Fig. 1's termination
  argument is precisely about surviving it transiently);
* for leader-style detectors (Ω, Ωk) the damage is a crashed or rotating
  leader; the noise pool already contains every such value.

Because the wrapper only ever emits values from ``spec.noise_pool`` before
``lie_until`` and delegates afterwards, the composed history is in
``D(F)`` for every detector in the registry — chaos composes over
Υ/Υf/Ω/Ωk without per-detector code.
"""

from __future__ import annotations

import random
from typing import Any, Optional

from ..detectors.base import DetectorSpec, History, seeded_noise
from ..failures.pattern import FailurePattern
from .config import ChaosConfig


class LyingHistory(History):
    """Arbitrary (seeded) output before ``lie_until``, ``inner`` after.

    ``lie(pid, t)`` must be deterministic in ``(pid, t)`` — same contract
    as :class:`~repro.detectors.base.StableHistory` noise — so chaotic
    runs replay identically.
    """

    def __init__(self, inner: History, lie, lie_until: int):
        self.inner = inner
        self.lie_until = lie_until
        self._lie = lie

    @property
    def stable_value(self) -> Any:
        """Delegates to the wrapped history (analysis code reads this)."""
        return self.inner.stable_value  # type: ignore[attr-defined]

    def value(self, pid: int, t: int) -> Any:
        if t < self.lie_until:
            return self._lie(pid, t)
        return self.inner.value(pid, t)

    def describe(self) -> str:
        return f"lying(until t={self.lie_until}, then {self.inner.describe()})"


def worst_lie(spec: DetectorSpec, pattern: FailurePattern) -> Optional[Any]:
    """The most adversarial single range value for ``spec`` under
    ``pattern``, or ``None`` when the noise pool has no distinguished
    worst case.

    Showing exactly ``correct(F)`` maximally stalls the Υ protocols (no
    process can tell the lie from a stabilized output about itself), and
    pointing at a crashed process is the classic Ω-style lie.
    """
    pool = list(spec.noise_pool(pattern))
    correct = frozenset(pattern.correct)
    if correct in pool:
        return correct
    for faulty in sorted(pattern.faulty):
        if faulty in pool:
            return faulty
        if frozenset((faulty,)) in pool:
            return frozenset((faulty,))
    return None


def chaotic_history(
    spec: DetectorSpec,
    pattern: FailurePattern,
    chaos: ChaosConfig,
    rng: random.Random,
    stable_value: Any = None,
) -> History:
    """A legal history for ``spec`` with a ``chaos.lying_prefix`` prefix.

    The post-prefix part is a freshly sampled *stable* history (legal by
    construction); the prefix mixes the worst-case lie (3 out of 4 draws)
    with seeded noise-pool values.  With ``lying_prefix == 0`` this is
    exactly ``spec.sample_history``.
    """
    inner = spec.sample_history(
        pattern, rng,
        stabilization_time=0,
        stable_value=stable_value,
    )
    if chaos.lying_prefix <= 0:
        return inner
    pool = spec.noise_pool(pattern)
    noise = seeded_noise(chaos.seed ^ rng.randrange(2**31), pool)
    pinned = worst_lie(spec, pattern)
    if pinned is None:
        lie = noise
    else:
        coin_seed = chaos.seed

        def lie(pid: int, t: int, _noise=noise, _pinned=pinned) -> Any:
            coin = random.Random(f"lie:{coin_seed}:{pid}:{t}").random()
            return _pinned if coin < 0.75 else _noise(pid, t)

    return LyingHistory(inner, lie, chaos.lying_prefix)
