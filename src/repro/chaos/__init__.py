"""Chaos layer: spec-conformant fault injection for every substrate.

The paper's guarantees are *eventual* (Sect. 3.2, run requirement 5), so
a finite prefix of arbitrary detector output, message faults within the
ABD safety envelope, and bounded scheduler unfairness are all inside the
model — a property violation under chaos is a real bug.  Three injectors,
one knob set:

* :mod:`repro.chaos.detectors` — :class:`LyingHistory`, worst-case-biased
  detector prefixes, composable over Υ/Υf/Ω/Ωk via
  ``DetectorSpec.sample_chaotic_history``;
* :mod:`repro.chaos.network` — :class:`FaultyNetwork`, seeded
  drop/duplicate/reorder with an explicit ABD safety envelope;
* :mod:`repro.chaos.scheduler` — :class:`ChaosScheduler`, adversarial
  bursts and starvation windows under a hard fairness bound.

:mod:`repro.chaos.trial` packages all three into picklable
:class:`ChaosTrialSpec` trials that run on the (resilient)
:func:`repro.perf.executor.run_trials` harness; ``python -m repro sweep
chaos`` is the CLI front end.

:mod:`repro.chaos.infra` turns the same discipline on the experiment
infrastructure itself — seeded ``database is locked`` storms, torn-process
kills at store barriers, cache ENOSPC, ledger tears — with
:class:`CrashConsistencyChecker` proving the farm's exactly-once
invariants under every plan; ``python -m repro chaos infra`` drives it.
"""

from .config import ChaosConfig
from .detectors import LyingHistory, chaotic_history, worst_lie
from .infra import (
    KILL_BARRIERS,
    CrashConsistencyChecker,
    CrashConsistencyReport,
    FaultyCache,
    FaultyStore,
    InfraFaultPlan,
    InfraInjector,
    InfraViolation,
    SimulatedPowerCut,
    check_store_invariants,
    tear_ledger_tail,
)
from .network import FaultyNetwork, quorum_critical
from .scheduler import ChaosScheduler
from .trial import (
    PROTOCOLS,
    ChaosTrialResult,
    ChaosTrialSpec,
    run_chaos_trial,
    spec_from_chaos,
)

__all__ = [
    "ChaosConfig",
    "ChaosScheduler",
    "ChaosTrialResult",
    "ChaosTrialSpec",
    "CrashConsistencyChecker",
    "CrashConsistencyReport",
    "FaultyCache",
    "FaultyNetwork",
    "FaultyStore",
    "InfraFaultPlan",
    "InfraInjector",
    "InfraViolation",
    "KILL_BARRIERS",
    "LyingHistory",
    "PROTOCOLS",
    "SimulatedPowerCut",
    "chaotic_history",
    "check_store_invariants",
    "quorum_critical",
    "run_chaos_trial",
    "spec_from_chaos",
    "tear_ledger_tail",
    "worst_lie",
]
