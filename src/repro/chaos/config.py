"""Chaos configuration: one frozen knob set shared by every injector.

All of the paper's guarantees are *eventual*, which is exactly what makes
aggressive fault injection spec-conformant: a detector may output
arbitrary garbage for any finite prefix (Sect. 3.2), the schedule may be
arbitrarily unfair for any finite prefix (run requirement 5 constrains
only the limit), and the ABD substrate tolerates any message delay.  The
knobs below parameterize those three adversaries; each stays inside the
model on purpose, so a property violation under chaos is a real bug, not
an artifact of leaving the model.

``ChaosConfig`` is a frozen primitives-only dataclass so it can ride
inside a picklable trial spec and hash into a stable cache key.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict


@dataclasses.dataclass(frozen=True)
class ChaosConfig:
    """Severity knobs for the three injectors.

    Parameters
    ----------
    seed:
        Drives every chaos draw.  Chaos randomness is deliberately kept
        on RNG streams separate from the engine's, so ``ChaosConfig()``
        (all knobs off) reproduces the pristine run bit-for-bit.
    lying_prefix:
        Detector adversary — steps during which the wrapped history may
        output arbitrary range values (including the worst-case lie)
        before reverting to its legal stable behaviour.
    drop_rate, duplicate_rate, reorder_rate:
        Network adversary — per-message probabilities, applied only
        within the ABD safety envelope (see
        :class:`repro.chaos.network.FaultyNetwork`).
    reorder_jitter:
        Extra delivery delay (in steps, uniform ``1..reorder_jitter``)
        for messages selected by ``reorder_rate``.
    burst_length:
        Scheduler adversary — length of "only this process runs" bursts.
    starvation_window:
        Scheduler adversary — length of "this process never runs"
        windows.
    fairness_bound:
        Hard cap on how long any eligible process may go unscheduled;
        the perturbing scheduler preempts its own mischief to honour it
        (run requirement 5 in finite form).
    """

    seed: int = 0
    lying_prefix: int = 0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    reorder_jitter: int = 4
    burst_length: int = 0
    starvation_window: int = 0
    fairness_bound: int = 64

    def __post_init__(self) -> None:
        for name in ("drop_rate", "duplicate_rate", "reorder_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        for name in ("lying_prefix", "reorder_jitter", "burst_length",
                     "starvation_window"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if self.fairness_bound < 1:
            raise ValueError("fairness_bound must be >= 1")
        if self.burst_length >= self.fairness_bound:
            raise ValueError(
                f"burst_length {self.burst_length} would violate the "
                f"fairness bound {self.fairness_bound}"
            )
        if self.starvation_window >= self.fairness_bound:
            raise ValueError(
                f"starvation_window {self.starvation_window} would violate "
                f"the fairness bound {self.fairness_bound}"
            )

    @property
    def any_active(self) -> bool:
        """True when at least one injector has a non-zero knob."""
        return bool(
            self.lying_prefix
            or self.drop_rate
            or self.duplicate_rate
            or self.reorder_rate
            or self.burst_length
            or self.starvation_window
        )

    @classmethod
    def max_severity(cls, seed: int = 0) -> "ChaosConfig":
        """The harshest configuration the safety envelope supports.

        Rates at 1.0 mean "every message the envelope allows to be
        faulted is faulted"; the envelope itself (never drop quorum-
        critical acks, never fake quorums with duplicates, bounded
        unfairness) is what keeps even this configuration inside the
        paper's model.
        """
        return cls(
            seed=seed,
            lying_prefix=150,
            drop_rate=1.0,
            duplicate_rate=1.0,
            reorder_rate=1.0,
            reorder_jitter=6,
            burst_length=12,
            starvation_window=12,
            fairness_bound=48,
        )

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ChaosConfig":
        return cls(**data)
