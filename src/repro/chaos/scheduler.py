"""Scheduler perturbation: adversarial bursts and starvation windows.

The model's only schedule constraint is eventual fairness, so a finite
simulation may legally contain arbitrarily nasty stretches: one process
monopolizing the CPU (a *burst* — Theorem 1's ``solo`` blocks, but placed
randomly) or one process frozen out entirely (a *starvation window* —
"p is arbitrarily slow for a while").  :class:`ChaosScheduler` injects
both on top of any inner scheduler, under a hard
:class:`~repro.runtime.scheduler.FairnessGuard` bound so the perturbed
schedule still satisfies run requirement 5 in its finite form — no
eligible process ever waits more than ``chaos.fairness_bound`` steps.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from ..obs.events import ChaosInjected, EventBus
from ..runtime.scheduler import FairnessGuard, Scheduler
from .config import ChaosConfig

#: Per-step probability of starting a new burst / starvation window when
#: none is active (deterministic in the chaos seed).
_PERTURB_RATE = 0.04


class ChaosScheduler(Scheduler):
    """Wrap ``inner``, injecting bursts and starvation windows.

    With both scheduler knobs at zero this delegates every choice to
    ``inner`` unchanged (the guard still watches, but a sane inner
    scheduler never trips it).
    """

    def __init__(
        self,
        inner: Scheduler,
        chaos: ChaosConfig,
        bus: Optional[EventBus] = None,
    ):
        self._inner = inner
        self.chaos = chaos
        self._bus = bus
        self._rng = random.Random(f"sched:{chaos.seed}")
        self.guard = FairnessGuard(chaos.fairness_bound)
        self._burst_pid: Optional[int] = None
        self._burst_left = 0
        self._starved_pid: Optional[int] = None
        self._starve_left = 0
        self.bursts_started = 0
        self.starvations_started = 0

    def _publish(self, t: int, kind: str, detail: str) -> None:
        bus = self._bus
        if bus is not None and bus.active:
            bus.publish(ChaosInjected(t, kind, detail))

    def _decide(self, t: int, eligible: Sequence[int]) -> int:
        # The fairness bound preempts any active mischief.
        overdue = self.guard.overdue(eligible)
        if overdue is not None:
            self._burst_left = 0
            self._starve_left = 0
            return overdue
        chaos = self.chaos
        # Continue an active burst while its pid stays eligible.
        if self._burst_left > 0 and self._burst_pid in eligible:
            self._burst_left -= 1
            return self._burst_pid  # type: ignore[return-value]
        self._burst_left = 0
        # Starvation window: hide the starved pid from the inner scheduler.
        if self._starve_left > 0:
            self._starve_left -= 1
            filtered = [p for p in eligible if p != self._starved_pid]
            if filtered:
                return self._inner.choose(t, filtered)
            self._starve_left = 0  # the starved pid is the only one left
        # Maybe start a fresh perturbation.
        if chaos.burst_length and self._rng.random() < _PERTURB_RATE:
            self._burst_pid = eligible[self._rng.randrange(len(eligible))]
            self._burst_left = chaos.burst_length - 1
            self.bursts_started += 1
            self._publish(
                t, "burst", f"p{self._burst_pid} x{chaos.burst_length}"
            )
            return self._burst_pid
        if (
            chaos.starvation_window
            and len(eligible) > 1
            and self._rng.random() < _PERTURB_RATE
        ):
            self._starved_pid = eligible[self._rng.randrange(len(eligible))]
            self._starve_left = chaos.starvation_window
            self.starvations_started += 1
            self._publish(
                t, "starvation",
                f"p{self._starved_pid} for {chaos.starvation_window}",
            )
        return self._inner.choose(t, eligible)

    def choose(self, t: int, eligible: Sequence[int]) -> int:
        pid = self._decide(t, eligible)
        self.guard.note(pid, eligible)
        return pid
