"""Chaos trials: the paper's protocols under all three injectors at once.

A :class:`ChaosTrialSpec` is a picklable recipe for one seeded run of a
Fig. 1 / Fig. 2 / Fig. 3 protocol — or of k-converge over ABD-emulated
registers (``abd-converge``, the protocol that actually exercises the
network injector) — with a lying detector prefix, a faulty network, and
a perturbed scheduler.  Properties are checked through the
:mod:`repro.mc.properties` adapters on the finished run, so the same
oracles validate chaotic trials and exhaustive explorations.

The ``sabotage`` field is the harness's own fault injector: it makes the
*worker* fail (raise / die / hang) so the retry, quarantine, and watchdog
machinery of :mod:`repro.perf.resilience` can be tested and demonstrated
end-to-end (``repro sweep chaos --inject-worker-crash``).
"""

from __future__ import annotations

import dataclasses
import random
from typing import Any, Dict, List, Optional

from .config import ChaosConfig

#: Default per-trial step budget (ABD quorum rounds under jitter are slow).
_DEFAULT_MAX_STEPS = 400_000

PROTOCOLS = ("fig1", "fig2", "extraction", "abd-converge")


@dataclasses.dataclass(frozen=True)
class ChaosTrialSpec:
    """One seeded chaos trial (picklable, cache-keyable).

    ``f = None`` means the protocol's natural default: wait-free for
    ``fig1``/``extraction``, ``n − 1`` for ``fig2``, the largest
    majority-safe resilience ``⌊n/2⌋`` for ``abd-converge``.

    ``sabotage`` (harness self-test only): ``"raise"`` fails the trial
    with an exception, ``"crash"`` kills the worker process outright,
    ``"hang"`` sleeps past any reasonable watchdog, and
    ``"raise-once:<path>"`` fails only while ``<path>`` does not exist
    (it is created on the first attempt — a deterministic flake).
    """

    protocol: str
    n_processes: int
    seed: int
    f: Optional[int] = None
    detector: str = "omega"          # extraction source (registry name)
    lying_prefix: int = 0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    reorder_rate: float = 0.0
    reorder_jitter: int = 4
    burst_length: int = 0
    starvation_window: int = 0
    fairness_bound: int = 64
    max_steps: int = _DEFAULT_MAX_STEPS
    sabotage: str = ""

    kind = "chaos"

    def chaos_config(self) -> ChaosConfig:
        return ChaosConfig(
            seed=self.seed,
            lying_prefix=self.lying_prefix,
            drop_rate=self.drop_rate,
            duplicate_rate=self.duplicate_rate,
            reorder_rate=self.reorder_rate,
            reorder_jitter=self.reorder_jitter,
            burst_length=self.burst_length,
            starvation_window=self.starvation_window,
            fairness_bound=self.fairness_bound,
        )


def spec_from_chaos(
    protocol: str,
    n_processes: int,
    seed: int,
    chaos: ChaosConfig,
    f: Optional[int] = None,
    detector: str = "omega",
    max_steps: int = _DEFAULT_MAX_STEPS,
) -> ChaosTrialSpec:
    """Build a :class:`ChaosTrialSpec` from a :class:`ChaosConfig`."""
    return ChaosTrialSpec(
        protocol=protocol,
        n_processes=n_processes,
        seed=seed,
        f=f,
        detector=detector,
        lying_prefix=chaos.lying_prefix,
        drop_rate=chaos.drop_rate,
        duplicate_rate=chaos.duplicate_rate,
        reorder_rate=chaos.reorder_rate,
        reorder_jitter=chaos.reorder_jitter,
        burst_length=chaos.burst_length,
        starvation_window=chaos.starvation_window,
        fairness_bound=chaos.fairness_bound,
        max_steps=max_steps,
    )


@dataclasses.dataclass
class ChaosTrialResult:
    """Flat outcome of one chaos trial (CSV-exportable)."""

    protocol: str
    n_processes: int
    f: int
    seed: int
    lying_prefix: int
    drop_rate: float
    faulty: int
    decided: bool
    ok: bool
    violations: str
    total_steps: int
    last_decision_time: int
    messages_dropped: int
    messages_duplicated: int
    messages_delayed: int
    bursts: int
    starvations: int
    metrics: Optional[Dict[str, Any]] = dataclasses.field(
        default=None, repr=False, compare=False
    )


def _apply_sabotage(sabotage: str) -> None:
    if not sabotage:
        return
    if sabotage == "raise":
        raise RuntimeError("sabotage: deliberate trial failure")
    if sabotage == "crash":
        import os

        os._exit(23)  # simulate a worker death (OOM-killer style)
    if sabotage == "hang":
        import time

        time.sleep(3600)  # the watchdog must cut this short
        raise RuntimeError("sabotage: hang outlived the watchdog")
    if sabotage.startswith("raise-once:"):
        from pathlib import Path

        marker = Path(sabotage.partition(":")[2])
        if not marker.exists():
            marker.parent.mkdir(parents=True, exist_ok=True)
            marker.touch()
            raise RuntimeError("sabotage: first-attempt flake")
        return
    raise ValueError(f"unknown sabotage mode {sabotage!r}")


def _announce(bus, chaos: ChaosConfig) -> None:
    """One ChaosInjected event per active knob, stamped at t=0."""
    from ..obs.events import ChaosInjected

    if bus is None or not bus.active:
        return
    knobs = (
        ("lying-prefix", chaos.lying_prefix),
        ("drop", chaos.drop_rate),
        ("duplicate", chaos.duplicate_rate),
        ("reorder", chaos.reorder_rate),
        ("burst", chaos.burst_length),
        ("starvation", chaos.starvation_window),
    )
    for kind, setting in knobs:
        if setting:
            bus.publish(ChaosInjected(0, kind, str(setting)))


def run_chaos_trial(
    spec: ChaosTrialSpec,
    collector=None,
    *,
    pristine: bool = False,
    sim_out: Optional[list] = None,
) -> ChaosTrialResult:
    """Execute one chaos trial and check its properties.

    Termination is checked explicitly (``all_correct_decided`` for the
    decision protocols, output stabilization for extraction) — the
    adapters' :class:`~repro.mc.properties.TerminationProperty` is
    vacuous on non-quiescent runs, and a chaotic run that stalls is
    precisely what we must not miss.

    ``pristine`` (zero-severity specs only) bypasses the chaos machinery
    entirely: the inner :class:`~repro.runtime.scheduler.RandomScheduler`
    runs unwrapped and ``abd-converge`` uses the plain reliable
    :class:`~repro.messaging.network.Network`.  A zero-severity chaos run
    and its pristine twin must be step-for-step identical — that claim is
    what the ``chaos-zero`` oracle of :mod:`repro.audit` checks.

    ``sim_out``, when a list, receives the finished
    :class:`~repro.runtime.simulation.Simulation` (for trace-level diffs).
    """
    _apply_sabotage(spec.sabotage)
    if spec.protocol not in PROTOCOLS:
        raise ValueError(
            f"unknown chaos protocol {spec.protocol!r}; "
            f"expected one of {PROTOCOLS}"
        )

    from ..obs.metrics import MetricsCollector
    from ..runtime.process import System
    from ..runtime.scheduler import RandomScheduler
    from .scheduler import ChaosScheduler

    chaos = spec.chaos_config()
    if pristine and chaos.any_active:
        raise ValueError(
            "pristine execution requires a zero-severity chaos spec; "
            f"got active knobs in {chaos!r}"
        )
    system = System(spec.n_processes)
    rng = random.Random(
        f"chaos:{spec.protocol}:{spec.n_processes}:{spec.f}:{spec.seed}"
    )
    if collector is None:
        collector = MetricsCollector()
    bus = collector.bus
    _announce(bus, chaos)
    if pristine:
        scheduler = RandomScheduler(spec.seed)
    else:
        scheduler = ChaosScheduler(RandomScheduler(spec.seed), chaos, bus=bus)

    if spec.protocol == "abd-converge":
        sim, network, f_eff, violations, decided = _run_abd_converge(
            spec, system, chaos, rng, scheduler, bus, pristine=pristine
        )
    elif spec.protocol == "extraction":
        sim, f_eff, violations, decided = _run_extraction(
            spec, system, chaos, rng, scheduler, bus
        )
        network = None
    else:
        sim, f_eff, violations, decided = _run_set_agreement(
            spec, system, chaos, rng, scheduler, bus
        )
        network = None

    if sim_out is not None:
        sim_out.append(sim)
    times = sim.trace.decision_times()
    return ChaosTrialResult(
        protocol=spec.protocol,
        n_processes=spec.n_processes,
        f=f_eff,
        seed=spec.seed,
        lying_prefix=spec.lying_prefix,
        drop_rate=spec.drop_rate,
        faulty=len(sim.pattern.faulty),
        decided=decided,
        ok=decided and not violations,
        violations="; ".join(violations),
        total_steps=sim.time,
        last_decision_time=max(times.values()) if times else -1,
        messages_dropped=getattr(network, "dropped_count", 0),
        messages_duplicated=getattr(network, "duplicated_count", 0),
        messages_delayed=getattr(network, "delayed_count", 0),
        bursts=getattr(scheduler, "bursts_started", 0),
        starvations=getattr(scheduler, "starvations_started", 0),
        metrics=collector.snapshot(),
    )


def _run_set_agreement(spec, system, chaos, rng, scheduler, bus):
    from ..core.f_resilient import make_upsilon_f_set_agreement
    from ..core.set_agreement import make_upsilon_set_agreement
    from ..detectors.upsilon import UpsilonFSpec, UpsilonSpec
    from ..failures.environment import Environment
    from ..mc.properties import AgreementProperty, ValidityProperty
    from ..runtime.simulation import Simulation

    if spec.protocol == "fig1":
        f_eff = system.n
        env = Environment.wait_free(system)
        detector = UpsilonSpec(system)
        protocol = make_upsilon_set_agreement()
    else:
        f_eff = spec.f if spec.f is not None else max(1, system.n - 1)
        env = Environment(system, f_eff)
        detector = UpsilonFSpec(env)
        protocol = make_upsilon_f_set_agreement(f_eff)
    pattern = env.random_pattern(
        rng, max_crash_time=max(chaos.lying_prefix, 60)
    )
    history = detector.sample_chaotic_history(pattern, rng, chaos)
    inputs = {p: f"v{p}" for p in system.pids}
    sim = Simulation(
        system, protocol, inputs=inputs, pattern=pattern, history=history,
        bus=bus,
    )
    sim.run(
        max_steps=spec.max_steps,
        scheduler=scheduler,
        stop_when=Simulation.all_correct_decided,
    )
    violations = _collect(
        sim, [AgreementProperty(f_eff), ValidityProperty(inputs)]
    )
    decided = sim.all_correct_decided()
    if not decided:
        violations.append(
            f"termination: correct processes undecided after "
            f"{sim.time} steps"
        )
    return sim, f_eff, violations, decided


def _run_extraction(spec, system, chaos, rng, scheduler, bus):
    from ..core.extraction import (
        make_extraction_protocol,
        stable_emulated_output,
    )
    from ..core.samples import PhiMap
    from ..detectors.registry import make_detector
    from ..detectors.upsilon import UpsilonFSpec
    from ..failures.environment import Environment
    from ..mc.properties import UpsilonOutputProperty
    from ..runtime.simulation import Simulation

    env = (
        Environment.wait_free(system)
        if spec.f is None
        else Environment(system, spec.f)
    )
    source = make_detector(spec.detector, env)
    pattern = env.random_pattern(
        rng, max_crash_time=max(chaos.lying_prefix, 50)
    )
    history = source.sample_chaotic_history(pattern, rng, chaos)
    sim = Simulation(
        env.system,
        make_extraction_protocol(PhiMap(source, env)),
        inputs={},
        pattern=pattern,
        history=history,
        bus=bus,
    )
    sim.run(max_steps=spec.max_steps, scheduler=scheduler)
    violations = _collect(
        sim, [UpsilonOutputProperty(system.pid_set, env.min_correct)]
    )
    outputs = stable_emulated_output(sim, pattern)
    decided = False
    if outputs is not None:
        values = {frozenset(v) for v in outputs.values()}
        if len(values) == 1:
            upsilon = UpsilonFSpec(env)
            decided = upsilon.is_legal_stable_value(
                pattern, next(iter(values))
            )
    if not decided:
        violations.append(
            f"extraction output not stabilized/legal after {sim.time} steps"
        )
    return sim, env.f, violations, decided


def _run_abd_converge(spec, system, chaos, rng, scheduler, bus,
                      pristine=False):
    from ..core.converge import ConvergeInstance
    from ..failures.environment import Environment
    from ..failures.pattern import FailurePattern
    from ..mc.properties import (
        ConvergeAgreementProperty,
        ConvergeValidityProperty,
    )
    from ..messaging.abd import AbdRegisters, abd_snapshot_api
    from ..messaging.network import Network
    from ..runtime.ops import Decide
    from ..runtime.simulation import Simulation
    from .network import FaultyNetwork

    n_procs = system.n_processes
    majority_safe = (n_procs - 1) // 2
    f_eff = majority_safe if spec.f is None else min(spec.f, majority_safe)
    f_eff = max(f_eff, 0)
    quorum = n_procs - f_eff
    if f_eff > 0:
        pattern = Environment(system, f_eff).random_pattern(
            rng, max_crash_time=max(chaos.lying_prefix, 60)
        )
    else:
        pattern = FailurePattern.failure_free(system)
    k = max(1, f_eff)
    inputs = {p: f"v{p % k}" for p in system.pids}  # ≤ k distinct: commits

    def protocol(ctx, value):
        abd = AbdRegisters(ctx, quorum=quorum)
        instance = ConvergeInstance(
            ("chaos", "conv"), k, n_procs,
            snapshot_factory=lambda name, cells: abd_snapshot_api(
                abd, name, cells
            ),
        )
        picked, committed = yield from instance.converge(ctx, value)
        yield Decide((picked, committed))
        yield from abd.serve()

    if pristine:
        network = Network(system, seed=spec.seed + 101, max_delay=3)
    else:
        network = FaultyNetwork(
            system,
            seed=spec.seed + 101,
            max_delay=3,
            chaos=chaos,
            quorum=quorum,
            protected=pattern.correct,
        )
    sim = Simulation(
        system, protocol, inputs=inputs, pattern=pattern, network=network,
        bus=bus,
    )
    sim.run(
        max_steps=spec.max_steps,
        scheduler=scheduler,
        stop_when=Simulation.all_correct_decided,
    )
    violations = _collect(
        sim,
        [ConvergeAgreementProperty(k), ConvergeValidityProperty(inputs)],
    )
    decided = sim.all_correct_decided()
    if not decided:
        violations.append(
            f"termination: correct processes undecided after "
            f"{sim.time} steps (quorum={quorum}, "
            f"dropped={getattr(network, 'dropped_count', 0)})"
        )
    return sim, network, f_eff, violations, decided


def _collect(sim, adapters) -> List[str]:
    violations: List[str] = []
    for adapter in adapters:
        reason = adapter.check_run(sim)
        if reason:
            violations.append(f"{adapter.name}: {reason}")
    return violations
