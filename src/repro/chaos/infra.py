"""Infrastructure chaos: seeded fault injection for the harness itself.

PR 4's chaos layer attacks the *simulated* protocol (lying detectors,
lossy networks, unfair schedules); this module turns the same pressure
on the machinery that runs the experiments — the farm store, the trial
cache, the worker pool, the campaign ledger.  The farm *is* a little
distributed system (leases, heartbeats, exactly-once completion), so its
invariants deserve the same adversarial treatment as the paper's: every
fault below is drawn from a seeded stream, graded by severity, and kept
inside a **safety envelope** (bounded lock bursts, one power cut per
run) under which the graceful-degradation machinery is *guaranteed* to
recover — so an invariant violation under infra chaos is a real bug,
never an artifact of injecting more failure than the design tolerates.

The pieces:

* :class:`InfraFaultPlan` — frozen, picklable, severity-graded knobs in
  the :class:`~repro.chaos.config.ChaosConfig` house style;
* :class:`InfraInjector` — the runtime: seeded RNG streams, barrier
  counters, burst envelope, :class:`~repro.obs.events.InfraFaultInjected`
  events;
* :class:`FaultyStore` / :class:`FaultyCache` — wrappers injecting
  ``database is locked``, torn-process kills at named barriers, ENOSPC
  on cache writes, truncated cache entries;
* :func:`tear_ledger_tail` — a kill mid-ledger-append;
* :func:`check_store_invariants` — the farm's exactly-once contract as
  executable assertions over a drained campaign;
* :class:`CrashConsistencyChecker` — real two-worker drains under a
  fault plan, killed at seeded barriers, checked against a pristine
  serial baseline byte for byte.  ``repro chaos infra`` is the CLI
  front end; the ``faulty-infra`` audit oracle runs one-run slices of
  the same checker inside ``repro audit``.
"""

from __future__ import annotations

import dataclasses
import errno
import os
import pickle
import random
import signal
import sqlite3
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from ..perf.cache import TrialCache
from ..perf.resilience import ResiliencePolicy, TrialFailure, guarded_execute

#: Named torn-process kill points inside the store protocol.  Each is a
#: moment a real worker could lose power between lease-claim and
#: result-commit; :class:`FaultyStore` raises :class:`SimulatedPowerCut`
#: when the plan's barrier counter hits ``kill_at``.
KILL_BARRIERS = ("after-claim", "before-complete", "after-complete")

#: Safety envelope: the injector never raises more than this many
#: *consecutive* locked errors on one operation stream, and
#: :class:`~repro.farm.store.RetryingStore` retries up to 5 attempts —
#: so bounded retry always recovers and a crashed worker is a bug.
MAX_LOCK_BURST = 4

#: Sabotage hooks for the self-tests: each must flip a clean checker
#: run into a violation report.
SABOTAGES = ("duplicate-done",)


class SimulatedPowerCut(BaseException):
    """A torn-process kill: the worker 'dies' at a store barrier.

    Deliberately a ``BaseException`` so no retry wrapper or trial-level
    ``except Exception`` can swallow it — exactly like ``SIGKILL``, the
    only handler is the harness that staged the cut.
    """

    def __init__(self, barrier: str, crossing: int):
        super().__init__(f"power cut at {barrier} (crossing {crossing})")
        self.barrier = barrier
        self.crossing = crossing


@dataclasses.dataclass(frozen=True)
class InfraFaultPlan:
    """Severity knobs for the infrastructure injectors.

    Parameters
    ----------
    seed:
        Drives every injection draw, on RNG streams separate from both
        the engine's and the protocol chaos layer's — a plan with all
        knobs off reproduces the pristine run bit-for-bit.
    store_lock_rate:
        Per-operation probability that a guarded store call (claim,
        complete, heartbeat, fail) raises ``sqlite3.OperationalError:
        database is locked`` before reaching the backend.
    store_lock_burst:
        Envelope on consecutive injected locks per operation stream —
        must stay below the store retry budget (≤
        :data:`MAX_LOCK_BURST`) so bounded retry always recovers.
    kill_barrier:
        One of :data:`KILL_BARRIERS`, or ``""`` (no kill).  The worker
        takes a :class:`SimulatedPowerCut` at that store barrier.
    kill_at:
        Which crossing of ``kill_barrier`` dies (0 = the first).
    cache_enospc_after:
        Cache writes before an injected ``OSError(ENOSPC)`` flips the
        cache into degraded read-only mode (``-1`` = never).
    cache_truncate_rate:
        Per-read probability that the entry file is truncated on disk
        first, exercising the corrupt-entry recovery path.
    ledger_tear:
        Exercise a kill mid-ledger-append (torn tail) and assert every
        complete record survives.
    """

    seed: int = 0
    store_lock_rate: float = 0.0
    store_lock_burst: int = 2
    kill_barrier: str = ""
    kill_at: int = 0
    cache_enospc_after: int = -1
    cache_truncate_rate: float = 0.0
    ledger_tear: bool = False

    def __post_init__(self) -> None:
        for name in ("store_lock_rate", "cache_truncate_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if not 1 <= self.store_lock_burst <= MAX_LOCK_BURST:
            raise ValueError(
                f"store_lock_burst must be in [1, {MAX_LOCK_BURST}] (the "
                f"retry safety envelope), got {self.store_lock_burst}"
            )
        if self.kill_barrier and self.kill_barrier not in KILL_BARRIERS:
            raise ValueError(
                f"kill_barrier must be one of {KILL_BARRIERS} or '', "
                f"got {self.kill_barrier!r}"
            )
        if self.kill_at < 0:
            raise ValueError(f"kill_at must be >= 0, got {self.kill_at}")
        if self.cache_enospc_after < -1:
            raise ValueError(
                f"cache_enospc_after must be >= -1, "
                f"got {self.cache_enospc_after}"
            )

    @property
    def any_active(self) -> bool:
        """True when at least one injector has a non-zero knob."""
        return bool(
            self.store_lock_rate
            or self.kill_barrier
            or self.cache_enospc_after >= 0
            or self.cache_truncate_rate
            or self.ledger_tear
        )

    @classmethod
    def light(cls, seed: int = 0) -> "InfraFaultPlan":
        """Weather, not storms: occasional locks and torn cache reads."""
        return cls(
            seed=seed,
            store_lock_rate=0.25,
            store_lock_burst=2,
            cache_truncate_rate=0.1,
        )

    @classmethod
    def max_severity(cls, seed: int = 0) -> "InfraFaultPlan":
        """The harshest plan the safety envelope supports.

        Every guarded store op is lock-bombed (in bursts the retry
        budget still beats), the cache loses its disk after one write,
        reads face torn entries, the ledger takes a torn-tail append,
        and the worker is power-cut at a seed-chosen barrier crossing.
        """
        rng = random.Random(f"infra-plan:{seed}")
        return cls(
            seed=seed,
            store_lock_rate=1.0,
            store_lock_burst=3,
            kill_barrier=rng.choice(KILL_BARRIERS),
            kill_at=rng.randrange(2),
            cache_enospc_after=1,
            cache_truncate_rate=0.35,
            ledger_tear=True,
        )

    @classmethod
    def from_severity(cls, severity: str, seed: int = 0) -> "InfraFaultPlan":
        try:
            builder = _SEVERITIES[severity]
        except KeyError:
            known = ", ".join(sorted(_SEVERITIES))
            raise ValueError(
                f"unknown severity {severity!r} (known: {known})"
            )
        return builder(seed)

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "InfraFaultPlan":
        return cls(**data)

    def build(self, bus=None) -> "InfraInjector":
        """The runtime injector for this plan (one per drained run)."""
        return InfraInjector(self, bus=bus)


_SEVERITIES = {
    "light": InfraFaultPlan.light,
    "max": InfraFaultPlan.max_severity,
}

SEVERITIES = tuple(sorted(_SEVERITIES))


class InfraInjector:
    """Runtime state of one plan: RNG streams, counters, envelopes.

    Lock draws use one stream *per operation name* so the main drain
    thread's weather is independent of the heartbeat thread's.  Barrier
    crossings are counted over **successful** inner operations only, so
    the kill point is a deterministic function of the trial flow, not of
    the lock weather.  ``injected`` tallies every fault by
    ``component:kind`` for reports and tests.
    """

    def __init__(self, plan: InfraFaultPlan, bus=None):
        self.plan = plan
        self.bus = bus
        self.injected: Dict[str, int] = {}
        self._lock_rngs: Dict[str, random.Random] = {}
        self._lock_streaks: Dict[str, int] = {}
        self._crossings: Dict[str, int] = {}
        self._read_rng = random.Random(f"infra:truncate:{plan.seed}")
        self._cache_puts = 0

    def _record(self, component: str, kind: str, op: str = "") -> None:
        key = f"{component}:{kind}"
        self.injected[key] = self.injected.get(key, 0) + 1
        if self.bus is not None and self.bus.active:
            from ..obs.events import InfraFaultInjected

            self.bus.publish(InfraFaultInjected(-1, component, kind, op))

    # -- store faults --------------------------------------------------------

    def maybe_lock(self, op: str) -> None:
        """Raise an injected 'database is locked' per plan and envelope."""
        if self.plan.store_lock_rate <= 0:
            return
        rng = self._lock_rngs.get(op)
        if rng is None:
            rng = random.Random(f"infra:lock:{op}:{self.plan.seed}")
            self._lock_rngs[op] = rng
        streak = self._lock_streaks.get(op, 0)
        if streak >= self.plan.store_lock_burst:
            # Envelope: force a success so bounded retry always recovers.
            self._lock_streaks[op] = 0
            return
        if rng.random() < self.plan.store_lock_rate:
            self._lock_streaks[op] = streak + 1
            self._record("store", "locked", op)
            raise sqlite3.OperationalError("database is locked [injected]")
        self._lock_streaks[op] = 0

    def barrier(self, name: str) -> None:
        """Cross a named kill barrier; die if this crossing is staged."""
        if name != self.plan.kill_barrier:
            return
        crossing = self._crossings.get(name, 0)
        self._crossings[name] = crossing + 1
        if crossing == self.plan.kill_at:
            self._record("store", "kill", name)
            raise SimulatedPowerCut(name, crossing)

    # -- cache faults --------------------------------------------------------

    def cache_put_fault(self) -> bool:
        """True when this cache write should hit injected ENOSPC."""
        if self.plan.cache_enospc_after < 0:
            return False
        fires = self._cache_puts >= self.plan.cache_enospc_after
        self._cache_puts += 1
        if fires:
            self._record("cache", "enospc", "put")
        return fires

    def cache_truncate_fault(self) -> bool:
        """True when this cache read's entry should be truncated first."""
        if self.plan.cache_truncate_rate <= 0:
            return False
        if self._read_rng.random() < self.plan.cache_truncate_rate:
            self._record("cache", "truncate", "get")
            return True
        return False

    # -- ledger / pool faults ------------------------------------------------

    def tear_ledger(self, path: Union[str, Path]) -> None:
        self._record("ledger", "tear", "append")
        tear_ledger_tail(path)

    def kill_pool_worker(self, pool, slot: int = 0) -> int:
        self._record("pool", "kill", f"slot-{slot}")
        return kill_pool_worker(pool, slot)


class FaultyStore:
    """A :class:`~repro.farm.store.FarmStore` wrapper that injects faults.

    Guarded operations (claim/complete/heartbeat/fail) may raise the
    injected ``database is locked``; claim and complete additionally
    cross the plan's kill barriers — ``after-claim`` fires with the
    leases durably held but the worker 'dead', ``before-complete`` with
    the result computed but never committed, ``after-complete`` with the
    commit durable but the worker gone mid-batch.  Submit-side and
    monitoring calls pass through untouched: the adversary attacks the
    drain path, not the experiment definition.
    """

    def __init__(self, inner, injector: InfraInjector):
        self.inner = inner
        self.injector = injector

    @property
    def url(self) -> str:
        return self.inner.url

    # -- faulted drain path --------------------------------------------------

    def claim_batch(self, *args: Any, **kwargs: Any):
        self.injector.maybe_lock("claim")
        out = self.inner.claim_batch(*args, **kwargs)
        self.injector.barrier("after-claim")
        return out

    def heartbeat(self, *args: Any, **kwargs: Any) -> int:
        self.injector.maybe_lock("heartbeat")
        return self.inner.heartbeat(*args, **kwargs)

    def complete(self, *args: Any, **kwargs: Any) -> bool:
        self.injector.maybe_lock("complete")
        self.injector.barrier("before-complete")
        ok = self.inner.complete(*args, **kwargs)
        self.injector.barrier("after-complete")
        return ok

    def fail(self, *args: Any, **kwargs: Any) -> str:
        self.injector.maybe_lock("fail")
        return self.inner.fail(*args, **kwargs)

    # -- pristine pass-through -----------------------------------------------

    def close(self) -> None:
        self.inner.close()

    def __enter__(self) -> "FaultyStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __getattr__(self, name: str) -> Any:
        return getattr(self.inner, name)


class FaultyCache(TrialCache):
    """A :class:`~repro.perf.cache.TrialCache` facing injected disk rot.

    Writes hit the plan's ENOSPC fault (routed through the production
    degraded-mode machinery: warning, ``cache_degraded`` counter,
    read-only flip); reads may find their entry truncated on disk first,
    exercising the real corrupt-entry recovery (log, unlink, recompute).
    """

    def __init__(self, root, injector: InfraInjector):
        super().__init__(root)
        self.injector = injector

    def _write(self, path, result, ensure_dir: bool = True) -> None:
        if self.injector.cache_put_fault():
            self._degrade(
                path,
                OSError(errno.ENOSPC, "No space left on device [injected]"),
            )
            return
        super()._write(path, result, ensure_dir)

    def _load(self, path):
        if path.is_file() and self.injector.cache_truncate_fault():
            raw = path.read_bytes()
            if raw:
                path.write_bytes(raw[: max(1, len(raw) // 2)])
        return super()._load(path)


def tear_ledger_tail(path: Union[str, Path]) -> bytes:
    """Simulate a writer killed mid-append: a torn, newline-less tail.

    Returns the fragment written.  A subsequent
    :meth:`~repro.obs.campaign.CampaignLedger.append` must survive it
    (the torn fragment is skipped as exactly one malformed line).
    """
    fragment = b'{"kind":"torn-by-power-cut","verdict":"un'
    with open(path, "ab") as handle:
        handle.write(fragment)
    return fragment


def kill_pool_worker(pool, slot: int = 0) -> int:
    """SIGKILL one warm-pool worker mid-flight; returns its pid.

    The parent sees the pipe EOF, attributes the death to the worker,
    recycles the slot in place, and reruns the suspect trials — the
    recovery path :class:`~repro.perf.pool.WorkerPool` promises.
    """
    wids = sorted(pool._workers)
    if not wids:
        raise ValueError("pool has no workers to kill")
    worker = pool._workers[wids[slot % len(wids)]]
    pid = worker.process.pid
    os.kill(pid, signal.SIGKILL)
    return pid


# -- the crash-consistency contract ------------------------------------------


@dataclasses.dataclass(frozen=True)
class InfraViolation:
    """One broken store invariant, locatable and serializable."""

    kind: str
    detail: str
    position: int = -1
    run: int = -1

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


def result_bytes(result: Any) -> bytes:
    """Canonical bytes of a trial result for cross-run comparison.

    The ``metrics`` snapshot is observation, not outcome (result
    dataclasses already exclude it from ``==``), so it is nulled before
    pickling — byte equality then means *the experiment agreed*, not
    *the telemetry happened to match*.
    """
    if dataclasses.is_dataclass(result) and any(
        field.name == "metrics" for field in dataclasses.fields(result)
    ):
        result = dataclasses.replace(result, metrics=None)
    return pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)


def check_store_invariants(
    store,
    campaign: str,
    policy: ResiliencePolicy,
    baseline: Optional[Sequence[bytes]] = None,
    run: int = -1,
) -> List[InfraViolation]:
    """The farm's exactly-once contract over one drained campaign.

    * every trial settled exactly once (state ``done``, result present,
      one row per position, row count = declared trial count);
    * no row is both ``done`` and leased;
    * attempts never exceeded the policy budget;
    * results byte-identical to the pristine serial ``baseline``.
    """
    violations: List[InfraViolation] = []

    def flag(kind: str, detail: str, position: int = -1) -> None:
        violations.append(InfraViolation(kind, detail, position, run))

    rows = store.campaign_rows(campaign)
    declared = next(
        (c["trials"] for c in store.campaigns() if c["campaign"] == campaign),
        None,
    )
    if declared is not None and len(rows) != declared:
        flag(
            "row-count",
            f"campaign declares {declared} trial(s) but holds {len(rows)} "
            f"row(s) — a trial was lost or settled twice",
        )
    seen_keys: Dict[str, int] = {}
    for index, row in enumerate(rows):
        position = row["position"]
        if position != index:
            flag(
                "position-gap",
                f"expected position {index}, found {position}",
                position,
            )
        previous = seen_keys.get(row["key"])
        if previous is not None:
            flag(
                "duplicate-result",
                f"key {row['key'][:12]}… settled at both position "
                f"{previous} and {position}",
                position,
            )
        seen_keys.setdefault(row["key"], position)
        if row["state"] != "done":
            flag(
                "unsettled",
                f"state {row['state']!r} after drain "
                f"(failure: {row['failure']!r})",
                position,
            )
        else:
            if row["result"] is None:
                flag("missing-result", "done row carries no result",
                     position)
            if row["lease_token"] is not None \
                    or row["lease_worker"] is not None:
                flag(
                    "done-but-leased",
                    f"done row still leased by "
                    f"{row['lease_worker'] or row['lease_token']!r}",
                    position,
                )
            if row["completed_at"] is None:
                flag("missing-completion-time",
                     "done row has no completed_at", position)
        if row["attempts"] > policy.max_attempts:
            flag(
                "attempt-overrun",
                f"{row['attempts']} attempts exceed the budget of "
                f"{policy.max_attempts}",
                position,
            )
    if baseline is not None:
        if len(rows) != len(baseline):
            if declared is None or len(rows) == declared:
                flag(
                    "row-count",
                    f"baseline has {len(baseline)} result(s), store holds "
                    f"{len(rows)} row(s)",
                )
        else:
            for row, expected in zip(rows, baseline):
                if row["state"] != "done":
                    continue  # already flagged as unsettled
                if result_bytes(row["result"]) != expected:
                    flag(
                        "result-mismatch",
                        "stored result differs byte-for-byte from the "
                        "pristine serial baseline",
                        row["position"],
                    )
    return violations


def sabotage_duplicate_done(store, campaign: str) -> None:
    """Doctor a drained store: duplicate row 0 as an extra done row.

    The self-test hook behind ``--sabotage duplicate-done`` (and the
    ``faulty-infra`` oracle's sabotage mode): a checker that cannot flag
    this store is not checking anything.
    """
    inner = getattr(store, "inner", store)
    conn = inner._conn()
    row = conn.execute(
        "SELECT * FROM trials WHERE campaign = ? AND position = 0",
        (campaign,),
    ).fetchone()
    if row is None:
        raise ValueError(f"campaign {campaign!r} has no row 0 to duplicate")
    top = conn.execute(
        "SELECT MAX(position) AS p FROM trials WHERE campaign = ?",
        (campaign,),
    ).fetchone()["p"]
    body = dict(row)
    body["position"] = top + 1
    columns = ", ".join(body)
    marks = ", ".join("?" * len(body))
    conn.execute("BEGIN IMMEDIATE")
    conn.execute(
        f"INSERT INTO trials ({columns}) VALUES ({marks})",
        tuple(body.values()),
    )
    conn.execute("COMMIT")


def check_ledger_survives_tear(path: Union[str, Path]) -> List[InfraViolation]:
    """Exercise a torn-tail ledger append and assert nothing is lost."""
    from ..obs.campaign import CampaignLedger, CampaignRecord

    ledger = CampaignLedger(path)
    ledger.append(CampaignRecord("infra-chaos", "ok", started=1.0))
    ledger.append(CampaignRecord("infra-chaos", "ok", started=2.0))
    tear_ledger_tail(path)
    ledger.append(CampaignRecord("infra-chaos", "ok", started=3.0))
    records = ledger.records()
    violations: List[InfraViolation] = []
    if len(records) != 3:
        violations.append(InfraViolation(
            "ledger-tear",
            f"expected 3 complete records around a torn tail, "
            f"read {len(records)}",
        ))
    elif [r.started for r in records] != [1.0, 2.0, 3.0]:
        violations.append(InfraViolation(
            "ledger-tear",
            "records survived the torn tail but out of append order",
        ))
    return violations


# -- the checker --------------------------------------------------------------


@dataclasses.dataclass
class CrashConsistencyReport:
    """Outcome of a :class:`CrashConsistencyChecker` campaign."""

    runs: int
    trials_per_run: int
    kills: int
    severity: str
    seed: int
    violations: List[InfraViolation] = dataclasses.field(default_factory=list)
    injected: Dict[str, int] = dataclasses.field(default_factory=dict)
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "runs": self.runs,
            "trials_per_run": self.trials_per_run,
            "kills": self.kills,
            "severity": self.severity,
            "seed": self.seed,
            "elapsed_seconds": self.elapsed_seconds,
            "injected": dict(sorted(self.injected.items())),
            "violations": [v.to_dict() for v in self.violations],
        }

    def summary(self) -> str:
        injected = ", ".join(
            f"{key}={count}"
            for key, count in sorted(self.injected.items())
        ) or "none"
        lines = [
            f"crash consistency: {self.runs} run(s) × "
            f"{self.trials_per_run} trial(s), severity {self.severity}, "
            f"seed {self.seed}",
            f"  kills taken: {self.kills}   faults injected: {injected}",
        ]
        if self.ok:
            lines.append(
                "  OK — every trial settled exactly once, byte-identical "
                "to the pristine serial baseline"
            )
        else:
            lines.append(f"  {len(self.violations)} violation(s):")
            for violation in self.violations:
                where = (
                    f" [run {violation.run}"
                    + (f", position {violation.position}"
                       if violation.position >= 0 else "")
                    + "]"
                )
                lines.append(
                    f"    {violation.kind}{where}: {violation.detail}"
                )
        return "\n".join(lines)


class CrashConsistencyChecker:
    """Prove the farm's exactly-once invariants under infra chaos.

    Each run stages a fresh SQLite store in a scratch directory, submits
    the spec grid, and drains it with a *faulted* worker — locked store
    ops (retried through :class:`~repro.farm.store.RetryingStore` with
    jittered backoff), a cache losing its disk, and a seeded power cut
    at a kill barrier.  A second, pristine worker then finishes the
    drain the way a real farm peer would: waiting out the dead worker's
    leases, reaping, and re-executing.  Afterwards
    :func:`check_store_invariants` compares the store against the
    pristine serial baseline byte for byte.

    ``sabotage="duplicate-done"`` doctors each drained store before
    checking — the self-test proving the checker can fail.
    """

    def __init__(
        self,
        specs: Sequence[Any],
        *,
        runs: int = 50,
        seed: int = 0,
        severity: str = "max",
        sabotage: str = "",
        lease_ttl: float = 0.15,
        policy: Optional[ResiliencePolicy] = None,
        bus=None,
    ):
        if not specs:
            raise ValueError("checker needs at least one trial spec")
        if sabotage and sabotage not in SABOTAGES:
            raise ValueError(
                f"unknown sabotage {sabotage!r} (known: {SABOTAGES})"
            )
        self.specs = list(specs)
        self.runs = runs
        self.seed = seed
        self.severity = severity
        self.sabotage = sabotage
        self.lease_ttl = lease_ttl
        self.policy = policy or ResiliencePolicy(retries=2, backoff=0.0)
        self.bus = bus

    def _baseline(self) -> List[bytes]:
        baseline = []
        for spec in self.specs:
            outcome = guarded_execute(spec)
            if isinstance(outcome, TrialFailure):
                raise ValueError(
                    f"baseline trial failed pristine ({outcome.detail}); "
                    f"pick specs that succeed without chaos"
                )
            baseline.append(result_bytes(outcome))
        return baseline

    def _one_run(self, run: int, baseline: List[bytes],
                 workdir: Path) -> Dict[str, Any]:
        from ..farm.campaign import submit_campaign
        from ..farm.store import RetryingStore, SQLiteFarmStore
        from ..farm.worker import FarmWorker

        run_seed = self.seed * 1_000_003 + run
        plan = InfraFaultPlan.from_severity(self.severity, run_seed)
        injector = plan.build(self.bus)
        campaign = "chaos-infra"
        store = SQLiteFarmStore(workdir / "farm.db")
        killed = False
        try:
            submit_campaign(store, self.specs, campaign=campaign,
                            kind="chaos-infra")
            faulted = RetryingStore(
                FaultyStore(store, injector),
                policy=ResiliencePolicy(
                    backoff=0.001, max_backoff=0.01, jitter=1.0
                ),
                rng=random.Random(f"infra-retry:{run_seed}"),
            )
            cache = FaultyCache(workdir / "cache", injector)
            worker_a = FarmWorker(
                faulted, worker_id=f"chaos-a-{run}", jobs=1,
                lease_ttl=self.lease_ttl, policy=self.policy, cache=cache,
                campaign=campaign, poll=0.01,
            )
            try:
                worker_a.drain()
            except SimulatedPowerCut:
                killed = True
            # The pristine peer: waits out the dead worker's leases,
            # reaps, re-executes, finishes the campaign.
            finisher = SQLiteFarmStore(workdir / "farm.db")
            try:
                FarmWorker(
                    finisher, worker_id=f"chaos-b-{run}", jobs=1,
                    lease_ttl=self.lease_ttl, policy=self.policy,
                    campaign=campaign, poll=0.02,
                ).drain()
            finally:
                finisher.close()
            if self.sabotage == "duplicate-done":
                sabotage_duplicate_done(store, campaign)
            violations = check_store_invariants(
                store, campaign, self.policy, baseline, run=run
            )
        finally:
            store.close()
        if plan.ledger_tear:
            for violation in check_ledger_survives_tear(
                workdir / "ledger.jsonl"
            ):
                violations.append(dataclasses.replace(violation, run=run))
        return {
            "killed": killed,
            "violations": violations,
            "injected": dict(injector.injected),
            "cache_degraded": cache.cache_degraded,
        }

    def run(self) -> CrashConsistencyReport:
        started = time.perf_counter()
        baseline = self._baseline()
        report = CrashConsistencyReport(
            runs=self.runs, trials_per_run=len(self.specs), kills=0,
            severity=self.severity, seed=self.seed,
        )
        for run in range(self.runs):
            with tempfile.TemporaryDirectory(
                prefix=f"repro-infra-{run}-"
            ) as scratch:
                outcome = self._one_run(run, baseline, Path(scratch))
            if outcome["killed"]:
                report.kills += 1
            report.violations.extend(outcome["violations"])
            for key, count in outcome["injected"].items():
                report.injected[key] = report.injected.get(key, 0) + count
        report.elapsed_seconds = time.perf_counter() - started
        return report


def default_infra_specs(trials: int = 4) -> List[Any]:
    """The tiny deterministic grid the CLI and oracle drain under chaos."""
    from ..perf.spec import SetAgreementTrialSpec

    return [
        SetAgreementTrialSpec(
            n_processes=3, f=1, seed=seed, stabilization_time=0
        )
        for seed in range(trials)
    ]
