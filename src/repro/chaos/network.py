"""``FaultyNetwork`` — seeded message faults inside an ABD safety envelope.

The base :class:`~repro.messaging.network.Network` is reliable (the
standard model: every sent message is eventually delivered).  The chaos
variant drops, duplicates and delays messages — but stays inside an
explicit *safety envelope* so that the ABD register emulation on top
remains atomic and live:

* **Delay is always safe.**  The model is asynchronous; reorder jitter
  only exercises schedules that were already legal.
* **Quorum-critical messages are never duplicated.**
  :meth:`repro.messaging.abd.AbdRegisters._await_acks` counts matching
  acks without deduplicating senders, so a duplicated ack could fake a
  quorum and break atomicity.  Payloads tagged ``abd-*`` (requests *and*
  acks) are exempt from duplication entirely; duplication of other
  traffic is idempotent for every protocol in this repo.
* **Acks are never dropped and request broadcasts keep a quorum.**
  Dropping a unicast ack, or dropping broadcast request copies below the
  quorum count among correct processes, would kill ABD liveness.  The
  envelope therefore never drops quorum-critical unicasts, and drops
  quorum-critical broadcast copies only within the budget
  ``(copies to protected destinations) − quorum`` per broadcast.

``protected`` should be the pattern's correct set when known: copies to
processes that crash anyway are always fair game.  Chaos draws come from
an RNG stream separate from the delay RNG, so a zero-severity
``FaultyNetwork`` reproduces the pristine ``Network`` schedule exactly.
"""

from __future__ import annotations

import random
from typing import Any, Iterable, Optional

from ..messaging.network import Network
from ..obs.events import MessageDelayed, MessageDropped, MessageDuplicated
from ..runtime.process import System
from .config import ChaosConfig


def quorum_critical(payload: Any) -> bool:
    """True for ABD protocol traffic (requests and acks)."""
    return (
        isinstance(payload, tuple)
        and bool(payload)
        and isinstance(payload[0], str)
        and payload[0].startswith("abd-")
    )


class FaultyNetwork(Network):
    """A :class:`Network` that drops/duplicates/delays within the envelope.

    Parameters
    ----------
    system, seed, max_delay:
        As for :class:`Network` (the benign delay model underneath).
    chaos:
        The :class:`ChaosConfig` knobs; all-zero = behave exactly like
        the base network.
    quorum:
        The quorum size the ABD layer on top uses (default: majority).
        Bounds how many quorum-critical broadcast copies may be dropped.
    protected:
        Pids whose quorum-critical copies count toward the liveness
        budget — pass the failure pattern's correct set.  Default: all.
    """

    def __init__(
        self,
        system: System,
        seed: int = 0,
        max_delay: int = 0,
        chaos: Optional[ChaosConfig] = None,
        quorum: Optional[int] = None,
        protected: Optional[Iterable[int]] = None,
    ):
        super().__init__(system, seed=seed, max_delay=max_delay)
        self.chaos = chaos if chaos is not None else ChaosConfig()
        self.quorum = (
            quorum if quorum is not None else system.n_processes // 2 + 1
        )
        self.protected = (
            frozenset(protected) if protected is not None else system.pid_set
        )
        self._chaos_rng = random.Random(f"net:{self.chaos.seed}")
        self.dropped_count = 0
        self.duplicated_count = 0
        self.delayed_count = 0

    # -- envelope bookkeeping ----------------------------------------------

    def _drop(self, sender: int, dest: int, now: int) -> None:
        self.dropped_count += 1
        bus = self.bus
        if bus is not None and bus.active:
            bus.publish(MessageDropped(now, sender, dest))

    def _jitter(self) -> int:
        chaos = self.chaos
        if chaos.reorder_rate and self._chaos_rng.random() < chaos.reorder_rate:
            return self._chaos_rng.randint(1, max(1, chaos.reorder_jitter))
        return 0

    # -- faulted primitives -------------------------------------------------

    def send(
        self, sender: int, dest: int, payload: Any, now: int,
        extra_delay: int = 0,
    ) -> None:
        chaos = self.chaos
        critical = quorum_critical(payload)
        if not critical:
            # Unicast faults are unconstrained for non-quorum traffic.
            if chaos.drop_rate and self._chaos_rng.random() < chaos.drop_rate:
                self._drop(sender, dest, now)
                return
            if (
                chaos.duplicate_rate
                and self._chaos_rng.random() < chaos.duplicate_rate
            ):
                self.duplicated_count += 1
                bus = self.bus
                if bus is not None and bus.active:
                    bus.publish(MessageDuplicated(now, sender, dest))
                super().send(
                    sender, dest, payload, now,
                    extra_delay=extra_delay + self._chaos_rng.randint(1, 3),
                )
        # Quorum-critical unicasts (the acks) fall straight through: never
        # dropped, never duplicated — only jittered.
        jitter = self._jitter()
        if jitter:
            self.delayed_count += 1
            bus = self.bus
            if bus is not None and bus.active:
                bus.publish(MessageDelayed(now, sender, dest, jitter))
        super().send(
            sender, dest, payload, now, extra_delay=extra_delay + jitter
        )

    def broadcast(self, sender: int, payload: Any, now: int) -> None:
        chaos = self.chaos
        if not (chaos.drop_rate and quorum_critical(payload)):
            # Non-critical broadcasts decompose into independent faulty
            # unicasts; critical ones without dropping need no budget.
            for dest in self.system.pids:
                self.send(sender, dest, payload, now)
            return
        # Critical broadcast with dropping enabled: spend the liveness
        # budget — at least `quorum` copies must reach protected pids.
        protected_copies = sum(
            1 for dest in self.system.pids if dest in self.protected
        )
        budget = max(0, protected_copies - self.quorum)
        for dest in self.system.pids:
            in_protected = dest in self.protected
            droppable = (not in_protected) or budget > 0
            if droppable and self._chaos_rng.random() < chaos.drop_rate:
                if in_protected:
                    budget -= 1
                self._drop(sender, dest, now)
                continue
            jitter = self._jitter()
            if jitter:
                self.delayed_count += 1
                bus = self.bus
                if bus is not None and bus.active:
                    bus.publish(MessageDelayed(now, sender, dest, jitter))
            super().send(sender, dest, payload, now, extra_delay=jitter)
