"""Command-line interface: run the paper's experiments from a shell.

::

    python -m repro fig1 --processes 4 --stabilization 80 --seed 3
    python -m repro fig2 --processes 5 --resilience 2
    python -m repro extract --detector omega --processes 4
    python -m repro theorem1 --candidate heartbeat --phases 8
    python -m repro run --show-trace   # quickstart run with a timeline
    python -m repro stats fig1 --processes 4 --seed 3   # live metrics table
    python -m repro profile            # engine hot-path timing
    python -m repro sweep set-agreement --jobs 4 --csv f1.csv  # parallel grid
    python -m repro check --protocol fig1 --processes 2 --depth 14  # model check
    python -m repro sweep chaos --retries 2 --resume sweep.journal  # chaos grid
    python -m repro stats chaos --lying-prefix 80 --drop-rate 0.4
    python -m repro audit --budget 2000 --seed 7   # differential audit
    python -m repro submit set-agreement --store sqlite:///trials.db
    python -m repro worker --store sqlite:///trials.db --jobs 4
    python -m repro farm status --store sqlite:///trials.db --watch

Every subcommand prints a short report and exits non-zero if the
corresponding paper property failed to hold (they never should).
Exit codes: 0 = clean, 1 = property violation, 2 = usage error,
3 = non-termination, 4 = the differential audit found an equivalence
break (its report path is printed).
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import Optional, Sequence

from .analysis import run_extraction_trial, run_set_agreement_trial
from .analysis.render import render_summary, render_timeline
from .audit.oracles import ORACLE_PAIRS
from .core import (
    candidate_complement_extractor,
    candidate_heartbeat_extractor,
    candidate_sticky_extractor,
    make_upsilon_set_agreement,
    run_theorem1_adversary,
)
from .detectors import UpsilonSpec, detector_names, make_detector
from .failures import Environment, FailurePattern
from .runtime import RandomScheduler, Simulation, System
from .tasks import SetAgreementSpec

_CANDIDATES = {
    "complement": candidate_complement_extractor,
    "heartbeat": candidate_heartbeat_extractor,
    "sticky": candidate_sticky_extractor,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Experiments from 'On the weakest failure detector ever'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig1 = sub.add_parser("fig1", help="Υ-based n-set agreement (Theorem 2)")
    fig1.add_argument("--processes", type=int, default=4)
    fig1.add_argument("--stabilization", type=int, default=80)
    fig1.add_argument("--seed", type=int, default=0)
    fig1.add_argument("--adversarial", action="store_true",
                      help="lockstep schedule + worst-case noise")

    fig2 = sub.add_parser("fig2", help="Υf-based f-set agreement (Theorem 6)")
    fig2.add_argument("--processes", type=int, default=4)
    fig2.add_argument("--resilience", type=int, default=2, metavar="F")
    fig2.add_argument("--stabilization", type=int, default=80)
    fig2.add_argument("--seed", type=int, default=0)

    extract = sub.add_parser(
        "extract", help="extract Υf from a stable detector (Theorem 10)"
    )
    extract.add_argument(
        "--detector",
        choices=[n for n in detector_names() if n != "dummy"],
        default="omega",
    )
    extract.add_argument("--processes", type=int, default=4)
    extract.add_argument("--resilience", type=int, default=None, metavar="F")
    extract.add_argument("--stabilization", type=int, default=60)
    extract.add_argument("--seed", type=int, default=0)

    theorem1 = sub.add_parser(
        "theorem1", help="refute a Υ → Ωn candidate extractor (Theorem 1)"
    )
    theorem1.add_argument("--candidate", choices=sorted(_CANDIDATES),
                          default="heartbeat")
    theorem1.add_argument("--processes", type=int, default=4)
    theorem1.add_argument("--phases", type=int, default=8)

    hierarchy = sub.add_parser(
        "hierarchy", help="print the weaker-than graph around Υ"
    )
    hierarchy.add_argument("--processes", type=int, default=4)
    hierarchy.add_argument("--resilience", type=int, default=None,
                           metavar="F")

    campaign = sub.add_parser(
        "campaign", help="fuzz Fig. 1/Fig. 2 against the task spec"
    )
    campaign.add_argument("--trials", type=int, default=25)
    campaign.add_argument("--seed", type=int, default=0)

    run = sub.add_parser("run", help="one annotated Fig. 1 run")
    run.add_argument("--processes", type=int, default=3)
    run.add_argument("--seed", type=int, default=7)
    run.add_argument("--show-trace", action="store_true")

    stats = sub.add_parser(
        "stats", help="run an experiment with live metrics and print the table"
    )
    stats_sub = stats.add_subparsers(dest="stats_command", required=True)

    s_fig1 = stats_sub.add_parser("fig1", help="instrumented Fig. 1 trial")
    s_fig1.add_argument("--processes", type=int, default=4)
    s_fig1.add_argument("--stabilization", type=int, default=80)
    s_fig1.add_argument("--seed", type=int, default=0)
    s_fig1.add_argument("--adversarial", action="store_true")

    s_fig2 = stats_sub.add_parser("fig2", help="instrumented Fig. 2 trial")
    s_fig2.add_argument("--processes", type=int, default=4)
    s_fig2.add_argument("--resilience", type=int, default=2, metavar="F")
    s_fig2.add_argument("--stabilization", type=int, default=80)
    s_fig2.add_argument("--seed", type=int, default=0)

    s_extract = stats_sub.add_parser(
        "extract", help="instrumented Fig. 3 extraction trial"
    )
    s_extract.add_argument(
        "--detector",
        choices=[n for n in detector_names() if n != "dummy"],
        default="omega",
    )
    s_extract.add_argument("--processes", type=int, default=4)
    s_extract.add_argument("--resilience", type=int, default=None, metavar="F")
    s_extract.add_argument("--stabilization", type=int, default=60)
    s_extract.add_argument("--seed", type=int, default=0)

    from .chaos.trial import PROTOCOLS as CHAOS_PROTOCOLS

    s_chaos = stats_sub.add_parser(
        "chaos", help="instrumented chaos trial (what was injected, "
                      "what survived)"
    )
    s_chaos.add_argument("--protocol", choices=CHAOS_PROTOCOLS,
                         default="fig1")
    s_chaos.add_argument("--processes", type=int, default=4)
    s_chaos.add_argument("--resilience", type=int, default=None, metavar="F")
    s_chaos.add_argument(
        "--detector",
        choices=[n for n in detector_names() if n != "dummy"],
        default="omega",
    )
    s_chaos.add_argument("--seed", type=int, default=0)
    s_chaos.add_argument("--lying-prefix", type=int, default=50,
                         help="steps of arbitrary detector output")
    s_chaos.add_argument("--drop-rate", type=float, default=0.2)
    s_chaos.add_argument("--duplicate-rate", type=float, default=0.2)
    s_chaos.add_argument("--reorder-rate", type=float, default=0.2)
    s_chaos.add_argument("--burst", type=int, default=6,
                         help="adversarial scheduler burst length")
    s_chaos.add_argument("--starvation", type=int, default=6,
                         help="scheduler starvation-window length")
    s_chaos.add_argument("--max-steps", type=int, default=60_000)

    for sub_parser in (s_fig1, s_fig2, s_extract, s_chaos):
        sub_parser.add_argument(
            "--events", metavar="FILE", default=None,
            help="also stream every run event to FILE as JSONL",
        )
        sub_parser.add_argument(
            "--format", choices=("table", "json", "prom"), default="table",
            help="metrics output: aligned table (default), JSON snapshot, "
                 "or Prometheus text exposition",
        )
        sub_parser.add_argument(
            "--json", action="store_true",
            help="shorthand for --format json",
        )

    profile = sub.add_parser(
        "profile", help="hot-path timing of the engine itself"
    )
    profile.add_argument("--processes", type=int, default=4)
    profile.add_argument("--repeats", type=int, default=5)
    profile.add_argument("--max-steps", type=int, default=150_000)
    profile.add_argument("--json", action="store_true")

    sweep = sub.add_parser(
        "sweep",
        help="run an experiment grid, in parallel and with trial caching",
    )
    sw_sa, sw_ex, sw_ch = _add_grid_subparsers(
        sweep, "sweep_command", CHAOS_PROTOCOLS
    )

    for sub_parser in (sw_sa, sw_ex, sw_ch):
        sub_parser.add_argument(
            "--jobs", type=int, default=1,
            help="worker processes (0 = one per CPU; default 1 = serial)",
        )
        sub_parser.add_argument(
            "--batch-size", type=int, default=None, metavar="N",
            help="trials per dispatched batch (default ~2 batches per "
                 "worker); one pickle round trip per batch",
        )
        sub_parser.add_argument(
            "--cache-dir", default=None, metavar="DIR",
            help="trial cache root (default $REPRO_CACHE_DIR or "
                 "~/.cache/repro/trials)",
        )
        sub_parser.add_argument(
            "--no-cache", action="store_true",
            help="recompute every trial; neither read nor write the cache",
        )
        sub_parser.add_argument(
            "--csv", metavar="FILE", default=None,
            help="also export the results as CSV to FILE",
        )
        sub_parser.add_argument(
            "--json", action="store_true",
            help="print the run summary as JSON (includes the merged "
                 "metrics snapshot)",
        )
        sub_parser.add_argument(
            "--events", metavar="FILE", default=None,
            help="stream harness events (spans, trial completions, "
                 "retries) to FILE as JSONL — `repro dash` tails this",
        )
        sub_parser.add_argument(
            "--ledger", metavar="FILE", default=None,
            help="append one campaign-ledger record for this run "
                 "(default $REPRO_LEDGER; unset = no ledger)",
        )
        sub_parser.add_argument(
            "--store", metavar="URL", default=None,
            help="route the sweep through a farm store "
                 "(sqlite:///PATH); extra `repro worker --store URL` "
                 "processes share the load; mutually exclusive with "
                 "--resume (the store already checkpoints per trial)",
        )
        _add_resilience_flags(sub_parser)

    submit = sub.add_parser(
        "submit",
        help="enqueue an experiment grid into a farm store; "
             "`repro worker` processes drain it",
    )
    sb_sa, sb_ex, sb_ch = _add_grid_subparsers(
        submit, "submit_command", CHAOS_PROTOCOLS
    )
    for sub_parser in (sb_sa, sb_ex, sb_ch):
        sub_parser.add_argument(
            "--store", metavar="URL", required=True,
            help="farm store URL (sqlite:///PATH or a bare path)",
        )
        sub_parser.add_argument(
            "--campaign", default=None, metavar="NAME",
            help="campaign name (default: a generated run-<ts>-<id>)",
        )
        sub_parser.add_argument(
            "--cache-dir", default=None, metavar="DIR",
            help="trial cache root; cached results are enqueued "
                 "already-done (default $REPRO_CACHE_DIR or "
                 "~/.cache/repro/trials)",
        )
        sub_parser.add_argument(
            "--no-cache", action="store_true",
            help="skip the cache prefilter; enqueue every trial pending",
        )
        sub_parser.add_argument(
            "--ledger", metavar="FILE", default=None,
            help="append one campaign-ledger record for this submit "
                 "(default $REPRO_LEDGER; unset = no ledger)",
        )
        sub_parser.add_argument("--json", action="store_true")

    worker = sub.add_parser(
        "worker",
        help="drain a farm store: claim leased batches, execute, "
             "complete (run any number, on any machine that sees the "
             "store)",
    )
    worker.add_argument("--store", metavar="URL", required=True,
                        help="farm store URL (sqlite:///PATH)")
    worker.add_argument("--campaign", default=None, metavar="NAME",
                        help="only claim this campaign's trials "
                             "(default: any)")
    worker.add_argument("--worker-id", default=None, metavar="ID",
                        help="lease-holder label (default host:pid)")
    worker.add_argument("--jobs", type=int, default=1,
                        help="local worker processes (0 = one per CPU; "
                             "default 1 = in-process)")
    worker.add_argument("--batch-size", type=int, default=None, metavar="N",
                        help="trials claimed per lease round "
                             "(default ~2 per job)")
    worker.add_argument("--lease-ttl", type=float, default=30.0,
                        metavar="SECONDS",
                        help="lease expiry; a heartbeat renews live "
                             "leases every TTL/3 (default 30)")
    worker.add_argument("--retries", type=int, default=0,
                        help="per-trial attempt budget before the store "
                             "quarantines it (default 0 = one attempt)")
    worker.add_argument("--trial-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-trial wall-clock budget, enforced by "
                             "an in-worker watchdog")
    worker.add_argument("--backoff", type=float, default=0.5,
                        metavar="SECONDS",
                        help="base of the exponential pause after a "
                             "failing batch (default 0.5; 0 disables)")
    worker.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="trial cache root; completions are written "
                             "back for future submits")
    worker.add_argument("--no-cache", action="store_true",
                        help="don't write completions to the trial cache")
    worker.add_argument("--max-idle", type=float, default=None,
                        metavar="SECONDS",
                        help="exit after this long with nothing claimable "
                             "(default: wait for the store to drain)")
    worker.add_argument("--poll", type=float, default=0.2,
                        metavar="SECONDS",
                        help="idle poll interval while other workers "
                             "hold the remaining leases (default 0.2)")
    worker.add_argument("--events", metavar="FILE", default=None,
                        help="stream farm events (claims, reaps, "
                             "retries) to FILE as JSONL")
    worker.add_argument("--ledger", metavar="FILE", default=None,
                        help="append one campaign-ledger record for "
                             "this drain (default $REPRO_LEDGER)")
    worker.add_argument("--json", action="store_true")
    # Self-test hook (tests/CI only): hard-exit mid-batch after N
    # completions, leases still held, like a power cut.
    worker.add_argument("--self-test-crash-after", type=int, default=None,
                        help=argparse.SUPPRESS)

    farm = sub.add_parser(
        "farm", help="inspect a farm store / collect campaign results"
    )
    farm_sub = farm.add_subparsers(dest="farm_command", required=True)

    f_status = farm_sub.add_parser(
        "status",
        help="state counts, live workers, per-campaign progress",
    )
    f_status.add_argument("--store", metavar="URL", required=True)
    f_status.add_argument("--watch", action="store_true",
                          help="redraw until the store is drained")
    f_status.add_argument("--interval", type=float, default=1.0,
                          metavar="SECONDS",
                          help="--watch redraw interval (default 1)")
    f_status.add_argument("--json", action="store_true")

    f_results = farm_sub.add_parser(
        "results",
        help="reassemble a drained campaign's results in submission "
             "order (exit 2 while trials are still in flight)",
    )
    f_results.add_argument("--store", metavar="URL", required=True)
    f_results.add_argument("--campaign", required=True, metavar="NAME")
    f_results.add_argument("--csv", metavar="FILE", default=None,
                           help="export the results as CSV to FILE "
                                "(same shape as `sweep --csv`)")
    f_results.add_argument("--json", action="store_true")

    f_requeue = farm_sub.add_parser(
        "requeue",
        help="re-arm quarantined trials after a fix lands: reset "
             "attempts, clear the quarantine reason, back to pending",
    )
    f_requeue.add_argument("--store", metavar="URL", required=True)
    f_requeue.add_argument("--campaign", metavar="NAME", default=None,
                           help="limit to one campaign (default: whole "
                                "store)")
    selector = f_requeue.add_mutually_exclusive_group(required=True)
    selector.add_argument("--trial-id", type=int, action="append",
                          metavar="POSITION", dest="trial_ids",
                          help="re-arm this trial position (repeatable)")
    selector.add_argument("--all", action="store_true", dest="requeue_all",
                          help="re-arm every quarantined trial in scope")
    f_requeue.add_argument("--json", action="store_true")

    from .mc.instances import FAMILIES

    mc_check = sub.add_parser(
        "check",
        help="model-check a small instance: every schedule × crash pattern",
    )
    mc_check.add_argument("--protocol", choices=sorted(FAMILIES),
                          default="fig1")
    mc_check.add_argument("--processes", type=int, default=2)
    mc_check.add_argument("--resilience", type=int, default=None, metavar="F")
    mc_check.add_argument("--depth", type=int, default=14,
                          help="schedule-length bound (exploration horizon)")
    mc_check.add_argument("--por", action=argparse.BooleanOptionalAction,
                          default=True,
                          help="sleep-set partial-order reduction")
    mc_check.add_argument("--dedup", action=argparse.BooleanOptionalAction,
                          default=True,
                          help="fingerprint-based visited-state pruning")
    mc_check.add_argument("--strategy", choices=("dfs", "bfs"), default="dfs")
    mc_check.add_argument("--jobs", type=int, default=1,
                          help="worker processes (parallel root sharding)")
    mc_check.add_argument("--batch-size", type=int, default=None, metavar="N",
                          help="shards per dispatched batch (default ~2 "
                               "batches per worker)")
    mc_check.add_argument("--max-crashes", type=int, default=0,
                          help="also sweep crash subsets up to this size")
    mc_check.add_argument("--crash-times", default="0", metavar="LIST",
                          help="crash times to sweep, e.g. 0,2,4")
    mc_check.add_argument("--stabilization", type=int, default=0,
                          help="detector stabilization time (0 = stable "
                               "from the start)")
    mc_check.add_argument("--max-states", type=int, default=None)
    mc_check.add_argument("--require-progress", action="store_true",
                          help="treat depth exhaustion as a violation")
    mc_check.add_argument("--json", action="store_true")
    mc_check.add_argument("--save-counterexample", metavar="FILE",
                          default=None,
                          help="write the first counterexample to FILE "
                               "as JSON")
    _add_resilience_flags(mc_check)

    audit = sub.add_parser(
        "audit",
        help="differential audit: the same trial via different paths "
             "must agree (exit 4 on divergence)",
    )
    audit.add_argument(
        "--pairs", default=None, metavar="LIST",
        help="comma-separated oracle pairs to run (default: all); "
             "known: " + ", ".join(ORACLE_PAIRS),
    )
    audit.add_argument("--budget", type=int, default=200,
                       help="approximate trial-pair budget, split across "
                            "the selected oracle pairs (default 200)")
    audit.add_argument("--seed", type=int, default=0)
    audit.add_argument("--jobs", type=int, default=1,
                       help="worker processes for sharding audit cases "
                            "(default 1 = in-process)")
    audit.add_argument("--report", metavar="FILE",
                       default="audit-report.json",
                       help="where to write the JSON report "
                            "(default audit-report.json)")
    audit.add_argument("--sabotage",
                       choices=("cache", "abd-ack", "infra-dup"),
                       default="",
                       help="self-test: inject a known equivalence break "
                            "(a poisoned cache entry / a corrupted ABD "
                            "ack / a duplicated farm row) — the audit "
                            "must then exit 4")
    audit.add_argument("--json", action="store_true",
                       help="print the full report as JSON to stdout")

    from .chaos.infra import SABOTAGES as INFRA_SABOTAGES
    from .chaos.infra import SEVERITIES as INFRA_SEVERITIES

    chaos = sub.add_parser(
        "chaos",
        help="fault-inject the experiment infrastructure itself "
             "(exit 1 on an invariant violation)",
    )
    chaos_sub = chaos.add_subparsers(dest="chaos_command", required=True)
    c_infra = chaos_sub.add_parser(
        "infra",
        help="crash-consistency check: drain a farm campaign under "
             "seeded lock storms, torn-process kills, and cache ENOSPC; "
             "every trial must settle exactly once, byte-identical to a "
             "pristine serial run",
    )
    c_infra.add_argument("--seed", type=int, default=0)
    c_infra.add_argument("--runs", type=int, default=50,
                         help="independent kill-point runs (default 50)")
    c_infra.add_argument("--trials", type=int, default=4,
                         help="grid size drained per run (default 4)")
    c_infra.add_argument("--severity", choices=INFRA_SEVERITIES,
                         default="max",
                         help="fault-plan severity (default max)")
    c_infra.add_argument("--sabotage", choices=INFRA_SABOTAGES, default="",
                         help="self-test: doctor each drained store with "
                              "a known violation — the check must then "
                              "exit 1")
    c_infra.add_argument("--json", action="store_true")

    for sub_parser in (mc_check, audit, c_infra):
        sub_parser.add_argument(
            "--ledger", metavar="FILE", default=None,
            help="append one campaign-ledger record for this run "
                 "(default $REPRO_LEDGER; unset = no ledger)",
        )

    dash = sub.add_parser(
        "dash",
        help="live dashboard over a --events stream + campaign ledger "
             "(stdlib http.server; /api/summary, /api/metrics, /metrics)",
    )
    dash.add_argument("--events", metavar="FILE", default=None,
                      help="JSONL event stream to tail (a sweep's "
                           "--events file)")
    dash.add_argument("--ledger", metavar="FILE", default=None,
                      help="campaign ledger to show (default $REPRO_LEDGER)")
    dash.add_argument("--store", metavar="URL", default=None,
                      help="farm store to poll for queue/worker status "
                           "(/api/farm)")
    dash.add_argument("--host", default="127.0.0.1")
    dash.add_argument("--port", type=int, default=8787)

    report_cmd = sub.add_parser(
        "report",
        help="render the campaign ledger as a static HTML "
             "perf-trajectory page (no JS, CI-artifact friendly)",
    )
    report_cmd.add_argument("--ledger", metavar="FILE", default=None,
                            help="campaign ledger to render "
                                 "(default $REPRO_LEDGER)")
    report_cmd.add_argument("--out", metavar="FILE",
                            default="campaign-report.html",
                            help="output HTML path "
                                 "(default campaign-report.html)")
    report_cmd.add_argument("--title", default="repro campaign report")

    return parser


def _add_resilience_flags(sub_parser) -> None:
    sub_parser.add_argument(
        "--retries", type=int, default=0,
        help="re-run a failing/crashing trial up to N extra times "
             "before quarantining it (default 0)",
    )
    sub_parser.add_argument(
        "--trial-timeout", type=float, default=None, metavar="SECONDS",
        help="per-trial wall-clock budget, enforced by an in-worker "
             "watchdog",
    )
    sub_parser.add_argument(
        "--resume", metavar="JOURNAL", default=None,
        help="JSONL checkpoint journal; completed spec keys are "
             "skipped on re-run and appended as the run progresses",
    )


def _add_grid_subparsers(parent, dest: str, chaos_protocols):
    """The three experiment-grid subparsers with their axis flags.

    ``sweep`` (run locally) and ``submit`` (enqueue into a farm store)
    take the same grids; this keeps their axes identical by
    construction.
    """
    grid_sub = parent.add_subparsers(dest=dest, required=True)

    g_sa = grid_sub.add_parser(
        "set-agreement",
        help="Fig. 1 / Fig. 2 grid (defaults = the EXPERIMENTS.md F1 grid)",
    )
    g_sa.add_argument("--sizes", default="3,4,5", metavar="LIST",
                      help="system sizes, e.g. 3,4,5")
    g_sa.add_argument("--stabilizations", default="0,100,300",
                      metavar="LIST", help="Υ stabilization times")
    g_sa.add_argument("--seeds", default="0-19", metavar="LIST",
                      help="seeds; ranges allowed, e.g. 0-19 or 0,1,7")
    g_sa.add_argument("--fs", default=None, metavar="LIST",
                      help="resilience values f (default: wait-free f=n)")
    g_sa.add_argument("--adversarial", action="store_true",
                      help="lockstep schedule + worst-case noise")

    g_ex = grid_sub.add_parser(
        "extraction",
        help="Fig. 3 grid over detector registry names",
    )
    g_ex.add_argument("--detectors", default="omega,omega_n,diamond_p",
                      metavar="LIST",
                      help="registry names, e.g. omega,diamond_p")
    g_ex.add_argument("--sizes", default="3,4", metavar="LIST")
    g_ex.add_argument("--seeds", default="0-9", metavar="LIST")
    g_ex.add_argument("--resilience", type=int, default=None, metavar="F")
    g_ex.add_argument("--stabilization", type=int, default=60)
    g_ex.add_argument("--max-steps", type=int, default=40_000)

    g_ch = grid_sub.add_parser(
        "chaos",
        help="chaos grid: protocols × sizes × lying prefixes × drop rates",
    )
    g_ch.add_argument("--protocols", default="fig1,fig2,abd-converge",
                      metavar="LIST",
                      help=f"chaos protocols ({','.join(chaos_protocols)})")
    g_ch.add_argument("--sizes", default="3,4", metavar="LIST")
    g_ch.add_argument("--seeds", default="0-4", metavar="LIST")
    g_ch.add_argument("--lying-prefixes", default="0,50", metavar="LIST",
                      help="lying-prefix axis, e.g. 0,50,150")
    g_ch.add_argument("--drop-rates", default="0.0,0.2", metavar="LIST",
                      help="drop-rate axis, e.g. 0.0,0.2,0.5")
    g_ch.add_argument("--duplicate-rate", type=float, default=0.0)
    g_ch.add_argument("--reorder-rate", type=float, default=0.0)
    g_ch.add_argument("--burst", type=int, default=0,
                      help="adversarial scheduler burst length")
    g_ch.add_argument("--starvation", type=int, default=0,
                      help="scheduler starvation-window length")
    g_ch.add_argument("--resilience", type=int, default=None, metavar="F")
    g_ch.add_argument(
        "--detector",
        choices=[n for n in detector_names() if n != "dummy"],
        default="omega",
    )
    g_ch.add_argument("--max-steps", type=int, default=60_000)
    g_ch.add_argument(
        "--inject-worker-crash", type=int, default=None, metavar="I",
        help="harness self-test: hard-kill the worker running grid "
             "point I (mod grid size); needs --retries to recover",
    )
    return g_sa, g_ex, g_ch


def _grid_from_args(command: str, args):
    """Build the trial-spec grid a ``sweep``/``submit`` subcommand named.

    Raises :class:`~repro.analysis.sweeps.EmptySweepError` when an axis
    parses empty.
    """
    import dataclasses

    from .analysis.sweeps import (
        chaos_grid,
        extraction_grid,
        set_agreement_grid,
    )

    if command == "set-agreement":
        return set_agreement_grid(
            system_sizes=_parse_int_list(args.sizes),
            seeds=_parse_int_list(args.seeds),
            stabilization_times=_parse_int_list(args.stabilizations),
            fs=_parse_int_list(args.fs) if args.fs else None,
            adversarial=args.adversarial,
        )
    if command == "chaos":
        specs = chaos_grid(
            protocols=[
                p.strip() for p in args.protocols.split(",") if p.strip()
            ],
            system_sizes=_parse_int_list(args.sizes),
            seeds=_parse_int_list(args.seeds),
            lying_prefixes=_parse_int_list(args.lying_prefixes),
            drop_rates=_parse_float_list(args.drop_rates),
            duplicate_rate=args.duplicate_rate,
            reorder_rate=args.reorder_rate,
            burst_length=args.burst,
            starvation_window=args.starvation,
            f=args.resilience,
            detector=args.detector,
            max_steps=args.max_steps,
        )
        if args.inject_worker_crash is not None:
            victim = args.inject_worker_crash % len(specs)
            specs[victim] = dataclasses.replace(
                specs[victim], sabotage="crash"
            )
        return specs
    return extraction_grid(
        detectors=[
            d.strip() for d in args.detectors.split(",") if d.strip()
        ],
        system_sizes=_parse_int_list(args.sizes),
        seeds=_parse_int_list(args.seeds),
        f=args.resilience,
        stabilization_time=args.stabilization,
        max_steps=args.max_steps,
    )


def _open_ledger(args):
    """The :class:`CampaignLedger` selected by ``--ledger``/``$REPRO_LEDGER``,
    or ``None`` when the ledger is off (the default)."""
    from .obs.campaign import CampaignLedger, default_ledger_path

    path = getattr(args, "ledger", None) or default_ledger_path()
    return CampaignLedger(path) if path else None


def _parse_int_list(text: str) -> list:
    """``"3,4,5"`` and ``"0-19"`` (inclusive ranges) to a list of ints."""
    out = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "-" in part[1:]:
            lo, _, hi = part.partition("-")
            out.extend(range(int(lo), int(hi) + 1))
        else:
            out.append(int(part))
    return out


def _parse_float_list(text: str) -> list:
    """``"0.0,0.2,0.5"`` to a list of floats (no ranges)."""
    return [float(part) for part in text.split(",") if part.strip()]


def _cmd_fig1(args) -> int:
    system = System(args.processes)
    result = run_set_agreement_trial(
        system, system.n, seed=args.seed,
        stabilization_time=args.stabilization,
        adversarial=args.adversarial,
    )
    print(f"n+1={args.processes}  f=n={system.n}  "
          f"stabilization={args.stabilization}  "
          f"faulty={result.faulty}")
    print(f"steps={result.total_steps}  rounds={result.rounds}  "
          f"distinct decisions={result.distinct_decisions} (bound {system.n})")
    print("properties:", "OK" if result.ok else f"VIOLATED — {result.violations}")
    return 0 if result.ok else 1


def _cmd_fig2(args) -> int:
    system = System(args.processes)
    result = run_set_agreement_trial(
        system, args.resilience, seed=args.seed,
        stabilization_time=args.stabilization, use_fig2=True,
    )
    print(f"n+1={args.processes}  f={args.resilience}  "
          f"faulty={result.faulty}")
    print(f"steps={result.total_steps}  rounds={result.rounds}  "
          f"distinct decisions={result.distinct_decisions} "
          f"(bound {args.resilience})")
    print("properties:", "OK" if result.ok else f"VIOLATED — {result.violations}")
    return 0 if result.ok else 1


def _cmd_extract(args) -> int:
    system = System(args.processes)
    env = (
        Environment.wait_free(system)
        if args.resilience is None
        else Environment(system, args.resilience)
    )
    spec = make_detector(args.detector, env)
    result = run_extraction_trial(
        spec, env, seed=args.seed, stabilization_time=args.stabilization
    )
    output = sorted(result.output) if result.output is not None else None
    print(f"source={spec.name}  environment=E_{env.f}  "
          f"stabilization={args.stabilization}")
    print(f"extracted Υ^{env.f} output: {output}  "
          f"settle time: {result.output_settle_time}")
    ok = result.stabilized and result.legal
    print("extraction:", "OK" if ok else "FAILED")
    return 0 if ok else 1


def _cmd_theorem1(args) -> int:
    system = System(args.processes)
    result = run_theorem1_adversary(
        _CANDIDATES[args.candidate](), system, phases=args.phases
    )
    print(f"candidate={args.candidate}  n+1={args.processes}  "
          f"phases={args.phases}")
    if result.stalled_at is None:
        print(f"forced {result.flips} output changes in {result.steps} "
              f"steps — the extracted Ωn output never stabilizes")
    else:
        print(f"candidate stalled in phase {result.stalled_at}; "
              f"violating completion: {result.witness}")
    print("refuted:", "YES" if result.refuted else "NO")
    return 0 if result.refuted else 1


def _cmd_run(args) -> int:
    system = System(args.processes)
    rng = random.Random(args.seed)
    pattern = FailurePattern.random(system, rng, max_crash_time=50)
    spec = UpsilonSpec(system)
    history = spec.sample_history(pattern, rng, stabilization_time=100)
    inputs = {p: f"v{p}" for p in system.pids}
    sim = Simulation(system, make_upsilon_set_agreement(), inputs=inputs,
                     pattern=pattern, history=history)
    sim.run_until(Simulation.all_correct_decided, 500_000,
                  RandomScheduler(args.seed))
    print(f"pattern: {pattern.describe()}")
    print(f"Υ stable value: {sorted(history.stable_value)}")
    print(f"decisions: {sim.decisions()}")
    verdict = SetAgreementSpec(system.n).check(sim, inputs)
    print("properties:", "OK" if verdict.ok else "VIOLATED")
    if args.show_trace:
        print()
        print(render_timeline(sim.trace, system.n_processes))
        print()
        print(render_summary(sim.trace, system.n_processes))
    return 0 if verdict.ok else 1


def _cmd_stats(args) -> int:
    import json

    from .obs import JsonlEventSink, MetricsCollector

    collector = MetricsCollector()
    try:
        sink = (
            JsonlEventSink(args.events, bus=collector.bus)
            if args.events else None
        )
    except OSError as exc:
        print(f"error: cannot open --events file: {exc}", file=sys.stderr)
        return 2
    try:
        if args.stats_command == "fig1":
            system = System(args.processes)
            result = run_set_agreement_trial(
                system, system.n, seed=args.seed,
                stabilization_time=args.stabilization,
                adversarial=args.adversarial, collector=collector,
            )
            headline = (
                f"fig1  n+1={args.processes}  f=n={system.n}  "
                f"stabilization={args.stabilization}  seed={args.seed}  "
                f"steps={result.total_steps}  "
                f"distinct decisions={result.distinct_decisions}"
            )
            ok = result.ok
        elif args.stats_command == "fig2":
            system = System(args.processes)
            result = run_set_agreement_trial(
                system, args.resilience, seed=args.seed,
                stabilization_time=args.stabilization, use_fig2=True,
                collector=collector,
            )
            headline = (
                f"fig2  n+1={args.processes}  f={args.resilience}  "
                f"seed={args.seed}  steps={result.total_steps}  "
                f"distinct decisions={result.distinct_decisions}"
            )
            ok = result.ok
        elif args.stats_command == "chaos":
            from .chaos.trial import ChaosTrialSpec, run_chaos_trial

            spec = ChaosTrialSpec(
                protocol=args.protocol,
                n_processes=args.processes,
                seed=args.seed,
                f=args.resilience,
                detector=args.detector,
                lying_prefix=args.lying_prefix,
                drop_rate=args.drop_rate,
                duplicate_rate=args.duplicate_rate,
                reorder_rate=args.reorder_rate,
                burst_length=args.burst,
                starvation_window=args.starvation,
                max_steps=args.max_steps,
            )
            result = run_chaos_trial(spec, collector=collector)
            headline = (
                f"chaos  protocol={args.protocol}  n+1={args.processes}  "
                f"seed={args.seed}  lying_prefix={args.lying_prefix}  "
                f"drop_rate={args.drop_rate:g}  steps={result.total_steps}  "
                f"dropped={result.messages_dropped}  "
                f"duplicated={result.messages_duplicated}  "
                f"delayed={result.messages_delayed}"
            )
            ok = result.ok
        else:
            system = System(args.processes)
            env = (
                Environment.wait_free(system)
                if args.resilience is None
                else Environment(system, args.resilience)
            )
            spec = make_detector(args.detector, env)
            result = run_extraction_trial(
                spec, env, seed=args.seed,
                stabilization_time=args.stabilization, collector=collector,
            )
            headline = (
                f"extract  source={spec.name}  environment=E_{env.f}  "
                f"seed={args.seed}  steps={result.total_steps}  "
                f"settle time={result.output_settle_time}"
            )
            ok = result.stabilized and result.legal
    finally:
        if sink is not None:
            sink.close()
    fmt = "json" if args.json else args.format
    if fmt == "json":
        print(json.dumps(
            {"headline": headline, "ok": ok,
             "events_written": sink.lines if sink is not None else 0,
             "metrics": result.metrics},
            indent=2, sort_keys=True,
        ))
        return 0 if ok else 1
    if fmt == "prom":
        from .obs.prom import render_prometheus

        print(render_prometheus(collector.registry), end="")
        return 0 if ok else 1
    print(headline)
    print()
    print(collector.registry.render())
    stab = collector.stabilization_times()
    print()
    if stab:
        settled = ", ".join(
            f"p{pid}@t={int(t)}" for pid, t in sorted(stab.items())
        )
        print(f"emit stabilization times: {settled}")
    else:
        print("emit stabilization times: — (no emits in this protocol)")
    if sink is not None:
        print(f"{sink.lines} events -> {args.events}")
    print("properties:", "OK" if ok else "VIOLATED")
    return 0 if ok else 1


def _cmd_profile(args) -> int:
    import json

    from .obs import profile_engine

    profile = profile_engine(
        n_processes=args.processes,
        repeats=args.repeats,
        max_steps=args.max_steps,
    )
    if args.json:
        print(json.dumps(profile.to_dict(), indent=2, sort_keys=True))
    else:
        print(f"engine hot path — lockstep spin workload, "
              f"n+1={args.processes}, best of {args.repeats} runs")
        print()
        print(profile.render())
    return 0


def _cmd_sweep(args) -> int:
    import json
    import time

    from .analysis.sweeps import EmptySweepError, to_csv
    from .perf import (
        DispatchStats,
        QuarantineReport,
        TrialCache,
        resolve_jobs,
        run_trials,
    )

    try:
        specs = _grid_from_args(args.sweep_command, args)
    except EmptySweepError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    # Satellite guard for the farm backend: the store already
    # checkpoints per trial, so a journal would be a second, possibly
    # disagreeing, source of truth (run_trials enforces the same).
    if args.store and args.resume:
        print("error: --store and --resume are mutually exclusive: the "
              "farm store already checkpoints every trial. Drop "
              "--resume — re-running with the same --store and cache "
              "resumes automatically.", file=sys.stderr)
        return 2

    from .obs import JsonlEventSink, MetricsCollector

    resilient = bool(
        args.retries or args.trial_timeout or args.resume or args.store
        or getattr(args, "inject_worker_crash", None) is not None
    )
    quarantine = QuarantineReport() if resilient else None
    cache = None if args.no_cache else TrialCache(args.cache_dir)
    jobs = resolve_jobs(args.jobs)
    collector = MetricsCollector()
    try:
        sink = (
            JsonlEventSink(args.events, bus=collector.bus, flush=True)
            if args.events else None
        )
    except OSError as exc:
        print(f"error: cannot open --events file: {exc}", file=sys.stderr)
        return 2
    dispatch = DispatchStats()
    start = time.perf_counter()
    try:
        results = run_trials(
            specs, jobs=jobs, cache=cache, chunk_size=args.batch_size,
            retries=args.retries, trial_timeout=args.trial_timeout,
            journal=args.resume, quarantine=quarantine,
            collector=collector, dispatch=dispatch, store=args.store,
        )
    finally:
        if sink is not None:
            sink.close()
    wall = time.perf_counter() - start

    survivors = [r for r in results if r is not None]
    if args.sweep_command == "set-agreement":
        ok_flags = [r.ok for r in survivors]
    elif args.sweep_command == "chaos":
        ok_flags = [r.ok for r in survivors]
    else:
        ok_flags = [r.stabilized and r.legal for r in survivors]
    all_ok = all(ok_flags)
    quarantined = len(quarantine) if quarantine is not None else 0

    if args.csv and survivors:
        to_csv(survivors, args.csv)

    summary = {
        "kind": args.sweep_command,
        "trials": len(results),
        "completed": len(survivors),
        "quarantined": quarantined,
        "ok": sum(ok_flags),
        "violations": len(ok_flags) - sum(ok_flags),
        "jobs": jobs,
        "wall_seconds": round(wall, 3),
        "trials_per_second": round(len(results) / wall, 1) if wall else None,
        "cache": None if cache is None else {
            "dir": str(cache.root),
            "hits": cache.hits,
            "misses": cache.misses,
        },
        "journal": args.resume,
        "store": args.store,
        "csv": args.csv if survivors else None,
        "dispatch": dispatch.to_dict(),
    }
    registry = collector.registry
    retried = registry.counter("trial_retries").total()
    ledger = _open_ledger(args)
    if ledger is not None:
        ledger.append_run(
            f"sweep:{args.sweep_command}",
            "ok" if all_ok else "violation",
            duration=wall, trials=len(results),
            quarantined=quarantined, retries=retried,
            jobs=jobs, violations=len(ok_flags) - sum(ok_flags),
            events=args.events,
        )
    if args.json:
        if quarantine is not None:
            summary["quarantine"] = quarantine.to_dict()
        summary["metrics"] = collector.snapshot()
        summary["events_written"] = sink.lines if sink is not None else 0
        summary["ledger"] = str(ledger.path) if ledger is not None else None
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(f"{args.sweep_command} sweep: {len(results)} trials  "
              f"jobs={jobs}  wall={wall:.2f}s")
        if jobs > 1:
            print(f"dispatch: {dispatch.batches} batches, "
                  f"{dispatch.pool_spawns} pool spawn(s), "
                  f"{dispatch.pool_reuses} reuse(s), "
                  f"{dispatch.cache_get_round_trips + dispatch.cache_put_round_trips} "
                  f"cache round trips")
        if cache is not None:
            print(f"cache: {cache.hits} hits, {cache.misses} misses "
                  f"({cache.root})")
        if args.resume:
            print(f"journal: {args.resume} "
                  f"({len(survivors)}/{len(results)} keys done)")
        if args.store:
            print(f"store: {args.store}")
        if args.csv and survivors:
            print(f"csv -> {args.csv}")
        if sink is not None:
            print(f"{sink.lines} events -> {args.events}")
        if ledger is not None:
            print(f"ledger -> {ledger.path}")
        if quarantine:
            print()
            print(quarantine.render())
            print()
        print("properties:", "OK" if all_ok else
              f"VIOLATED in {len(ok_flags) - sum(ok_flags)} trials")
    # Quarantined trials degrade the sweep to partial results; only a
    # property violation in a completed trial is a failure.
    return 0 if all_ok else 1


def _cmd_check(args) -> int:
    import json

    from .mc import CrashSweep, ExploreConfig, McInstance, check
    from .obs import MetricsRegistry

    instance = McInstance(
        args.protocol,
        n_processes=args.processes,
        f=args.resilience,
        stabilization_time=args.stabilization,
    )
    config = ExploreConfig(
        max_depth=args.depth,
        por=args.por,
        dedup=args.dedup,
        strategy=args.strategy,
        require_progress=args.require_progress,
        max_states=args.max_states,
    )
    sweep = None
    if args.max_crashes > 0:
        sweep = CrashSweep(
            max_crashes=args.max_crashes,
            crash_times=tuple(_parse_int_list(args.crash_times)),
        )
    from .perf import QuarantineReport

    resilient = bool(args.retries or args.trial_timeout or args.resume)
    quarantine = QuarantineReport() if resilient else None
    import time as time_module

    start = time_module.perf_counter()
    report = check(
        instance, config, sweep=sweep, jobs=args.jobs,
        batch_size=args.batch_size,
        retries=args.retries, trial_timeout=args.trial_timeout,
        journal=args.resume, quarantine=quarantine,
    )
    wall = time_module.perf_counter() - start
    if args.save_counterexample and report.counterexamples:
        report.counterexamples[0].save(args.save_counterexample)
    ledger = _open_ledger(args)
    if ledger is not None:
        ledger.append_run(
            f"check:{args.protocol}", "ok" if report.ok else "violation",
            duration=wall, trials=report.instances_checked,
            quarantined=len(quarantine) if quarantine is not None else 0,
            counterexamples=len(report.counterexamples),
            depth=args.depth,
        )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return 0 if report.ok else 1
    stats = report.total_stats()
    reduction = report.total_reduction()
    print(f"check  protocol={args.protocol}  n+1={args.processes}  "
          f"depth={args.depth}  por={'on' if args.por else 'off'}  "
          f"instances={report.instances_checked}")
    registry = MetricsRegistry()
    report.record_metrics(registry)
    print()
    print(registry.render())
    print()
    print(f"explored {stats.states_visited} states "
          f"({stats.states_distinct} distinct, "
          f"{stats.pruned_visited} pruned as visited) in "
          f"{stats.wall_seconds:.2f}s — "
          f"{stats.states_per_second:,.0f} states/s; "
          f"reduction ratio {reduction.ratio:.3f}")
    if not report.ok:
        for ce in report.counterexamples:
            print(f"COUNTEREXAMPLE: {ce.describe()}")
            print(f"  schedule: {list(ce.schedule)}")
        if args.save_counterexample:
            print(f"first counterexample -> {args.save_counterexample}")
    if quarantine:
        print()
        print(quarantine.render())
        print()
    if stats.truncated:
        print("warning: exploration truncated (--max-states or "
              "quarantined shards); the verdict is not exhaustive")
    print("properties:", "OK" if report.ok else "VIOLATED")
    return 0 if report.ok else 1


def _cmd_hierarchy(args) -> int:
    from .core import DetectorHierarchy

    system = System(args.processes)
    env = (
        Environment.wait_free(system)
        if args.resilience is None
        else Environment(system, args.resilience)
    )
    hierarchy = DetectorHierarchy(env)
    print(f"detectors over n+1={args.processes}, E_{env.f}: "
          f"{', '.join(hierarchy.detectors())}")
    for weaker, edges in sorted(
        (node, list(hierarchy.graph.out_edges(node)))
        for node in hierarchy.graph.nodes
    ):
        for _, stronger in edges:
            edge = hierarchy.graph.edges[weaker, stronger]["edge"]
            marker = "≺" if edge.strict else "≤"
            print(f"  {weaker} {marker} {stronger}: {edge.justification}")
    return 0


def _cmd_campaign(args) -> int:
    from .analysis import run_campaign
    from .core import make_upsilon_f_set_agreement, make_upsilon_set_agreement
    from .detectors import UpsilonFSpec

    def protocol(system, f):
        if f == system.n:
            return make_upsilon_set_agreement()
        return make_upsilon_f_set_agreement(f)

    def detector(system, env):
        return UpsilonFSpec(env) if env.f < system.n else UpsilonSpec(system)

    report = run_campaign(
        protocol, lambda system, f: SetAgreementSpec(f), detector,
        trials=args.trials, seed=args.seed,
    )
    print(report.summary())
    for failure in report.failures:
        print(" ", failure)
    return 0 if report.ok else 1


def _cmd_audit(args) -> int:
    import json as json_module

    from .audit import run_audit
    from .obs.metrics import MetricsCollector

    pairs = None
    if args.pairs:
        pairs = [p.strip() for p in args.pairs.split(",") if p.strip()]
    collector = MetricsCollector()
    report = run_audit(
        budget=args.budget,
        seed=args.seed,
        pairs=pairs,
        jobs=args.jobs,
        sabotage=args.sabotage,
        bus=collector.bus,
        progress=None if args.json else print,
        collector=collector,
    )
    report_path = report.save(args.report)
    ledger = _open_ledger(args)
    if ledger is not None:
        ledger.append_run(
            "audit", "ok" if report.ok else "divergence",
            duration=report.elapsed_seconds, trials=report.trial_pairs,
            divergences=len(report.divergences), budget=args.budget,
        )
    if args.json:
        print(json_module.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        rate = (
            report.trial_pairs / report.elapsed_seconds
            if report.elapsed_seconds else 0.0
        )
        print(f"{report.summary()}  ({rate:.1f} trial-pairs/s)")
        for body in report.divergences:
            print(f"  DIVERGENCE [{body.get('pair')}] case "
                  f"{body.get('case')}: {body.get('detail')}")
    print(f"report: {report_path}")
    return 0 if report.ok else 4


def _cmd_submit(args) -> int:
    import json
    import time

    from .analysis.sweeps import EmptySweepError
    from .farm import FarmStoreError, submit_campaign
    from .perf import TrialCache

    try:
        specs = _grid_from_args(args.submit_command, args)
    except EmptySweepError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    cache = None if args.no_cache else TrialCache(args.cache_dir)
    start = time.perf_counter()
    try:
        summary = submit_campaign(
            args.store, specs, campaign=args.campaign,
            kind=args.submit_command, cache=cache,
        )
    except FarmStoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    wall = time.perf_counter() - start
    ledger = _open_ledger(args)
    if ledger is not None:
        ledger.append_run(
            f"farm:submit:{args.submit_command}", "ok",
            duration=wall, trials=summary["trials"],
            campaign=summary["campaign"], store=summary["store"],
            cache_hits=summary["cache_hits"],
        )
    if args.json:
        out = dict(summary)
        out["ledger"] = str(ledger.path) if ledger is not None else None
        print(json.dumps(out, indent=2, sort_keys=True))
    else:
        print(f"campaign {summary['campaign']}: {summary['trials']} "
              f"trial(s) -> {summary['store']}")
        print(f"  {summary['cache_hits']} cache hit(s) enqueued done, "
              f"{summary['pending']} pending")
        print(f"  drain with: repro worker --store {args.store} "
              f"(any number, any machine)")
        if ledger is not None:
            print(f"ledger -> {ledger.path}")
    return 0


def _cmd_worker(args) -> int:
    import json
    import time

    from .farm import FarmStoreError, FarmWorker, open_store
    from .obs import JsonlEventSink, MetricsCollector
    from .perf import ResiliencePolicy, TrialCache, resolve_jobs

    collector = MetricsCollector()
    try:
        sink = (
            JsonlEventSink(args.events, bus=collector.bus, flush=True)
            if args.events else None
        )
    except OSError as exc:
        print(f"error: cannot open --events file: {exc}", file=sys.stderr)
        return 2
    try:
        store = open_store(args.store)
    except (FarmStoreError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    policy = ResiliencePolicy(
        retries=args.retries, trial_timeout=args.trial_timeout,
        backoff=args.backoff,
    )
    cache = None if args.no_cache else TrialCache(args.cache_dir)
    start = time.perf_counter()
    try:
        farm_worker = FarmWorker(
            store,
            worker_id=args.worker_id,
            jobs=resolve_jobs(args.jobs),
            batch_size=args.batch_size,
            lease_ttl=args.lease_ttl,
            policy=policy,
            cache=cache,
            campaign=args.campaign,
            bus=collector.bus,
            poll=args.poll,
            max_idle=args.max_idle,
            crash_after=args.self_test_crash_after,
        )
        stats = farm_worker.drain()
    finally:
        store.close()
        if sink is not None:
            sink.close()
    wall = time.perf_counter() - start
    ledger = _open_ledger(args)
    if ledger is not None:
        ledger.append_run(
            "farm:worker", "ok",
            duration=wall, trials=stats["completed"],
            quarantined=stats["quarantined"],
            worker=farm_worker.worker_id, store=store.url,
            claimed=stats["claimed"], reaped=stats["reaped"],
        )
    if args.json:
        out = {"worker": farm_worker.worker_id, "store": store.url,
               "wall_seconds": round(wall, 3),
               "events_written": sink.lines if sink is not None else 0,
               "ledger": str(ledger.path) if ledger is not None else None}
        out.update(stats)
        print(json.dumps(out, indent=2, sort_keys=True))
    else:
        print(f"worker {farm_worker.worker_id} drained {store.url}: "
              f"{stats['completed']} completed, {stats['failed']} "
              f"failed, {stats['quarantined']} quarantined in "
              f"{wall:.2f}s")
        print(f"  {stats['claimed']} claim(s) in {stats['batches']} "
              f"batch(es), {stats['reaped']} dead lease(s) reaped, "
              f"{stats['stale']} stale settlement(s)")
        if sink is not None:
            print(f"{sink.lines} events -> {args.events}")
        if ledger is not None:
            print(f"ledger -> {ledger.path}")
    return 0


def _cmd_farm(args) -> int:
    import json

    from .farm import (
        CampaignIncompleteError,
        FarmStoreError,
        open_store,
        render_status,
        watch,
    )

    try:
        store = open_store(args.store)
    except (FarmStoreError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        if args.farm_command == "status":
            if args.watch:
                watch(store, interval=args.interval)
                return 0
            status = store.status()
            if args.json:
                print(json.dumps(status, indent=2, sort_keys=True))
            else:
                print(render_status(status))
            return 0

        if args.farm_command == "requeue":
            positions = None if args.requeue_all else args.trial_ids
            rearmed = store.requeue(
                campaign=args.campaign, positions=positions
            )
            if args.json:
                print(json.dumps(
                    {"store": store.url, "campaign": args.campaign,
                     "positions": positions, "requeued": rearmed},
                    indent=2, sort_keys=True,
                ))
            else:
                scope = (f"campaign {args.campaign}" if args.campaign
                         else "whole store")
                print(f"re-armed {rearmed} quarantined trial(s) in {scope}")
            return 0

        # farm results: the collect half of submit/collect.
        from .analysis.sweeps import to_csv
        from .farm import collect_results
        from .obs import MetricsCollector
        from .obs.telemetry import result_verdict
        from .perf import QuarantineReport

        quarantine = QuarantineReport()
        collector = MetricsCollector()
        try:
            results, info = collect_results(
                store, args.campaign, collector=collector,
                quarantine=quarantine,
            )
        except (CampaignIncompleteError, FarmStoreError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        survivors = [r for r in results if r is not None]
        ok_flags = [result_verdict(r) for r in survivors]
        all_ok = all(ok_flags)
        if args.csv and survivors:
            to_csv(survivors, args.csv)
        if args.json:
            print(json.dumps(
                {"campaign": args.campaign, "store": store.url,
                 **info,
                 "ok": sum(ok_flags),
                 "violations": len(ok_flags) - sum(ok_flags),
                 "quarantine": quarantine.to_dict() if quarantine else None,
                 "metrics": collector.snapshot(),
                 "csv": args.csv if survivors else None},
                indent=2, sort_keys=True,
            ))
        else:
            print(f"campaign {args.campaign}: {info['completed']}/"
                  f"{info['trials']} completed "
                  f"({info['cached']} from cache, "
                  f"{info['quarantined']} quarantined)")
            if args.csv and survivors:
                print(f"csv -> {args.csv}")
            if quarantine:
                print()
                print(quarantine.render())
                print()
            print("properties:", "OK" if all_ok else
                  f"VIOLATED in {len(ok_flags) - sum(ok_flags)} trials")
        return 0 if all_ok else 1
    finally:
        store.close()


def _cmd_chaos(args) -> int:
    import json as json_module

    from .chaos.infra import CrashConsistencyChecker, default_infra_specs
    from .obs.metrics import MetricsCollector

    collector = MetricsCollector()
    checker = CrashConsistencyChecker(
        default_infra_specs(args.trials),
        runs=args.runs,
        seed=args.seed,
        severity=args.severity,
        sabotage=args.sabotage,
        bus=collector.bus,
    )
    report = checker.run()
    ledger = _open_ledger(args)
    if ledger is not None:
        ledger.append_run(
            "chaos-infra", "ok" if report.ok else "violation",
            duration=report.elapsed_seconds,
            trials=report.runs * report.trials_per_run,
            severity=report.severity, seed=report.seed,
            kills=report.kills, violations=len(report.violations),
        )
    if args.json:
        print(json_module.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.summary())
    return 0 if report.ok else 1


def _cmd_dash(args) -> int:
    from .obs.campaign import default_ledger_path
    from .obs.dash import serve

    ledger = args.ledger or default_ledger_path()
    if not args.events and not ledger and not args.store:
        print("error: nothing to show — pass --events, --ledger and/or "
              "--store (or set $REPRO_LEDGER)", file=sys.stderr)
        return 2
    serve(events_path=args.events, ledger=ledger, store=args.store,
          host=args.host, port=args.port)
    return 0


def _cmd_report(args) -> int:
    from .obs.campaign import CampaignLedger, default_ledger_path
    from .obs.report import render_report_html

    path = args.ledger or default_ledger_path()
    if not path:
        print("error: no ledger — pass --ledger FILE or set $REPRO_LEDGER",
              file=sys.stderr)
        return 2
    ledger = CampaignLedger(path)
    records = ledger.records()
    with open(args.out, "w", encoding="utf-8") as handle:
        handle.write(render_report_html(records, title=args.title))
    print(f"{len(records)} ledger record(s) -> {args.out}")
    return 0


_COMMANDS = {
    "audit": _cmd_audit,
    "chaos": _cmd_chaos,
    "dash": _cmd_dash,
    "report": _cmd_report,
    "fig1": _cmd_fig1,
    "hierarchy": _cmd_hierarchy,
    "campaign": _cmd_campaign,
    "fig2": _cmd_fig2,
    "extract": _cmd_extract,
    "theorem1": _cmd_theorem1,
    "run": _cmd_run,
    "stats": _cmd_stats,
    "profile": _cmd_profile,
    "sweep": _cmd_sweep,
    "submit": _cmd_submit,
    "worker": _cmd_worker,
    "farm": _cmd_farm,
    "check": _cmd_check,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    from .runtime import NonTerminationError

    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except NonTerminationError as exc:
        print(f"error: NonTerminationError: {exc}", file=sys.stderr)
        print("hint: raise --max-steps, or lower the chaos severity — "
              "a lying prefix or starvation window delays decisions",
              file=sys.stderr)
        return 3


if __name__ == "__main__":
    sys.exit(main())
