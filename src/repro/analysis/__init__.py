"""Experiment drivers, statistics, validators, rendering."""

from .linearizability import (
    OperationRecord,
    RegisterSequentialSpec,
    SnapshotRecorder,
    SnapshotSequentialSpec,
    is_linearizable,
)
from .render import describe_step, render_summary, render_timeline
from .runner import (
    ComplementHistory,
    EmittedHistory,
    ExtractionResult,
    LatencyComparison,
    SetAgreementResult,
    max_round_reached,
    run_extraction_trial,
    run_latency_comparison,
    run_set_agreement_trial,
)
from .stats import Summary, percentile, summarize
from .stress import (
    CampaignConfig,
    CampaignFailure,
    CampaignReport,
    minimize_schedule,
    run_campaign,
)
from .sweeps import (
    EmptySweepError,
    chaos_grid,
    extraction_grid,
    set_agreement_grid,
    sweep_chaos,
    sweep_extraction,
    sweep_set_agreement,
    to_csv,
)
from .trace_io import (
    dump_jsonl,
    load_jsonl,
    trace_from_dict,
    trace_to_dict,
)
from .validate import AxiomViolation, RunValidator, validate_simulation

__all__ = [
    "AxiomViolation",
    "CampaignConfig",
    "CampaignFailure",
    "CampaignReport",
    "ComplementHistory",
    "EmittedHistory",
    "EmptySweepError",
    "ExtractionResult",
    "LatencyComparison",
    "OperationRecord",
    "RegisterSequentialSpec",
    "RunValidator",
    "SetAgreementResult",
    "SnapshotRecorder",
    "SnapshotSequentialSpec",
    "Summary",
    "chaos_grid",
    "describe_step",
    "dump_jsonl",
    "extraction_grid",
    "is_linearizable",
    "load_jsonl",
    "max_round_reached",
    "minimize_schedule",
    "percentile",
    "render_summary",
    "render_timeline",
    "run_campaign",
    "run_extraction_trial",
    "run_latency_comparison",
    "run_set_agreement_trial",
    "set_agreement_grid",
    "summarize",
    "sweep_chaos",
    "sweep_extraction",
    "sweep_set_agreement",
    "to_csv",
    "trace_from_dict",
    "trace_to_dict",
    "validate_simulation",
]
