"""Trace serialization — JSON-friendly export/import of recorded runs.

Runs are deterministic given ``(pattern, history, schedule)``, but sharing
a failure report is easier with the run itself.  ``trace_to_dict`` /
``trace_from_dict`` round-trip a :class:`~repro.runtime.trace.Trace`
through plain JSON types; ``dump_jsonl`` writes one step per line for
streaming inspection (``jq``-able).

Hashable keys and response values are encoded structurally for the
built-in value kinds the library uses (ints, strings, tuples, frozensets,
``⊥``, ``None``, booleans); anything else falls back to a tagged ``repr``
that imports back as an opaque string — fine for inspection, not for
re-execution.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, List, Union

from ..runtime.ops import (
    BOT,
    Broadcast,
    ConsensusPropose,
    Decide,
    Emit,
    ImmediateWriteScan,
    Nop,
    Operation,
    QueryFD,
    Read,
    Receive,
    Send,
    SnapshotScan,
    SnapshotUpdate,
    Write,
)
from ..runtime.trace import StepRecord, Trace

_OP_CODES = {
    Read: "read", Write: "write",
    SnapshotUpdate: "snap-update", SnapshotScan: "snap-scan",
    ImmediateWriteScan: "immediate", ConsensusPropose: "propose",
    QueryFD: "query", Decide: "decide", Emit: "emit",
    Send: "send", Broadcast: "broadcast", Receive: "receive",
    Nop: "nop",
}
_CODE_OPS = {code: op for op, code in _OP_CODES.items()}


def encode_value(value: Any) -> Any:
    """Encode a value into JSON-safe structure (tagged for round-trip)."""
    if value is BOT:
        return {"⊥": True}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, tuple):
        return {"t": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return {"l": [encode_value(v) for v in value]}
    if isinstance(value, frozenset):
        return {"fs": sorted((encode_value(v) for v in value), key=repr)}
    if isinstance(value, dict):
        return {"d": [[encode_value(k), encode_value(v)]
                      for k, v in value.items()]}
    return {"repr": repr(value)}


def decode_value(encoded: Any) -> Any:
    """Inverse of :func:`encode_value`."""
    if isinstance(encoded, dict):
        if "⊥" in encoded:
            return BOT
        if "t" in encoded:
            return tuple(decode_value(v) for v in encoded["t"])
        if "l" in encoded:
            return [decode_value(v) for v in encoded["l"]]
        if "fs" in encoded:
            return frozenset(decode_value(v) for v in encoded["fs"])
        if "d" in encoded:
            return {decode_value(k): decode_value(v)
                    for k, v in encoded["d"]}
        if "repr" in encoded:
            return encoded["repr"]  # opaque
        raise ValueError(f"unknown encoding {encoded!r}")
    return encoded


def _encode_op(op: Operation) -> Dict[str, Any]:
    body: Dict[str, Any] = {"op": _OP_CODES[type(op)]}
    for field in ("key", "index", "value", "dest", "payload"):
        if hasattr(op, field):
            body[field] = encode_value(getattr(op, field))
    return body


def _decode_op(body: Dict[str, Any]) -> Operation:
    op_type = _CODE_OPS[body["op"]]
    kwargs = {
        field: decode_value(body[field])
        for field in ("key", "index", "value", "dest", "payload")
        if field in body
    }
    return op_type(**kwargs)


def step_to_dict(step: StepRecord) -> Dict[str, Any]:
    return {
        "t": step.time,
        "pid": step.pid,
        **_encode_op(step.op),
        "response": encode_value(step.response),
    }


def step_from_dict(body: Dict[str, Any]) -> StepRecord:
    op_fields = {
        k: v for k, v in body.items()
        if k in ("op", "key", "index", "value", "dest", "payload")
    }
    return StepRecord(
        time=body["t"],
        pid=body["pid"],
        op=_decode_op(op_fields),
        response=decode_value(body["response"]),
    )


def trace_to_dict(trace: Trace) -> Dict[str, Any]:
    """The whole trace as one JSON-safe dict."""
    return {"steps": [step_to_dict(s) for s in trace.steps]}


def trace_from_dict(body: Dict[str, Any]) -> Trace:
    """Rebuild a trace (outputs are re-derived from the steps)."""
    trace = Trace()
    for raw in body["steps"]:
        trace.record(step_from_dict(raw))
    return trace


def dump_jsonl(trace: Trace, destination: Union[str, IO[str]]) -> int:
    """Write one JSON object per step; returns the number of lines."""
    lines: List[str] = [
        json.dumps(step_to_dict(s), ensure_ascii=False)
        for s in trace.steps
    ]
    text = "\n".join(lines) + ("\n" if lines else "")
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        destination.write(text)
    return len(lines)


def load_jsonl(source: Union[str, IO[str]]) -> Trace:
    """Read a JSONL step stream back into a trace."""
    if isinstance(source, str):
        with open(source, encoding="utf-8") as handle:
            lines = handle.readlines()
    else:
        lines = source.readlines()
    trace = Trace()
    for line in lines:
        line = line.strip()
        if line:
            trace.record(step_from_dict(json.loads(line)))
    return trace
