"""Small statistics helpers for experiment reports."""

from __future__ import annotations

import dataclasses
import math
from typing import Iterable, List, Sequence


@dataclasses.dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample.

    ``p99`` defaults to the maximum so positional construction from older
    call sites stays valid; :func:`summarize` always fills it properly.
    """

    count: int
    mean: float
    median: float
    p95: float
    minimum: float
    maximum: float
    p99: float = float("nan")

    @property
    def p50(self) -> float:
        """Alias: the median is the 50th percentile."""
        return self.median

    def row(self, label: str) -> str:
        p99 = self.maximum if math.isnan(self.p99) else self.p99
        return (
            f"{label:<34} n={self.count:<5} mean={self.mean:>10.1f} "
            f"p50={self.median:>9.1f} p95={self.p95:>10.1f} "
            f"p99={p99:>10.1f} max={self.maximum:>10.1f}"
        )


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of pre-sorted values."""
    if not sorted_values:
        raise ValueError("empty sample")
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    pos = q * (len(sorted_values) - 1)
    low = math.floor(pos)
    high = math.ceil(pos)
    if low == high:
        return float(sorted_values[low])
    frac = pos - low
    return float(sorted_values[low]) * (1 - frac) + float(sorted_values[high]) * frac


def summarize(values: Iterable[float]) -> Summary:
    """Summarize a sample of measurements."""
    data: List[float] = sorted(float(v) for v in values)
    if not data:
        raise ValueError("cannot summarize an empty sample")
    return Summary(
        count=len(data),
        mean=sum(data) / len(data),
        median=percentile(data, 0.5),
        p95=percentile(data, 0.95),
        minimum=data[0],
        maximum=data[-1],
        p99=percentile(data, 0.99),
    )
