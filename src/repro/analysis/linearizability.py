"""A Wing–Gong linearizability checker for concurrent object histories.

The register-based snapshot of :mod:`repro.memory.snapshot` claims to be an
*atomic* snapshot: its (interval-timed) ``update``/``scan`` operations must
be linearizable with respect to the sequential snapshot specification.
This module checks that claim independently on recorded histories, via the
classical Wing–Gong/Lowe search: try all ways to linearize the pending
operations consistent with real-time order, replaying each prefix against
the sequential model.

The checker is object-generic; sequential models for snapshots and
registers are provided.  Exponential in the worst case — use on the small,
adversarial histories the tests construct (that is what the paper's world
needs: a *certifier*, not a production monitor).
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Tuple

from ..runtime.ops import BOT


@dataclasses.dataclass(frozen=True)
class OperationRecord:
    """One completed operation: its interval and its observed behaviour."""

    op_id: int
    pid: int
    start: int            # invocation time (inclusive)
    end: int              # response time (inclusive); start <= end
    kind: str             # object-specific operation name
    args: tuple
    response: Any

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("operation ends before it starts")


class SequentialSpec:
    """A sequential object model: ``apply(state, record) -> new state`` or
    ``None`` when the record's response is impossible in that state."""

    def initial(self) -> Any:
        raise NotImplementedError

    def apply(self, state: Any, record: OperationRecord) -> Optional[Any]:
        raise NotImplementedError


class SnapshotSequentialSpec(SequentialSpec):
    """Sequential atomic snapshot: updates write cells, scans return them."""

    def __init__(self, n_cells: int):
        self.n_cells = n_cells

    def initial(self) -> tuple:
        return tuple([BOT] * self.n_cells)

    def apply(self, state: tuple, record: OperationRecord) -> Optional[tuple]:
        if record.kind == "update":
            index, value = record.args
            cells = list(state)
            cells[index] = value
            return tuple(cells)
        if record.kind == "scan":
            return state if tuple(record.response) == state else None
        raise ValueError(f"unknown snapshot operation {record.kind!r}")


class RegisterSequentialSpec(SequentialSpec):
    """Sequential read/write register."""

    def initial(self) -> Any:
        return BOT

    def apply(self, state: Any, record: OperationRecord) -> Optional[Any]:
        if record.kind == "write":
            (value,) = record.args
            return value
        if record.kind == "read":
            return state if record.response == state else None
        raise ValueError(f"unknown register operation {record.kind!r}")


def is_linearizable(
    records: List[OperationRecord], spec: SequentialSpec
) -> bool:
    """Wing–Gong search with memoization on (linearized-set, state).

    A record may be linearized once every record that *ended before it
    started* has been linearized (real-time order preservation).
    """
    records = sorted(records, key=lambda r: (r.start, r.end))
    n = len(records)
    if n == 0:
        return True
    precedes: Dict[int, FrozenSet[int]] = {}
    for r in records:
        precedes[r.op_id] = frozenset(
            other.op_id for other in records if other.end < r.start
        )
    by_id = {r.op_id: r for r in records}
    seen: set[Tuple[FrozenSet[int], Any]] = set()

    def search(done: FrozenSet[int], state: Any) -> bool:
        if len(done) == n:
            return True
        key = (done, state)
        if key in seen:
            return False
        seen.add(key)
        for r in records:
            if r.op_id in done:
                continue
            if not precedes[r.op_id] <= done:
                continue
            new_state = spec.apply(state, r)
            if new_state is None:
                continue
            if search(done | {r.op_id}, new_state):
                return True
        return False

    return search(frozenset(), spec.initial())


# ----------------------------------------------------------------------
# Recording harness: wrap a snapshot API so a protocol run yields records.
# ----------------------------------------------------------------------


class SnapshotRecorder:
    """Collects :class:`OperationRecord`s from instrumented protocol runs.

    Protocols wrap their snapshot calls with :meth:`recorded_update` /
    :meth:`recorded_scan`; timestamps are read from a clock callable
    (typically ``lambda: sim.time``).
    """

    def __init__(self, clock: Callable[[], int]):
        self._clock = clock
        self._next_id = itertools.count()
        self.records: List[OperationRecord] = []

    def recorded_update(self, api, pid: int, index: int, value: Any):
        from ..runtime.ops import Nop

        yield Nop()  # stamps the invocation at this step's exact time
        start = self._clock() - 1
        yield from api.update(index, value)
        end = self._clock() - 1  # the last executed step's time
        self.records.append(OperationRecord(
            next(self._next_id), pid, start, end, "update", (index, value),
            None,
        ))

    def recorded_scan(self, api, pid: int):
        from ..runtime.ops import Nop

        yield Nop()
        start = self._clock() - 1
        view = yield from api.scan()
        end = self._clock() - 1
        self.records.append(OperationRecord(
            next(self._next_id), pid, start, end, "scan", (), tuple(view),
        ))
        return view
