"""Experiment drivers: parameterized trials behind every bench and table.

Each ``run_*_trial`` function executes one seeded run and returns a flat
result dataclass; the benchmark harness and EXPERIMENTS.md generator sweep
them over seeds and parameters.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Any, Dict, Optional

from ..core.extraction import make_extraction_protocol, stable_emulated_output
from ..core.f_resilient import make_upsilon_f_set_agreement
from ..core.samples import PhiMap, ShiftedPhiMap
from ..core.set_agreement import make_upsilon_set_agreement
from ..detectors.base import DetectorSpec, History, StableHistory
from ..detectors.omega_k import omega_n
from ..detectors.upsilon import UpsilonFSpec, UpsilonSpec
from ..failures.environment import Environment
from ..failures.pattern import FailurePattern
from ..obs.metrics import MetricsCollector
from ..runtime.process import System
from ..runtime.scheduler import RandomScheduler, RoundRobinScheduler
from ..runtime.simulation import Simulation
from ..tasks.set_agreement import SetAgreementSpec


def max_round_reached(sim: Simulation) -> int:
    """Highest protocol round with any footprint in shared memory.

    Protocol register/snapshot keys embed the round number as the second
    component of tuples headed by a known tag; we walk the memory keys.
    """
    tags = {"nconv", "fconv", "Dr", "Stable", "gconv", "gfconv", "A"}

    def rounds_in(key: Any):
        if isinstance(key, tuple):
            if len(key) >= 2 and key[0] in tags and isinstance(key[1], int):
                yield key[1]
            for part in key:
                yield from rounds_in(part)

    best = 0
    for key in sim.memory.keys():
        for r in rounds_in(key):
            best = max(best, r)
    return best


@dataclasses.dataclass
class SetAgreementResult:
    """Outcome of one set-agreement run."""

    n_processes: int
    f: int
    seed: int
    stabilization_time: int
    faulty: int
    total_steps: int
    last_decision_time: int
    distinct_decisions: int
    rounds: int
    ok: bool
    violations: str
    metrics: Optional[Dict[str, Any]] = dataclasses.field(
        default=None, repr=False, compare=False
    )


def run_set_agreement_trial(
    system: System,
    f: int,
    seed: int,
    stabilization_time: int,
    use_fig2: Optional[bool] = None,
    register_based: bool = False,
    max_steps: int = 2_000_000,
    stable_value: Any = None,
    history: Optional[History] = None,
    pattern: Optional[FailurePattern] = None,
    adversarial: bool = False,
    collector: Optional[MetricsCollector] = None,
) -> SetAgreementResult:
    """One seeded Fig. 1 / Fig. 2 run, checked against f-set agreement.

    ``use_fig2`` defaults to "Fig. 2 iff f < n"; Fig. 1 is the wait-free
    special case.

    ``adversarial`` selects the worst-case regime the paper's termination
    argument actually fights: a failure-free pattern, a *lockstep*
    (round-robin) schedule, and pre-stabilization noise pinned to the
    correct set — the one value Υ may show only transiently.  Progress is
    then impossible before stabilization, so the decision latency tracks
    the stabilization time (cf. benches E11/F1).

    Every trial is observed: a fresh
    :class:`~repro.obs.metrics.MetricsCollector` is wired unless one is
    passed, and the result carries its ``metrics`` snapshot."""
    env = Environment(system, f)
    rng = random.Random(f"sa:{system.n_processes}:{f}:{seed}")
    if pattern is None:
        if adversarial:
            pattern = FailurePattern.failure_free(system)
        else:
            pattern = env.random_pattern(
                rng, max_crash_time=stabilization_time or 60
            )
    if use_fig2 is None:
        use_fig2 = f < system.n
    if use_fig2:
        spec: DetectorSpec = UpsilonFSpec(env)
        protocol = make_upsilon_f_set_agreement(f, register_based=register_based)
    else:
        spec = UpsilonSpec(system)
        protocol = make_upsilon_set_agreement(register_based=register_based)
    if history is None:
        if adversarial:
            legal = [
                v
                for v in spec.legal_stable_values(pattern)
                if stable_value is None or v == frozenset(stable_value)
            ]
            history = StableHistory(
                legal[0],
                stabilization_time,
                noise=(lambda p, t: pattern.correct) if stabilization_time else None,
            )
        else:
            history = spec.sample_history(
                pattern,
                rng,
                stabilization_time=stabilization_time,
                stable_value=stable_value,
            )
    inputs = {p: f"v{p}" for p in system.pids}
    if collector is None:
        collector = MetricsCollector()
    sim = Simulation(
        system, protocol, inputs=inputs, pattern=pattern, history=history,
        bus=collector.bus,
    )
    scheduler = RoundRobinScheduler() if adversarial else RandomScheduler(seed)
    sim.run(
        max_steps=max_steps,
        scheduler=scheduler,
        stop_when=Simulation.all_correct_decided,
    )
    verdict = SetAgreementSpec(f).check(sim, inputs)
    times = sim.trace.decision_times()
    return SetAgreementResult(
        n_processes=system.n_processes,
        f=f,
        seed=seed,
        stabilization_time=stabilization_time,
        faulty=len(pattern.faulty),
        total_steps=sim.time,
        last_decision_time=max(times.values()) if times else -1,
        distinct_decisions=len(sim.trace.decided_values()),
        rounds=max_round_reached(sim),
        ok=verdict.ok,
        violations="; ".join(str(v) for v in verdict.violations),
        metrics=collector.snapshot(),
    )


@dataclasses.dataclass
class ExtractionResult:
    """Outcome of one Fig. 3 extraction run."""

    detector: str
    f: int
    seed: int
    stabilization_time: int
    total_steps: int
    stabilized: bool
    output: Optional[frozenset]
    legal: bool
    output_settle_time: int
    metrics: Optional[Dict[str, Any]] = dataclasses.field(
        default=None, repr=False, compare=False
    )


def run_extraction_trial(
    spec: DetectorSpec,
    env: Environment,
    seed: int,
    stabilization_time: int = 60,
    max_steps: int = 40_000,
    shift: int = 0,
    pattern: Optional[FailurePattern] = None,
    collector: Optional[MetricsCollector] = None,
) -> ExtractionResult:
    """One seeded Fig. 3 run extracting Υf from ``spec``."""
    rng = random.Random(f"ex:{spec.name}:{env.f}:{seed}")
    if pattern is None:
        pattern = env.random_pattern(rng, max_crash_time=stabilization_time or 50)
    history = spec.sample_history(
        pattern, rng, stabilization_time=stabilization_time
    )
    phi = PhiMap(spec, env)
    if shift:
        phi = ShiftedPhiMap(phi, shift)
    if collector is None:
        collector = MetricsCollector()
    sim = Simulation(
        env.system,
        make_extraction_protocol(phi),
        inputs={},
        pattern=pattern,
        history=history,
        bus=collector.bus,
    )
    sim.run(max_steps=max_steps, scheduler=RandomScheduler(seed + 1))
    outputs = stable_emulated_output(sim, pattern)
    upsilon = UpsilonFSpec(env)
    if outputs is None:
        return ExtractionResult(
            spec.name, env.f, seed, stabilization_time, sim.time,
            stabilized=False, output=None, legal=False, output_settle_time=-1,
            metrics=collector.snapshot(),
        )
    values = {frozenset(v) for v in outputs.values()}
    agreed = len(values) == 1
    output = next(iter(values)) if agreed else None
    legal = agreed and upsilon.is_legal_stable_value(pattern, output)
    settle = max(
        sim.trace.emit_stabilization_time(pid) or 0 for pid in pattern.correct
    )
    return ExtractionResult(
        spec.name, env.f, seed, stabilization_time, sim.time,
        stabilized=agreed, output=output, legal=legal,
        output_settle_time=settle,
        metrics=collector.snapshot(),
    )


@dataclasses.dataclass
class LatencyComparison:
    """Decision latency of Υ-based vs Ωn-reduced set agreement (E11)."""

    n_processes: int
    seed: int
    stabilization_time: int
    upsilon_steps: int
    omega_n_steps: int
    metrics: Optional[Dict[str, Any]] = dataclasses.field(
        default=None, repr=False, compare=False
    )


def run_latency_comparison(
    system: System,
    seed: int,
    stabilization_time: int,
    max_steps: int = 2_000_000,
) -> LatencyComparison:
    """Same pattern/seed: Fig. 1 under a direct Υ history vs Fig. 1 under
    Υ emulated from an Ωn history by the complement reduction.

    The Ωn side composes detector → reduction → protocol statically: the
    complement of a legal Ωn history *is* a legal Υ history, so we feed
    Fig. 1 the transformed history — the run is step-for-step what the
    online reduction converges to.
    """
    rng = random.Random(f"lat:{system.n_processes}:{seed}")
    env = Environment.wait_free(system)
    pattern = env.random_pattern(rng, max_crash_time=stabilization_time or 60)

    upsilon_spec = UpsilonSpec(system)
    direct = run_set_agreement_trial(
        system,
        system.n,
        seed,
        stabilization_time,
        pattern=pattern,
        history=upsilon_spec.sample_history(
            pattern, rng, stabilization_time=stabilization_time
        ),
        max_steps=max_steps,
    )

    omega_spec = omega_n(system)
    omega_history = omega_spec.sample_history(
        pattern, rng, stabilization_time=stabilization_time
    )
    complemented = ComplementHistory(system, omega_history)
    via_omega = run_set_agreement_trial(
        system,
        system.n,
        seed,
        stabilization_time,
        pattern=pattern,
        history=complemented,
        max_steps=max_steps,
    )
    return LatencyComparison(
        n_processes=system.n_processes,
        seed=seed,
        stabilization_time=stabilization_time,
        upsilon_steps=direct.last_decision_time,
        omega_n_steps=via_omega.last_decision_time,
        metrics={"upsilon": direct.metrics, "omega_n": via_omega.metrics},
    )


class ComplementHistory(History):
    """The Ωk → Υ^{n+1−k} reduction applied pointwise to a history.

    Also accepts Ω (= Ω1) histories, whose values are single pids.
    """

    def __init__(self, system: System, inner: History):
        self.system = system
        self.inner = inner

    def value(self, pid: int, t: int) -> frozenset:
        leaders = self.inner.value(pid, t)
        if isinstance(leaders, int):
            leaders = (leaders,)
        return self.system.complement(leaders)


class EmittedHistory(History):
    """A history replayed from a recorded emit timeline.

    Turns the ``D-output`` variable of a finished reduction run into a
    failure-detector history for a *subsequent* run: ``H(p, t)`` is the
    value ``p`` last emitted at or before ``t`` (``default`` before the
    first emit, and the final value after the recording ends).  Composing
    ``EmittedHistory`` over a Fig. 3 run with the Fig. 1 protocol realizes
    the paper's chain "any stable non-trivial D ⇒ Υ ⇒ set agreement"
    end-to-end.
    """

    def __init__(self, sim: Simulation, default):
        self.default = default
        self._timelines: Dict[int, list] = {}
        for pid in sim.system.pids:
            self._timelines[pid] = [
                (r.time, r.value) for r in sim.trace.emits(pid)
            ]

    def value(self, pid: int, t: int):
        timeline = self._timelines.get(pid, [])
        current = self.default
        for when, value in timeline:
            if when > t:
                break
            current = value
        return current
