"""Run-axiom validation — replaying a trace against the model of Sect. 3.3.

A run ``⟨F, H, S, T⟩`` must satisfy five requirements (Sect. 3.3):

  R1  no step by a crashed process: ``S[k] = (p, …) ⇒ p ∉ F(T[k])``;
  R2  query steps return the history's value: ``x = H(p, T[k])``;
  R3  steps are totally ordered (distinct times in our engine);
  R4  shared objects behave per their sequential specifications;
  R5  every correct process takes infinitely many steps (fairness).

The simulation engine enforces R1–R4 *constructively*; this module checks
them *independently* on a recorded trace, by replaying every shared-object
operation against a fresh model of each object and comparing responses.
That makes the engine itself testable: a bug in `Memory` or in crash
handling would surface as a replay divergence here, not as a silently
wrong experiment.  R5 is approximated on finite traces by a window check
(every correct process steps at least once in every window of
``fairness_window`` steps after it becomes idle-free).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Hashable, List, Optional

from ..detectors.base import History
from ..failures.pattern import FailurePattern
from ..runtime.ops import (
    BOT,
    Broadcast,
    ConsensusPropose,
    Decide,
    Emit,
    ImmediateWriteScan,
    Nop,
    QueryFD,
    Read,
    Receive,
    Send,
    SnapshotScan,
    SnapshotUpdate,
    Write,
)
from ..runtime.trace import Trace


@dataclasses.dataclass
class AxiomViolation:
    """One violated run requirement."""

    axiom: str
    time: int
    pid: int
    detail: str

    def __str__(self) -> str:
        return f"{self.axiom} at t={self.time} (p{self.pid}): {self.detail}"


class _ModelRegister:
    def __init__(self) -> None:
        self.value: Any = BOT


class _ModelSnapshot:
    def __init__(self) -> None:
        self.cells: Dict[int, Any] = {}

    def view(self, width: int) -> tuple:
        return tuple(self.cells.get(i, BOT) for i in range(width))


class _ModelConsensus:
    def __init__(self) -> None:
        self.decided = False
        self.decision: Any = None


class RunValidator:
    """Replays a trace against the Sect. 3.3 axioms.

    Parameters
    ----------
    pattern:
        The run's failure pattern ``F`` (for R1).
    history:
        The run's failure-detector history ``H`` (for R2); ``None`` if the
        run queried no detector.
    n_processes:
        Width of snapshot views (for R4 replay).
    fairness_window:
        R5 approximation: after its first step, every correct process must
        step at least once in every window of this many steps — except the
        trailing window (the run was cut off, not unfair) and processes
        whose protocol returned.
    """

    def __init__(
        self,
        pattern: FailurePattern,
        history: Optional[History],
        n_processes: int,
        fairness_window: int = 0,
    ):
        self.pattern = pattern
        self.history = history
        self.n_processes = n_processes
        self.fairness_window = fairness_window

    def validate(
        self, trace: Trace, returned_pids: frozenset[int] = frozenset()
    ) -> List[AxiomViolation]:
        """Check R1–R5; returns all violations found (empty = valid run)."""
        violations: List[AxiomViolation] = []
        registers: Dict[Hashable, _ModelRegister] = {}
        snapshots: Dict[Hashable, _ModelSnapshot] = {}
        consensus: Dict[Hashable, _ModelConsensus] = {}
        last_time = -1

        for step in trace.steps:
            t, pid, op, response = step.time, step.pid, step.op, step.response

            # R3 — total order, strictly increasing times.
            if t <= last_time:
                violations.append(AxiomViolation(
                    "R3-order", t, pid,
                    f"step time {t} not after previous {last_time}"))
            last_time = t

            # R1 — no steps by crashed processes.
            if not self.pattern.is_alive(pid, t):
                violations.append(AxiomViolation(
                    "R1-crash", t, pid,
                    f"step taken at/after crash time "
                    f"{self.pattern.crash_time(pid)}"))

            # R2 — failure-detector query steps match the history.
            if isinstance(op, QueryFD):
                if self.history is None:
                    violations.append(AxiomViolation(
                        "R2-history", t, pid, "query step but no history"))
                else:
                    expected = self.history.value(pid, t)
                    if response != expected:
                        violations.append(AxiomViolation(
                            "R2-history", t, pid,
                            f"query returned {response!r}, history says "
                            f"{expected!r}"))
                continue

            # R4 — replay shared objects.
            if isinstance(op, Read):
                model = registers.setdefault(op.key, _ModelRegister())
                if response != model.value and not (
                    response is BOT and model.value is BOT
                ):
                    violations.append(AxiomViolation(
                        "R4-register", t, pid,
                        f"read of {op.key!r} returned {response!r}, model "
                        f"holds {model.value!r}"))
            elif isinstance(op, Write):
                registers.setdefault(op.key, _ModelRegister()).value = op.value
            elif isinstance(op, SnapshotUpdate):
                snapshots.setdefault(op.key, _ModelSnapshot()).cells[
                    op.index
                ] = op.value
            elif isinstance(op, SnapshotScan):
                model_snap = snapshots.setdefault(op.key, _ModelSnapshot())
                expected_view = model_snap.view(self.n_processes)
                if tuple(response) != expected_view:
                    violations.append(AxiomViolation(
                        "R4-snapshot", t, pid,
                        f"scan of {op.key!r} returned {response!r}, model "
                        f"says {expected_view!r}"))
            elif isinstance(op, ConsensusPropose):
                model_cons = consensus.setdefault(op.key, _ModelConsensus())
                if not model_cons.decided:
                    model_cons.decided = True
                    model_cons.decision = op.value
                if response != model_cons.decision:
                    violations.append(AxiomViolation(
                        "R4-consensus", t, pid,
                        f"propose on {op.key!r} returned {response!r}, "
                        f"object decided {model_cons.decision!r}"))
            elif isinstance(op, ImmediateWriteScan):
                model_snap = snapshots.setdefault(op.key, _ModelSnapshot())
                model_snap.cells[op.index] = op.value
                expected_view = model_snap.view(self.n_processes)
                if tuple(response) != expected_view:
                    violations.append(AxiomViolation(
                        "R4-immediate", t, pid,
                        f"write_and_scan of {op.key!r} returned "
                        f"{response!r}, model says {expected_view!r}"))
            elif isinstance(op, (Decide, Emit, Nop, Send, Broadcast,
                                 Receive)):
                # Messaging steps are replayed by the network model, not
                # the register models; delivery correctness is covered by
                # the network's own unit tests.
                pass
            else:
                violations.append(AxiomViolation(
                    "R4-unknown", t, pid, f"unknown operation {op!r}"))

        if self.fairness_window:
            violations.extend(
                self._check_fairness(trace, returned_pids)
            )
        return violations

    def _check_fairness(
        self, trace: Trace, returned_pids: frozenset[int]
    ) -> List[AxiomViolation]:
        """R5 on a finite prefix: no correct, non-returned process starves
        for a full window (excluding the trailing partial window)."""
        violations: List[AxiomViolation] = []
        if not trace.steps:
            return violations
        horizon = trace.steps[-1].time
        watched = [
            p for p in self.pattern.correct
            if p not in returned_pids
        ]
        last_step: Dict[int, int] = {p: -1 for p in watched}
        for step in trace.steps:
            if step.pid in last_step:
                gap_start = last_step[step.pid]
                if step.time - gap_start > self.fairness_window and gap_start >= 0:
                    violations.append(AxiomViolation(
                        "R5-fairness", step.time, step.pid,
                        f"starved for {step.time - gap_start} > "
                        f"{self.fairness_window} steps"))
                last_step[step.pid] = step.time
        for pid, when in last_step.items():
            if horizon - when > self.fairness_window and when >= 0:
                violations.append(AxiomViolation(
                    "R5-fairness", horizon, pid,
                    f"no step in the last {horizon - when} steps"))
        return violations


def validate_simulation(sim, fairness_window: int = 0) -> List[AxiomViolation]:
    """Convenience: validate a finished simulation's own trace.

    Processes whose protocol returned are excused from the fairness check.
    """
    from ..runtime.process import ProcessStatus

    returned = frozenset(
        pid for pid, rt in sim.runtimes.items()
        if rt.status is ProcessStatus.RETURNED
    )
    validator = RunValidator(
        sim.pattern, sim.history, sim.system.n_processes,
        fairness_window=fairness_window,
    )
    return validator.validate(sim.trace, returned_pids=returned)
