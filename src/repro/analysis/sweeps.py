"""Parameter sweeps and CSV export for the experiment harness.

The benchmark suite times representative points; these helpers run the
full grids behind EXPERIMENTS.md and dump flat CSVs for external
analysis — see ``benchmarks/report.py`` for the Markdown rendering.

Sweeps are two-phase: a *grid builder* (:func:`set_agreement_grid`,
:func:`extraction_grid`, :func:`chaos_grid`) turns parameter sequences
into picklable
:mod:`repro.perf` trial specs — raising :class:`EmptySweepError` early
when a parameter filters the grid down to nothing — and the
:func:`repro.perf.executor.run_trials` executor runs them, serially or
across a process pool (``jobs``), optionally through a disk-backed
:class:`~repro.perf.cache.TrialCache`.  Results always come back in
grid order, so ``jobs=8`` and ``jobs=1`` export identical CSVs.
"""

from __future__ import annotations

import csv
import dataclasses
import io
from typing import (
    Callable,
    Iterable,
    List,
    Optional,
    Sequence,
    TextIO,
    Union,
)

from ..chaos.config import ChaosConfig
from ..chaos.trial import PROTOCOLS, ChaosTrialResult, ChaosTrialSpec
from ..detectors.base import DetectorSpec
from ..failures.environment import Environment
from ..perf.cache import TrialCache
from ..perf.executor import run_trials
from ..perf.spec import ExtractionTrialSpec, SetAgreementTrialSpec
from ..runtime.process import System
from .runner import (
    ExtractionResult,
    SetAgreementResult,
    run_extraction_trial,
)


class EmptySweepError(ValueError):
    """A sweep parameter produced no trials.

    ``parameter`` names the offending input, so the error surfaces at the
    sweep boundary with a actionable message instead of a bare
    ``ValueError("no results to export")`` from ``to_csv`` downstream.
    """

    def __init__(self, parameter: str, detail: str):
        self.parameter = parameter
        super().__init__(
            f"sweep parameter {parameter!r} produced no trials: {detail}"
        )


def _require_non_empty(name: str, values: Sequence) -> None:
    if not list(values):
        raise EmptySweepError(name, "the sequence is empty")


# -- grid builders ---------------------------------------------------------


def set_agreement_grid(
    system_sizes: Sequence[int],
    seeds: Sequence[int],
    stabilization_times: Sequence[int],
    fs: Optional[Sequence[int]] = None,
    adversarial: bool = False,
    max_steps: int = 2_000_000,
) -> List[SetAgreementTrialSpec]:
    """Specs for the Fig. 1 / Fig. 2 grid.

    ``fs = None`` means the wait-free case (f = n) for each system size;
    an explicit ``fs`` is clamped to ``1 <= f <= n`` per size, and a
    clamp that leaves nothing raises :class:`EmptySweepError`.
    """
    _require_non_empty("system_sizes", system_sizes)
    _require_non_empty("seeds", seeds)
    _require_non_empty("stabilization_times", stabilization_times)
    specs: List[SetAgreementTrialSpec] = []
    for n_procs in system_sizes:
        n = System(n_procs).n
        f_values = [n] if fs is None else [f for f in fs if 1 <= f <= n]
        for f in f_values:
            for stab in stabilization_times:
                for seed in seeds:
                    specs.append(SetAgreementTrialSpec(
                        n_processes=n_procs,
                        f=f,
                        seed=seed,
                        stabilization_time=stab,
                        adversarial=adversarial,
                        max_steps=max_steps,
                    ))
    if not specs:
        raise EmptySweepError(
            "fs",
            f"no f in {list(fs)} satisfies 1 <= f <= n for system sizes "
            f"{list(system_sizes)}",
        )
    return specs


def extraction_grid(
    detectors: Sequence[str],
    system_sizes: Sequence[int],
    seeds: Sequence[int],
    f: Optional[int] = None,
    stabilization_time: int = 60,
    max_steps: int = 40_000,
) -> List[ExtractionTrialSpec]:
    """Specs for the Fig. 3 grid.

    ``detectors`` are :mod:`repro.detectors.registry` names (the picklable
    identity of a detector spec); ``f = None`` means wait-free.
    """
    _require_non_empty("detectors", detectors)
    _require_non_empty("system_sizes", system_sizes)
    _require_non_empty("seeds", seeds)
    return [
        ExtractionTrialSpec(
            detector=name,
            n_processes=n_procs,
            seed=seed,
            f=f,
            stabilization_time=stabilization_time,
            max_steps=max_steps,
        )
        for n_procs in system_sizes
        for name in detectors
        for seed in seeds
    ]


def chaos_grid(
    protocols: Sequence[str],
    system_sizes: Sequence[int],
    seeds: Sequence[int],
    lying_prefixes: Sequence[int] = (0,),
    drop_rates: Sequence[float] = (0.0,),
    duplicate_rate: float = 0.0,
    reorder_rate: float = 0.0,
    reorder_jitter: int = 4,
    burst_length: int = 0,
    starvation_window: int = 0,
    fairness_bound: int = 64,
    f: Optional[int] = None,
    detector: str = "omega",
    max_steps: int = 400_000,
) -> List[ChaosTrialSpec]:
    """Specs for a chaos grid: protocols × sizes × lies × drops × seeds.

    ``protocols`` are :data:`repro.chaos.trial.PROTOCOLS` names; the
    lying-prefix and drop-rate axes are swept, the remaining chaos knobs
    are held constant across the grid.  Each spec's chaos seed is its
    trial seed, so re-running the grid reproduces the same faults.
    """
    _require_non_empty("protocols", protocols)
    _require_non_empty("system_sizes", system_sizes)
    _require_non_empty("seeds", seeds)
    _require_non_empty("lying_prefixes", lying_prefixes)
    _require_non_empty("drop_rates", drop_rates)
    unknown = sorted(set(protocols) - set(PROTOCOLS))
    if unknown:
        raise EmptySweepError(
            "protocols",
            f"unknown protocol names {unknown}; choose from {list(PROTOCOLS)}",
        )
    specs: List[ChaosTrialSpec] = []
    for protocol in protocols:
        for n_procs in system_sizes:
            for lying in lying_prefixes:
                for drop in drop_rates:
                    for seed in seeds:
                        # Validate the knob combination once per point.
                        ChaosConfig(
                            seed=seed,
                            lying_prefix=lying,
                            drop_rate=drop,
                            duplicate_rate=duplicate_rate,
                            reorder_rate=reorder_rate,
                            reorder_jitter=reorder_jitter,
                            burst_length=burst_length,
                            starvation_window=starvation_window,
                            fairness_bound=fairness_bound,
                        )
                        specs.append(ChaosTrialSpec(
                            protocol=protocol,
                            n_processes=n_procs,
                            seed=seed,
                            f=f,
                            detector=detector,
                            lying_prefix=lying,
                            drop_rate=drop,
                            duplicate_rate=duplicate_rate,
                            reorder_rate=reorder_rate,
                            reorder_jitter=reorder_jitter,
                            burst_length=burst_length,
                            starvation_window=starvation_window,
                            fairness_bound=fairness_bound,
                            max_steps=max_steps,
                        ))
    return specs


# -- sweep drivers ---------------------------------------------------------


def sweep_set_agreement(
    system_sizes: Sequence[int],
    seeds: Sequence[int],
    stabilization_times: Sequence[int],
    fs: Optional[Sequence[int]] = None,
    adversarial: bool = False,
    jobs: Optional[int] = 1,
    cache: Optional[TrialCache] = None,
    batch_size: Optional[int] = None,
) -> List[SetAgreementResult]:
    """Grid of Fig. 1 / Fig. 2 runs.

    ``fs = None`` means the wait-free case (f = n) for each system size.
    ``jobs > 1`` fans the grid out as batches over the persistent worker
    pool (``batch_size`` specs per batch; default ~2 batches per
    worker); ``cache`` serves already-computed trials from disk.  Output
    order is the grid order either way.
    """
    specs = set_agreement_grid(
        system_sizes, seeds, stabilization_times,
        fs=fs, adversarial=adversarial,
    )
    return run_trials(specs, jobs=jobs, cache=cache, chunk_size=batch_size)


def sweep_extraction(
    detectors: Sequence[Union[str, Callable[[System], DetectorSpec]]],
    system_sizes: Sequence[int],
    seeds: Sequence[int],
    f: Optional[int] = None,
    stabilization_time: int = 60,
    max_steps: int = 40_000,
    jobs: Optional[int] = 1,
    cache: Optional[TrialCache] = None,
    batch_size: Optional[int] = None,
) -> List[ExtractionResult]:
    """Grid of Fig. 3 extractions.

    ``detectors`` is an iterable of registry names (parallelizable and
    cacheable) or, for backward compatibility, of callables
    ``System -> DetectorSpec``.  Callables have no picklable identity, so
    they run serially in-process and cannot use the cache.
    ``f = None`` means wait-free.
    """
    detectors = list(detectors)
    if all(isinstance(d, str) for d in detectors):
        specs = extraction_grid(
            detectors, system_sizes, seeds,
            f=f, stabilization_time=stabilization_time, max_steps=max_steps,
        )
        return run_trials(specs, jobs=jobs, cache=cache,
                          chunk_size=batch_size)
    if (jobs is not None and jobs > 1) or cache is not None:
        raise ValueError(
            "parallel or cached extraction sweeps need detector registry "
            "names (e.g. 'omega'), not spec factories — factories have no "
            "picklable identity"
        )
    _require_non_empty("detectors", detectors)
    _require_non_empty("system_sizes", system_sizes)
    _require_non_empty("seeds", seeds)
    results: List[ExtractionResult] = []
    for n_procs in system_sizes:
        system = System(n_procs)
        env = (
            Environment.wait_free(system)
            if f is None
            else Environment(system, f)
        )
        for factory in detectors:
            spec: DetectorSpec = factory(system)
            for seed in seeds:
                results.append(run_extraction_trial(
                    spec, env, seed=seed,
                    stabilization_time=stabilization_time,
                    max_steps=max_steps,
                ))
    return results


def sweep_chaos(
    protocols: Sequence[str],
    system_sizes: Sequence[int],
    seeds: Sequence[int],
    lying_prefixes: Sequence[int] = (0,),
    drop_rates: Sequence[float] = (0.0,),
    jobs: Optional[int] = 1,
    cache: Optional[TrialCache] = None,
    batch_size: Optional[int] = None,
    **grid_kwargs,
) -> List[Optional[ChaosTrialResult]]:
    """Grid of chaos trials (see :func:`chaos_grid` for the axes).

    Extra keyword arguments — including the resilience knobs ``retries``,
    ``trial_timeout``, ``journal``, ``quarantine``, ``backoff`` and
    ``bus`` — are split between the grid builder and
    :func:`~repro.perf.executor.run_trials`.  Quarantined trials leave
    ``None`` in their result slots.
    """
    run_keys = ("retries", "trial_timeout", "journal", "quarantine",
                "backoff", "bus")
    run_kwargs = {k: grid_kwargs.pop(k) for k in run_keys if k in grid_kwargs}
    specs = chaos_grid(
        protocols, system_sizes, seeds,
        lying_prefixes=lying_prefixes, drop_rates=drop_rates,
        **grid_kwargs,
    )
    return run_trials(specs, jobs=jobs, cache=cache, chunk_size=batch_size,
                      **run_kwargs)


# -- CSV export ------------------------------------------------------------


def _stringify(value) -> str:
    if isinstance(value, frozenset):
        return "{" + ",".join(str(x) for x in sorted(value)) + "}"
    if value is None:
        return ""
    return str(value)


def to_csv(
    results: Iterable[object], destination: Union[str, TextIO, None] = None
) -> str:
    """Write a list of result dataclasses as CSV.

    ``destination`` may be a path, an open text file, or ``None`` (return
    the CSV text only).  All rows must share a dataclass type.  Fields
    declared ``repr=False`` (e.g. the nested ``metrics`` snapshot) are
    omitted — CSV rows stay flat; use the metrics JSON artifacts for the
    structured data.
    """
    rows = list(results)
    if not rows:
        raise ValueError("no results to export")
    first = rows[0]
    if not dataclasses.is_dataclass(first):
        raise TypeError("results must be dataclass instances")
    fieldnames = [f.name for f in dataclasses.fields(first) if f.repr]
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fieldnames)
    writer.writeheader()
    for row in rows:
        if type(row) is not type(first):
            raise TypeError("mixed result types in one export")
        record = {
            key: _stringify(value)
            for key, value in dataclasses.asdict(row).items()
            if key in fieldnames
        }
        writer.writerow(record)
    text = buffer.getvalue()
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(text)
    elif destination is not None:
        destination.write(text)
    return text
