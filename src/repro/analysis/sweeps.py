"""Parameter sweeps and CSV export for the experiment harness.

The benchmark suite times representative points; these helpers run the
full grids behind EXPERIMENTS.md and dump flat CSVs for external
analysis — see ``benchmarks/report.py`` for the Markdown rendering.
"""

from __future__ import annotations

import csv
import dataclasses
import io
from typing import Iterable, List, Optional, Sequence, TextIO, Union

from ..detectors.base import DetectorSpec
from ..failures.environment import Environment
from ..runtime.process import System
from .runner import (
    ExtractionResult,
    SetAgreementResult,
    run_extraction_trial,
    run_set_agreement_trial,
)


def sweep_set_agreement(
    system_sizes: Sequence[int],
    seeds: Sequence[int],
    stabilization_times: Sequence[int],
    fs: Optional[Sequence[int]] = None,
    adversarial: bool = False,
) -> List[SetAgreementResult]:
    """Grid of Fig. 1 / Fig. 2 runs.

    ``fs = None`` means the wait-free case (f = n) for each system size.
    """
    results: List[SetAgreementResult] = []
    for n_procs in system_sizes:
        system = System(n_procs)
        f_values = [system.n] if fs is None else [
            f for f in fs if 1 <= f <= system.n
        ]
        for f in f_values:
            for stab in stabilization_times:
                for seed in seeds:
                    results.append(run_set_agreement_trial(
                        system, f, seed=seed, stabilization_time=stab,
                        adversarial=adversarial,
                    ))
    return results


def sweep_extraction(
    spec_factories,
    system_sizes: Sequence[int],
    seeds: Sequence[int],
    f: Optional[int] = None,
    stabilization_time: int = 60,
    max_steps: int = 40_000,
) -> List[ExtractionResult]:
    """Grid of Fig. 3 extractions.

    ``spec_factories`` is an iterable of callables ``System -> DetectorSpec``.
    ``f = None`` means wait-free.
    """
    results: List[ExtractionResult] = []
    for n_procs in system_sizes:
        system = System(n_procs)
        env = (
            Environment.wait_free(system)
            if f is None
            else Environment(system, f)
        )
        for factory in spec_factories:
            spec: DetectorSpec = factory(system)
            for seed in seeds:
                results.append(run_extraction_trial(
                    spec, env, seed=seed,
                    stabilization_time=stabilization_time,
                    max_steps=max_steps,
                ))
    return results


def _stringify(value) -> str:
    if isinstance(value, frozenset):
        return "{" + ",".join(str(x) for x in sorted(value)) + "}"
    if value is None:
        return ""
    return str(value)


def to_csv(
    results: Iterable[object], destination: Union[str, TextIO, None] = None
) -> str:
    """Write a list of result dataclasses as CSV.

    ``destination`` may be a path, an open text file, or ``None`` (return
    the CSV text only).  All rows must share a dataclass type.  Fields
    declared ``repr=False`` (e.g. the nested ``metrics`` snapshot) are
    omitted — CSV rows stay flat; use the metrics JSON artifacts for the
    structured data.
    """
    rows = list(results)
    if not rows:
        raise ValueError("no results to export")
    first = rows[0]
    if not dataclasses.is_dataclass(first):
        raise TypeError("results must be dataclass instances")
    fieldnames = [f.name for f in dataclasses.fields(first) if f.repr]
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=fieldnames)
    writer.writeheader()
    for row in rows:
        if type(row) is not type(first):
            raise TypeError("mixed result types in one export")
        record = {
            key: _stringify(value)
            for key, value in dataclasses.asdict(row).items()
            if key in fieldnames
        }
        writer.writerow(record)
    text = buffer.getvalue()
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            handle.write(text)
    elif destination is not None:
        destination.write(text)
    return text
