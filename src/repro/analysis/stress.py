"""Stress campaigns and schedule minimization.

:func:`run_campaign` fuzzes a protocol family against its task spec across
randomized configurations — system sizes, crash patterns, detector noise,
scheduler families — and reports every violation with enough information
to replay it.  The ablation tests use it in anger: the campaign must find
the planted bugs in the broken variants and stay silent on the real ones.

:func:`minimize_schedule` shrinks a failing explicit schedule by greedy
chunk deletion (delta debugging), keeping the failure predicate true —
handy for turning a 400-step counterexample into a dozen steps a human
can read.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Callable, List, Sequence

from ..detectors.base import DetectorSpec
from ..failures.environment import Environment
from ..runtime.process import Protocol, System
from ..runtime.scheduler import (
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
    WeightedRandomScheduler,
)
from ..runtime.simulation import Simulation
from ..tasks.base import TaskSpec


@dataclasses.dataclass(frozen=True)
class CampaignConfig:
    """One fuzzed configuration (fully determined by the campaign seed)."""

    trial: int
    n_processes: int
    f: int
    seed: int
    stabilization_time: int
    scheduler_kind: str
    crashes: tuple  # ((pid, time), ...)

    def describe(self) -> str:
        crashes = ", ".join(f"p{p}@{t}" for p, t in self.crashes) or "none"
        return (
            f"trial {self.trial}: n+1={self.n_processes} f={self.f} "
            f"seed={self.seed} stab={self.stabilization_time} "
            f"sched={self.scheduler_kind} crashes=[{crashes}]"
        )


@dataclasses.dataclass
class CampaignFailure:
    """One violation found by the campaign, with its reproducer."""

    config: CampaignConfig
    kind: str       # "violation" | "no-termination" | "exception"
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.detail} @ {self.config.describe()}"


@dataclasses.dataclass
class CampaignReport:
    """Outcome of a campaign."""

    trials: int
    failures: List[CampaignFailure]

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        status = "clean" if self.ok else f"{len(self.failures)} failure(s)"
        return f"{self.trials} trials, {status}"


def _make_scheduler(kind: str, seed: int, n_processes: int) -> Scheduler:
    if kind == "random":
        return RandomScheduler(seed)
    if kind == "round-robin":
        return RoundRobinScheduler()
    if kind == "weighted":
        rng = random.Random(seed)
        weights = [rng.uniform(0.05, 1.0) for _ in range(n_processes)]
        return WeightedRandomScheduler(weights, seed=seed)
    raise ValueError(f"unknown scheduler kind {kind!r}")


def run_campaign(
    protocol_factory: Callable[[System, int], Protocol],
    task_factory: Callable[[System, int], TaskSpec],
    detector_factory: Callable[[System, Environment], DetectorSpec],
    trials: int = 50,
    seed: int = 0,
    system_sizes: Sequence[int] = (3, 4, 5),
    max_steps: int = 400_000,
    wait_free_only: bool = False,
) -> CampaignReport:
    """Fuzz ``protocol_factory(system, f)`` against ``task_factory``.

    Each trial draws a configuration from the campaign RNG, samples a
    legal detector history, runs to the step budget, and checks the task
    spec.  Budget exhaustion without termination counts as a failure
    (liveness), as do property violations and protocol exceptions.
    """
    campaign_rng = random.Random(seed)
    failures: List[CampaignFailure] = []
    for trial in range(trials):
        n_processes = campaign_rng.choice(list(system_sizes))
        system = System(n_processes)
        f = system.n if wait_free_only else campaign_rng.randint(1, system.n)
        env = Environment(system, f)
        trial_seed = campaign_rng.randrange(2**30)
        stabilization = campaign_rng.choice([0, 20, 100, 300])
        scheduler_kind = campaign_rng.choice(
            ["random", "round-robin", "weighted"]
        )
        rng = random.Random(trial_seed)
        pattern = env.random_pattern(rng, max_crash_time=stabilization or 50)
        config = CampaignConfig(
            trial, n_processes, f, trial_seed, stabilization,
            scheduler_kind, tuple(sorted(pattern.crash_times.items())),
        )
        detector = detector_factory(system, env)
        history = detector.sample_history(
            pattern, rng, stabilization_time=stabilization
        )
        inputs = {p: f"v{p}" for p in system.pids}
        sim = Simulation(
            system, protocol_factory(system, f), inputs=inputs,
            pattern=pattern, history=history,
        )
        scheduler = _make_scheduler(scheduler_kind, trial_seed, n_processes)
        try:
            sim.run(max_steps=max_steps, scheduler=scheduler,
                    stop_when=Simulation.all_correct_decided)
        except Exception as exc:  # protocol bug surfaced as an exception
            failures.append(CampaignFailure(config, "exception", repr(exc)))
            continue
        if not sim.all_correct_decided():
            failures.append(CampaignFailure(
                config, "no-termination",
                f"budget {max_steps} exhausted at t={sim.time}"))
            continue
        verdict = task_factory(system, f).check(sim, inputs)
        if not verdict.ok:
            failures.append(CampaignFailure(
                config, "violation",
                "; ".join(str(v) for v in verdict.violations)))
    return CampaignReport(trials=trials, failures=failures)


def minimize_schedule(
    make_sim: Callable[[], Simulation],
    schedule: Sequence[int],
    failure_predicate: Callable[[Simulation], bool],
) -> List[int]:
    """Delta-debug an explicit failing schedule.

    Repeatedly removes chunks (halving chunk size down to single steps)
    while the replayed run still satisfies ``failure_predicate``.

    Invariants:

    * The result is a **subsequence** of ``schedule`` (steps are only
      deleted, never reordered or added).
    * The result **still reproduces**: replaying it satisfies
      ``failure_predicate``.
    * The result is **1-minimal**: deleting any single remaining step
      stops it from reproducing.
    * A replay that raises (e.g. stepping a finished process after a
      deletion) and a predicate that raises both count as *not
      reproducing* — candidates are discarded, never propagated.
    * The result is **never empty** unless ``schedule`` was empty; an
      empty input is returned unchanged iff the predicate holds on the
      freshly built simulation (else ``ValueError``).

    Raises ``ValueError`` when the input schedule itself does not
    reproduce the failure.
    """

    def reproduces(candidate: Sequence[int]) -> bool:
        sim = make_sim()
        try:
            for pid in candidate:
                sim.step(pid)
            return bool(failure_predicate(sim))
        except Exception:
            return False

    current = list(schedule)
    if not reproduces(current):
        raise ValueError("the given schedule does not reproduce the failure")
    chunk = max(1, len(current) // 2)
    while True:
        index = 0
        removed_any = False
        while index < len(current):
            candidate = current[:index] + current[index + chunk:]
            if candidate and reproduces(candidate):
                current = candidate
                removed_any = True
            else:
                index += chunk
        if chunk == 1:
            if not removed_any:
                break  # 1-minimal: no single step can be dropped
        else:
            chunk = max(1, chunk // 2)
    return current
