"""Human-readable rendering of runs — debugging aid for protocol authors.

``describe_step`` gives a compact one-liner per step; ``render_timeline``
draws per-process ASCII lanes; ``render_summary`` tabulates operation
counts.  All pure functions over recorded traces.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List

from ..runtime.ops import (
    Broadcast,
    ConsensusPropose,
    Decide,
    Emit,
    ImmediateWriteScan,
    Nop,
    QueryFD,
    Read,
    Receive,
    Send,
    SnapshotScan,
    SnapshotUpdate,
    Write,
)
from ..runtime.trace import StepRecord, Trace

#: One-character glyphs for the timeline lanes.
_GLYPHS = (
    (Read, "r"),
    (Write, "w"),
    (SnapshotUpdate, "u"),
    (SnapshotScan, "s"),
    (ConsensusPropose, "c"),
    (ImmediateWriteScan, "i"),
    (QueryFD, "?"),
    (Decide, "D"),
    (Emit, "E"),
    (Send, ">"),
    (Broadcast, "B"),
    (Receive, "<"),
    (Nop, "."),
)


def _glyph(op) -> str:
    for op_type, glyph in _GLYPHS:
        if isinstance(op, op_type):
            return glyph
    return "#"


def _short(value, limit: int = 18) -> str:
    if isinstance(value, frozenset):
        text = "{" + ",".join(str(x) for x in sorted(value)) + "}"
    else:
        text = repr(value)
    return text if len(text) <= limit else text[: limit - 1] + "…"


def describe_step(step: StepRecord) -> str:
    """Compact one-line description: ``t=12 p0 W(('Dr', 1))='v0'``."""
    op = step.op
    prefix = f"t={step.time} p{step.pid} "
    if isinstance(op, Read):
        return prefix + f"R({op.key!r}) -> {_short(step.response)}"
    if isinstance(op, Write):
        return prefix + f"W({op.key!r}) = {_short(op.value)}"
    if isinstance(op, SnapshotUpdate):
        return prefix + f"U({op.key!r}[{op.index}]) = {_short(op.value)}"
    if isinstance(op, SnapshotScan):
        return prefix + f"S({op.key!r}) -> {_short(step.response)}"
    if isinstance(op, ConsensusPropose):
        return prefix + f"C({op.key!r}, {_short(op.value)}) -> {_short(step.response)}"
    if isinstance(op, QueryFD):
        return prefix + f"FD? -> {_short(step.response)}"
    if isinstance(op, Decide):
        return prefix + f"DECIDE {_short(op.value)}"
    if isinstance(op, Emit):
        return prefix + f"EMIT {_short(op.value)}"
    if isinstance(op, ImmediateWriteScan):
        return prefix + (
            f"IS({op.key!r}[{op.index}]) = {_short(op.value)} -> "
            f"{_short(step.response)}"
        )
    if isinstance(op, Send):
        return prefix + f"SEND p{op.dest} {_short(op.payload)}"
    if isinstance(op, Broadcast):
        return prefix + f"BCAST {_short(op.payload)}"
    if isinstance(op, Receive):
        count = len(step.response) if step.response else 0
        return prefix + f"RECV {count} message(s)"
    if isinstance(op, Nop):
        return prefix + "nop"
    return prefix + repr(op)


def render_timeline(trace: Trace, n_processes: int, width: int = 100) -> str:
    """ASCII lanes: one row per process, one column per bucket of steps.

    Long runs are compressed: each column shows the *last* glyph the
    process produced inside that time bucket (space if it did not step).
    Decisions always win over other glyphs in their bucket.
    """
    if not trace.steps:
        return "(empty trace)"
    horizon = trace.steps[-1].time + 1
    bucket = max(1, -(-horizon // width))  # ceil division
    columns = -(-horizon // bucket)
    lanes: Dict[int, List[str]] = {
        p: [" "] * columns for p in range(n_processes)
    }
    for step in trace.steps:
        col = step.time // bucket
        lane = lanes[step.pid]
        glyph = _glyph(step.op)
        if lane[col] != "D":  # a decision is never overwritten
            lane[col] = glyph
    header = (
        f"1 column = {bucket} step(s); r/w registers, u/s snapshot, "
        f"c consensus, ? detector query, E emit, D decide"
    )
    rows = [header]
    for pid in range(n_processes):
        rows.append(f"p{pid} |" + "".join(lanes[pid]) + "|")
    return "\n".join(rows)


def render_summary(trace: Trace, n_processes: int) -> str:
    """Per-process operation counts, as an aligned text table."""
    kinds = ["read", "write", "update", "scan", "propose", "query",
             "decide", "emit", "msg", "nop"]
    mapping = {
        Read: "read", Write: "write", SnapshotUpdate: "update",
        SnapshotScan: "scan", ImmediateWriteScan: "scan",
        ConsensusPropose: "propose",
        QueryFD: "query", Decide: "decide", Emit: "emit",
        Send: "msg", Broadcast: "msg", Receive: "msg", Nop: "nop",
    }
    counts: Dict[int, Counter] = {p: Counter() for p in range(n_processes)}
    for step in trace.steps:
        for op_type, label in mapping.items():
            if isinstance(step.op, op_type):
                counts[step.pid][label] += 1
                break
    header = f"{'pid':>4} " + " ".join(f"{k:>8}" for k in kinds) + f" {'total':>8}"
    rows = [header]
    for pid in range(n_processes):
        c = counts[pid]
        total = sum(c.values())
        rows.append(
            f"{'p%d' % pid:>4} "
            + " ".join(f"{c.get(k, 0):>8}" for k in kinds)
            + f" {total:>8}"
        )
    return "\n".join(rows)
