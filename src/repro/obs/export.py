"""Exporters: JSONL event streaming and the ``RunReport`` bundle.

Events serialize with the same tagged value codec as
:mod:`repro.analysis.trace_io`, so a stream of ``StepTaken`` lines is
``jq``-compatible with a dumped trace::

    python -m repro stats fig1 --events /tmp/run.jsonl
    jq -c 'select(.event == "EmitChanged" and .changed)' /tmp/run.jsonl

:class:`RunReport` bundles the three observability artifacts of one run —
trace, metrics snapshot, phase profile — into a single JSON document.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Dict, IO, List, Optional, Union

from .events import Event, EventBus, event_types
from .metrics import MetricsRegistry
from .profile import RunProfiler


def event_to_dict(event: Event) -> Dict[str, Any]:
    """Encode an event as a JSON-safe dict (``event`` key = type name)."""
    from ..analysis.trace_io import encode_value  # deferred: avoids cycles
    from ..runtime.ops import Operation

    body: Dict[str, Any] = {"event": type(event).__name__}
    for field in dataclasses.fields(event):
        value = getattr(event, field.name)
        if isinstance(value, Operation):
            # inline the op the way trace_io encodes a step's op
            from ..analysis.trace_io import _encode_op

            body[field.name] = _encode_op(value)
        else:
            body[field.name] = encode_value(value)
    return body


def event_from_dict(body: Dict[str, Any]) -> Event:
    """Rebuild a typed :class:`Event` from :func:`event_to_dict` output.

    The inverse of :func:`event_to_dict`: the ``event`` key selects the
    class (via :func:`repro.obs.events.event_types`), every other field
    decodes through the :mod:`repro.analysis.trace_io` value codec.
    Raises ``KeyError`` for an unknown event name — callers that tail
    foreign streams should catch it and count the line as unknown.
    """
    from ..analysis.trace_io import _decode_op, decode_value

    cls = event_types()[body["event"]]
    kwargs: Dict[str, Any] = {}
    for key, value in body.items():
        if key == "event":
            continue
        if key == "op" and isinstance(value, dict) and "op" in value:
            kwargs[key] = _decode_op(value)
        else:
            kwargs[key] = decode_value(value)
    return cls(**kwargs)


class JsonlEventSink:
    """A bus subscriber that streams every event as one JSON line.

    Accepts a path or an open text handle; usable as a context manager.
    Subscribe it for all events (the default when constructed with a
    ``bus``) or a subset::

        with JsonlEventSink("/tmp/run.jsonl", bus=bus) as sink:
            sim.run(...)
        print(sink.lines, "events written")
    """

    def __init__(
        self,
        destination: Union[str, IO[str]],
        bus: Optional[EventBus] = None,
        kinds=None,
        flush: bool = False,
    ):
        if isinstance(destination, str):
            self._handle: IO[str] = open(destination, "w", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = destination
            self._owns_handle = False
        self.lines = 0
        self._flush = flush
        self._bus = bus
        if bus is not None:
            bus.subscribe(self, kinds)

    def __call__(self, event: Event) -> None:
        self._handle.write(
            json.dumps(event_to_dict(event), ensure_ascii=False) + "\n"
        )
        self.lines += 1
        if self._flush:
            # live-tailed streams (repro dash) need every line on disk
            self._handle.flush()

    def close(self) -> None:
        if self._bus is not None:
            self._bus.unsubscribe(self)
            self._bus = None
        if self._owns_handle:
            self._handle.close()

    def __enter__(self) -> "JsonlEventSink":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def load_events(source: Union[str, IO[str]]) -> List[Dict[str, Any]]:
    """Read a JSONL event stream back as decoded dicts (values untagged).

    Inlined operations (the ``op`` field of ``StepTaken`` lines) decode
    back to real :class:`~repro.runtime.ops.Operation` instances.
    """
    from ..analysis.trace_io import _decode_op, decode_value

    if isinstance(source, str):
        with open(source, encoding="utf-8") as handle:
            lines = handle.readlines()
    else:
        lines = source.readlines()

    def decode_field(key: str, value: Any) -> Any:
        if key == "event":
            return value
        if key == "op" and isinstance(value, dict) and "op" in value:
            return _decode_op(value)
        return decode_value(value)

    out: List[Dict[str, Any]] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        raw = json.loads(line)
        out.append({key: decode_field(key, value)
                    for key, value in raw.items()})
    return out


@dataclasses.dataclass
class RunReport:
    """Trace + metrics + profile of one run, as a single artifact."""

    metrics: Dict[str, Any]
    profile: List[Dict[str, Any]] = dataclasses.field(default_factory=list)
    trace: Optional[Any] = None  # a runtime.trace.Trace, serialized on write
    meta: Dict[str, Any] = dataclasses.field(default_factory=dict)

    @classmethod
    def of(
        cls,
        sim,
        registry: Optional[MetricsRegistry] = None,
        profiler: Optional[RunProfiler] = None,
        **meta: Any,
    ) -> "RunReport":
        """Bundle a finished simulation's observability artifacts."""
        return cls(
            metrics=registry.snapshot() if registry is not None else {},
            profile=profiler.snapshot() if profiler is not None else [],
            trace=sim.trace,
            meta={"total_steps": sim.time, **meta},
        )

    def to_dict(self) -> Dict[str, Any]:
        from ..analysis.trace_io import trace_to_dict

        return {
            "meta": self.meta,
            "metrics": self.metrics,
            "profile": self.profile,
            "trace": trace_to_dict(self.trace) if self.trace is not None else None,
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def write(self, destination: Union[str, IO[str]]) -> None:
        if isinstance(destination, str):
            with open(destination, "w", encoding="utf-8") as handle:
                handle.write(self.to_json())
        else:
            destination.write(self.to_json())

    @classmethod
    def from_dict(cls, body: Dict[str, Any]) -> "RunReport":
        from ..analysis.trace_io import trace_from_dict

        trace = body.get("trace")
        return cls(
            metrics=body.get("metrics", {}),
            profile=body.get("profile", []),
            trace=trace_from_dict(trace) if trace is not None else None,
            meta=body.get("meta", {}),
        )

    @classmethod
    def load(cls, source: Union[str, IO[str]]) -> "RunReport":
        if isinstance(source, str):
            with open(source, encoding="utf-8") as handle:
                return cls.from_dict(json.load(handle))
        return cls.from_dict(json.load(source))
