"""Prometheus text exposition of a :class:`MetricsRegistry`.

One pure function, :func:`render_prometheus`, emits the classic
text-based format (version 0.0.4) that every Prometheus-compatible
scraper understands::

    # HELP repro_steps_total atomic steps per process
    # TYPE repro_steps_total counter
    repro_steps_total{label="0"} 117

Counters keep their labels under a single ``label`` key (registry labels
are free-form hashables, not key/value pairs), histograms are exposed as
*summaries* — ``quantile="0.5|0.95|0.99"`` series plus ``_count`` and
``_sum`` — because the registry stores raw samples, so the quantiles are
exact rather than bucket approximations.

The format is scrapeable but deliberately dependency-free: ``repro stats
--format prom`` and the dashboard's ``/metrics`` endpoint both render
through here using only the stdlib.
"""

from __future__ import annotations

import math
import re
from typing import List

from .metrics import (
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
    _label_key,
)

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")
_QUANTILES = (0.5, 0.95, 0.99)


def _metric_name(namespace: str, name: str) -> str:
    """``<namespace>_<name>`` with illegal characters collapsed to ``_``."""
    full = f"{namespace}_{name}" if namespace else name
    full = _NAME_OK.sub("_", full)
    if full and full[0].isdigit():
        full = "_" + full
    return full


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def _sample(name: str, labels: str, value) -> str:
    if labels:
        return f"{name}{{{labels}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


def render_prometheus(registry: MetricsRegistry,
                      namespace: str = "repro") -> str:
    """The registry in Prometheus text exposition format (0.0.4).

    Metrics render in name order; counter names gain the conventional
    ``_total`` suffix when they do not already carry one.
    """
    lines: List[str] = []
    for metric in sorted(registry, key=lambda m: m.name):
        if isinstance(metric, CounterMetric):
            name = _metric_name(namespace, metric.name)
            if not name.endswith("_total"):
                name += "_total"
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} counter")
            items = metric.items()
            for label in sorted(items, key=_label_key):
                key = _label_key(label)
                labels = f'label="{_escape_label(key)}"' if key else ""
                lines.append(_sample(name, labels, items[label]))
        elif isinstance(metric, GaugeMetric):
            name = _metric_name(namespace, metric.name)
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} gauge")
            items = metric.items()
            for label in sorted(items, key=_label_key):
                key = _label_key(label)
                labels = f'label="{_escape_label(key)}"' if key else ""
                lines.append(_sample(name, labels, items[label]))
        elif isinstance(metric, HistogramMetric):
            name = _metric_name(namespace, metric.name)
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} summary")
            samples = metric.values()
            if samples:
                summary = metric.summary()
                quantiles = {
                    0.5: summary.p50, 0.95: summary.p95, 0.99: summary.p99,
                }
                for q in _QUANTILES:
                    lines.append(
                        _sample(name, f'quantile="{q:g}"', quantiles[q])
                    )
            lines.append(_sample(name + "_count", "", len(samples)))
            lines.append(_sample(name + "_sum", "", sum(samples)))
    return "\n".join(lines) + "\n" if lines else ""
